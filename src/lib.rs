//! # CCSA — Comparative Code Structure Analysis
//!
//! A Rust reproduction of *"Comparative Code Structure Analysis using Deep
//! Learning for Performance Prediction"* (Ramadan, Islam, Phelps, Pinnow,
//! Thiagarajan — ISPASS 2021, arXiv:2102.07660), grown into a system that
//! also *serves* the trained models.
//!
//! Given two versions of a program, CCSA predicts **from the abstract
//! syntax trees alone** whether the second will run faster or slower than
//! the first on the same machine and inputs.
//!
//! ## Architecture
//!
//! The workspace is layered; each crate only depends on those above it:
//!
//! ```text
//! ┌─────────────────────────────────────────────────────────────────┐
//! │ tensor   dense tensors + reverse-mode autograd (PyTorch substitute);
//! │          blocked IEEE-strict matmul kernel (4-row blocks, unrolled)
//! ├─────────────────────────────────────────────────────────────────┤
//! │ cppast   mini-C++ lexer/parser/printer → AstGraph (ROSE substitute)
//! │          + canonical structural hashing (serving cache keys)
//! ├─────────────────────────────────────────────────────────────────┤
//! │ corpus   synthetic Codeforces-style corpus: program generator,
//! │          cost-model interpreter, judge → labelled submissions
//! ├─────────────────────────────────────────────────────────────────┤
//! │ nn       embeddings, child-sum tree-LSTM variants, GCN baseline,
//! │          optimizers, data-parallel batching; level-fused batched
//! │          encode with the four gate projections fused into single
//! │          [4h, d] parameters: same-level nodes across every tree in
//! │          a batch run as one matmul per projection (per-node path
//! │          kept for equivalence)
//! ├─────────────────────────────────────────────────────────────────┤
//! │ model    pairs → training → evaluation → versioned persistence;
//! │          training runs on the fused batched encoder (one tape per
//! │          worker shard, logit_batch) with a per-pair parity baseline
//! ├─────────────────────────────────────────────────────────────────┤
//! │ serve    the inference engine: model registry behind an RwLock,
//! │          N-way *striped* LRU embedding cache keyed by canonical
//! │          AST hash (one lock per stripe; disk-snapshottable for
//! │          warm restarts, byte-compatible across stripe counts),
//! │          per-model *sharded* encoder worker pool — bounded
//! │          sub-queue per name@vN, preferred workers, idle-worker
//! │          stealing, so a hot model cannot starve a cold one (misses
//! │          from concurrent requests still coalesce into one
//! │          level-fused forward; fused width, per-shard depths and
//! │          steals visible in `stats`), K-way ranking API, JSON-lines
//! │          `serve` binary
//! ├─────────────────────────────────────────────────────────────────┤
//! │ gateway  the TCP front door: keep-alive JSON-lines sessions,
//! │          connection caps, per-route token-bucket rate limiting,
//! │          weighted sticky A/B routing across registry versions,
//! │          shadow traffic, per-route p50/p99 + hit-rate stats,
//! │          graceful drain — `gateway` binary
//! ├─────────────────────────────────────────────────────────────────┤
//! │ fleet    the front tier + control plane over N gateway replicas:
//! │          consistent-hash ring on the sticky client key (vnodes,
//! │          ~1/N remap), transparent failover + tail hedging at a
//! │          p99 deadline, /readyz prober with rise/fall ejection,
//! │          hot-reloadable routing tables pushed via `reload_routes`,
//! │          automated canary controller ramping a shadow candidate
//! │          1%→10%→50%→100% (or zeroing it) from observed
//! │          shadow-vs-primary deltas — `fleet` binary
//! └─────────────────────────────────────────────────────────────────┘
//! ```
//!
//! **Training path:** `corpus` generates structurally diverse correct
//! solutions per problem, the interpreter + judge label each with a
//! calibrated runtime, `model` samples labelled pairs (Eq. 1) and trains
//! the shared-encoder comparator with BCE.
//!
//! **Serving path:** [`serve::ServeEngine`](ccsa_serve::ServeEngine)
//! loads versioned artefacts (`model-v<N>.ccsm`) into a registry, parses
//! incoming sources, reuses latent codes from a striped LRU cache keyed
//! by [`AstGraph::canonical_hash`](ccsa_cppast::AstGraph::canonical_hash)
//! (hits skip the encoder; only the 2·d classifier head runs — and only
//! the key's stripe is locked, so concurrent requests never convoy),
//! batches cache misses into *level-fused* encoder forward passes
//! across a per-model sharded worker pool with work stealing — nodes at
//! the same tree level across every tree in the batch run as one
//! `[rows, d] · [d, h]` matmul per gate instead of per-node matvecs,
//! and one model's backlog never starves another's requests — and
//! answers `compare` / `rank` / `stats` ops —
//! in-process, over JSON-lines via the `serve` binary, or over TCP via
//! the `gateway` binary, which adds `routes` (the weighted A/B table
//! with per-route rolling stats), per-route token-bucket rate limits,
//! and graceful `shutdown`.
//!
//! ## Quickstart
//!
//! ```
//! use ccsa::model::pipeline::{Pipeline, PipelineConfig};
//! use ccsa::corpus::spec::ProblemTag;
//!
//! // Train a tiny comparative model on problem H (dynamic programming) and
//! // ask it which of two fresh solutions is faster.
//! let config = PipelineConfig::tiny(7);
//! let outcome = Pipeline::new(config).run_single(ProblemTag::H).unwrap();
//! assert!(outcome.test_accuracy >= 0.0 && outcome.test_accuracy <= 1.0);
//! ```
//!
//! ## Serving quickstart
//!
//! ```no_run
//! use ccsa::model::pipeline::{Pipeline, PipelineConfig};
//! use ccsa::corpus::spec::ProblemTag;
//! use ccsa::serve::{ModelSelector, ServeConfig, ServeEngine};
//!
//! let outcome = Pipeline::new(PipelineConfig::tiny(7)).run_single(ProblemTag::H)?;
//! let engine = ServeEngine::with_model(outcome.model, &ServeConfig::default());
//! let verdict = engine.compare(
//!     &ModelSelector::default(),
//!     "int main() { int n; cin >> n; long long s = 0; \
//!      for (int i = 0; i <= n; i++) for (int j = 0; j < i; j++) s++; \
//!      cout << s; return 0; }",
//!     "int main() { int n; cin >> n; cout << n * (n + 1) / 2; return 0; }",
//! ).unwrap();
//! println!("P(first slower) = {:.3}", verdict.prob_first_slower);
//! # Ok::<(), ccsa::corpus::InterpError>(())
//! ```

/// Dense tensors and autograd. See [`ccsa_tensor`].
pub mod tensor {
    pub use ccsa_tensor::*;
}

/// Mini-C++ lexer, parser and ASTs. See [`ccsa_cppast`].
pub mod cppast {
    pub use ccsa_cppast::*;
}

/// Synthetic corpus generation and runtime measurement. See [`ccsa_corpus`].
pub mod corpus {
    pub use ccsa_corpus::*;
}

/// Neural network layers and optimizers. See [`ccsa_nn`].
pub mod nn {
    pub use ccsa_nn::*;
}

/// The comparative performance-prediction pipeline. See [`ccsa_model`].
pub mod model {
    pub use ccsa_model::*;
}

/// The batched, cache-backed inference serving engine. See [`ccsa_serve`].
pub mod serve {
    pub use ccsa_serve::*;
}

/// The TCP serving gateway with weighted A/B routing. See
/// [`ccsa_gateway`].
pub mod gateway {
    pub use ccsa_gateway::*;
}
