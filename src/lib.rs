//! # CCSA — Comparative Code Structure Analysis
//!
//! A Rust reproduction of *"Comparative Code Structure Analysis using Deep
//! Learning for Performance Prediction"* (Ramadan, Islam, Phelps, Pinnow,
//! Thiagarajan — ISPASS 2021, arXiv:2102.07660).
//!
//! Given two versions of a program, CCSA predicts **from the abstract
//! syntax trees alone** whether the second will run faster or slower than
//! the first on the same machine and inputs. The system comprises:
//!
//! * [`tensor`] — dense tensors + reverse-mode autograd (PyTorch substitute)
//! * [`cppast`] — mini-C++ frontend producing ASTs (ROSE compiler substitute)
//! * [`corpus`] — synthetic Codeforces-style corpus: program generator, a
//!   cost-model interpreter and a judge producing runtime labels
//! * [`nn`] — embeddings, child-sum tree-LSTM variants (uni-/bi-directional,
//!   alternating), GCN baseline, optimizers
//! * [`model`] — pair generation, training, evaluation (accuracy/ROC/AUC),
//!   sensitivity analysis, t-SNE and hyper-parameter search
//!
//! ## Quickstart
//!
//! ```
//! use ccsa::model::pipeline::{Pipeline, PipelineConfig};
//! use ccsa::corpus::spec::ProblemTag;
//!
//! // Train a tiny comparative model on problem H (dynamic programming) and
//! // ask it which of two fresh solutions is faster.
//! let config = PipelineConfig::tiny(7);
//! let outcome = Pipeline::new(config).run_single(ProblemTag::H).unwrap();
//! assert!(outcome.test_accuracy >= 0.0 && outcome.test_accuracy <= 1.0);
//! ```

/// Dense tensors and autograd. See [`ccsa_tensor`].
pub mod tensor {
    pub use ccsa_tensor::*;
}

/// Mini-C++ lexer, parser and ASTs. See [`ccsa_cppast`].
pub mod cppast {
    pub use ccsa_cppast::*;
}

/// Synthetic corpus generation and runtime measurement. See [`ccsa_corpus`].
pub mod corpus {
    pub use ccsa_corpus::*;
}

/// Neural network layers and optimizers. See [`ccsa_nn`].
pub mod nn {
    pub use ccsa_nn::*;
}

/// The comparative performance-prediction pipeline. See [`ccsa_model`].
pub mod model {
    pub use ccsa_model::*;
}
