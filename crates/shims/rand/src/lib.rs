//! Minimal, hermetic stand-in for the `rand` crate.
//!
//! The repository builds in fully offline environments, so instead of a
//! crates.io dependency this workspace vendors the small slice of the
//! `rand` 0.9-style API the codebase actually uses:
//!
//! * [`rngs::StdRng`] — a deterministic, seedable generator
//!   (xoshiro256++ seeded through SplitMix64);
//! * [`SeedableRng::seed_from_u64`];
//! * [`RngExt`] — `random`, `random_bool`, `random_range`;
//! * [`seq::SliceRandom`] — Fisher–Yates `shuffle` and `choose`.
//!
//! Determinism is the only contract the rest of the workspace relies on:
//! every corpus, split and initialisation derives from explicit `u64`
//! seeds, so swapping in the real `rand` crate would change the sampled
//! streams but not the correctness of anything downstream.

#![forbid(unsafe_code)]

/// Core entropy source: everything else is derived from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (high half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of reproducible generators from integer seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Deterministic generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++.
    ///
    /// Not cryptographically secure — it exists to make corpus generation,
    /// parameter init and pair sampling reproducible from a seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion of the seed, per the xoshiro authors'
            // recommendation; guarantees a non-zero state.
            let mut x = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types samplable uniformly over their "natural" domain (`random()`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        // 24 high bits → uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

/// Types with uniform sampling over half-open and closed intervals.
///
/// Mirrors rand's `SampleUniform` so that the single blanket
/// [`SampleRange`] impl below drives type inference the same way the real
/// crate does (`rng.random_range(0..n)` unifies the literal's type with
/// the expected output type).
pub trait SampleUniform: PartialOrd + Copy {
    /// A uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// A uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                lo + <$t as Standard>::sample(rng) * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                lo + <$t as Standard>::sample(rng) * (hi - lo)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

/// Convenience sampling methods, in the style of `rand::Rng`.
pub trait RngExt: RngCore {
    /// A uniform sample over `T`'s natural domain.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        <f64 as Standard>::sample(self) < p
    }

    /// A uniform sample from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> RngExt for R {}

/// Sequence-level randomisation helpers.
pub mod seq {
    use super::{RngCore, RngExt};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Uniform in-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` when empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i64 = rng.random_range(-5..5);
            assert!((-5..5).contains(&v));
            let w: usize = rng.random_range(3..=3);
            assert_eq!(w, 3);
            let f: f32 = rng.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_floats_are_in_unit_interval_and_vary() {
        let mut rng = StdRng::seed_from_u64(9);
        let xs: Vec<f64> = (0..1000).map(|_| rng.random::<f64>()).collect();
        assert!(xs.iter().all(|x| (0.0..1.0).contains(x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from 0.5");
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..4000).filter(|_| rng.random_bool(0.3)).count();
        let rate = hits as f64 / 4000.0;
        assert!((rate - 0.3).abs() < 0.05, "rate {rate} far from 0.3");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice ordered (astronomically unlikely)"
        );
    }

    #[test]
    fn choose_returns_member() {
        let mut rng = StdRng::seed_from_u64(15);
        let v = [10, 20, 30];
        for _ in 0..20 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
