//! Minimal, hermetic stand-in for the `proptest` crate.
//!
//! Implements the slice of the proptest API this workspace's property
//! tests use — strategies (ranges, tuples, collections, `prop_oneof!`,
//! `prop_recursive`, sample/select, a small regex-class string strategy),
//! the `proptest!` macro and the `prop_assert*` family — on top of the
//! vendored [`rand`] shim.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its case index and the
//!   deterministic seed, which is enough to replay it under a debugger.
//! * **Deterministic cases.** Each test function derives its RNG stream
//!   from a hash of its own name, so failures are reproducible across
//!   runs and machines (real proptest defaults to OS entropy).
//! * **String strategies** support only the character-class pattern shape
//!   actually used in-tree: `[class]{min,max}` with ranges and escapes.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{RngCore, RngExt, SeedableRng};

/// Test-case level error: a failed assertion or a rejected (assumed-away)
/// input.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the runner panics with this message.
    Fail(String),
    /// The input was rejected by `prop_assume!`; the case is skipped.
    Reject(String),
}

/// Runner configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test function.
    pub cases: u32,
    /// Abort the test once this many inputs were rejected by
    /// `prop_assume!` (guards against assumptions that filter everything
    /// out).
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 4096,
        }
    }
}

/// The RNG handed to strategies (a thin wrapper so the public surface
/// matches proptest's `TestRng` naming).
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic per-test stream: seed derived from the test name.
    pub fn for_test(test_name: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(
            h ^ ((case as u64) << 32 | case as u64),
        ))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A generator of random values of one type.
///
/// Unlike real proptest there is no value tree: `generate` produces the
/// final value directly and failures are never shrunk.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy behind an `Arc` (cloneable, object-safe).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(move |rng: &mut TestRng| self.generate(rng)))
    }

    /// Recursive strategies: `f` receives a strategy for the recursive
    /// positions (a mix of leaves and the previous level) and returns the
    /// next level. `depth` bounds the recursion tower; `_desired_size` and
    /// `_expected_branch` are accepted for API compatibility and ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            // Bias towards leaves so expected tree size stays finite.
            let inner = Union::new(vec![leaf.clone(), leaf.clone(), level]).boxed();
            level = f(inner).boxed();
        }
        level
    }
}

/// A cloneable, type-erased strategy.
pub struct BoxedStrategy<T>(Arc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between same-typed strategies (`prop_oneof!` backend).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A uniform union over `arms`.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let ix = rng.random_range(0..self.arms.len());
        self.arms[ix].generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Types with a canonical strategy, for [`any`].
pub trait Arbitrary {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

impl Arbitrary for bool {
    type Strategy = crate::bool::Any;

    fn arbitrary() -> crate::bool::Any {
        crate::bool::ANY
    }
}

/// The canonical strategy for `T` (`any::<bool>()` et al.).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Boolean strategies.
pub mod bool {
    use super::{RngExt, Strategy, TestRng};

    /// Uniform over `{true, false}`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.random::<bool>()
        }
    }
}

/// Strategies over collections.
pub mod collection {
    use super::{RngExt, Strategy, TestRng};

    /// Sizes accepted by [`vec`]: a fixed length or a range of lengths.
    pub trait IntoSizeRange {
        /// Draws a concrete length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    /// A `Vec` of values from `element`, sized by `size`.
    pub fn vec<S: Strategy, Z: IntoSizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: IntoSizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample_len(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Strategies that sample from explicit value sets.
pub mod sample {
    use super::{RngExt, Strategy, TestRng};

    /// Uniform choice from a non-empty vector of values.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }

    /// See [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.random_range(0..self.options.len())].clone()
        }
    }
}

// ── String strategies (mini regex subset) ───────────────────────────────

/// One parsed element of a string pattern: a set of candidate chars and a
/// repetition count range.
struct PatternPart {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_escape(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> char {
    match chars.next().expect("dangling escape in string strategy") {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other, // \\ \- \] \[ etc: the char itself
    }
}

/// Parses the supported pattern subset: literals and `[class]{min,max}`
/// elements, where a class may contain ranges (`a-z`) and escapes.
fn parse_pattern(pattern: &str) -> Vec<PatternPart> {
    let mut parts = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let set: Vec<char> = match c {
            '[' => {
                let mut set = Vec::new();
                let mut pending: Option<char> = None;
                loop {
                    match chars.next().expect("unterminated character class") {
                        ']' => {
                            if let Some(p) = pending {
                                set.push(p);
                            }
                            break;
                        }
                        '\\' => {
                            if let Some(p) = pending.replace(parse_escape(&mut chars)) {
                                set.push(p);
                            }
                        }
                        '-' if pending.is_some() && chars.peek() != Some(&']') => {
                            let lo = pending.take().unwrap();
                            let hi = match chars.next().unwrap() {
                                '\\' => parse_escape(&mut chars),
                                h => h,
                            };
                            assert!(lo <= hi, "inverted class range {lo}-{hi}");
                            set.extend((lo as u32..=hi as u32).filter_map(char::from_u32));
                        }
                        other => {
                            if let Some(p) = pending.replace(other) {
                                set.push(p);
                            }
                        }
                    }
                }
                assert!(!set.is_empty(), "empty character class");
                set
            }
            '\\' => vec![parse_escape(&mut chars)],
            other => vec![other],
        };
        // Optional {n} / {min,max} repetition suffix.
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for r in chars.by_ref() {
                if r == '}' {
                    break;
                }
                spec.push(r);
            }
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad repetition lower bound"),
                    hi.trim().parse().expect("bad repetition upper bound"),
                ),
                None => {
                    let n = spec.trim().parse().expect("bad repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        parts.push(PatternPart {
            chars: set,
            min,
            max,
        });
    }
    parts
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for part in parse_pattern(self) {
            let n = rng.random_range(part.min..=part.max);
            for _ in 0..n {
                out.push(part.chars[rng.random_range(0..part.chars.len())]);
            }
        }
        out
    }
}

/// Everything tests normally import, plus `prop` as an alias for this
/// crate (so `prop::collection::vec` etc. resolve).
pub mod prelude {
    /// Alias for the crate root, matching proptest's prelude.
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

// ── Macros ──────────────────────────────────────────────────────────────

/// Uniform choice between strategy expressions.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Fails the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current test case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), format!($($fmt)*), a, b
        );
    }};
}

/// Fails the current test case if both sides compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Skips the current case (without failing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that runs `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (@impl ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rejected: u32 = 0;
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)*
                let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                match outcome {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        assert!(
                            rejected < config.max_global_rejects,
                            "too many rejected inputs in {}", stringify!($name),
                        );
                    }
                    ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property '{}' failed at case {}: {}",
                            stringify!($name), case, msg
                        );
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_pattern_generates_within_class() {
        let strat = "[a-c]{2,5}";
        let mut rng = crate::TestRng::for_test("string_pattern", 0);
        for _ in 0..100 {
            let s = crate::Strategy::generate(&strat, &mut rng);
            assert!((2..=5).contains(&s.len()));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn escape_classes_supported() {
        let strat = "[ -~\\n\\t]{0,20}";
        let mut rng = crate::TestRng::for_test("escape_classes", 1);
        for _ in 0..200 {
            let s = crate::Strategy::generate(&strat, &mut rng);
            assert!(s.len() <= 20);
            assert!(s
                .chars()
                .all(|c| (' '..='~').contains(&c) || c == '\n' || c == '\t'));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_in_bounds(x in 3usize..9, y in -2.0f32..2.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn tuples_and_maps(v in prop::collection::vec((0u8..4, any::<bool>()), 1..6)) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            for (n, _b) in v {
                prop_assert!(n < 4);
            }
        }

        #[test]
        fn oneof_and_select(
            pick in prop_oneof![Just(1i64), Just(2), 10i64..20],
            tag in prop::sample::select(vec!["a", "b"]),
        ) {
            prop_assert!(pick == 1 || pick == 2 || (10..20).contains(&pick));
            prop_assert!(tag == "a" || tag == "b");
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum T {
            Leaf(i64),
            Node(Box<T>, Box<T>),
        }
        fn size(t: &T) -> usize {
            match t {
                T::Leaf(v) => {
                    assert!((0..10).contains(v), "leaf {v} outside its strategy range");
                    1
                }
                T::Node(a, b) => 1 + size(a) + size(b),
            }
        }
        let strat = (0i64..10)
            .prop_map(T::Leaf)
            .prop_recursive(4, 32, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| T::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = crate::TestRng::for_test("recursive", 0);
        for _ in 0..200 {
            let t = crate::Strategy::generate(&strat, &mut rng);
            assert!(size(&t) >= 1);
        }
    }
}
