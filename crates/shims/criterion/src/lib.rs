//! Minimal, hermetic stand-in for the `criterion` benchmark harness.
//!
//! Provides the API surface used by `crates/bench/benches`: `Criterion`,
//! `Bencher::{iter, iter_batched}`, `BatchSize` and the
//! `criterion_group!`/`criterion_main!` macros. Timing is a plain
//! warmup-then-measure loop over `std::time::Instant` — good enough for
//! the relative, order-of-magnitude comparisons the repo's benches make,
//! with none of criterion's statistics, plotting or filtering.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// How `iter_batched` amortises setup cost. All variants behave the same
/// here (setup always runs once per iteration, outside the timed span).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Benchmark driver: collects named measurements and prints one line per
/// benchmark.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets the target number of timed samples.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            budget: self.measurement_time,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(name);
        self
    }
}

/// Per-benchmark measurement loop.
pub struct Bencher {
    sample_size: usize,
    budget: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.iter_batched(|| (), |()| routine(), BatchSize::PerIteration);
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warmup: one untimed call (also triggers lazy init in the routine).
        std::hint::black_box(routine(setup()));
        let started = Instant::now();
        self.samples.clear();
        while self.samples.len() < self.sample_size && started.elapsed() < self.budget {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let median = sorted[sorted.len() / 2];
        println!(
            "{name:<40} mean {:>12} median {:>12} samples {}",
            fmt_duration(mean),
            fmt_duration(median),
            self.samples.len()
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),*
        );
    };
}

/// Declares the benchmark `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(50));
        let mut ran = 0u32;
        c.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        assert!(ran > 0, "routine never executed");
    }

    #[test]
    fn iter_batched_uses_fresh_inputs() {
        let mut c = Criterion::default()
            .sample_size(4)
            .measurement_time(Duration::from_millis(50));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8, 2, 3], |mut v| v.pop(), BatchSize::SmallInput);
        });
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(10)), "10 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
    }
}
