//! Property-based verification of the autograd engine: every op family is
//! gradient-checked on random shapes and values, and algebraic identities
//! of the tensor type hold on arbitrary data.

use proptest::prelude::*;

use ccsa_tensor::{grad_check, Adjacency, Tape, TapeScalar, Tensor};

fn arb_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-2.0f32..2.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    #[test]
    fn elementwise_chain_gradcheck(data_a in arb_vec(6), data_b in arb_vec(6)) {
        let a = Tensor::from_vec(data_a, [6]);
        let b = Tensor::from_vec(data_b, [6]);
        let report = grad_check(&[a, b], 1e-2, |_tape, vars| {
            TapeScalar(
                vars[0]
                    .sigmoid()
                    .mul(vars[1].tanh())
                    .add(vars[0].sub(vars[1]).scale(0.5))
                    .sum(),
            )
        });
        prop_assert!(report.passes(3e-2), "{report:?}");
    }

    #[test]
    fn matmul_gradcheck(
        data_a in arb_vec(6),
        data_b in arb_vec(8),
    ) {
        let a = Tensor::from_vec(data_a, [3, 2]);
        let b = Tensor::from_vec(data_b, [2, 4]);
        let report = grad_check(&[a, b], 1e-2, |_tape, vars| {
            TapeScalar(vars[0].matmul(vars[1]).tanh().sum())
        });
        prop_assert!(report.passes(3e-2), "{report:?}");
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose(
        data_a in arb_vec(6),
        data_b in arb_vec(8),
    ) {
        let a = Tensor::from_vec(data_a, [3, 2]);
        let b = Tensor::from_vec(data_b, [4, 2]);
        let direct = a.matmul(&b.t());
        let tape = Tape::new();
        let va = tape.leaf(a);
        let vb = tape.leaf(b);
        let nt = va.matmul_nt(vb).value();
        prop_assert!(direct.max_abs_diff(&nt) < 1e-5);
    }

    #[test]
    fn mean_rows_and_broadcast_gradcheck(
        m in arb_vec(12),
        v in arb_vec(4),
    ) {
        let m = Tensor::from_vec(m, [3, 4]);
        let v = Tensor::from_vec(v, [4]);
        let report = grad_check(&[m, v], 1e-2, |_tape, vars| {
            TapeScalar(vars[0].add_row_broadcast(vars[1]).tanh().mean_rows().sum())
        });
        prop_assert!(report.passes(3e-2), "{report:?}");
    }

    #[test]
    fn gather_concat_stack_gradcheck(table in arb_vec(12)) {
        let table = Tensor::from_vec(table, [4, 3]);
        let report = grad_check(&[table], 1e-2, |tape, vars| {
            let rows = tape.gather(vars[0], vec![0usize, 2, 2, 3]);
            let r0 = rows.row(0);
            let r2 = rows.row(1);
            let cat = tape.concat(&[r0, r2]);
            let st = tape.stack(&[r0, r2]);
            TapeScalar(cat.sum().add(st.tanh().sum()))
        });
        prop_assert!(report.passes(3e-2), "{report:?}");
    }

    #[test]
    fn spmm_gradcheck(h in arb_vec(8), extra_edge in 0u32..3) {
        let h = Tensor::from_vec(h, [4, 2]);
        let adj = std::sync::Arc::new(Adjacency::normalized_from_edges(
            4,
            &[(0, 1), (1, 2), (2, 3), (0, extra_edge.min(3))],
        ));
        let report = grad_check(&[h], 1e-2, move |tape, vars| {
            TapeScalar(tape.spmm(std::sync::Arc::clone(&adj), vars[0]).tanh().sum())
        });
        prop_assert!(report.passes(3e-2), "{report:?}");
    }

    #[test]
    fn bce_gradcheck(z in -3.0f32..3.0, label in prop::bool::ANY) {
        let z = Tensor::from_vec(vec![z], [1]);
        let target = label as i32 as f32;
        let report = grad_check(&[z], 1e-3, move |_tape, vars| {
            TapeScalar(vars[0].sum().bce_with_logits(target))
        });
        prop_assert!(report.passes(2e-2), "{report:?}");
    }

    #[test]
    fn stack_rows_index_rows_gradcheck(a in arb_vec(6), b in arb_vec(3)) {
        let a = Tensor::from_vec(a, [2, 3]);
        let b = Tensor::from_vec(b, [1, 3]);
        let report = grad_check(&[a, b], 1e-2, |tape, vars| {
            let stacked = tape.stack_rows(&[vars[0], vars[1], vars[0]]);
            let picked = stacked.index_rows(vec![4usize, 0, 2, 0]);
            TapeScalar(picked.tanh().sum())
        });
        prop_assert!(report.passes(3e-2), "{report:?}");
    }

    #[test]
    fn segment_sum_gradcheck(m in arb_vec(8), init in arb_vec(4)) {
        let m = Tensor::from_vec(m, [4, 2]);
        let init = Tensor::from_vec(init, [2, 2]);
        let report = grad_check(&[m, init], 1e-2, |tape, vars| {
            // Uneven segments including the fold-from-init variant.
            let plain = tape.segment_sum(vars[0], vec![0usize, 1, 4]);
            let folded = tape.segment_sum_init(vars[1], vars[0], vec![0usize, 3, 4]);
            TapeScalar(plain.tanh().sum().add(folded.sigmoid().sum()))
        });
        prop_assert!(report.passes(3e-2), "{report:?}");
    }

    #[test]
    fn slice_cols_gradcheck(m in arb_vec(12), v in arb_vec(5)) {
        let m = Tensor::from_vec(m, [3, 4]);
        let v = Tensor::from_vec(v, [5]);
        let report = grad_check(&[m, v], 1e-2, |_tape, vars| {
            // Matrix slice, overlapping matrix slice, and a vector slice.
            let a = vars[0].slice_cols(1, 2).tanh().sum();
            let b = vars[0].slice_cols(0, 3).sigmoid().sum();
            let c = vars[1].slice_cols(2, 3).tanh().sum();
            TapeScalar(a.add(b).add(c))
        });
        prop_assert!(report.passes(3e-2), "{report:?}");
    }

    #[test]
    fn gather_rows_multi_gradcheck(a in arb_vec(6), b in arb_vec(3), c in arb_vec(6)) {
        let a = Tensor::from_vec(a, [2, 3]);
        let b = Tensor::from_vec(b, [1, 3]);
        let c = Tensor::from_vec(c, [2, 3]);
        let report = grad_check(&[a, b, c], 1e-2, |tape, vars| {
            // Repeated rows across sources; source c partly untouched.
            let picked = tape.gather_rows_multi(
                &[vars[0], vars[1], vars[2]],
                vec![3usize, 0, 2, 3, 1],
            );
            TapeScalar(picked.tanh().sum())
        });
        prop_assert!(report.passes(3e-2), "{report:?}");
    }

    #[test]
    fn gather_rows_multi_matches_stack_then_index(a in arb_vec(8), b in arb_vec(4)) {
        // The incremental gather must equal the materialised
        // stack_rows + index_rows path bit-for-bit, forward and backward.
        let a = Tensor::from_vec(a, [2, 4]);
        let b = Tensor::from_vec(b, [1, 4]);
        let indices = vec![2usize, 0, 2, 1];
        let tape = Tape::new();
        let (va, vb) = (tape.leaf(a.clone()), tape.leaf(b.clone()));
        let multi = tape.gather_rows_multi(&[va, vb], indices.clone());
        let gm = tape.backward(multi.tanh().sum());
        let tape2 = Tape::new();
        let (wa, wb) = (tape2.leaf(a), tape2.leaf(b));
        let stacked = tape2.stack_rows(&[wa, wb]).index_rows(indices);
        let gs = tape2.backward(stacked.tanh().sum());
        prop_assert!(multi.value().max_abs_diff(&stacked.value()) == 0.0);
        prop_assert!(gm.get(va).max_abs_diff(&gs.get(wa)) == 0.0);
        prop_assert!(gm.get(vb).max_abs_diff(&gs.get(wb)) == 0.0);
    }

    #[test]
    fn concat_cols_gradcheck(a in arb_vec(6), b in arb_vec(9)) {
        let a = Tensor::from_vec(a, [3, 2]);
        let b = Tensor::from_vec(b, [3, 3]);
        let report = grad_check(&[a, b], 1e-2, |_tape, vars| {
            TapeScalar(vars[0].concat_cols(vars[1]).tanh().sum())
        });
        prop_assert!(report.passes(3e-2), "{report:?}");
    }

    #[test]
    fn segment_sum_matches_add_n(rows in arb_vec(12)) {
        // The fused child-sum must agree with the sequential add_n path.
        let m = Tensor::from_vec(rows, [4, 3]);
        let tape = Tape::new();
        let vm = tape.leaf(m.clone());
        let fused = tape.segment_sum(vm, vec![0usize, 4]).value();
        let parts: Vec<_> = (0..4).map(|r| tape.leaf(m.row(r))).collect();
        let seq = tape.add_n(&parts).value();
        prop_assert!(fused.reshape([3]).max_abs_diff(&seq) < 1e-6);
    }

    // ── Tensor algebra ───────────────────────────────────────────────

    #[test]
    fn add_commutes(a in arb_vec(10), b in arb_vec(10)) {
        let ta = Tensor::from_vec(a, [10]);
        let tb = Tensor::from_vec(b, [10]);
        let ab = ta.add(&tb);
        let ba = tb.add(&ta);
        prop_assert_eq!(ab.as_slice(), ba.as_slice());
    }

    #[test]
    fn matmul_associates_with_identity(a in arb_vec(12)) {
        let t = Tensor::from_vec(a, [3, 4]);
        prop_assert!(t.matmul(&Tensor::eye(4)).max_abs_diff(&t) < 1e-6);
        prop_assert!(Tensor::eye(3).matmul(&t).max_abs_diff(&t) < 1e-6);
    }

    #[test]
    fn transpose_is_involution(a in arb_vec(15)) {
        let t = Tensor::from_vec(a, [5, 3]);
        let tt = t.t().t();
        prop_assert_eq!(tt.as_slice(), t.as_slice());
    }

    #[test]
    fn dot_matches_mul_sum(a in arb_vec(9), b in arb_vec(9)) {
        let ta = Tensor::from_vec(a, [9]);
        let tb = Tensor::from_vec(b, [9]);
        prop_assert!((ta.dot(&tb) - ta.mul(&tb).sum()).abs() < 1e-4);
    }

    #[test]
    fn outer_matches_matmul(a in arb_vec(3), b in arb_vec(4)) {
        let ta = Tensor::from_vec(a, [3]);
        let tb = Tensor::from_vec(b, [4]);
        let outer = ta.outer(&tb);
        let mm = ta.reshape([3, 1]).matmul(&tb.reshape([1, 4]));
        prop_assert!(outer.max_abs_diff(&mm) < 1e-6);
    }
}
