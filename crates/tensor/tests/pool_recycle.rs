//! Property test (seeded xorshift, no external proptest dep):
//! pool-recycled buffers never leak stale data. Buffers are taken at
//! randomized sizes, filled with recognizable garbage, returned, and
//! re-taken — every re-take must come back either all-zero
//! (`take_zeroed`) or empty (`take_cap`), and tensor ops built on top
//! of recycled buffers must compute the same values as on a cold pool.

use ccsa_tensor::{pool, Tensor};

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

#[test]
fn recycled_buffers_never_leak_stale_data() {
    let mut rng = XorShift(0x9e3779b97f4a7c15);
    for round in 0..200 {
        let len = (1 + rng.below(5000)) as usize;
        // Poison a buffer of this size and return it to the pool.
        let mut poison = pool::take_cap(len);
        poison.resize(len, f32::from_bits(0xdead_beef));
        pool::put(poison);

        // A zeroed take of any size that lands in the same size class
        // must be scrubbed.
        let redo = (1 + rng.below(5000)) as usize;
        let z = pool::take_zeroed(redo);
        assert_eq!(z.len(), redo);
        assert!(
            z.iter().all(|&v| v.to_bits() == 0),
            "round {round}: take_zeroed({redo}) leaked stale bytes after put({len})"
        );
        pool::put(z);

        // A capacity take must come back logically empty.
        let c = pool::take_cap(redo);
        assert!(
            c.is_empty(),
            "round {round}: take_cap({redo}) returned {} stale element(s)",
            c.len()
        );
        pool::put(c);
    }
}

#[test]
fn tensor_ops_on_a_dirty_pool_match_fresh_values() {
    let mut rng = XorShift(42);
    for _ in 0..50 {
        let n = (1 + rng.below(300)) as usize;
        // Dirty the pool with a dropped garbage tensor of the same size.
        let garbage: Vec<f32> = (0..n).map(|i| (i as f32) - 7.5).collect();
        drop(Tensor::from_vec(garbage, [n]));

        // zeros() drawn from the now-dirty pool must still be zeros…
        let z = Tensor::zeros([n]);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));

        // …and a real computation must see only its own inputs.
        let vals: Vec<f32> = (0..n).map(|i| i as f32 * 0.5).collect();
        let t = Tensor::from_vec(vals.clone(), [n]);
        for (i, &v) in t.as_slice().iter().enumerate() {
            assert_eq!(v, vals[i]);
        }
    }
}
