//! Tensor shapes of rank 0, 1 or 2.

use std::fmt;

/// The shape of a [`Tensor`](crate::Tensor): rank 0 (scalar), 1 (vector) or
/// 2 (matrix).
///
/// Rank ≤ 2 covers everything the CCSA models need (per-node vectors,
/// weight matrices, stacked node features) while keeping indexing and
/// broadcasting rules trivial and fast.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: [usize; 2],
    rank: u8,
}

impl Shape {
    /// A scalar shape (rank 0, one element).
    pub const SCALAR: Shape = Shape {
        dims: [1, 1],
        rank: 0,
    };

    /// Creates a vector shape of length `n`.
    #[inline]
    pub fn vector(n: usize) -> Shape {
        Shape {
            dims: [n, 1],
            rank: 1,
        }
    }

    /// Creates a matrix shape with `rows` rows and `cols` columns.
    #[inline]
    pub fn matrix(rows: usize, cols: usize) -> Shape {
        Shape {
            dims: [rows, cols],
            rank: 2,
        }
    }

    /// The rank of the shape: 0, 1 or 2.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank as usize
    }

    /// The dimensions as a slice (`&[]` for scalars, `&[n]` for vectors,
    /// `&[r, c]` for matrices).
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims[..self.rank as usize]
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        match self.rank {
            0 => 1,
            1 => self.dims[0],
            _ => self.dims[0] * self.dims[1],
        }
    }

    /// `true` when the shape holds zero elements (possible only for empty
    /// vectors/matrices).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of rows: 1 for scalars and vectors-as-rows are not a concept
    /// here; vectors report their length as rows so `rows × cols`
    /// always equals [`Shape::len`].
    #[inline]
    pub fn rows(&self) -> usize {
        self.dims[0]
    }

    /// Number of columns (1 for scalars and vectors).
    #[inline]
    pub fn cols(&self) -> usize {
        match self.rank {
            2 => self.dims[1],
            _ => 1,
        }
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.rank {
            0 => write!(f, "[]"),
            1 => write!(f, "[{}]", self.dims[0]),
            _ => write!(f, "[{}, {}]", self.dims[0], self.dims[1]),
        }
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<[usize; 0]> for Shape {
    fn from(_: [usize; 0]) -> Shape {
        Shape::SCALAR
    }
}

impl From<[usize; 1]> for Shape {
    fn from(d: [usize; 1]) -> Shape {
        Shape::vector(d[0])
    }
}

impl From<[usize; 2]> for Shape {
    fn from(d: [usize; 2]) -> Shape {
        Shape::matrix(d[0], d[1])
    }
}

impl From<usize> for Shape {
    fn from(n: usize) -> Shape {
        Shape::vector(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_shape() {
        let s = Shape::SCALAR;
        assert_eq!(s.rank(), 0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.dims(), &[] as &[usize]);
        assert_eq!(format!("{s}"), "[]");
    }

    #[test]
    fn vector_shape() {
        let s = Shape::vector(7);
        assert_eq!(s.rank(), 1);
        assert_eq!(s.len(), 7);
        assert_eq!(s.dims(), &[7]);
        assert_eq!(s.rows(), 7);
        assert_eq!(s.cols(), 1);
    }

    #[test]
    fn matrix_shape() {
        let s = Shape::matrix(3, 4);
        assert_eq!(s.rank(), 2);
        assert_eq!(s.len(), 12);
        assert_eq!(s.dims(), &[3, 4]);
        assert_eq!(s.rows(), 3);
        assert_eq!(s.cols(), 4);
        assert_eq!(format!("{s}"), "[3, 4]");
    }

    #[test]
    fn from_array_conversions() {
        assert_eq!(Shape::from([]), Shape::SCALAR);
        assert_eq!(Shape::from([5]), Shape::vector(5));
        assert_eq!(Shape::from([2, 3]), Shape::matrix(2, 3));
        assert_eq!(Shape::from(4usize), Shape::vector(4));
    }

    #[test]
    fn empty_shapes() {
        assert!(Shape::vector(0).is_empty());
        assert!(Shape::matrix(0, 5).is_empty());
        assert!(!Shape::SCALAR.is_empty());
    }
}
