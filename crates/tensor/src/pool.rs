//! The tensor buffer pool: size-class free lists of `Vec<f32>`.
//!
//! Steady-state serving throughput is bounded by allocator churn: every
//! tape op output, backward scratch buffer, and gradient accumulator
//! used to be a fresh `Vec<f32>` handed to the global allocator and
//! freed a few microseconds later. The pool short-circuits that cycle:
//!
//! ```text
//!            take_zeroed / take_cap            drop (PoolBuf) / put
//!   op ───────────────┐                               │
//!                     ▼                               ▼
//!   ┌──────────────────────────────┐   spill   ┌──────────────────┐
//!   │ tier "local": thread-local   │ ────────► │ tier "shared":   │
//!   │ free lists, one per size     │ ◄──────── │ mutex-guarded    │
//!   │ class (no locking)           │  refill   │ spill lists      │
//!   └──────────────────────────────┘           └──────────────────┘
//!                     │ (both empty)
//!                     ▼
//!              global allocator (a pool *miss*)
//! ```
//!
//! * **Size classes** are powers of two from 8 to 4 Mi floats. A
//!   request takes from the smallest class that fits; a returned buffer
//!   files under the largest class its capacity covers, so a recycled
//!   buffer always satisfies the length it is handed out for.
//! * **Tier "local"** is a `thread_local!` free list — the fast path is
//!   lock-free and allocation-free. Encode-pool workers therefore reach
//!   a private warm pool in steady state.
//! * **Tier "shared"** is a small mutex-guarded spill: buffers
//!   overflowing a full local class land there, and a thread whose
//!   local class is empty refills from it. This is what lets buffers
//!   freed on one thread (e.g. a caller dropping a response tensor) be
//!   reused by another (an encode worker).
//!
//! Recycled buffers are always handed out either zeroed
//! ([`take_zeroed`]) or empty ([`take_cap`]), so stale values from a
//! previous tensor can never leak into a new one (property-tested in
//! `crates/tensor/tests`).
//!
//! Counters ([`stats`]) feed the `ccsa_pool_*` metric families in
//! `ccsa-serve`. [`set_bypass`] turns the pool into a pass-through to
//! the global allocator — benches use it to measure the pre-pool
//! baseline in-process.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// log2 of the smallest pooled capacity (8 floats). Anything smaller is
/// cheaper to allocate than to track.
const MIN_SHIFT: u32 = 3;
/// Number of size classes: 8, 16, … 4 Mi floats (16 MiB). Larger
/// buffers bypass the pool entirely.
const NUM_CLASSES: usize = 20;
/// Max buffers one thread parks per class before spilling to the
/// shared tier.
const LOCAL_CAP_PER_CLASS: usize = 16;
/// Max buffers the shared tier holds per class before dropping to the
/// allocator.
const SHARED_CAP_PER_CLASS: usize = 64;

/// Floats in class `c`.
#[inline]
fn class_size(c: usize) -> usize {
    1usize << (MIN_SHIFT + c as u32)
}

/// Smallest class whose size covers `len` (None: oversize).
#[inline]
fn class_for_len(len: usize) -> Option<usize> {
    let mut class = 0usize;
    while class < NUM_CLASSES && class_size(class) < len {
        class += 1;
    }
    (class < NUM_CLASSES).then_some(class)
}

/// Largest class whose size is covered by `cap` (None: below minimum).
#[inline]
fn class_for_cap(cap: usize) -> Option<usize> {
    if cap < class_size(0) {
        return None;
    }
    let mut class = NUM_CLASSES - 1;
    while class_size(class) > cap {
        class -= 1;
    }
    Some(class)
}

// Counters are Relaxed throughout this module: each is an independent
// monotonic statistic (or gauge) read only by stats()/scrape paths that
// tolerate torn cross-counter views — no ordering with the buffers
// themselves is needed (ownership transfer is by value / under the
// shared-tier mutex).
static LOCAL_HITS: AtomicU64 = AtomicU64::new(0);
static SHARED_HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static RETURNS: AtomicU64 = AtomicU64::new(0);
static DROPS: AtomicU64 = AtomicU64::new(0);
static LOCAL_BUFFERS: AtomicU64 = AtomicU64::new(0);
static SHARED_BUFFERS: AtomicU64 = AtomicU64::new(0);
static LOCAL_BYTES: AtomicU64 = AtomicU64::new(0);
static SHARED_BYTES: AtomicU64 = AtomicU64::new(0);
static BYPASS: AtomicBool = AtomicBool::new(false);

/// One thread's free lists. On thread exit the parked buffers are
/// handed back to the allocator; `Drop` keeps the gauges honest.
struct Local {
    classes: [Vec<Vec<f32>>; NUM_CLASSES],
}

impl Local {
    fn new() -> Local {
        Local {
            classes: std::array::from_fn(|_| Vec::new()),
        }
    }
}

impl Drop for Local {
    fn drop(&mut self) {
        let mut buffers = 0u64;
        let mut bytes = 0u64;
        for class in &self.classes {
            buffers += class.len() as u64;
            bytes += class.iter().map(|v| 4 * v.capacity() as u64).sum::<u64>();
        }
        // Relaxed: gauge bookkeeping, see module-level comment.
        LOCAL_BUFFERS.fetch_sub(buffers, Ordering::Relaxed);
        LOCAL_BYTES.fetch_sub(bytes, Ordering::Relaxed);
    }
}

thread_local! {
    static LOCAL: RefCell<Local> = RefCell::new(Local::new());
}

/// The shared spill tier. A plain leaf mutex: nothing is ever acquired
/// while it is held.
static SHARED: Mutex<Option<Vec<Vec<Vec<f32>>>>> = Mutex::new(None);

fn with_shared<R>(f: impl FnOnce(&mut Vec<Vec<Vec<f32>>>) -> R) -> R {
    let mut guard = SHARED.lock().expect("buffer pool spill tier poisoned");
    let tier = guard.get_or_insert_with(|| (0..NUM_CLASSES).map(|_| Vec::new()).collect());
    f(tier)
}

/// Pops a recycled buffer with capacity ≥ `min_cap`, or None on a pool
/// miss (empty classes, oversize request, or bypass).
fn take_recycled(min_cap: usize) -> Option<Vec<f32>> {
    // Relaxed: an independent on/off flag; a stale read only routes one
    // request to the other allocation path.
    if BYPASS.load(Ordering::Relaxed) || min_cap == 0 {
        return None;
    }
    let class = class_for_len(min_cap)?;
    let local = LOCAL
        .try_with(|l| {
            let mut l = l.borrow_mut();
            // Take the smallest non-empty class that fits; settling for a
            // larger class beats a fresh allocation.
            for c in class..NUM_CLASSES {
                if let Some(v) = l.classes[c].pop() {
                    return Some(v);
                }
            }
            None
        })
        .ok()
        .flatten();
    if let Some(v) = local {
        // Relaxed: statistics, see module-level comment.
        LOCAL_HITS.fetch_add(1, Ordering::Relaxed);
        LOCAL_BUFFERS.fetch_sub(1, Ordering::Relaxed);
        LOCAL_BYTES.fetch_sub(4 * v.capacity() as u64, Ordering::Relaxed);
        return Some(v);
    }
    let shared = with_shared(|tier| tier[class..].iter_mut().find_map(Vec::pop));
    if let Some(ref v) = shared {
        // Relaxed: statistics, see module-level comment.
        SHARED_HITS.fetch_add(1, Ordering::Relaxed);
        SHARED_BUFFERS.fetch_sub(1, Ordering::Relaxed);
        SHARED_BYTES.fetch_sub(4 * v.capacity() as u64, Ordering::Relaxed);
    }
    shared
}

/// A zeroed buffer of exactly `len` floats, recycled when possible.
pub fn take_zeroed(len: usize) -> Vec<f32> {
    match take_recycled(len) {
        Some(mut v) => {
            v.clear();
            v.resize(len, 0.0);
            v
        }
        None => {
            // Relaxed: statistics, see module-level comment.
            MISSES.fetch_add(1, Ordering::Relaxed);
            vec![0.0; len]
        }
    }
}

/// An empty buffer with capacity ≥ `min_cap`, recycled when possible.
/// The caller fills it (`extend_from_slice`, `push`, …) — it never
/// exposes recycled contents.
pub fn take_cap(min_cap: usize) -> Vec<f32> {
    match take_recycled(min_cap) {
        Some(mut v) => {
            v.clear();
            v
        }
        None => {
            // Relaxed: statistics, see module-level comment.
            MISSES.fetch_add(1, Ordering::Relaxed);
            Vec::with_capacity(min_cap)
        }
    }
}

/// A buffer of `len` floats all equal to `value`, recycled when
/// possible.
pub fn take_filled(len: usize, value: f32) -> Vec<f32> {
    let mut v = take_cap(len);
    v.resize(len, value);
    v
}

/// A recycled (or fresh) copy of `src`.
pub fn take_copy(src: &[f32]) -> Vec<f32> {
    let mut v = take_cap(src.len());
    v.extend_from_slice(src);
    v
}

/// Returns a buffer to the pool: local tier first, spilling to the
/// shared tier when the local class is full, dropping to the allocator
/// when both are. Tiny and oversize buffers go straight to the
/// allocator.
pub fn put(mut v: Vec<f32>) {
    // Relaxed: an independent on/off flag (see take_recycled).
    if BYPASS.load(Ordering::Relaxed) {
        return;
    }
    let Some(class) = class_for_cap(v.capacity()) else {
        return; // below the minimum class: not worth tracking
    };
    if v.capacity() > class_size(NUM_CLASSES - 1) {
        return; // oversize: give the pages back
    }
    v.clear();
    let bytes = 4 * v.capacity() as u64;
    let spill = LOCAL.try_with(|l| {
        let mut l = l.borrow_mut();
        if l.classes[class].len() < LOCAL_CAP_PER_CLASS {
            l.classes[class].push(std::mem::take(&mut v));
            false
        } else {
            true
        }
    });
    match spill {
        Ok(false) => {
            // Relaxed: statistics, see module-level comment.
            RETURNS.fetch_add(1, Ordering::Relaxed);
            LOCAL_BUFFERS.fetch_add(1, Ordering::Relaxed);
            LOCAL_BYTES.fetch_add(bytes, Ordering::Relaxed);
        }
        // Local class full, or the thread is tearing down its TLS:
        // spill to the shared tier.
        Ok(true) | Err(_) => {
            let parked = with_shared(|tier| {
                if tier[class].len() < SHARED_CAP_PER_CLASS {
                    tier[class].push(std::mem::take(&mut v));
                    true
                } else {
                    false
                }
            });
            if parked {
                // Relaxed: statistics, see module-level comment.
                RETURNS.fetch_add(1, Ordering::Relaxed);
                SHARED_BUFFERS.fetch_add(1, Ordering::Relaxed);
                SHARED_BYTES.fetch_add(bytes, Ordering::Relaxed);
            } else {
                // Relaxed: statistics, see module-level comment.
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// A point-in-time snapshot of the pool counters — the source for the
/// `ccsa_pool_*` metric families in `ccsa-serve`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Takes served from the calling thread's free lists.
    pub local_hits: u64,
    /// Takes served from the shared spill tier.
    pub shared_hits: u64,
    /// Takes that fell through to the global allocator.
    pub misses: u64,
    /// Buffers successfully parked for reuse.
    pub returns: u64,
    /// Buffers dropped because both tiers were full.
    pub drops: u64,
    /// Buffers currently parked in thread-local lists (all threads).
    pub local_buffers: u64,
    /// Buffers currently parked in the shared spill tier.
    pub shared_buffers: u64,
    /// Capacity bytes parked in thread-local lists.
    pub local_bytes: u64,
    /// Capacity bytes parked in the shared spill tier.
    pub shared_bytes: u64,
}

impl PoolStats {
    /// All takes (hits + misses).
    pub fn takes(&self) -> u64 {
        self.local_hits + self.shared_hits + self.misses
    }

    /// Fraction of takes served without touching the allocator
    /// (0 when untouched).
    pub fn hit_rate(&self) -> f64 {
        let takes = self.takes();
        if takes == 0 {
            0.0
        } else {
            (self.local_hits + self.shared_hits) as f64 / takes as f64
        }
    }
}

/// Reads the pool counters.
pub fn stats() -> PoolStats {
    // Relaxed: statistics snapshot, see module-level comment.
    PoolStats {
        local_hits: LOCAL_HITS.load(Ordering::Relaxed),
        shared_hits: SHARED_HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        returns: RETURNS.load(Ordering::Relaxed),
        drops: DROPS.load(Ordering::Relaxed),
        local_buffers: LOCAL_BUFFERS.load(Ordering::Relaxed),
        shared_buffers: SHARED_BUFFERS.load(Ordering::Relaxed),
        local_bytes: LOCAL_BYTES.load(Ordering::Relaxed),
        shared_bytes: SHARED_BYTES.load(Ordering::Relaxed),
    }
}

/// Turns the pool into a pass-through to the global allocator (`true`)
/// or back on (`false`). Benches use this to measure the pre-pool
/// baseline in the same process; buffers already parked stay parked and
/// keep being valid to return.
pub fn set_bypass(bypass: bool) {
    // Relaxed: an independent on/off flag (see take_recycled).
    BYPASS.store(bypass, Ordering::Relaxed);
}

/// Whether the pool is currently bypassed.
pub fn bypassed() -> bool {
    // Relaxed: an independent on/off flag (see take_recycled).
    BYPASS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_classes_cover_and_round() {
        assert_eq!(class_for_len(1), Some(0));
        assert_eq!(class_for_len(8), Some(0));
        assert_eq!(class_for_len(9), Some(1));
        assert_eq!(
            class_for_len(class_size(NUM_CLASSES - 1)),
            Some(NUM_CLASSES - 1)
        );
        assert_eq!(class_for_len(class_size(NUM_CLASSES - 1) + 1), None);
        assert_eq!(class_for_cap(7), None);
        assert_eq!(class_for_cap(8), Some(0));
        assert_eq!(class_for_cap(100), Some(3)); // 64 ≤ 100 < 128
        for len in [1usize, 5, 8, 33, 100, 4096, 70_000] {
            let c = class_for_len(len).unwrap();
            assert!(class_size(c) >= len);
            if c > 0 {
                assert!(class_size(c - 1) < len);
            }
        }
    }

    #[test]
    fn recycle_roundtrip_is_zeroed() {
        let mut v = take_zeroed(100);
        v.iter_mut().for_each(|x| *x = f32::NAN);
        let cap = v.capacity();
        put(v);
        // The recycled buffer must come back zeroed, never with the NaNs.
        let v2 = take_zeroed(90);
        assert!(v2.capacity() >= 90);
        assert_eq!(v2.len(), 90);
        assert!(v2.iter().all(|&x| x == 0.0), "stale data leaked");
        let _ = cap;
        put(v2);
    }

    #[test]
    fn take_cap_is_empty() {
        let mut v = take_cap(64);
        v.extend_from_slice(&[1.0; 64]);
        put(v);
        let v2 = take_cap(32);
        assert!(v2.is_empty());
        assert!(v2.capacity() >= 32);
        put(v2);
    }

    #[test]
    fn stats_advance_on_hit_and_miss() {
        let before = stats();
        let v = take_zeroed(1024);
        put(v);
        let _v2 = take_zeroed(1000); // same class: must be a hit
        let after = stats();
        assert!(after.takes() > before.takes());
        assert!(
            after.local_hits + after.shared_hits > before.local_hits + before.shared_hits,
            "recycle was not a hit: {after:?} vs {before:?}"
        );
    }

    #[test]
    fn bypass_goes_straight_through() {
        set_bypass(true);
        let before = stats();
        let v = take_zeroed(512);
        put(v);
        let after = stats();
        set_bypass(false);
        assert_eq!(after.local_hits, before.local_hits);
        assert_eq!(after.shared_hits, before.shared_hits);
        assert_eq!(after.returns, before.returns);
    }

    #[test]
    fn tiny_and_oversize_buffers_are_not_pooled() {
        let before = stats();
        put(Vec::with_capacity(2)); // below the minimum class
        let huge_len = class_size(NUM_CLASSES - 1) + 1;
        assert!(class_for_len(huge_len).is_none());
        let v = take_zeroed(huge_len);
        assert_eq!(v.len(), huge_len);
        let after = stats();
        assert_eq!(after.returns, before.returns);
    }
}
