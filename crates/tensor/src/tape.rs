//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Tape`] records a dynamic computation graph: every operation appends a
//! node holding the operation kind, its input node ids and the computed
//! value. Because nodes are appended in execution order the tape is already
//! topologically sorted, so [`Tape::backward`] is a single reverse sweep.
//!
//! Dynamic graphs are required by tree-structured models: every AST induces
//! a different circuit, so the graph is rebuilt per example (define-by-run,
//! as in PyTorch which the original paper used).

use std::cell::RefCell;
use std::fmt;
use std::sync::Arc;

use crate::{Shape, Tensor};

/// A row-normalised sparse adjacency operator for graph convolutions.
///
/// Holds `Â = D^{-1/2} (A + I) D^{-1/2}` for an undirected graph in a
/// row-list sparse format, together with its transpose (needed by the
/// backward pass of [`Var::spmm`]).
#[derive(Clone, Debug)]
pub struct Adjacency {
    n: usize,
    rows: Vec<Vec<(u32, f32)>>,
    rows_t: Vec<Vec<(u32, f32)>>,
}

impl Adjacency {
    /// Builds the symmetric-normalised adjacency `Â` from undirected edges
    /// over `n` nodes, adding self-loops (the standard GCN preprocessing of
    /// Kipf & Welling).
    ///
    /// Duplicate and self edges in the input are ignored.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= n`.
    pub fn normalized_from_edges(n: usize, edges: &[(u32, u32)]) -> Adjacency {
        let mut neigh: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(a, b) in edges {
            let (a, b) = (a as usize, b as usize);
            assert!(a < n && b < n, "edge ({a},{b}) out of bounds for {n} nodes");
            if a == b {
                continue;
            }
            if !neigh[a].contains(&(b as u32)) {
                neigh[a].push(b as u32);
                neigh[b].push(a as u32);
            }
        }
        // Self-loops: degree = |neighbours| + 1.
        let deg: Vec<f32> = neigh.iter().map(|ns| (ns.len() + 1) as f32).collect();
        // pool-exempt: adjacency structure of (u32, f32) pairs, built once
        // per graph at parse time — not an f32 tensor buffer.
        let mut rows: Vec<Vec<(u32, f32)>> = Vec::with_capacity(n);
        for i in 0..n {
            // pool-exempt: same adjacency structure, per-row.
            let mut row = Vec::with_capacity(neigh[i].len() + 1);
            row.push((i as u32, 1.0 / deg[i]));
            for &j in &neigh[i] {
                row.push((j, 1.0 / (deg[i] * deg[j as usize]).sqrt()));
            }
            row.sort_unstable_by_key(|&(j, _)| j);
            rows.push(row);
        }
        // Â is symmetric by construction, so the transpose equals Â.
        let rows_t = rows.clone();
        Adjacency { n, rows, rows_t }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    fn apply(rows: &[Vec<(u32, f32)>], h: &Tensor) -> Tensor {
        let n = rows.len();
        let d = h.shape().cols();
        assert_eq!(
            h.shape().rows(),
            n,
            "spmm: H has {} rows, adjacency has {n}",
            h.shape().rows()
        );
        let src = h.as_slice();
        let mut out = crate::pool::take_zeroed(n * d);
        for (i, row) in rows.iter().enumerate() {
            let dst = &mut out[i * d..(i + 1) * d];
            for &(j, w) in row {
                let s = &src[j as usize * d..(j as usize + 1) * d];
                for (o, &v) in dst.iter_mut().zip(s.iter()) {
                    *o += w * v;
                }
            }
        }
        Tensor::from_vec(out, [n, d])
    }

    /// Dense product `Â · H` where `H` is `[n, d]`.
    ///
    /// # Panics
    ///
    /// Panics if `H` does not have `n` rows.
    pub fn matmul(&self, h: &Tensor) -> Tensor {
        Adjacency::apply(&self.rows, h)
    }

    /// Dense product `Âᵀ · H`.
    ///
    /// # Panics
    ///
    /// Panics if `H` does not have `n` rows.
    pub fn matmul_t(&self, h: &Tensor) -> Tensor {
        Adjacency::apply(&self.rows_t, h)
    }
}

/// The operation recorded at a tape node. Input operands are node ids.
enum Op {
    Leaf,
    Add(usize, usize),
    Sub(usize, usize),
    Mul(usize, usize),
    Scale(usize, f32),
    MatMul(usize, usize),
    /// `A · Bᵀ` without materialising the transpose (batched linear).
    MatMulNt(usize, usize),
    /// Fused `W·x (+ b)` — the hot path of every LSTM gate.
    Linear {
        w: usize,
        x: usize,
        b: Option<usize>,
    },
    Sigmoid(usize),
    Tanh(usize),
    Relu(usize),
    Sum(usize),
    Mean(usize),
    Dot(usize, usize),
    Concat(Vec<usize>),
    AddN(Vec<usize>),
    Stack(Vec<usize>),
    /// Row-concatenation of matrices: `[n_i, d]` parts → `[Σn_i, d]`.
    StackRows(Vec<usize>),
    /// Column-concatenation of two matrices: `[n, da] ++ [n, db]` → `[n, da+db]`.
    ConcatCols(usize, usize),
    /// Contiguous column slice `[n, d] → [n, len]` (or element slice of a
    /// vector) — how the fused 4-gate pre-activation splits per gate.
    SliceCols {
        src: usize,
        start: usize,
    },
    /// Row gather from the *virtual* row-concatenation of several source
    /// matrices — the incremental replacement for re-stacking the
    /// cross-level state matrix every level.
    GatherRowsMulti {
        sources: Vec<usize>,
        indices: Arc<Vec<usize>>,
    },
    /// Per-segment row sums with an optional per-segment initial row —
    /// the child-sum / forget-sum aggregation of the level-fused
    /// tree-LSTM.
    SegmentSum {
        m: usize,
        offsets: Arc<Vec<usize>>,
        init: Option<usize>,
    },
    Row(usize, usize),
    Gather {
        table: usize,
        indices: Arc<Vec<usize>>,
    },
    SpMm {
        adj: Arc<Adjacency>,
        h: usize,
    },
    MeanRows(usize),
    AddRowBroadcast {
        m: usize,
        v: usize,
    },
    BceWithLogits {
        logit: usize,
        target: f32,
    },
}

struct Node {
    op: Op,
    value: Tensor,
}

/// A recording tape for reverse-mode automatic differentiation.
///
/// Create variables with [`Tape::leaf`], combine them with the methods on
/// [`Var`], then call [`Tape::backward`] on a scalar result.
///
/// A tape is intended to be built and consumed for a single example (or
/// mini-batch member); build a fresh tape per forward pass.
#[derive(Default)]
pub struct Tape {
    nodes: RefCell<Vec<Node>>,
}

impl fmt::Debug for Tape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tape({} nodes)", self.nodes.borrow().len())
    }
}

/// A handle to a value recorded on a [`Tape`].
///
/// `Var` is `Copy`; all arithmetic methods append a new node to the
/// originating tape and return a handle to it.
#[derive(Clone, Copy)]
pub struct Var<'t> {
    tape: &'t Tape,
    id: usize,
}

impl fmt::Debug for Var<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Var(#{}, {:?})", self.id, self.value())
    }
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Tape {
        Tape::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// `true` when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clears every recorded node while keeping the node list's
    /// capacity, so a long-lived scratch tape can run one forward/
    /// backward pass per batch without reallocating its spine. Dropping
    /// the node tensors returns their buffers to the
    /// [buffer pool](crate::pool) — `reset` is the arena-recycle point
    /// of the steady-state encode path.
    ///
    /// Any [`Var`] handed out before the reset is invalidated; using
    /// one afterwards panics (id out of range) or silently refers to a
    /// new node, exactly as with a fresh tape the borrow checker can't
    /// see. Callers own that discipline (the encode scratch types do).
    pub fn reset(&self) {
        self.nodes.borrow_mut().clear();
    }

    fn push(&self, op: Op, value: Tensor) -> Var<'_> {
        let mut nodes = self.nodes.borrow_mut();
        nodes.push(Node { op, value });
        Var {
            tape: self,
            id: nodes.len() - 1,
        }
    }

    fn value_of(&self, id: usize) -> Tensor {
        self.nodes.borrow()[id].value.clone()
    }

    /// Records an input or parameter leaf.
    pub fn leaf(&self, value: Tensor) -> Var<'_> {
        self.push(Op::Leaf, value)
    }

    /// A leaf of zeros of the given shape (used e.g. for the initial hidden
    /// state at AST leaves).
    pub fn zeros(&self, shape: impl Into<Shape>) -> Var<'_> {
        self.leaf(Tensor::zeros(shape))
    }

    /// Concatenates vectors into one vector.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or any part is not rank ≤ 1.
    pub fn concat(&self, parts: &[Var<'_>]) -> Var<'_> {
        assert!(!parts.is_empty(), "concat of zero parts");
        let total: usize = parts.iter().map(|p| self.value_of(p.id).len()).sum();
        let mut data = crate::pool::take_cap(total);
        for p in parts {
            let v = self.value_of(p.id);
            assert!(
                v.shape().rank() <= 1,
                "concat expects vectors, got {}",
                v.shape()
            );
            data.extend_from_slice(v.as_slice());
        }
        let n = data.len();
        self.push(
            Op::Concat(parts.iter().map(|p| p.id).collect()),
            Tensor::from_vec(data, [n]),
        )
    }

    /// Sums any number of same-shape variables.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or shapes differ.
    pub fn add_n(&self, parts: &[Var<'_>]) -> Var<'_> {
        assert!(!parts.is_empty(), "add_n of zero parts");
        let first = self.value_of(parts[0].id);
        let mut acc = crate::pool::take_copy(first.as_slice());
        for p in &parts[1..] {
            let v = self.value_of(p.id);
            assert_eq!(v.shape(), first.shape(), "add_n shape mismatch");
            for (a, &b) in acc.iter_mut().zip(v.as_slice()) {
                *a += b;
            }
        }
        let value = Tensor::from_vec(acc, first.shape());
        self.push(Op::AddN(parts.iter().map(|p| p.id).collect()), value)
    }

    /// Stacks `k` vectors of length `d` into a `[k, d]` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or the vectors disagree in length.
    pub fn stack(&self, parts: &[Var<'_>]) -> Var<'_> {
        assert!(!parts.is_empty(), "stack of zero parts");
        let d = self.value_of(parts[0].id).len();
        let mut data = crate::pool::take_cap(parts.len() * d);
        for p in parts {
            let v = self.value_of(p.id);
            assert_eq!(v.len(), d, "stack length mismatch");
            data.extend_from_slice(v.as_slice());
        }
        let k = parts.len();
        self.push(
            Op::Stack(parts.iter().map(|p| p.id).collect()),
            Tensor::from_vec(data, [k, d]),
        )
    }

    /// Stacks matrices (or single row vectors) along the row axis:
    /// `[n_i, d]` matrix parts and `[d]` vector parts (one row each)
    /// become one `[Σn_i, d]` matrix. This is how the level-fused tree
    /// encoders grow the cross-tree hidden-state matrix one level at a
    /// time.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty, a part has rank > 2, or row widths
    /// disagree.
    pub fn stack_rows(&self, parts: &[Var<'_>]) -> Var<'_> {
        assert!(!parts.is_empty(), "stack_rows of zero parts");
        let d = stacked_rows_shape(&self.value_of(parts[0].id)).1;
        let total: usize = parts
            .iter()
            .map(|p| stacked_rows_shape(&self.value_of(p.id)).0)
            .sum();
        let mut rows = 0;
        let mut data = crate::pool::take_cap(total * d);
        for p in parts {
            let v = self.value_of(p.id);
            let (r, c) = stacked_rows_shape(&v);
            assert_eq!(c, d, "stack_rows width mismatch: {} vs {d} cols", v.shape());
            rows += r;
            data.extend_from_slice(v.as_slice());
        }
        self.push(
            Op::StackRows(parts.iter().map(|p| p.id).collect()),
            Tensor::from_vec(data, [rows, d]),
        )
    }

    /// Gathers rows from the *virtual* row-concatenation of `sources`
    /// (each `[n_s, d]`, equal widths) without materialising the stacked
    /// matrix: index `ix` addresses row `ix - Σ n_{<s}` of the owning
    /// source `s`. Output is `[k, d]` for `k` indices; the backward pass
    /// scatter-adds each output row's gradient into its source row (a
    /// source no index touches receives no gradient, matching
    /// [`Var::index_rows`] on an untouched matrix).
    ///
    /// This is how the level-fused tree encoders read child/parent state:
    /// each completed level stays its own tensor and gathers pull from
    /// the level list directly, instead of re-stacking an O(N·h) prefix
    /// matrix every level.
    ///
    /// # Panics
    ///
    /// Panics if `sources` is empty, a source is not rank 2, widths
    /// disagree, or an index is out of range.
    pub fn gather_rows_multi<'t>(
        &'t self,
        sources: &[Var<'t>],
        indices: impl Into<Arc<Vec<usize>>>,
    ) -> Var<'t> {
        assert!(!sources.is_empty(), "gather_rows_multi of zero sources");
        let indices = indices.into();
        let vals: Vec<Tensor> = sources.iter().map(|s| self.value_of(s.id)).collect();
        let d = {
            let first = vals[0].shape();
            assert_eq!(
                first.rank(),
                2,
                "gather_rows_multi sources must be rank 2, got {first}"
            );
            first.cols()
        };
        // pool-exempt: usize offset table, bounded by op fan-in not node count.
        let mut offsets = Vec::with_capacity(vals.len() + 1);
        let mut total = 0usize;
        for v in &vals {
            let shape = v.shape();
            assert_eq!(
                shape.rank(),
                2,
                "gather_rows_multi sources must be rank 2, got {shape}"
            );
            assert_eq!(
                shape.cols(),
                d,
                "gather_rows_multi width mismatch: {shape} vs {d} cols"
            );
            offsets.push(total);
            total += shape.rows();
        }
        offsets.push(total);
        let mut data = crate::pool::take_cap(indices.len() * d);
        for &ix in indices.iter() {
            assert!(
                ix < total,
                "gather_rows_multi index {ix} out of range for {total} virtual rows"
            );
            let s = offsets.partition_point(|&o| o <= ix) - 1;
            let local = ix - offsets[s];
            data.extend_from_slice(&vals[s].as_slice()[local * d..(local + 1) * d]);
        }
        let k = indices.len();
        self.push(
            Op::GatherRowsMulti {
                sources: sources.iter().map(|s| s.id).collect(),
                indices,
            },
            Tensor::from_vec(data, [k, d]),
        )
    }

    /// Sums contiguous row segments of a `[rows, d]` matrix `m`:
    /// `offsets` holds `S + 1` ascending cut points and the result is
    /// `[S, d]` with `out[s] = Σ m[offsets[s]..offsets[s+1]]` (an empty
    /// segment yields a zero row). The backward pass broadcasts each
    /// output row's gradient over its segment.
    ///
    /// # Panics
    ///
    /// Panics if `m` is not rank 2, `offsets` is empty/non-ascending, or
    /// the final offset is not `m`'s row count.
    pub fn segment_sum<'t>(&'t self, m: Var<'t>, offsets: impl Into<Arc<Vec<usize>>>) -> Var<'t> {
        self.segment_sum_impl(m, offsets.into(), None)
    }

    /// Like [`Tape::segment_sum`] but every segment starts from the
    /// matching row of `init` (`[S, d]`) instead of zero, and rows are
    /// added in order: `out[s] = (…(init[s] + r_0) + r_1)…`. The left
    /// association exactly matches per-node sequential accumulation, so
    /// the fused tree-LSTM cell reproduces the sequential path's f32
    /// results.
    ///
    /// # Panics
    ///
    /// Panics on the same conditions as [`Tape::segment_sum`], or if
    /// `init` does not have shape `[S, d]`.
    pub fn segment_sum_init<'t>(
        &'t self,
        init: Var<'t>,
        m: Var<'t>,
        offsets: impl Into<Arc<Vec<usize>>>,
    ) -> Var<'t> {
        self.segment_sum_impl(m, offsets.into(), Some(init))
    }

    fn segment_sum_impl<'t>(
        &'t self,
        m: Var<'t>,
        offsets: Arc<Vec<usize>>,
        init: Option<Var<'t>>,
    ) -> Var<'t> {
        let mv = self.value_of(m.id);
        assert_eq!(
            mv.shape().rank(),
            2,
            "segment_sum input must be rank 2, got {}",
            mv.shape()
        );
        let (rows, d) = (mv.shape().rows(), mv.shape().cols());
        assert!(!offsets.is_empty(), "segment_sum needs at least one offset");
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "segment offsets must be ascending"
        );
        assert_eq!(
            *offsets.last().expect("non-empty"),
            rows,
            "final segment offset must equal the row count"
        );
        let segments = offsets.len() - 1;
        let mut out = match init {
            Some(iv) => {
                let t = self.value_of(iv.id);
                assert_eq!(
                    t.shape().dims(),
                    &[segments, d],
                    "segment_sum init must be [{segments}, {d}], got {}",
                    t.shape()
                );
                crate::pool::take_copy(t.as_slice())
            }
            None => crate::pool::take_zeroed(segments * d),
        };
        let src = mv.as_slice();
        // Row accumulation goes through the dispatched kernel layer
        // (AVX2 `vaddps` when available); per-element add order is
        // unchanged, so backends are bit-identical here.
        let accum = crate::kernels::active().seg_accum;
        for s in 0..segments {
            let dst = &mut out[s * d..(s + 1) * d];
            for r in offsets[s]..offsets[s + 1] {
                accum(dst, &src[r * d..(r + 1) * d]);
            }
        }
        self.push(
            Op::SegmentSum {
                m: m.id,
                offsets,
                init: init.map(|v| v.id),
            },
            Tensor::from_vec(out, [segments, d]),
        )
    }

    /// Gathers rows of an embedding `table` (`[v, d]`): output is `[k, d]`
    /// for `k` indices.
    ///
    /// The backward pass scatter-adds into the table gradient, which is how
    /// the paper's learnable node-kind embeddings receive updates.
    ///
    /// # Panics
    ///
    /// Panics if `table` is not rank 2 or an index is out of range.
    pub fn gather<'t>(&'t self, table: Var<'t>, indices: impl Into<Arc<Vec<usize>>>) -> Var<'t> {
        let indices = indices.into();
        let t = self.value_of(table.id);
        assert_eq!(
            t.shape().rank(),
            2,
            "gather table must be rank 2, got {}",
            t.shape()
        );
        let (v, d) = (t.shape().rows(), t.shape().cols());
        let mut data = crate::pool::take_cap(indices.len() * d);
        for &ix in indices.iter() {
            assert!(
                ix < v,
                "gather index {ix} out of range for table with {v} rows"
            );
            data.extend_from_slice(&t.as_slice()[ix * d..(ix + 1) * d]);
        }
        let k = indices.len();
        self.push(
            Op::Gather {
                table: table.id,
                indices,
            },
            Tensor::from_vec(data, [k, d]),
        )
    }

    /// Sparse-dense product `Â · H` for graph convolutions.
    ///
    /// # Panics
    ///
    /// Panics if `h` row count differs from the adjacency node count.
    pub fn spmm<'t>(&'t self, adj: Arc<Adjacency>, h: Var<'t>) -> Var<'t> {
        let hv = self.value_of(h.id);
        let value = adj.matmul(&hv);
        self.push(Op::SpMm { adj, h: h.id }, value)
    }

    /// Runs the reverse sweep from a scalar `root`, returning gradients for
    /// every recorded variable.
    ///
    /// # Panics
    ///
    /// Panics if `root` does not hold exactly one element or belongs to a
    /// different tape.
    pub fn backward(&self, root: Var<'_>) -> Gradients {
        assert!(
            std::ptr::eq(root.tape, self),
            "backward: var from another tape"
        );
        let nodes = self.nodes.borrow();
        assert_eq!(
            nodes[root.id].value.len(),
            1,
            "backward root must be scalar"
        );
        let mut grads: Vec<Option<Tensor>> = vec![None; nodes.len()];
        grads[root.id] = Some(Tensor::ones(nodes[root.id].value.shape()));

        for id in (0..=root.id).rev() {
            let Some(g) = grads[id].take() else { continue };
            let node = &nodes[id];
            match &node.op {
                Op::Leaf => {
                    grads[id] = Some(g);
                    continue;
                }
                Op::Add(a, b) => {
                    accumulate(&mut grads, *a, g.clone(), &nodes);
                    accumulate(&mut grads, *b, g.clone(), &nodes);
                }
                Op::Sub(a, b) => {
                    accumulate(&mut grads, *a, g.clone(), &nodes);
                    accumulate(&mut grads, *b, g.scale(-1.0), &nodes);
                }
                Op::Mul(a, b) => {
                    let av = &nodes[*a].value;
                    let bv = &nodes[*b].value;
                    accumulate(&mut grads, *a, g.mul(bv), &nodes);
                    accumulate(&mut grads, *b, g.mul(av), &nodes);
                }
                Op::Scale(a, s) => {
                    accumulate(&mut grads, *a, g.scale(*s), &nodes);
                }
                Op::MatMul(a, b) => {
                    let av = &nodes[*a].value;
                    let bv = &nodes[*b].value;
                    accumulate(&mut grads, *a, g.matmul(&bv.t()), &nodes);
                    accumulate(&mut grads, *b, av.t().matmul(&g), &nodes);
                }
                Op::MatMulNt(a, b) => {
                    // y = A·Bᵀ ⇒ dA += G·B, dB += Gᵀ·A.
                    let av = &nodes[*a].value;
                    let bv = &nodes[*b].value;
                    accumulate(&mut grads, *a, g.matmul(bv), &nodes);
                    accumulate(&mut grads, *b, g.t().matmul(av), &nodes);
                }
                Op::Linear { w, x, b } => {
                    let wv = &nodes[*w].value;
                    let xv = &nodes[*x].value;
                    accumulate(&mut grads, *w, g.outer(xv), &nodes);
                    accumulate(&mut grads, *x, wv.t().matvec(&g), &nodes);
                    if let Some(b) = b {
                        accumulate(&mut grads, *b, g.clone(), &nodes);
                    }
                }
                Op::Sigmoid(a) => {
                    let y = &node.value;
                    let dg = g.zip(y, |gi, yi| gi * yi * (1.0 - yi));
                    accumulate(&mut grads, *a, dg, &nodes);
                }
                Op::Tanh(a) => {
                    let y = &node.value;
                    let dg = g.zip(y, |gi, yi| gi * (1.0 - yi * yi));
                    accumulate(&mut grads, *a, dg, &nodes);
                }
                Op::Relu(a) => {
                    let xv = &nodes[*a].value;
                    let dg = g.zip(xv, |gi, xi| if xi > 0.0 { gi } else { 0.0 });
                    accumulate(&mut grads, *a, dg, &nodes);
                }
                Op::Sum(a) => {
                    let gi = g.item();
                    accumulate(
                        &mut grads,
                        *a,
                        Tensor::full(nodes[*a].value.shape(), gi),
                        &nodes,
                    );
                }
                Op::Mean(a) => {
                    let n = nodes[*a].value.len().max(1) as f32;
                    let gi = g.item() / n;
                    accumulate(
                        &mut grads,
                        *a,
                        Tensor::full(nodes[*a].value.shape(), gi),
                        &nodes,
                    );
                }
                Op::Dot(a, b) => {
                    let gi = g.item();
                    let av = &nodes[*a].value;
                    let bv = &nodes[*b].value;
                    accumulate(&mut grads, *a, bv.scale(gi), &nodes);
                    accumulate(&mut grads, *b, av.scale(gi), &nodes);
                }
                Op::Concat(parts) => {
                    let gs = g.as_slice();
                    let mut off = 0;
                    for &p in parts {
                        let len = nodes[p].value.len();
                        let shape = nodes[p].value.shape();
                        let part =
                            Tensor::from_vec(crate::pool::take_copy(&gs[off..off + len]), shape);
                        accumulate(&mut grads, p, part, &nodes);
                        off += len;
                    }
                }
                Op::AddN(parts) => {
                    for &p in parts {
                        accumulate(&mut grads, p, g.clone(), &nodes);
                    }
                }
                Op::Stack(parts) => {
                    let d = nodes[parts[0]].value.len();
                    let gs = g.as_slice();
                    for (k, &p) in parts.iter().enumerate() {
                        let shape = nodes[p].value.shape();
                        let part = Tensor::from_vec(
                            crate::pool::take_copy(&gs[k * d..(k + 1) * d]),
                            shape,
                        );
                        accumulate(&mut grads, p, part, &nodes);
                    }
                }
                Op::StackRows(parts) => {
                    let gs = g.as_slice();
                    let d = node.value.shape().cols();
                    let mut off = 0;
                    for &p in parts {
                        let shape = nodes[p].value.shape();
                        let (rows, _) = stacked_rows_shape(&nodes[p].value);
                        let part = Tensor::from_vec(
                            crate::pool::take_copy(&gs[off * d..(off + rows) * d]),
                            shape,
                        );
                        accumulate(&mut grads, p, part, &nodes);
                        off += rows;
                    }
                }
                Op::ConcatCols(a, b) => {
                    let (sa, sb) = (nodes[*a].value.shape(), nodes[*b].value.shape());
                    let (n, da, db) = (sa.rows(), sa.cols(), sb.cols());
                    let gs = g.as_slice();
                    let mut ga = crate::pool::take_zeroed(n * da);
                    let mut gb = crate::pool::take_zeroed(n * db);
                    for i in 0..n {
                        let row = &gs[i * (da + db)..(i + 1) * (da + db)];
                        ga[i * da..(i + 1) * da].copy_from_slice(&row[..da]);
                        gb[i * db..(i + 1) * db].copy_from_slice(&row[da..]);
                    }
                    accumulate(&mut grads, *a, Tensor::from_vec(ga, sa), &nodes);
                    accumulate(&mut grads, *b, Tensor::from_vec(gb, sb), &nodes);
                }
                Op::SliceCols { src, start } => {
                    let shape = nodes[*src].value.shape();
                    let mut scatter = Tensor::zeros(shape);
                    let gs = g.as_slice();
                    {
                        let dst = scatter.make_mut();
                        match shape.rank() {
                            1 => dst[*start..*start + gs.len()].copy_from_slice(gs),
                            _ => {
                                let (n, d) = (shape.rows(), shape.cols());
                                let len = node.value.shape().cols();
                                for i in 0..n {
                                    dst[i * d + start..i * d + start + len]
                                        .copy_from_slice(&gs[i * len..(i + 1) * len]);
                                }
                            }
                        }
                    }
                    accumulate(&mut grads, *src, scatter, &nodes);
                }
                Op::GatherRowsMulti { sources, indices } => {
                    let d = node.value.shape().cols();
                    let gs = g.as_slice();
                    // pool-exempt: usize offset table, bounded by op fan-in.
                    let mut offsets = Vec::with_capacity(sources.len() + 1);
                    let mut total = 0usize;
                    for &s in sources {
                        offsets.push(total);
                        total += nodes[s].value.shape().rows();
                    }
                    offsets.push(total);
                    // Scatter lazily: only sources actually gathered from
                    // allocate (and receive) a gradient tensor.
                    let mut scatters: Vec<Option<Tensor>> = vec![None; sources.len()];
                    for (kth, &ix) in indices.iter().enumerate() {
                        let s = offsets.partition_point(|&o| o <= ix) - 1;
                        let local = ix - offsets[s];
                        let t = scatters[s]
                            .get_or_insert_with(|| Tensor::zeros(nodes[sources[s]].value.shape()));
                        let dst = &mut t.make_mut()[local * d..(local + 1) * d];
                        for (o, &v) in dst.iter_mut().zip(&gs[kth * d..(kth + 1) * d]) {
                            *o += v;
                        }
                    }
                    for (s, t) in scatters.into_iter().enumerate() {
                        if let Some(t) = t {
                            accumulate(&mut grads, sources[s], t, &nodes);
                        }
                    }
                }
                Op::SegmentSum { m, offsets, init } => {
                    if let Some(init) = init {
                        accumulate(&mut grads, *init, g.clone(), &nodes);
                    }
                    let shape = nodes[*m].value.shape();
                    let d = shape.cols();
                    let gs = g.as_slice();
                    let mut gm = crate::pool::take_zeroed(shape.len());
                    for s in 0..offsets.len() - 1 {
                        let grow = &gs[s * d..(s + 1) * d];
                        for r in offsets[s]..offsets[s + 1] {
                            gm[r * d..(r + 1) * d].copy_from_slice(grow);
                        }
                    }
                    accumulate(&mut grads, *m, Tensor::from_vec(gm, shape), &nodes);
                }
                Op::Row(a, r) => {
                    let shape = nodes[*a].value.shape();
                    let cols = shape.cols();
                    let mut scatter = Tensor::zeros(shape);
                    scatter.make_mut()[r * cols..(r + 1) * cols].copy_from_slice(g.as_slice());
                    accumulate(&mut grads, *a, scatter, &nodes);
                }
                Op::Gather { table, indices } => {
                    let shape = nodes[*table].value.shape();
                    let d = shape.cols();
                    let mut scatter = Tensor::zeros(shape);
                    {
                        let dst = scatter.make_mut();
                        let gs = g.as_slice();
                        for (k, &ix) in indices.iter().enumerate() {
                            let row = &mut dst[ix * d..(ix + 1) * d];
                            for (o, &v) in row.iter_mut().zip(&gs[k * d..(k + 1) * d]) {
                                *o += v;
                            }
                        }
                    }
                    accumulate(&mut grads, *table, scatter, &nodes);
                }
                Op::SpMm { adj, h } => {
                    accumulate(&mut grads, *h, adj.matmul_t(&g), &nodes);
                }
                Op::AddRowBroadcast { m, v } => {
                    accumulate(&mut grads, *m, g.clone(), &nodes);
                    // dv = column sums of g.
                    let shape = nodes[*m].value.shape();
                    let (n, d) = (shape.rows(), shape.cols());
                    let gs = g.as_slice();
                    let mut dv = crate::pool::take_zeroed(d);
                    for i in 0..n {
                        for j in 0..d {
                            dv[j] += gs[i * d + j];
                        }
                    }
                    accumulate(&mut grads, *v, Tensor::from_vec(dv, [d]), &nodes);
                }
                Op::MeanRows(a) => {
                    let shape = nodes[*a].value.shape();
                    let (n, d) = (shape.rows(), shape.cols());
                    let gs = g.as_slice();
                    let mut out = crate::pool::take_zeroed(n * d);
                    let inv = 1.0 / n.max(1) as f32;
                    for i in 0..n {
                        for j in 0..d {
                            out[i * d + j] = gs[j] * inv;
                        }
                    }
                    accumulate(&mut grads, *a, Tensor::from_vec(out, shape), &nodes);
                }
                Op::BceWithLogits { logit, target } => {
                    let z = nodes[*logit].value.item();
                    let sig = 1.0 / (1.0 + (-z).exp());
                    let d = (sig - target) * g.item();
                    accumulate(&mut grads, *logit, Tensor::scalar(d), &nodes);
                }
            }
        }

        Gradients { grads }
    }
}

/// How a [`Tape::stack_rows`] part contributes rows: a matrix as its
/// `[rows, cols]`, a vector as one row of its length, a scalar as `[1, 1]`.
///
/// # Panics
///
/// Panics if the part has rank > 2.
fn stacked_rows_shape(v: &Tensor) -> (usize, usize) {
    let shape = v.shape();
    match shape.rank() {
        0 => (1, 1),
        1 => (1, v.len()),
        2 => (shape.rows(), shape.cols()),
        _ => panic!("stack_rows expects rows/matrices, got {shape}"),
    }
}

fn accumulate(grads: &mut [Option<Tensor>], id: usize, delta: Tensor, nodes: &[Node]) {
    debug_assert_eq!(
        delta.shape(),
        nodes[id].value.shape(),
        "gradient shape mismatch at node {id}"
    );
    match &mut grads[id] {
        Some(g) => g.axpy(1.0, &delta),
        slot @ None => *slot = Some(delta),
    }
}

impl<'t> Var<'t> {
    /// The identifier of this variable on its tape (stable for the lifetime
    /// of the tape; used to look gradients up in [`Gradients`]).
    pub fn id(&self) -> usize {
        self.id
    }

    /// The current value of this variable (cheap `Arc` clone).
    pub fn value(&self) -> Tensor {
        self.tape.value_of(self.id)
    }

    fn same_tape(&self, other: &Var<'t>) {
        assert!(
            std::ptr::eq(self.tape, other.tape),
            "vars from different tapes"
        );
    }

    /// Elementwise sum.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ or the variables come from different tapes.
    // Named after the tensor ops rather than std::ops traits: operator
    // impls cannot carry the tape lifetime bookkeeping these need.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Var<'t>) -> Var<'t> {
        self.same_tape(&other);
        let v = self.value().add(&other.value());
        self.tape.push(Op::Add(self.id, other.id), v)
    }

    /// Elementwise difference.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ or the variables come from different tapes.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, other: Var<'t>) -> Var<'t> {
        self.same_tape(&other);
        let v = self.value().sub(&other.value());
        self.tape.push(Op::Sub(self.id, other.id), v)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ or the variables come from different tapes.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Var<'t>) -> Var<'t> {
        self.same_tape(&other);
        let v = self.value().mul(&other.value());
        self.tape.push(Op::Mul(self.id, other.id), v)
    }

    /// Multiplication by a constant.
    pub fn scale(self, s: f32) -> Var<'t> {
        let v = self.value().scale(s);
        self.tape.push(Op::Scale(self.id, s), v)
    }

    /// Matrix product `self · other` (`[m,k] · [k,n]`).
    ///
    /// # Panics
    ///
    /// Panics on rank/dimension mismatch.
    pub fn matmul(self, other: Var<'t>) -> Var<'t> {
        self.same_tape(&other);
        let v = self.value().matmul(&other.value());
        self.tape.push(Op::MatMul(self.id, other.id), v)
    }

    /// Matrix product with transposed right operand: `self · otherᵀ`
    /// (`[n, k] · [m, k]ᵀ → [n, m]`) — the batched-linear layout where
    /// weights are stored `[out, in]`.
    ///
    /// # Panics
    ///
    /// Panics on rank/dimension mismatch.
    pub fn matmul_nt(self, other: Var<'t>) -> Var<'t> {
        self.same_tape(&other);
        let v = self.value().matmul(&other.value().t());
        self.tape.push(Op::MatMulNt(self.id, other.id), v)
    }

    /// Matrix–vector product `self · x`.
    ///
    /// # Panics
    ///
    /// Panics on rank/dimension mismatch.
    pub fn matvec(self, x: Var<'t>) -> Var<'t> {
        self.same_tape(&x);
        let v = self.value().matvec(&x.value());
        self.tape.push(
            Op::Linear {
                w: self.id,
                x: x.id,
                b: None,
            },
            v,
        )
    }

    /// Fused affine map `self · x + b` — one node instead of two, the hot
    /// path of every LSTM gate.
    ///
    /// # Panics
    ///
    /// Panics on rank/dimension mismatch.
    pub fn affine(self, x: Var<'t>, b: Var<'t>) -> Var<'t> {
        self.same_tape(&x);
        self.same_tape(&b);
        let v = self.value().matvec(&x.value()).add(&b.value());
        self.tape.push(
            Op::Linear {
                w: self.id,
                x: x.id,
                b: Some(b.id),
            },
            v,
        )
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(self) -> Var<'t> {
        let v = self.value().map(|x| 1.0 / (1.0 + (-x).exp()));
        self.tape.push(Op::Sigmoid(self.id), v)
    }

    /// Elementwise hyperbolic tangent.
    pub fn tanh(self) -> Var<'t> {
        let v = self.value().map(f32::tanh);
        self.tape.push(Op::Tanh(self.id), v)
    }

    /// Elementwise rectified linear unit.
    pub fn relu(self) -> Var<'t> {
        let v = self.value().map(|x| x.max(0.0));
        self.tape.push(Op::Relu(self.id), v)
    }

    /// Sum of all elements (scalar result).
    pub fn sum(self) -> Var<'t> {
        let v = Tensor::scalar(self.value().sum());
        self.tape.push(Op::Sum(self.id), v)
    }

    /// Mean of all elements (scalar result).
    pub fn mean(self) -> Var<'t> {
        let v = Tensor::scalar(self.value().mean());
        self.tape.push(Op::Mean(self.id), v)
    }

    /// Dot product with another variable of the same length (scalar).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn dot(self, other: Var<'t>) -> Var<'t> {
        self.same_tape(&other);
        let v = Tensor::scalar(self.value().dot(&other.value()));
        self.tape.push(Op::Dot(self.id, other.id), v)
    }

    /// Extracts row `r` of a matrix as a vector.
    ///
    /// # Panics
    ///
    /// Panics if not rank 2 or `r` out of bounds.
    pub fn row(self, r: usize) -> Var<'t> {
        let v = self.value().row(r);
        self.tape.push(Op::Row(self.id, r), v)
    }

    /// Selects rows of a rank-2 matrix by (repeatable) indices, producing
    /// `[k, d]` for `k` indices — the gather half of the level-fused tree
    /// encoders. The backward pass scatter-adds each output row's
    /// gradient into its source row.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not rank 2 or an index is out of range.
    pub fn index_rows(self, indices: impl Into<Arc<Vec<usize>>>) -> Var<'t> {
        self.tape.gather(self, indices)
    }

    /// Concatenates two matrices column-wise: `[n, da]` ++ `[n, db]` →
    /// `[n, da + db]` (the per-node up/down state concatenation of
    /// bidirectional stacks, fused across all nodes).
    ///
    /// # Panics
    ///
    /// Panics unless both operands are rank 2 with equal row counts.
    pub fn concat_cols(self, other: Var<'t>) -> Var<'t> {
        self.same_tape(&other);
        let a = self.value();
        let b = other.value();
        assert_eq!(
            a.shape().rank(),
            2,
            "concat_cols lhs must be rank 2, got {}",
            a.shape()
        );
        assert_eq!(
            b.shape().rank(),
            2,
            "concat_cols rhs must be rank 2, got {}",
            b.shape()
        );
        assert_eq!(
            a.shape().rows(),
            b.shape().rows(),
            "concat_cols row mismatch: {} vs {}",
            a.shape(),
            b.shape()
        );
        let (n, da, db) = (a.shape().rows(), a.shape().cols(), b.shape().cols());
        let (sa, sb) = (a.as_slice(), b.as_slice());
        let mut out = crate::pool::take_cap(n * (da + db));
        for i in 0..n {
            out.extend_from_slice(&sa[i * da..(i + 1) * da]);
            out.extend_from_slice(&sb[i * db..(i + 1) * db]);
        }
        self.tape.push(
            Op::ConcatCols(self.id, other.id),
            Tensor::from_vec(out, [n, da + db]),
        )
    }

    /// Contiguous column slice: `[n, d] → [n, len]` taking columns
    /// `start..start + len` of a matrix, or elements `start..start + len`
    /// of a vector. The backward pass scatters the gradient back into
    /// the sliced region (zeros elsewhere).
    ///
    /// This is how the fused 4-gate tree-LSTM splits its `[rows, 4h]`
    /// pre-activation into the i/o/u/f gate blocks after a single matmul.
    ///
    /// # Panics
    ///
    /// Panics if `self` is rank 0, `len == 0`, or the slice exceeds the
    /// row width.
    pub fn slice_cols(self, start: usize, len: usize) -> Var<'t> {
        let v = self.value();
        assert!(len > 0, "slice_cols of zero width");
        match v.shape().rank() {
            1 => {
                assert!(
                    start + len <= v.len(),
                    "slice_cols {start}..{} out of range for {}",
                    start + len,
                    v.shape()
                );
                let out = crate::pool::take_copy(&v.as_slice()[start..start + len]);
                self.tape.push(
                    Op::SliceCols {
                        src: self.id,
                        start,
                    },
                    Tensor::from_vec(out, [len]),
                )
            }
            2 => {
                let (n, d) = (v.shape().rows(), v.shape().cols());
                assert!(
                    start + len <= d,
                    "slice_cols {start}..{} out of range for {}",
                    start + len,
                    v.shape()
                );
                let src = v.as_slice();
                let mut out = crate::pool::take_cap(n * len);
                for i in 0..n {
                    out.extend_from_slice(&src[i * d + start..i * d + start + len]);
                }
                self.tape.push(
                    Op::SliceCols {
                        src: self.id,
                        start,
                    },
                    Tensor::from_vec(out, [n, len]),
                )
            }
            _ => panic!("slice_cols on tensor of shape {}", v.shape()),
        }
    }

    /// Adds a `[d]` vector to every row of a `[n, d]` matrix — the bias
    /// term of a batched linear layer.
    ///
    /// # Panics
    ///
    /// Panics unless `self` is rank 2 and `v` a vector of matching width.
    pub fn add_row_broadcast(self, v: Var<'t>) -> Var<'t> {
        self.same_tape(&v);
        let m = self.value();
        let b = v.value();
        assert_eq!(
            m.shape().rank(),
            2,
            "add_row_broadcast lhs must be rank 2, got {}",
            m.shape()
        );
        assert_eq!(
            m.shape().cols(),
            b.len(),
            "add_row_broadcast width mismatch: {} vs {}",
            m.shape(),
            b.shape()
        );
        let (n, d) = (m.shape().rows(), m.shape().cols());
        let mut out = crate::pool::take_copy(m.as_slice());
        for i in 0..n {
            for (o, &bv) in out[i * d..(i + 1) * d].iter_mut().zip(b.as_slice()) {
                *o += bv;
            }
        }
        self.tape.push(
            Op::AddRowBroadcast {
                m: self.id,
                v: v.id,
            },
            Tensor::from_vec(out, [n, d]),
        )
    }

    /// Mean over the rows of a `[n, d]` matrix, producing a `[d]` vector —
    /// the GCN readout.
    ///
    /// # Panics
    ///
    /// Panics if not rank 2.
    pub fn mean_rows(self) -> Var<'t> {
        let v = self.value();
        assert_eq!(v.shape().rank(), 2, "mean_rows on {}", v.shape());
        let (n, d) = (v.shape().rows(), v.shape().cols());
        let mut out = crate::pool::take_zeroed(d);
        if d > 0 {
            for row in v.as_slice().chunks_exact(d).take(n) {
                for (o, &x) in out.iter_mut().zip(row) {
                    *o += x;
                }
            }
        }
        let inv = 1.0 / n.max(1) as f32;
        for o in &mut out {
            *o *= inv;
        }
        self.tape
            .push(Op::MeanRows(self.id), Tensor::from_vec(out, [d]))
    }

    /// Numerically stable binary cross-entropy between `sigmoid(self)` and a
    /// constant `target ∈ {0, 1}` (scalar logit → scalar loss).
    ///
    /// Uses `max(z,0) − z·y + ln(1 + e^{−|z|})`, never materialising the
    /// sigmoid in the forward pass.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not a single-element tensor.
    pub fn bce_with_logits(self, target: f32) -> Var<'t> {
        let z = self.value().item();
        let loss = z.max(0.0) - z * target + (1.0 + (-z.abs()).exp()).ln();
        self.tape.push(
            Op::BceWithLogits {
                logit: self.id,
                target,
            },
            Tensor::scalar(loss),
        )
    }
}

/// Gradients produced by [`Tape::backward`], indexed by [`Var`].
#[derive(Debug)]
pub struct Gradients {
    grads: Vec<Option<Tensor>>,
}

impl Gradients {
    /// The gradient of the backward root with respect to `var`, or a zero
    /// tensor of no particular shape if the variable did not influence the
    /// root. Prefer [`Gradients::get_or_zeros`] when a correctly shaped
    /// zero gradient is needed.
    pub fn get(&self, var: Var<'_>) -> Tensor {
        self.grads[var.id].clone().unwrap_or_default()
    }

    /// Like [`Gradients::get`] but returns zeros shaped like the variable's
    /// value when it received no gradient.
    pub fn get_or_zeros(&self, var: Var<'_>) -> Tensor {
        self.grads[var.id]
            .clone()
            .unwrap_or_else(|| Tensor::zeros(var.value().shape()))
    }

    /// Whether the variable received any gradient.
    pub fn contains(&self, var: Var<'_>) -> bool {
        self.grads[var.id].is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_backward() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(vec![1.0, 2.0], [2]));
        let b = tape.leaf(Tensor::from_vec(vec![3.0, 4.0], [2]));
        let loss = a.add(b).sum();
        assert_eq!(loss.value().item(), 10.0);
        let g = tape.backward(loss);
        assert_eq!(g.get(a).as_slice(), &[1.0, 1.0]);
        assert_eq!(g.get(b).as_slice(), &[1.0, 1.0]);
    }

    #[test]
    fn mul_backward() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(vec![2.0, 3.0], [2]));
        let b = tape.leaf(Tensor::from_vec(vec![5.0, 7.0], [2]));
        let loss = a.mul(b).sum();
        let g = tape.backward(loss);
        assert_eq!(g.get(a).as_slice(), &[5.0, 7.0]);
        assert_eq!(g.get(b).as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn matvec_backward_hand_checked() {
        let tape = Tape::new();
        let w = tape.leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]));
        let x = tape.leaf(Tensor::from_vec(vec![5.0, 6.0], [2]));
        let y = w.matvec(x); // [17, 39]
        assert_eq!(y.value().as_slice(), &[17.0, 39.0]);
        let loss = y.sum();
        let g = tape.backward(loss);
        // dW = [1,1]ᵀ ⊗ x = [[5,6],[5,6]]; dx = Wᵀ·[1,1] = [4, 6]
        assert_eq!(g.get(w).as_slice(), &[5.0, 6.0, 5.0, 6.0]);
        assert_eq!(g.get(x).as_slice(), &[4.0, 6.0]);
    }

    #[test]
    fn sigmoid_at_zero() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::scalar(0.0));
        let y = x.sigmoid();
        assert!((y.value().item() - 0.5).abs() < 1e-7);
        let g = tape.backward(y.sum());
        assert!((g.get(x).item() - 0.25).abs() < 1e-7);
    }

    #[test]
    fn reused_variable_accumulates_gradient() {
        // loss = (x + x).sum() → dx = 2
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![1.0], [1]));
        let loss = x.add(x).sum();
        let g = tape.backward(loss);
        assert_eq!(g.get(x).as_slice(), &[2.0]);
    }

    #[test]
    fn concat_split_gradient() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(vec![1.0, 2.0], [2]));
        let b = tape.leaf(Tensor::from_vec(vec![3.0], [1]));
        let c = tape.concat(&[a, b]);
        assert_eq!(c.value().as_slice(), &[1.0, 2.0, 3.0]);
        let w = tape.leaf(Tensor::from_vec(vec![1.0, 10.0, 100.0], [3]));
        let loss = c.mul(w).sum();
        let g = tape.backward(loss);
        assert_eq!(g.get(a).as_slice(), &[1.0, 10.0]);
        assert_eq!(g.get(b).as_slice(), &[100.0]);
    }

    #[test]
    fn gather_scatters_gradient() {
        let tape = Tape::new();
        let table = tape.leaf(Tensor::from_vec((0..6).map(|x| x as f32).collect(), [3, 2]));
        let g = tape.gather(table, vec![2usize, 0, 2]);
        assert_eq!(g.value().as_slice(), &[4.0, 5.0, 0.0, 1.0, 4.0, 5.0]);
        let loss = g.sum();
        let grads = tape.backward(loss);
        // Row 2 hit twice, row 0 once, row 1 never.
        assert_eq!(grads.get(table).as_slice(), &[1.0, 1.0, 0.0, 0.0, 2.0, 2.0]);
    }

    #[test]
    fn bce_loss_matches_closed_form() {
        let tape = Tape::new();
        let z = tape.leaf(Tensor::scalar(0.7));
        let loss = z.bce_with_logits(1.0);
        let expected = (1.0f32 + (-0.7f32).exp()).ln();
        assert!((loss.value().item() - expected).abs() < 1e-6);
        let g = tape.backward(loss);
        let sig = 1.0 / (1.0 + (-0.7f32).exp());
        assert!((g.get(z).item() - (sig - 1.0)).abs() < 1e-6);
    }

    #[test]
    fn spmm_forward_and_backward_shapes() {
        let adj = Arc::new(Adjacency::normalized_from_edges(3, &[(0, 1), (1, 2)]));
        let tape = Tape::new();
        let h = tape.leaf(Tensor::from_vec((0..6).map(|x| x as f32).collect(), [3, 2]));
        let out = tape.spmm(Arc::clone(&adj), h);
        assert_eq!(out.value().shape().dims(), &[3, 2]);
        let g = tape.backward(out.sum());
        assert_eq!(g.get(h).shape().dims(), &[3, 2]);
    }

    #[test]
    fn adjacency_rows_sum_reasonably() {
        // Row sums of Â = D^{-1/2}(A+I)D^{-1/2} are positive and bounded by
        // a small constant (they equal 1 exactly on regular graphs).
        let adj = Adjacency::normalized_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let h = Tensor::ones([4, 1]);
        let out = adj.matmul(&h);
        for &v in out.as_slice() {
            assert!(v > 0.0 && v <= 1.5, "row sum {v} out of range");
        }
        // Complete graph K3 is regular: every row sum is exactly 1.
        let k3 = Adjacency::normalized_from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let out = k3.matmul(&Tensor::ones([3, 1]));
        for &v in out.as_slice() {
            assert!((v - 1.0).abs() < 1e-6, "regular graph row sum {v} != 1");
        }
    }

    #[test]
    fn mean_rows_backward() {
        let tape = Tape::new();
        let h = tape.leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]));
        let m = h.mean_rows();
        assert_eq!(m.value().as_slice(), &[2.0, 3.0]);
        let g = tape.backward(m.sum());
        assert_eq!(g.get(h).as_slice(), &[0.5, 0.5, 0.5, 0.5]);
    }

    #[test]
    fn stack_and_row_roundtrip_gradient() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(vec![1.0, 2.0], [2]));
        let b = tape.leaf(Tensor::from_vec(vec![3.0, 4.0], [2]));
        let s = tape.stack(&[a, b]);
        let r = s.row(1);
        assert_eq!(r.value().as_slice(), &[3.0, 4.0]);
        let g = tape.backward(r.sum());
        assert_eq!(g.get(a).as_slice(), &[0.0, 0.0]);
        assert_eq!(g.get(b).as_slice(), &[1.0, 1.0]);
    }

    #[test]
    fn stack_rows_forward_and_backward() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]));
        let b = tape.leaf(Tensor::from_vec(vec![5.0, 6.0], [1, 2]));
        let s = tape.stack_rows(&[a, b]);
        assert_eq!(s.value().shape().dims(), &[3, 2]);
        assert_eq!(s.value().as_slice(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        // Weight row 2 so the split is visible in gradients.
        let w = tape.leaf(Tensor::from_vec(
            vec![1.0; 4].into_iter().chain([7.0, 7.0]).collect(),
            [3, 2],
        ));
        let g = tape.backward(s.mul(w).sum());
        assert_eq!(g.get(a).as_slice(), &[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(g.get(b).as_slice(), &[7.0, 7.0]);
    }

    #[test]
    fn stack_rows_accepts_vectors_as_single_rows() {
        let tape = Tape::new();
        let m = tape.leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]));
        let v = tape.leaf(Tensor::from_vec(vec![5.0, 6.0], [2]));
        // A rank-1 [2] part is one row of width 2, not a [2, 1] column.
        let s = tape.stack_rows(&[m, v, m.row(0)]);
        assert_eq!(s.value().shape().dims(), &[4, 2]);
        assert_eq!(
            s.value().as_slice(),
            &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 1.0, 2.0]
        );
        let w = tape.leaf(Tensor::from_vec(
            vec![1.0, 1.0, 1.0, 1.0, 3.0, 5.0, 7.0, 7.0],
            [4, 2],
        ));
        let g = tape.backward(s.mul(w).sum());
        assert_eq!(g.get(v).shape().dims(), &[2], "vector grad keeps rank 1");
        assert_eq!(g.get(v).as_slice(), &[3.0, 5.0]);
        // m is read directly (rows 0–1) and via row(0) (row 3's weights).
        assert_eq!(g.get(m).as_slice(), &[8.0, 8.0, 1.0, 1.0]);
    }

    #[test]
    fn index_rows_selects_and_scatters() {
        let tape = Tape::new();
        let m = tape.leaf(Tensor::from_vec((0..8).map(|x| x as f32).collect(), [4, 2]));
        let sel = m.index_rows(vec![3usize, 1, 3]);
        assert_eq!(sel.value().as_slice(), &[6.0, 7.0, 2.0, 3.0, 6.0, 7.0]);
        let g = tape.backward(sel.sum());
        // Row 3 hit twice, row 1 once.
        assert_eq!(
            g.get(m).as_slice(),
            &[0.0, 0.0, 1.0, 1.0, 0.0, 0.0, 2.0, 2.0]
        );
    }

    #[test]
    fn segment_sum_handles_empty_segments() {
        let tape = Tape::new();
        let m = tape.leaf(Tensor::from_vec((0..6).map(|x| x as f32).collect(), [3, 2]));
        // Segments: [0..2), [2..2) empty, [2..3).
        let s = tape.segment_sum(m, vec![0usize, 2, 2, 3]);
        assert_eq!(s.value().shape().dims(), &[3, 2]);
        assert_eq!(s.value().as_slice(), &[2.0, 4.0, 0.0, 0.0, 4.0, 5.0]);
        let g = tape.backward(s.sum());
        assert_eq!(g.get(m).as_slice(), &[1.0; 6]);
    }

    #[test]
    fn segment_sum_init_matches_sequential_accumulation() {
        let tape = Tape::new();
        let init = tape.leaf(Tensor::from_vec(vec![10.0, 20.0, 30.0, 40.0], [2, 2]));
        let m = tape.leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]));
        // Both contribution rows land in segment 0; segment 1 keeps init.
        let s = tape.segment_sum_init(init, m, vec![0usize, 2, 2]);
        assert_eq!(s.value().as_slice(), &[14.0, 26.0, 30.0, 40.0]);
        let g = tape.backward(s.sum());
        assert_eq!(g.get(init).as_slice(), &[1.0; 4]);
        assert_eq!(g.get(m).as_slice(), &[1.0; 4]);
    }

    #[test]
    fn slice_cols_matrix_forward_and_backward() {
        let tape = Tape::new();
        let m = tape.leaf(Tensor::from_vec((0..8).map(|x| x as f32).collect(), [2, 4]));
        let s = m.slice_cols(1, 2);
        assert_eq!(s.value().shape().dims(), &[2, 2]);
        assert_eq!(s.value().as_slice(), &[1.0, 2.0, 5.0, 6.0]);
        let w = tape.leaf(Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0], [2, 2]));
        let g = tape.backward(s.mul(w).sum());
        assert_eq!(
            g.get(m).as_slice(),
            &[0.0, 1.0, 3.0, 0.0, 0.0, 5.0, 7.0, 0.0]
        );
    }

    #[test]
    fn slice_cols_vector_forward_and_backward() {
        let tape = Tape::new();
        let v = tape.leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [4]));
        let s = v.slice_cols(2, 2);
        assert_eq!(s.value().shape().dims(), &[2]);
        assert_eq!(s.value().as_slice(), &[3.0, 4.0]);
        let w = tape.leaf(Tensor::from_vec(vec![5.0, 9.0], [2]));
        let g = tape.backward(s.mul(w).sum());
        assert_eq!(g.get(v).as_slice(), &[0.0, 0.0, 5.0, 9.0]);
    }

    #[test]
    fn slice_cols_reused_slices_accumulate() {
        // Two overlapping slices of the same source: gradients add.
        let tape = Tape::new();
        let m = tape.leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0], [1, 3]));
        let a = m.slice_cols(0, 2);
        let b = m.slice_cols(1, 2);
        let g = tape.backward(a.sum().add(b.sum()));
        assert_eq!(g.get(m).as_slice(), &[1.0, 2.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slice_cols_rejects_overflow() {
        let tape = Tape::new();
        let m = tape.leaf(Tensor::zeros([2, 3]));
        let _ = m.slice_cols(2, 2);
    }

    #[test]
    fn gather_rows_multi_selects_across_sources() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]));
        let b = tape.leaf(Tensor::from_vec(vec![5.0, 6.0], [1, 2]));
        let c = tape.leaf(Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0], [2, 2]));
        // Virtual rows: 0,1 from a; 2 from b; 3,4 from c.
        let g = tape.gather_rows_multi(&[a, b, c], vec![4usize, 0, 2, 4]);
        assert_eq!(g.value().shape().dims(), &[4, 2]);
        assert_eq!(
            g.value().as_slice(),
            &[9.0, 10.0, 1.0, 2.0, 5.0, 6.0, 9.0, 10.0]
        );
        // Matches index_rows over the materialised stack bit-for-bit.
        let stacked = tape.stack_rows(&[a, b, c]);
        let via_stack = stacked.index_rows(vec![4usize, 0, 2, 4]);
        assert_eq!(g.value().as_slice(), via_stack.value().as_slice());
    }

    #[test]
    fn gather_rows_multi_scatters_gradients_per_source() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]));
        let b = tape.leaf(Tensor::from_vec(vec![5.0, 6.0], [1, 2]));
        // Row 2 (b's row) gathered twice, row 1 once; a's row 0 untouched.
        let g = tape.gather_rows_multi(&[a, b], vec![2usize, 1, 2]);
        let grads = tape.backward(g.sum());
        assert_eq!(grads.get(a).as_slice(), &[0.0, 0.0, 1.0, 1.0]);
        assert_eq!(grads.get(b).as_slice(), &[2.0, 2.0]);
    }

    #[test]
    fn gather_rows_multi_untouched_source_gets_no_gradient() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::ones([2, 2]));
        let b = tape.leaf(Tensor::ones([1, 2]));
        let g = tape.gather_rows_multi(&[a, b], vec![0usize]);
        let grads = tape.backward(g.sum());
        assert!(grads.contains(a));
        assert!(!grads.contains(b), "source b was never gathered");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn gather_rows_multi_rejects_bad_index() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::zeros([2, 2]));
        let _ = tape.gather_rows_multi(&[a], vec![2usize]);
    }

    #[test]
    fn concat_cols_forward_and_backward() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]));
        let b = tape.leaf(Tensor::from_vec(vec![5.0, 6.0], [2, 1]));
        let c = a.concat_cols(b);
        assert_eq!(c.value().shape().dims(), &[2, 3]);
        assert_eq!(c.value().as_slice(), &[1.0, 2.0, 5.0, 3.0, 4.0, 6.0]);
        let w = tape.leaf(Tensor::from_vec(vec![1.0, 1.0, 9.0, 1.0, 1.0, 9.0], [2, 3]));
        let g = tape.backward(c.mul(w).sum());
        assert_eq!(g.get(a).as_slice(), &[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(g.get(b).as_slice(), &[9.0, 9.0]);
    }

    #[test]
    #[should_panic(expected = "final segment offset")]
    fn segment_sum_rejects_bad_offsets() {
        let tape = Tape::new();
        let m = tape.leaf(Tensor::zeros([3, 2]));
        let _ = tape.segment_sum(m, vec![0usize, 2]);
    }

    #[test]
    #[should_panic(expected = "backward root must be scalar")]
    fn backward_requires_scalar() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(vec![1.0, 2.0], [2]));
        let _ = tape.backward(a);
    }
}
