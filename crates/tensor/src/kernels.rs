//! Explicit SIMD kernels with runtime dispatch for the three hot loops.
//!
//! Everything above this module (fused encode, tape backward, serving)
//! funnels its FLOPs through `matmul`, `matvec`, and `segment_sum`'s
//! row accumulation. This module provides two interchangeable backends
//! for those loops and resolves which one runs **once**, at first use:
//!
//! * [`KernelBackend::Scalar`] — the blocked, IEEE-strict reference
//!   kernels (plain `mul` + `add`, k-ascending accumulation). Portable
//!   to every target; this is the semantics the test suite pins
//!   bit-for-bit against naive triple loops.
//! * [`KernelBackend::Avx2`] — x86_64 AVX2+FMA kernels built on
//!   `std::arch` intrinsics, selected only when
//!   `is_x86_feature_detected!` confirms both features at runtime.
//!   No nightly features, no new dependencies.
//!
//! # Numerical contract
//!
//! The repo pins two bitwise invariants that SIMD must not break:
//! `matvec ≡ matmul` on the same data, and fused batched encode ≡
//! sequential per-node encode. Both hold because **within a backend**
//! every output element is the same k-ascending accumulation chain:
//!
//! * scalar: `acc ← acc + a·b` (two roundings per term) — unchanged
//!   from the pre-dispatch kernel, still the portable reference;
//! * avx2: `acc ← fma(a, b, acc)` (one rounding per term), whether the
//!   element was computed in a 8/16-wide vector lane or in a scalar
//!   remainder chain — `f32::mul_add` guarantees fused semantics, so
//!   vector body and remainder agree bit-for-bit.
//!
//! Across backends results differ in final ulps (FMA rounds once), so
//! cross-backend comparisons get the same ≤1e-5 tolerance the fused
//! encode parity tests already use. Neither backend zero-skips:
//! `0 · NaN` and `0 · ∞` produce NaN on both paths (IEEE-754), which
//! the PR 4 regression suite checks against each backend here.
//!
//! # Dispatch
//!
//! [`active`] resolves the backend once into a `&'static` [`Kernels`]
//! (a struct of function pointers) behind a [`OnceLock`]:
//!
//! | `CCSA_KERNEL` | resolved backend                                  |
//! |---------------|---------------------------------------------------|
//! | unset         | `avx2` if the CPU has AVX2+FMA, else `scalar`     |
//! | `scalar`      | `scalar` (forced; bit-exactness debugging, CI)    |
//! | `avx2`        | `avx2`, or `scalar` + warning if unsupported      |
//!
//! Tests and benches that need *both* backends in one process bypass
//! the environment and ask [`kernels_for`] directly.

use std::fmt;
use std::sync::OnceLock;

/// Which kernel implementation a [`Kernels`] table contains.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum KernelBackend {
    /// Blocked scalar loops: portable, IEEE-strict `mul`+`add` reference.
    Scalar,
    /// x86_64 AVX2+FMA intrinsics (single-rounding fused accumulate).
    Avx2,
}

impl fmt::Display for KernelBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            KernelBackend::Scalar => "scalar",
            KernelBackend::Avx2 => "avx2",
        })
    }
}

/// `out[i*n+j] = Σ_k a[i*k+kk]·b[kk*n+j]`; `out` arrives zeroed.
pub type MatmulFn = fn(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize);
/// `out[i] = Σ_k a[i*k+kk]·x[kk]`; `out` arrives zeroed.
pub type MatvecFn = fn(a: &[f32], x: &[f32], out: &mut [f32], m: usize, k: usize);
/// `dst[j] += src[j]` elementwise (`segment_sum` row accumulation).
pub type SegAccumFn = fn(dst: &mut [f32], src: &[f32]);

/// A resolved table of kernel function pointers.
///
/// Obtained from [`active`] (the process-wide dispatched table) or
/// [`kernels_for`] (a specific backend, for A/B tests and benches).
pub struct Kernels {
    /// The backend these pointers implement.
    pub backend: KernelBackend,
    /// Matrix–matrix product kernel.
    pub matmul: MatmulFn,
    /// Matrix–vector product kernel.
    pub matvec: MatvecFn,
    /// Row-accumulation kernel (`dst += src`).
    pub seg_accum: SegAccumFn,
}

static SCALAR: Kernels = Kernels {
    backend: KernelBackend::Scalar,
    matmul: scalar_matmul,
    matvec: scalar_matvec,
    seg_accum: scalar_seg_accum,
};

#[cfg(target_arch = "x86_64")]
static AVX2: Kernels = Kernels {
    backend: KernelBackend::Avx2,
    matmul: avx2::matmul,
    matvec: avx2::matvec,
    seg_accum: avx2::seg_accum,
};

/// `true` when the running CPU supports the AVX2+FMA backend.
pub fn avx2_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The kernel table for a specific backend, if the host supports it.
///
/// Returns `None` for [`KernelBackend::Avx2`] on hosts without
/// AVX2+FMA (including non-x86_64 targets). Used by tests and the
/// kernel bench to exercise both backends in one process regardless of
/// the `CCSA_KERNEL` override.
pub fn kernels_for(backend: KernelBackend) -> Option<&'static Kernels> {
    match backend {
        KernelBackend::Scalar => Some(&SCALAR),
        KernelBackend::Avx2 => {
            #[cfg(target_arch = "x86_64")]
            if avx2_supported() {
                return Some(&AVX2);
            }
            None
        }
    }
}

fn resolve(requested: Option<&str>) -> &'static Kernels {
    let auto = || kernels_for(KernelBackend::Avx2).unwrap_or(&SCALAR);
    match requested.map(str::trim) {
        Some("scalar") => &SCALAR,
        Some("avx2") => kernels_for(KernelBackend::Avx2).unwrap_or_else(|| {
            eprintln!(
                "[ccsa-tensor] warning: CCSA_KERNEL=avx2 but this CPU lacks \
                 AVX2+FMA; falling back to scalar kernels"
            );
            &SCALAR
        }),
        Some(other) if !other.is_empty() => {
            eprintln!(
                "[ccsa-tensor] warning: unknown CCSA_KERNEL='{other}' \
                 (expected 'scalar' or 'avx2'); auto-detecting"
            );
            auto()
        }
        _ => auto(),
    }
}

/// The process-wide kernel table, resolved once at first use.
///
/// Honors the `CCSA_KERNEL=scalar|avx2` environment override (read
/// exactly once — changing the variable after the first kernel call has
/// no effect; use [`kernels_for`] for in-process A/B).
pub fn active() -> &'static Kernels {
    static ACTIVE: OnceLock<&'static Kernels> = OnceLock::new();
    ACTIVE.get_or_init(|| resolve(std::env::var("CCSA_KERNEL").ok().as_deref()))
}

// ---------------------------------------------------------------------------
// Scalar backend: the blocked, IEEE-strict reference kernels.
// ---------------------------------------------------------------------------

/// Prefetch the next 4-row A block at column `kk`, one cache line per
/// row, paced by the caller to every 16th k-step (16 f32 = one line).
/// The streamed `b` rows dominate the bandwidth; this hides the A-block
/// switch latency at block boundaries. No-op off x86_64.
#[inline(always)]
fn prefetch_a_block(a: &[f32], row: usize, kk: usize, k: usize, m: usize) {
    #[cfg(target_arch = "x86_64")]
    {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        let end = (row + 4).min(m);
        for r in row..end {
            // SAFETY: in bounds — r < m and kk < k, so r*k + kk <
            // m*k = a.len(); prefetch also never faults on any address.
            unsafe { _mm_prefetch(a.as_ptr().add(r * k + kk).cast::<i8>(), _MM_HINT_T0) };
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (a, row, kk, k, m);
    }
}

/// Blocked i-k-j kernel: output rows are processed in chunks of four so
/// every streamed `b` row is reused by four accumulator rows while it
/// is hot, and the j loop is 4-unrolled to keep independent multiply
/// chains in flight. Accumulation over k stays ascending per output
/// element, so results are bit-identical to [`scalar_matvec`]'s dot
/// products — and there is deliberately no zero-skip: `0 · NaN` and
/// `0 · ∞` must produce NaN (IEEE-754), not silently vanish.
fn scalar_matmul(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    let mut i = 0;
    while i + 4 <= m {
        let (r01, r23) = out[i * n..(i + 4) * n].split_at_mut(2 * n);
        let (r0, r1) = r01.split_at_mut(n);
        let (r2, r3) = r23.split_at_mut(n);
        for kk in 0..k {
            if kk % 16 == 0 {
                prefetch_a_block(a, i + 4, kk, k, m);
            }
            let a0 = a[i * k + kk];
            let a1 = a[(i + 1) * k + kk];
            let a2 = a[(i + 2) * k + kk];
            let a3 = a[(i + 3) * k + kk];
            let brow = &b[kk * n..(kk + 1) * n];
            let mut j = 0;
            while j + 4 <= n {
                let (b0, b1, b2, b3) = (brow[j], brow[j + 1], brow[j + 2], brow[j + 3]);
                r0[j] += a0 * b0;
                r0[j + 1] += a0 * b1;
                r0[j + 2] += a0 * b2;
                r0[j + 3] += a0 * b3;
                r1[j] += a1 * b0;
                r1[j + 1] += a1 * b1;
                r1[j + 2] += a1 * b2;
                r1[j + 3] += a1 * b3;
                r2[j] += a2 * b0;
                r2[j + 1] += a2 * b1;
                r2[j + 2] += a2 * b2;
                r2[j + 3] += a2 * b3;
                r3[j] += a3 * b0;
                r3[j + 1] += a3 * b1;
                r3[j + 2] += a3 * b2;
                r3[j + 3] += a3 * b3;
                j += 4;
            }
            while j < n {
                let bv = brow[j];
                r0[j] += a0 * bv;
                r1[j] += a1 * bv;
                r2[j] += a2 * bv;
                r3[j] += a3 * bv;
                j += 1;
            }
        }
        i += 4;
    }
    // Remainder rows (m not a multiple of 4): single-row unrolled axpy.
    while i < m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (kk, &aik) in arow.iter().enumerate() {
            axpy_unrolled(orow, aik, &b[kk * n..(kk + 1) * n]);
        }
        i += 1;
    }
}

/// `dst[j] += a * src[j]`, 4-unrolled over column chunks (remainder
/// handled elementwise). The k-ascending call order in [`scalar_matmul`]
/// keeps per-element accumulation identical to [`scalar_matvec`].
#[inline(always)]
fn axpy_unrolled(dst: &mut [f32], a: f32, src: &[f32]) {
    let mut d = dst.chunks_exact_mut(4);
    let mut s = src.chunks_exact(4);
    for (dd, ss) in d.by_ref().zip(s.by_ref()) {
        dd[0] += a * ss[0];
        dd[1] += a * ss[1];
        dd[2] += a * ss[2];
        dd[3] += a * ss[3];
    }
    for (dd, &sv) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *dd += a * sv;
    }
}

/// Per-row k-ascending dot products — the same accumulation order and
/// rounding (`mul` then `add`) as [`scalar_matmul`], hence bit-equal.
fn scalar_matvec(a: &[f32], x: &[f32], out: &mut [f32], _m: usize, k: usize) {
    if k == 0 {
        return;
    }
    for (o, row) in out.iter_mut().zip(a.chunks_exact(k)) {
        *o = row.iter().zip(x.iter()).map(|(&av, &xv)| av * xv).sum();
    }
}

/// `dst += src`, elementwise, in index order.
fn scalar_seg_accum(dst: &mut [f32], src: &[f32]) {
    for (o, &v) in dst.iter_mut().zip(src) {
        *o += v;
    }
}

// ---------------------------------------------------------------------------
// AVX2+FMA backend.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use std::arch::x86_64::*;

    // Safe shims: the `Kernels` table for this module is only handed out
    // after `is_x86_feature_detected!("avx2")` && `("fma")`, so the
    // target-feature contract of the inner functions is always met.

    pub(super) fn matmul(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        debug_assert!(super::avx2_supported());
        // SAFETY: this table entry is only installed after runtime
        // avx2+fma detection, so the target-feature contract holds.
        unsafe { matmul_fma(a, b, out, m, k, n) }
    }

    pub(super) fn matvec(a: &[f32], x: &[f32], out: &mut [f32], m: usize, k: usize) {
        debug_assert!(super::avx2_supported());
        // SAFETY: as above — table installed only after avx2+fma
        // detection.
        unsafe { matvec_fma(a, x, out, m, k) }
    }

    pub(super) fn seg_accum(dst: &mut [f32], src: &[f32]) {
        debug_assert!(super::avx2_supported());
        // SAFETY: as above — table installed only after avx2+fma
        // detection.
        unsafe { seg_accum_avx2(dst, src) }
    }

    /// 4×16 register-tiled FMA micro-kernel with 4×8 / scalar-chain
    /// fallthrough. Every output element — vector lane or remainder —
    /// is a k-ascending single-rounding FMA chain, so the whole matrix
    /// agrees bit-for-bit with [`matvec_fma`] and with a naive
    /// `f32::mul_add` triple loop.
    ///
    /// SAFETY contract: caller verified avx2+fma at runtime (the safe
    /// shims above are the only callers) and sized the slices as
    /// `a: m×k`, `b: k×n`, `out: m×n`, which every pointer offset
    /// below stays inside.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn matmul_fma(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let op = out.as_mut_ptr();
        let mut i = 0;
        while i + 4 <= m {
            let mut j = 0;
            // 4 rows × 16 columns: 8 ymm accumulators live across the
            // whole k loop; two b loads and one broadcast per (k, row).
            while j + 16 <= n {
                let mut acc = [[_mm256_setzero_ps(); 2]; 4];
                for kk in 0..k {
                    // SAFETY: j+16 <= n and kk < k, so both 8-lane
                    // loads end at kk*n + j + 16 <= k*n = b.len().
                    let b0 = unsafe { _mm256_loadu_ps(bp.add(kk * n + j)) };
                    // SAFETY: as above.
                    let b1 = unsafe { _mm256_loadu_ps(bp.add(kk * n + j + 8)) };
                    for (r, accr) in acc.iter_mut().enumerate() {
                        // SAFETY: i+4 <= m and r < 4, so (i+r)*k + kk
                        // < m*k = a.len().
                        let av = unsafe { _mm256_set1_ps(*ap.add((i + r) * k + kk)) };
                        accr[0] = _mm256_fmadd_ps(av, b0, accr[0]);
                        accr[1] = _mm256_fmadd_ps(av, b1, accr[1]);
                    }
                }
                for (r, accr) in acc.iter().enumerate() {
                    // SAFETY: i+r < m and j+16 <= n, so both stores
                    // end at (i+r)*n + j + 16 <= m*n = out.len().
                    unsafe {
                        _mm256_storeu_ps(op.add((i + r) * n + j), accr[0]);
                        _mm256_storeu_ps(op.add((i + r) * n + j + 8), accr[1]);
                    }
                }
                j += 16;
            }
            while j + 8 <= n {
                let mut acc = [_mm256_setzero_ps(); 4];
                for kk in 0..k {
                    // SAFETY: j+8 <= n and kk < k, so the load ends at
                    // kk*n + j + 8 <= k*n = b.len().
                    let bv = unsafe { _mm256_loadu_ps(bp.add(kk * n + j)) };
                    for (r, accr) in acc.iter_mut().enumerate() {
                        // SAFETY: i+4 <= m and r < 4, so (i+r)*k + kk
                        // < m*k = a.len().
                        let av = unsafe { _mm256_set1_ps(*ap.add((i + r) * k + kk)) };
                        *accr = _mm256_fmadd_ps(av, bv, *accr);
                    }
                }
                for (r, accr) in acc.iter().enumerate() {
                    // SAFETY: i+r < m and j+8 <= n — store ends inside
                    // out's m*n elements.
                    unsafe { _mm256_storeu_ps(op.add((i + r) * n + j), *accr) };
                }
                j += 8;
            }
            while j < n {
                for r in 0..4 {
                    out[(i + r) * n + j] = dot_chain(a, b, (i + r) * k, j, k, n);
                }
                j += 1;
            }
            i += 4;
        }
        // Remainder rows: single-row, j-vectorized.
        while i < m {
            let mut j = 0;
            while j + 8 <= n {
                let mut acc = _mm256_setzero_ps();
                for kk in 0..k {
                    // SAFETY: i < m and kk < k — the broadcast reads
                    // one f32 inside a's m*k elements.
                    let av = unsafe { _mm256_set1_ps(*ap.add(i * k + kk)) };
                    // SAFETY: j+8 <= n and kk < k — the load ends
                    // inside b's k*n elements.
                    let bv = unsafe { _mm256_loadu_ps(bp.add(kk * n + j)) };
                    acc = _mm256_fmadd_ps(av, bv, acc);
                }
                // SAFETY: i < m and j+8 <= n — the store ends inside
                // out's m*n elements.
                unsafe { _mm256_storeu_ps(op.add(i * n + j), acc) };
                j += 8;
            }
            while j < n {
                out[i * n + j] = dot_chain(a, b, i * k, j, k, n);
                j += 1;
            }
            i += 1;
        }
    }

    /// Scalar k-ascending FMA chain for remainder columns. Inside an
    /// FMA-enabled function `f32::mul_add` lowers to `vfmadd`, matching
    /// the vector lanes' rounding exactly.
    #[inline(always)]
    fn dot_chain(a: &[f32], b: &[f32], arow: usize, j: usize, k: usize, n: usize) -> f32 {
        let mut acc = 0.0f32;
        for kk in 0..k {
            acc = a[arow + kk].mul_add(b[kk * n + j], acc);
        }
        acc
    }

    /// 4-row-unrolled k-ascending FMA chains: four independent
    /// accumulators in flight, one chain per output element — the same
    /// per-element semantics as [`matmul_fma`], so `matvec ≡ matmul`
    /// stays bitwise under this backend too.
    ///
    /// SAFETY contract: caller verified avx2+fma at runtime (the safe
    /// shim above is the only caller); all indexing below is checked
    /// slice access.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn matvec_fma(a: &[f32], x: &[f32], out: &mut [f32], m: usize, k: usize) {
        let mut i = 0;
        while i + 4 <= m {
            let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            for (kk, &xv) in x.iter().enumerate().take(k) {
                s0 = a[i * k + kk].mul_add(xv, s0);
                s1 = a[(i + 1) * k + kk].mul_add(xv, s1);
                s2 = a[(i + 2) * k + kk].mul_add(xv, s2);
                s3 = a[(i + 3) * k + kk].mul_add(xv, s3);
            }
            out[i] = s0;
            out[i + 1] = s1;
            out[i + 2] = s2;
            out[i + 3] = s3;
            i += 4;
        }
        while i < m {
            let mut s = 0.0f32;
            for (kk, &xv) in x.iter().enumerate().take(k) {
                s = a[i * k + kk].mul_add(xv, s);
            }
            out[i] = s;
            i += 1;
        }
    }

    /// `dst += src` with 8-wide `vaddps`. Per-element add order is
    /// unchanged, so this is bit-identical to the scalar backend.
    ///
    /// SAFETY contract: caller verified avx2 at runtime (the safe shim
    /// above is the only caller); loads/stores are bounded by
    /// `len = min(dst.len(), src.len())`.
    #[target_feature(enable = "avx2")]
    unsafe fn seg_accum_avx2(dst: &mut [f32], src: &[f32]) {
        let len = dst.len().min(src.len());
        let dp = dst.as_mut_ptr();
        let sp = src.as_ptr();
        let mut j = 0;
        while j + 8 <= len {
            // SAFETY: j+8 <= len <= dst.len() and src.len(), so the
            // 8-lane load/store window stays inside both slices.
            unsafe {
                let d = _mm256_loadu_ps(dp.add(j));
                let s = _mm256_loadu_ps(sp.add(j));
                _mm256_storeu_ps(dp.add(j), _mm256_add_ps(d, s));
            }
            j += 8;
        }
        while j < len {
            dst[j] += src[j];
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(len: usize, mul: usize, modulus: usize, off: f32, scale: f32) -> Vec<f32> {
        (0..len)
            .map(|x| ((x * mul % modulus) as f32 - off) * scale)
            .collect()
    }

    /// Shapes covering every kernel path: 4-row blocks + remainder rows,
    /// 16-wide, 8-wide, 4-wide and scalar column tails.
    const SHAPES: &[(usize, usize, usize)] = &[
        (1, 1, 1),
        (4, 4, 4),
        (5, 3, 7),
        (3, 5, 2),
        (8, 6, 9),
        (9, 2, 5),
        (6, 7, 4),
        (4, 9, 16),
        (7, 5, 19),
        (8, 16, 33),
        (5, 32, 40),
    ];

    fn backends() -> Vec<&'static Kernels> {
        let mut v = vec![kernels_for(KernelBackend::Scalar).expect("scalar always present")];
        match kernels_for(KernelBackend::Avx2) {
            Some(k) => v.push(k),
            None => eprintln!("[kernels test] host lacks AVX2+FMA; scalar only"),
        }
        v
    }

    /// Naive i-k-j triple loop with the backend's per-term rounding:
    /// mul+add for scalar, single-rounding `mul_add` for avx2. Each
    /// backend must match its reference bit-for-bit.
    fn reference_matmul(
        backend: KernelBackend,
        a: &[f32],
        b: &[f32],
        m: usize,
        k: usize,
        n: usize,
    ) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for kk in 0..k {
                let aik = a[i * k + kk];
                for j in 0..n {
                    let cur = out[i * n + j];
                    out[i * n + j] = match backend {
                        KernelBackend::Scalar => cur + aik * b[kk * n + j],
                        KernelBackend::Avx2 => aik.mul_add(b[kk * n + j], cur),
                    };
                }
            }
        }
        out
    }

    #[test]
    fn matmul_matches_per_backend_reference_bitwise() {
        for kern in backends() {
            for &(m, k, n) in SHAPES {
                let a = fill(m * k, 37, 17, 8.0, 0.37);
                let b = fill(k * n, 23, 13, 6.0, 0.59);
                let mut out = vec![0.0f32; m * n];
                (kern.matmul)(&a, &b, &mut out, m, k, n);
                let expect = reference_matmul(kern.backend, &a, &b, m, k, n);
                assert_eq!(out, expect, "{} ({m},{k},{n})", kern.backend);
            }
        }
    }

    #[test]
    fn matvec_matches_matmul_bitwise_per_backend() {
        for kern in backends() {
            for &(m, k, _) in SHAPES {
                let a = fill(m * k, 31, 19, 9.0, 0.21);
                let x = fill(k, 29, 11, 5.0, 0.43);
                let mut mv = vec![0.0f32; m];
                let mut mm = vec![0.0f32; m];
                (kern.matvec)(&a, &x, &mut mv, m, k);
                (kern.matmul)(&a, &x, &mut mm, m, k, 1);
                assert_eq!(
                    mv.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    mm.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "{} m={m} k={k}",
                    kern.backend
                );
            }
        }
    }

    #[test]
    fn cross_backend_parity_within_tolerance() {
        // FMA rounds once per term, so backends differ in last ulps but
        // must stay inside the fused-encode parity budget.
        let Some(avx2) = kernels_for(KernelBackend::Avx2) else {
            eprintln!("[kernels test] host lacks AVX2+FMA; skipping");
            return;
        };
        for &(m, k, n) in SHAPES {
            let a = fill(m * k, 41, 23, 11.0, 0.17);
            let b = fill(k * n, 43, 29, 14.0, 0.13);
            let mut s = vec![0.0f32; m * n];
            let mut v = vec![0.0f32; m * n];
            scalar_matmul(&a, &b, &mut s, m, k, n);
            (avx2.matmul)(&a, &b, &mut v, m, k, n);
            for (x, y) in s.iter().zip(&v) {
                assert!((x - y).abs() <= 1e-5, "({m},{k},{n}): {x} vs {y}");
            }
        }
    }

    #[test]
    fn nan_and_inf_propagate_on_every_backend() {
        // PR 4 regression suite, run against each kernel table: no
        // zero-skip means 0·NaN and 0·∞ must reach the output.
        for kern in backends() {
            let a = [0.0, 1.0, 2.0, 3.0];
            let b = [f32::NAN, 4.0, 5.0, 6.0];
            let mut c = vec![0.0f32; 4];
            (kern.matmul)(&a, &b, &mut c, 2, 2, 2);
            assert!(c[0].is_nan(), "{}: 0·NaN must propagate", kern.backend);
            assert!(c[2].is_nan(), "{}", kern.backend);
            assert!(c[1].is_finite(), "{}", kern.backend);

            let mut c = vec![0.0f32; 1];
            (kern.matmul)(&[0.0], &[f32::INFINITY], &mut c, 1, 1, 1);
            assert!(c[0].is_nan(), "{}: 0·∞ must be NaN", kern.backend);
            let mut c = vec![0.0f32; 1];
            (kern.matvec)(&[f32::INFINITY], &[0.0], &mut c, 1, 1);
            assert!(c[0].is_nan(), "{}: matvec 0·∞ must be NaN", kern.backend);

            let mut dst = [0.0f32, 1.0];
            (kern.seg_accum)(&mut dst, &[f32::NAN, 1.0]);
            assert!(dst[0].is_nan() && dst[1] == 2.0, "{}", kern.backend);
        }
    }

    #[test]
    fn seg_accum_bitwise_identical_across_backends() {
        for len in [0usize, 1, 3, 7, 8, 9, 16, 31, 64, 129] {
            let src = fill(len, 53, 31, 15.0, 0.29);
            let base = fill(len, 59, 37, 18.0, 0.31);
            let mut per_backend: Vec<Vec<u32>> = Vec::new();
            for kern in backends() {
                let mut dst = base.clone();
                (kern.seg_accum)(&mut dst, &src);
                per_backend.push(dst.iter().map(|v| v.to_bits()).collect());
            }
            for w in per_backend.windows(2) {
                assert_eq!(w[0], w[1], "len {len}");
            }
        }
    }

    #[test]
    fn env_override_resolution() {
        // `resolve` is pure in its argument, so this avoids mutating the
        // process environment (racy under the parallel test harness).
        assert_eq!(resolve(Some("scalar")).backend, KernelBackend::Scalar);
        let auto = resolve(None).backend;
        assert_eq!(resolve(Some("")).backend, auto);
        assert_eq!(resolve(Some("turbo")).backend, auto);
        if avx2_supported() {
            assert_eq!(resolve(Some("avx2")).backend, KernelBackend::Avx2);
            assert_eq!(auto, KernelBackend::Avx2);
        } else {
            assert_eq!(resolve(Some("avx2")).backend, KernelBackend::Scalar);
            assert_eq!(auto, KernelBackend::Scalar);
        }
    }

    #[test]
    fn empty_and_degenerate_shapes() {
        for kern in backends() {
            let mut out = vec![0.0f32; 0];
            (kern.matmul)(&[], &[], &mut out, 0, 0, 0);
            let mut out = vec![0.0f32; 3];
            (kern.matmul)(&[], &[], &mut out, 3, 0, 1);
            assert_eq!(out, [0.0; 3], "{}: k=0 must leave zeros", kern.backend);
            let mut out = vec![0.0f32; 2];
            (kern.matvec)(&[], &[], &mut out, 2, 0);
            assert_eq!(out, [0.0; 2], "{}", kern.backend);
            (kern.seg_accum)(&mut [], &[]);
        }
    }
}
