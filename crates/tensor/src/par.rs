//! Thread-parallel level kernels: a persistent worker set that
//! row-splits large matmuls.
//!
//! The fused encoder's hot call is `[rows, d] · [d, 4h]` — one matmul
//! per tree level covering every graph in the batch. PR 8 bought
//! per-core FLOPs with AVX2; this module buys the remaining cores. The
//! split is **by output row**: worker `w` computes rows
//! `[w·chunk, (w+1)·chunk)` by calling the *same* dispatched kernel
//! over the same `B` operand. Every output element therefore remains a
//! single ascending-`k` accumulation chain evaluated by exactly one
//! thread — results are bit-identical to the single-threaded kernel,
//! element for element, which keeps the IEEE-strict and
//! fused≡sequential invariants intact (pinned by tests below and in
//! `tensor.rs`).
//!
//! The worker set is hermetic `std::thread` (no rayon): N−1 helpers are
//! spawned lazily on the first qualifying call and then parked on a
//! condvar, CUDA-persistent-kernel style — dispatch is one mutex
//! publish + wake, not a thread spawn. Small products stay on the
//! calling thread (`PAR_MIN_ROWS` / `PAR_MIN_FLOPS`): below the
//! threshold the fan-out costs more than the arithmetic.
//!
//! Worker count: `CCSA_MATMUL_THREADS` if set (0/1 disables), else
//! `min(available cores, 4)` — the encode pool already runs one worker
//! per core, so the per-matmul fan-out stays modest to avoid
//! oversubscription. [`set_threads`] overrides at runtime (benches use
//! it for in-process A/B).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

use crate::kernels::MatmulFn;

/// Fewest output rows worth fanning out.
pub const PAR_MIN_ROWS: usize = 64;
/// Fewest multiply-adds worth fanning out (measured on the encoder
/// shapes: below ~1M the dispatch wake/wait overhead dominates).
pub const PAR_MIN_FLOPS: usize = 1 << 20;

/// Runtime override for the worker count; `usize::MAX` = unset (use
/// the resolved default).
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(usize::MAX);

/// Sets the total parallel ways (including the calling thread) for
/// subsequent [`matmul`] calls. `0` or `1` disables fan-out. Benches
/// use this for in-process before/after measurement; serving uses the
/// resolved default.
pub fn set_threads(ways: usize) {
    // Relaxed: an independent tuning knob read per call; no ordering
    // with the job protocol (which synchronizes via its own mutex).
    THREAD_OVERRIDE.store(ways, Ordering::Relaxed);
}

/// The parallel ways [`matmul`] will use right now.
pub fn threads() -> usize {
    // Relaxed: see set_threads.
    let ov = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if ov != usize::MAX {
        return ov.max(1);
    }
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        if let Ok(v) = std::env::var("CCSA_MATMUL_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                return n.max(1);
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(4)
    })
}

/// One published job: the operand/output addresses plus shape and the
/// kernel to run. Addresses are raw because the workers are persistent
/// (they cannot borrow from the caller's stack frame); validity is
/// guaranteed by the dispatch barrier — see the SAFETY notes at the
/// use sites.
#[derive(Clone, Copy)]
struct Job {
    a: *const f32,
    b: *const f32,
    out: *mut f32,
    m: usize,
    k: usize,
    n: usize,
    kernel: MatmulFn,
    /// Total ways this job is split into (including the caller).
    ways: usize,
}

// SAFETY: Job carries raw pointers across threads by design. The
// dispatch protocol guarantees the pointed-to slices outlive the job:
// the caller publishes the job, computes its own chunk, and then blocks
// until every worker has signalled completion before returning (and
// thus before the borrows the pointers were derived from can end).
// Disjointness: each way touches only its own row range of `out`.
unsafe impl Send for Job {}

/// Coordination state for the persistent worker set.
struct Ctrl {
    /// Monotone job generation; workers run one job per bump.
    generation: u64,
    /// The current job (valid for the current generation).
    job: Option<Job>,
    /// Workers still running the current job.
    remaining: usize,
}

struct Pool {
    ctrl: Mutex<Ctrl>,
    /// Wakes parked workers when a new generation is published.
    start: Condvar,
    /// Wakes the dispatching caller when `remaining` hits zero.
    done: Condvar,
    /// Helper threads actually spawned (ways − 1 at spawn time).
    helpers: usize,
}

/// The lazily spawned process-wide worker set. Helper count is fixed at
/// first use from [`threads`]; later `set_threads` calls can only use
/// up to this many ways.
fn pool() -> Option<&'static Pool> {
    static POOL: OnceLock<Option<Pool>> = OnceLock::new();
    POOL.get_or_init(|| {
        let helpers = threads().saturating_sub(1);
        if helpers == 0 {
            return None;
        }
        let pool = Pool {
            ctrl: Mutex::new(Ctrl {
                generation: 0,
                job: None,
                remaining: 0,
            }),
            start: Condvar::new(),
            done: Condvar::new(),
            helpers,
        };
        // The Pool lives in the OnceLock for the process lifetime, so
        // handing workers a 'static reference is sound once it is set.
        // Spawn after construction via a second OnceLock round-trip is
        // impossible; instead workers receive the reference lazily.
        Some(pool)
    })
    .as_ref()
    .map(|p| {
        spawn_helpers(p);
        p
    })
}

/// Spawns the helper threads exactly once, after the pool has its
/// 'static home in the OnceLock.
fn spawn_helpers(pool: &'static Pool) {
    static SPAWNED: OnceLock<()> = OnceLock::new();
    SPAWNED.get_or_init(|| {
        for ix in 0..pool.helpers {
            std::thread::Builder::new()
                .name(format!("ccsa-par-{ix}"))
                .spawn(move || worker_loop(pool, ix))
                .expect("spawning par_matmul worker");
        }
    });
}

/// The row range way `way` of `ways` covers for an `m`-row output.
fn row_range(m: usize, ways: usize, way: usize) -> (usize, usize) {
    let chunk = m.div_ceil(ways);
    let start = (way * chunk).min(m);
    let end = ((way + 1) * chunk).min(m);
    (start, end)
}

/// Runs `job`'s kernel over one way's row range.
///
/// # Safety
///
/// Caller must guarantee the job's pointers are live and that no other
/// thread touches `out` rows in `[start, end)` — upheld by the dispatch
/// barrier and the disjoint `row_range` split.
// SAFETY: caller discharges the `# Safety` contract above.
unsafe fn run_way(job: &Job, way: usize) {
    let (start, end) = row_range(job.m, job.ways, way);
    if start >= end {
        return;
    }
    let rows = end - start;
    // SAFETY: per the function contract the slices are live for the
    // duration of the job; `a`/`b` are shared read-only, and this way's
    // `out` rows [start, end) are touched by this thread alone.
    let a = unsafe { std::slice::from_raw_parts(job.a.add(start * job.k), rows * job.k) };
    // SAFETY: same contract — `b` is the shared read-only [k, n] operand.
    let b = unsafe { std::slice::from_raw_parts(job.b, job.k * job.n) };
    // SAFETY: same contract — rows [start, end) of `out` are exclusively ours.
    let out = unsafe { std::slice::from_raw_parts_mut(job.out.add(start * job.n), rows * job.n) };
    (job.kernel)(a, b, out, rows, job.k, job.n);
}

/// Helper thread body: park on the condvar, run one way per published
/// generation, signal completion, repeat forever. Threads are daemons —
/// they die with the process.
fn worker_loop(pool: &'static Pool, helper_ix: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut ctrl = pool.ctrl.lock().expect("par pool poisoned");
            while ctrl.generation == seen || ctrl.job.is_none() {
                ctrl = pool.start.wait(ctrl).expect("par pool poisoned");
            }
            seen = ctrl.generation;
            ctrl.job.expect("job published with generation")
        };
        // Helper i covers way i+1 (the caller keeps way 0).
        // SAFETY: the dispatching caller blocks until `remaining` hits
        // zero, so the job's borrows outlive this call; ways are
        // row-disjoint by construction.
        unsafe { run_way(&job, helper_ix + 1) };
        let mut ctrl = pool.ctrl.lock().expect("par pool poisoned");
        ctrl.remaining -= 1;
        if ctrl.remaining == 0 {
            pool.done.notify_all();
        }
    }
}

/// `out = a · b` (`out` arrives zeroed), row-split across the
/// persistent worker set when the product is big enough, else a direct
/// single-threaded kernel call. Bit-identical to `kernel(a, b, out, …)`
/// in every element either way.
pub fn matmul(
    kernel: MatmulFn,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    let ways = threads();
    let big_enough = m >= PAR_MIN_ROWS && m * k * n >= PAR_MIN_FLOPS;
    if ways <= 1 || !big_enough {
        kernel(a, b, out, m, k, n);
        return;
    }
    let Some(pool) = pool() else {
        kernel(a, b, out, m, k, n);
        return;
    };
    // Never split wider than the helpers that exist (set_threads may ask
    // for more after the pool was sized) or than there are rows.
    let ways = ways.min(pool.helpers + 1).min(m);
    if ways <= 1 {
        kernel(a, b, out, m, k, n);
        return;
    }
    let job = Job {
        a: a.as_ptr(),
        b: b.as_ptr(),
        out: out.as_mut_ptr(),
        m,
        k,
        n,
        kernel,
        ways,
    };
    {
        let mut ctrl = pool.ctrl.lock().expect("par pool poisoned");
        ctrl.generation += 1;
        ctrl.job = Some(job);
        // Helpers beyond `ways − 1` see an empty row range and finish
        // immediately; count them all so `remaining` bookkeeping stays
        // uniform.
        ctrl.remaining = pool.helpers;
        pool.start.notify_all();
    }
    // The caller is way 0.
    // SAFETY: `job`'s pointers come from the live `a`/`b`/`out` borrows
    // held across this whole function; way 0's rows are disjoint from
    // every helper's.
    unsafe { run_way(&job, 0) };
    let mut ctrl = pool.ctrl.lock().expect("par pool poisoned");
    while ctrl.remaining > 0 {
        ctrl = pool.done.wait(ctrl).expect("par pool poisoned");
    }
    // Drop the job so late-waking helpers of *this* generation never
    // observe it again (they already ran; this is belt-and-braces for
    // the next generation's publish).
    ctrl.job = None;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels;

    fn fill(data: &mut [f32], mut state: u64) {
        for v in data.iter_mut() {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let bits = (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as u32;
            *v = (bits as f32 / (1u32 << 24) as f32) - 0.5;
        }
    }

    #[test]
    fn row_ranges_partition_exactly() {
        for m in [1usize, 7, 63, 64, 100, 257] {
            for ways in 1..6 {
                let mut covered = 0;
                for w in 0..ways {
                    let (s, e) = row_range(m, ways, w);
                    assert_eq!(s, covered.min(m));
                    covered = e;
                }
                assert_eq!(covered, m, "m={m} ways={ways}");
            }
        }
    }

    #[test]
    fn par_matmul_is_bit_identical_to_single_thread() {
        // Force fan-out past the thresholds and compare against the
        // plain kernel call element-for-element (exact bit equality).
        let kern = kernels::active().matmul;
        for &(m, k, n) in &[(64usize, 64usize, 256usize), (130, 48, 200), (257, 33, 129)] {
            let mut a = vec![0.0f32; m * k];
            let mut b = vec![0.0f32; k * n];
            fill(&mut a, 0x1234_5678_9ABC_DEF0 ^ m as u64);
            fill(&mut b, 0x0F1E_2D3C_4B5A_6978 ^ n as u64);
            let mut single = vec![0.0f32; m * n];
            kern(&a, &b, &mut single, m, k, n);

            set_threads(4);
            let mut par_out = vec![0.0f32; m * n];
            // Bypass the size gate by calling the split path directly
            // through the public entry (these shapes pass the gate).
            matmul(kern, &a, &b, &mut par_out, m, k, n);
            set_threads(usize::MAX); // back to the resolved default

            assert!(
                single
                    .iter()
                    .zip(&par_out)
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "par_matmul diverged from single-thread at ({m},{k},{n})"
            );
        }
    }

    #[test]
    fn nan_and_inf_propagate_through_the_split() {
        let kern = kernels::active().matmul;
        let (m, k, n) = (64usize, 16usize, 1024usize);
        let mut a = vec![0.0f32; m * k];
        fill(&mut a, 7);
        a[0] = f32::NAN; // row 0 (caller's way)
        a[(m - 1) * k] = f32::NAN; // last row (a helper's way)
        let b = vec![1.0f32; k * n];
        set_threads(3);
        let mut out = vec![0.0f32; m * n];
        matmul(kern, &a, &b, &mut out, m, k, n);
        set_threads(usize::MAX);
        assert!(out[0].is_nan());
        assert!(out[(m - 1) * n].is_nan());
    }

    #[test]
    fn small_products_stay_single_threaded() {
        // Below the gates the call must not touch the pool at all —
        // equivalent here: results still match the plain kernel.
        let kern = kernels::active().matmul;
        let (m, k, n) = (8usize, 8usize, 8usize);
        let a = vec![1.0f32; m * k];
        let b = vec![2.0f32; k * n];
        let mut out = vec![0.0f32; m * n];
        matmul(kern, &a, &b, &mut out, m, k, n);
        assert!(out.iter().all(|&v| v == 16.0));
    }
}
