//! The dense `f32` tensor type.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

use crate::kernels;
use crate::{pool, Shape};

/// The pooled backing store behind every [`Tensor`]: a plain `Vec<f32>`
/// whose storage returns to the [`crate::pool`] free lists when the
/// last `Arc` handle drops. Copy-on-write clones (via
/// [`Arc::make_mut`]) also draw their new buffer from the pool, so in
/// steady state tensor traffic never touches the global allocator.
pub(crate) struct PoolBuf(Vec<f32>);

impl PoolBuf {
    #[inline]
    fn new(data: Vec<f32>) -> PoolBuf {
        PoolBuf(data)
    }

    #[inline]
    fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.0
    }
}

impl Deref for PoolBuf {
    type Target = [f32];

    #[inline]
    fn deref(&self) -> &[f32] {
        &self.0
    }
}

impl std::ops::DerefMut for PoolBuf {
    #[inline]
    fn deref_mut(&mut self) -> &mut [f32] {
        &mut self.0
    }
}

impl Clone for PoolBuf {
    fn clone(&self) -> PoolBuf {
        PoolBuf(pool::take_copy(&self.0))
    }
}

impl Drop for PoolBuf {
    fn drop(&mut self) {
        pool::put(std::mem::take(&mut self.0));
    }
}

impl PartialEq for PoolBuf {
    fn eq(&self, other: &PoolBuf) -> bool {
        self.0 == other.0
    }
}

/// A dense, row-major, immutable-by-default `f32` tensor of rank ≤ 2.
///
/// `Tensor` is backed by an [`Arc`], so cloning is O(1); mutation goes
/// through [`Tensor::make_mut`] which copies only when the buffer is shared
/// (copy-on-write). This makes it cheap to inject shared model parameters
/// into many per-example computation graphs, which is the dominant pattern
/// in tree-structured model training.
///
/// # Example
///
/// ```
/// use ccsa_tensor::Tensor;
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
/// let b = Tensor::eye(2);
/// let c = a.matmul(&b);
/// assert_eq!(c.as_slice(), a.as_slice());
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Arc<PoolBuf>,
}

impl Tensor {
    /// Creates a tensor from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the number of elements implied
    /// by `shape`.
    pub fn from_vec(data: Vec<f32>, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        assert_eq!(
            data.len(),
            shape.len(),
            "tensor data length {} does not match shape {shape}",
            data.len()
        );
        Tensor {
            shape,
            data: Arc::new(PoolBuf::new(data)),
        }
    }

    /// Creates a rank-0 tensor holding a single value.
    pub fn scalar(value: f32) -> Tensor {
        Tensor {
            shape: Shape::SCALAR,
            data: Arc::new(PoolBuf::new(vec![value])),
        }
    }

    /// Creates a tensor of zeros (buffer drawn from the pool).
    pub fn zeros(shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        Tensor {
            shape,
            data: Arc::new(PoolBuf::new(pool::take_zeroed(shape.len()))),
        }
    }

    /// Creates a tensor of ones.
    pub fn ones(shape: impl Into<Shape>) -> Tensor {
        Tensor::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value` (buffer drawn from the pool).
    pub fn full(shape: impl Into<Shape>, value: f32) -> Tensor {
        let shape = shape.into();
        Tensor {
            shape,
            data: Arc::new(PoolBuf::new(pool::take_filled(shape.len(), value))),
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn eye(n: usize) -> Tensor {
        let mut data = pool::take_zeroed(n * n);
        for i in 0..n {
            data[i * n + i] = 1.0;
        }
        Tensor::from_vec(data, [n, n])
    }

    /// The shape of the tensor.
    #[inline]
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.shape.len()
    }

    /// `true` if the tensor holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.shape.is_empty()
    }

    /// The underlying elements in row-major order.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the elements, copying the buffer first if it is
    /// shared (copy-on-write).
    pub fn make_mut(&mut self) -> &mut [f32] {
        // `Arc::make_mut` clones through `PoolBuf::clone` when shared,
        // so even the CoW copy is a pooled buffer.
        Arc::make_mut(&mut self.data).as_mut_slice()
    }

    /// The single value of a rank-0 or one-element tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(self.len(), 1, "item() on tensor of shape {}", self.shape);
        self.data[0]
    }

    /// Element at `(row, col)` of a matrix.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or indices are out of bounds.
    #[inline]
    pub fn at(&self, row: usize, col: usize) -> f32 {
        assert_eq!(
            self.shape.rank(),
            2,
            "at() on tensor of shape {}",
            self.shape
        );
        let cols = self.shape.cols();
        assert!(
            row < self.shape.rows() && col < cols,
            "index ({row},{col}) out of bounds for {}",
            self.shape
        );
        self.data[row * cols + col]
    }

    /// A copy of row `r` of a matrix as a vector tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or `r` is out of bounds.
    pub fn row(&self, r: usize) -> Tensor {
        assert_eq!(
            self.shape.rank(),
            2,
            "row() on tensor of shape {}",
            self.shape
        );
        let cols = self.shape.cols();
        assert!(
            r < self.shape.rows(),
            "row {r} out of bounds for {}",
            self.shape
        );
        Tensor::from_vec(
            pool::take_copy(&self.data[r * cols..(r + 1) * cols]),
            [cols],
        )
    }

    /// Reshapes without copying element data.
    ///
    /// # Panics
    ///
    /// Panics if the new shape has a different number of elements.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        assert_eq!(
            shape.len(),
            self.len(),
            "cannot reshape {} into {shape}",
            self.shape
        );
        Tensor {
            shape,
            data: Arc::clone(&self.data),
        }
    }

    /// Applies `f` elementwise, producing a new tensor (pooled buffer).
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let mut out = pool::take_cap(self.len());
        out.extend(self.data.iter().map(|&x| f(x)));
        Tensor {
            shape: self.shape,
            data: Arc::new(PoolBuf::new(out)),
        }
    }

    /// Elementwise binary combination of two same-shape tensors.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(
            self.shape, other.shape,
            "shape mismatch: {} vs {}",
            self.shape, other.shape
        );
        let mut out = pool::take_cap(self.len());
        out.extend(
            self.data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b)),
        );
        Tensor {
            shape: self.shape,
            data: Arc::new(PoolBuf::new(out)),
        }
    }

    /// Elementwise sum.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a + b)
    }

    /// Elementwise difference.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a * b)
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// In-place `self += alpha * other` (copy-on-write if shared).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(
            self.shape, other.shape,
            "shape mismatch: {} vs {}",
            self.shape, other.shape
        );
        let dst = Arc::make_mut(&mut self.data);
        for (d, &s) in dst.iter_mut().zip(other.data.iter()) {
            *d += alpha * s;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements (0.0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Dot product of two equally sized tensors viewed as flat vectors.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(
            self.len(),
            other.len(),
            "dot length mismatch: {} vs {}",
            self.shape,
            other.shape
        );
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| a * b)
            .sum()
    }

    /// Euclidean (L2) norm of the flattened tensor.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Matrix transpose (copies).
    ///
    /// Vectors are interpreted as column vectors, so their transpose is a
    /// `1 × n` matrix.
    pub fn t(&self) -> Tensor {
        match self.shape.rank() {
            0 => self.clone(),
            1 => self.reshape([1, self.len()]),
            _ => {
                let (r, c) = (self.shape.rows(), self.shape.cols());
                let mut out = pool::take_zeroed(r * c);
                for i in 0..r {
                    for j in 0..c {
                        out[j * r + i] = self.data[i * c + j];
                    }
                }
                Tensor::from_vec(out, [c, r])
            }
        }
    }

    /// Matrix–matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics unless `self` is `[m, k]` and `other` is `[k, n]`.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.shape.rank(),
            2,
            "matmul lhs must be rank 2, got {}",
            self.shape
        );
        assert_eq!(
            other.shape.rank(),
            2,
            "matmul rhs must be rank 2, got {}",
            other.shape
        );
        let (m, k) = (self.shape.rows(), self.shape.cols());
        let (k2, n) = (other.shape.rows(), other.shape.cols());
        assert_eq!(
            k, k2,
            "matmul inner dimension mismatch: {} vs {}",
            self.shape, other.shape
        );
        let mut out = pool::take_zeroed(m * n);
        // Dispatched kernel (see [`crate::kernels`]): blocked IEEE-strict
        // scalar loops or AVX2+FMA, resolved once at first use. Both
        // backends accumulate k-ascending per output element, so results
        // are bit-identical to `matvec`'s dot products under the same
        // backend — and neither zero-skips: `0 · NaN` and `0 · ∞` must
        // produce NaN (IEEE-754), not silently vanish. Above a measured
        // row threshold the product row-splits across the persistent
        // worker set (see [`crate::par`]) — each output row still runs
        // the same kernel over the same data, so every element keeps its
        // single ascending-k chain bit-identically.
        crate::par::matmul(
            kernels::active().matmul,
            &self.data,
            &other.data,
            &mut out,
            m,
            k,
            n,
        );
        Tensor::from_vec(out, [m, n])
    }

    /// Matrix–vector product `self · x`.
    ///
    /// # Panics
    ///
    /// Panics unless `self` is `[m, k]` and `x` is a vector of length `k`.
    pub fn matvec(&self, x: &Tensor) -> Tensor {
        assert_eq!(
            self.shape.rank(),
            2,
            "matvec lhs must be rank 2, got {}",
            self.shape
        );
        assert_eq!(
            x.shape.rank(),
            1,
            "matvec rhs must be rank 1, got {}",
            x.shape
        );
        let (m, k) = (self.shape.rows(), self.shape.cols());
        assert_eq!(
            k,
            x.len(),
            "matvec dimension mismatch: {} vs {}",
            self.shape,
            x.shape
        );
        let mut out = pool::take_zeroed(m);
        (kernels::active().matvec)(&self.data, &x.data, &mut out, m, k);
        Tensor::from_vec(out, [m])
    }

    /// Outer product of two vectors: `[m] ⊗ [n] → [m, n]`.
    ///
    /// # Panics
    ///
    /// Panics unless both tensors are rank 1.
    pub fn outer(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.shape.rank(),
            1,
            "outer lhs must be rank 1, got {}",
            self.shape
        );
        assert_eq!(
            other.shape.rank(),
            1,
            "outer rhs must be rank 1, got {}",
            other.shape
        );
        let (m, n) = (self.len(), other.len());
        let mut out = pool::take_zeroed(m * n);
        // No zero-skip: 0 · NaN / 0 · ∞ must stay NaN (IEEE-754).
        for i in 0..m {
            let a = self.data[i];
            for j in 0..n {
                out[i * n + j] = a * other.data[j];
            }
        }
        Tensor::from_vec(out, [m, n])
    }

    /// Maximum absolute difference to another tensor of identical shape.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(
            self.shape, other.shape,
            "shape mismatch: {} vs {}",
            self.shape, other.shape
        );
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

impl Default for Tensor {
    /// A rank-0 zero tensor.
    fn default() -> Tensor {
        Tensor::scalar(0.0)
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        if self.len() <= 16 {
            write!(f, "{:?}", self.as_slice())
        } else {
            write!(
                f,
                "[{}, … ; {} elems]",
                self.data[..4]
                    .iter()
                    .map(|x| format!("{x:.4}"))
                    .collect::<Vec<_>>()
                    .join(", "),
                self.len()
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]);
        assert_eq!(t.at(0, 0), 1.0);
        assert_eq!(t.at(1, 2), 6.0);
        assert_eq!(t.row(1).as_slice(), &[4.0, 5.0, 6.0]);
        assert_eq!(t.len(), 6);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn bad_construction_panics() {
        let _ = Tensor::from_vec(vec![1.0, 2.0], [3]);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0], [2]);
        let b = Tensor::from_vec(vec![3.0, 5.0], [2]);
        assert_eq!(a.add(&b).as_slice(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).as_slice(), &[2.0, 3.0]);
        assert_eq!(a.mul(&b).as_slice(), &[3.0, 10.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0]);
        assert_eq!(a.dot(&b), 13.0);
    }

    #[test]
    fn matmul_against_hand_computed() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], [2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Tensor::from_vec((0..12).map(|x| x as f32).collect(), [3, 4]);
        assert_eq!(a.matmul(&Tensor::eye(4)).as_slice(), a.as_slice());
        assert_eq!(Tensor::eye(3).matmul(&a).as_slice(), a.as_slice());
    }

    #[test]
    fn matmul_matches_reference_kernel_all_block_shapes() {
        // The dispatched kernel must agree bit-for-bit with a naive i-k-j
        // triple loop in the active backend's per-term rounding (mul+add
        // for scalar, single-rounding `mul_add` for avx2), across row
        // counts that hit the blocked/vector paths, the remainder rows,
        // and column counts that hit the unrolled and remainder j paths.
        let backend = kernels::active().backend;
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (4, 4, 4),
            (5, 3, 7),
            (3, 5, 2),
            (8, 6, 9),
            (9, 2, 5),
            (6, 7, 4),
            (4, 9, 16),
            (7, 5, 19),
            (8, 16, 33),
        ] {
            let a = Tensor::from_vec(
                (0..m * k)
                    .map(|x| ((x * 37 % 17) as f32 - 8.0) * 0.37)
                    .collect(),
                [m, k],
            );
            let b = Tensor::from_vec(
                (0..k * n)
                    .map(|x| ((x * 23 % 13) as f32 - 6.0) * 0.59)
                    .collect(),
                [k, n],
            );
            let c = a.matmul(&b);
            let mut expect = vec![0.0f32; m * n];
            for i in 0..m {
                for kk in 0..k {
                    let aik = a.as_slice()[i * k + kk];
                    for j in 0..n {
                        let term = b.as_slice()[kk * n + j];
                        let cur = expect[i * n + j];
                        expect[i * n + j] = match backend {
                            kernels::KernelBackend::Scalar => cur + aik * term,
                            kernels::KernelBackend::Avx2 => aik.mul_add(term, cur),
                        };
                    }
                }
            }
            assert_eq!(c.as_slice(), &expect[..], "({m},{k},{n}) [{backend}]");
        }
    }

    #[test]
    fn matmul_propagates_nan_and_inf() {
        // Regression: the old kernel skipped k-terms where a[i][k] == 0,
        // silently converting 0·NaN and 0·∞ into 0 — so a NaN escaping
        // one gate was masked instead of reaching the loss. Either
        // operand's non-finite values must reach the output.
        let a = Tensor::from_vec(vec![0.0, 1.0, 2.0, 3.0], [2, 2]);
        let b = Tensor::from_vec(vec![f32::NAN, 4.0, 5.0, 6.0], [2, 2]);
        let c = a.matmul(&b);
        assert!(c.at(0, 0).is_nan(), "0·NaN must propagate, got {c:?}");
        assert!(c.at(1, 0).is_nan());
        assert!(c.at(0, 1).is_finite());

        let a_nan = Tensor::from_vec(vec![f32::NAN, 0.0], [1, 2]);
        let fin = Tensor::from_vec(vec![0.0, 2.0, 3.0, 4.0], [2, 2]);
        let c = a_nan.matmul(&fin);
        assert!(c.at(0, 0).is_nan() && c.at(0, 1).is_nan());

        let zero = Tensor::from_vec(vec![0.0], [1, 1]);
        let inf = Tensor::from_vec(vec![f32::INFINITY], [1, 1]);
        assert!(zero.matmul(&inf).item().is_nan(), "0·∞ must be NaN");
        assert!(inf.matmul(&zero).item().is_nan());

        // And matmul must agree with matvec on the same poisoned data.
        let w = Tensor::from_vec(vec![0.0, 1.0, 2.0, 0.0], [2, 2]);
        let x = Tensor::from_vec(vec![f32::NAN, 1.0], [2]);
        let mv = w.matvec(&x);
        let mm = w.matmul(&x.reshape([2, 1]));
        for (a, b) in mv.as_slice().iter().zip(mm.as_slice()) {
            assert_eq!(a.is_nan(), b.is_nan(), "matmul/matvec IEEE divergence");
        }
        assert!(mv.as_slice()[0].is_nan(), "0·NaN row must be NaN");
    }

    #[test]
    fn outer_propagates_nan_through_zero() {
        let a = Tensor::from_vec(vec![0.0, 1.0], [2]);
        let b = Tensor::from_vec(vec![f32::NAN, 2.0], [2]);
        let o = a.outer(&b);
        assert!(o.at(0, 0).is_nan());
        assert!(o.at(1, 1) == 2.0);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Tensor::from_vec(vec![1.0, -2.0, 0.5, 3.0, 0.0, 1.0], [2, 3]);
        let x = Tensor::from_vec(vec![2.0, 1.0, -1.0], [3]);
        let mv = a.matvec(&x);
        let mm = a.matmul(&x.reshape([3, 1]));
        assert_eq!(mv.as_slice(), mm.as_slice());
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), [2, 3]);
        let att = a.t().t();
        assert_eq!(att.shape(), a.shape());
        assert_eq!(att.as_slice(), a.as_slice());
    }

    #[test]
    fn outer_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0], [2]);
        let b = Tensor::from_vec(vec![3.0, 4.0, 5.0], [3]);
        let o = a.outer(&b);
        assert_eq!(o.shape().dims(), &[2, 3]);
        assert_eq!(o.as_slice(), &[3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    fn copy_on_write_isolation() {
        let a = Tensor::zeros([3]);
        let mut b = a.clone();
        b.make_mut()[0] = 9.0;
        assert_eq!(a.as_slice(), &[0.0, 0.0, 0.0]);
        assert_eq!(b.as_slice(), &[9.0, 0.0, 0.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::ones([2]);
        let b = Tensor::from_vec(vec![2.0, 3.0], [2]);
        a.axpy(0.5, &b);
        assert_eq!(a.as_slice(), &[2.0, 2.5]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [4]);
        assert_eq!(t.sum(), 10.0);
        assert_eq!(t.mean(), 2.5);
        assert!((t.norm() - 30.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(3.5).item(), 3.5);
    }

    #[test]
    fn debug_never_empty() {
        assert!(!format!("{:?}", Tensor::zeros([0])).is_empty());
        assert!(!format!("{:?}", Tensor::zeros([100])).is_empty());
    }
}
