//! Finite-difference gradient verification.

use crate::{Tape, Tensor, Var};

/// Outcome of a [`grad_check`] run: the worst relative error observed and
/// where it occurred.
#[derive(Debug, Clone, PartialEq)]
pub struct GradCheckReport {
    /// Largest relative error across all checked coordinates.
    pub max_rel_error: f32,
    /// Index of the input tensor where the worst error occurred.
    pub worst_input: usize,
    /// Flat element index within that input.
    pub worst_coord: usize,
}

impl GradCheckReport {
    /// `true` when the worst relative error is below `tol`.
    pub fn passes(&self, tol: f32) -> bool {
        self.max_rel_error < tol
    }
}

/// Verifies analytic gradients against central finite differences.
///
/// `f` must build a scalar loss on the provided tape from leaf variables
/// created from `inputs` (in order). The analytic gradient of every input is
/// compared against `(f(x+h) − f(x−h)) / 2h` coordinate by coordinate.
///
/// Relative error uses the standard symmetric denominator
/// `max(1e-3, |analytic| + |numeric|)` so that near-zero gradients do not
/// produce spurious failures in `f32`.
///
/// # Panics
///
/// Panics if `f` returns a non-scalar.
pub fn grad_check(
    inputs: &[Tensor],
    epsilon: f32,
    f: impl for<'a> Fn(&'a Tape, &'a [Var<'a>]) -> TapeScalar<'a>,
) -> GradCheckReport {
    // It is awkward to return a Var tied to a local tape from a closure, so
    // `f` receives the tape and returns the loss var bundled with it.
    let analytic: Vec<Tensor> = {
        let tape = Tape::new();
        let vars: Vec<Var<'_>> = inputs.iter().map(|t| tape.leaf(t.clone())).collect();
        let loss = f(&tape, &vars).0;
        let grads = tape.backward(loss);
        vars.iter().map(|v| grads.get_or_zeros(*v)).collect()
    };

    let eval = |perturbed: &[Tensor]| -> f32 {
        let tape = Tape::new();
        let vars: Vec<Var<'_>> = perturbed.iter().map(|t| tape.leaf(t.clone())).collect();
        f(&tape, &vars).0.value().item()
    };

    let mut report = GradCheckReport {
        max_rel_error: 0.0,
        worst_input: 0,
        worst_coord: 0,
    };
    for (i, input) in inputs.iter().enumerate() {
        for c in 0..input.len() {
            let mut plus: Vec<Tensor> = inputs.to_vec();
            plus[i].make_mut()[c] += epsilon;
            let mut minus: Vec<Tensor> = inputs.to_vec();
            minus[i].make_mut()[c] -= epsilon;
            let numeric = (eval(&plus) - eval(&minus)) / (2.0 * epsilon);
            let a = analytic[i].as_slice()[c];
            let denom = (a.abs() + numeric.abs()).max(1e-3);
            let rel = (a - numeric).abs() / denom;
            if rel > report.max_rel_error {
                report = GradCheckReport {
                    max_rel_error: rel,
                    worst_input: i,
                    worst_coord: c,
                };
            }
        }
    }
    report
}

/// A scalar loss variable returned from a [`grad_check`] closure.
///
/// Wrapping the [`Var`] lets the closure signature express "a var borrowed
/// from the tape you handed me" without naming the lifetime at the call
/// site.
pub struct TapeScalar<'t>(pub Var<'t>);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_chain_passes() {
        let w = Tensor::from_vec(vec![0.3, -0.2, 0.7, 0.1, 0.5, -0.4], [2, 3]);
        let x = Tensor::from_vec(vec![1.0, -2.0, 0.5], [3]);
        let b = Tensor::from_vec(vec![0.1, -0.1], [2]);
        let report = grad_check(&[w, x, b], 1e-2, |_tape, vars| {
            TapeScalar(vars[0].affine(vars[1], vars[2]).tanh().sum())
        });
        assert!(report.passes(1e-2), "gradient check failed: {report:?}");
    }

    #[test]
    fn sigmoid_mul_passes() {
        let a = Tensor::from_vec(vec![0.5, -1.5, 2.0], [3]);
        let b = Tensor::from_vec(vec![-0.3, 0.8, 0.2], [3]);
        let report = grad_check(&[a, b], 1e-2, |_tape, vars| {
            TapeScalar(vars[0].sigmoid().mul(vars[1].tanh()).sum())
        });
        assert!(report.passes(1e-2), "gradient check failed: {report:?}");
    }

    #[test]
    fn bce_with_logits_passes() {
        let z = Tensor::from_vec(vec![0.37], [1]);
        let report = grad_check(&[z], 1e-3, |_tape, vars| {
            TapeScalar(vars[0].sum().bce_with_logits(1.0))
        });
        assert!(report.passes(1e-2), "gradient check failed: {report:?}");
    }
}
