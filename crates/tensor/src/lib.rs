//! Dense `f32` tensors and tape-based reverse-mode automatic differentiation.
//!
//! This crate is the numerical substrate of the CCSA workspace. The paper's
//! models (child-sum tree-LSTMs, GCNs, linear classifiers) were originally
//! built on PyTorch; here we provide the minimal but complete set of
//! differentiable operations those architectures need, implemented from
//! scratch:
//!
//! * [`Tensor`] — an immutable, cheaply cloneable (`Arc`-backed), row-major
//!   `f32` tensor of rank 0, 1 or 2.
//! * [`Tape`] / [`Var`] — a dynamic computation graph ("tape") recording
//!   every operation, with [`Tape::backward`] producing gradients for every
//!   recorded variable. Dynamic graphs are essential here because every AST
//!   has a different shape, so the tree-LSTM circuit differs per example.
//! * [`grad_check`] — central-finite-difference gradient verification used
//!   throughout the test suite.
//! * [`kernels`] — the explicit SIMD layer underneath it all: blocked
//!   scalar reference kernels plus AVX2+FMA implementations of
//!   matmul / matvec / segment-sum row accumulation, resolved once at
//!   first use via runtime feature detection (`CCSA_KERNEL=scalar|avx2`
//!   overrides for A/B testing).
//!
//! # Example
//!
//! ```
//! use ccsa_tensor::{Tape, Tensor};
//!
//! let tape = Tape::new();
//! let w = tape.leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]));
//! let x = tape.leaf(Tensor::from_vec(vec![0.5, -1.0], [2]));
//! let y = w.matvec(x).tanh().sum();
//! let grads = tape.backward(y);
//! assert_eq!(grads.get(w).shape().dims(), &[2, 2]);
//! ```

mod grad_check;
pub mod kernels;
pub mod par;
pub mod pool;
mod shape;
mod tape;
mod tensor;

pub use grad_check::{grad_check, GradCheckReport, TapeScalar};
pub use kernels::{KernelBackend, Kernels};
pub use pool::PoolStats;
pub use shape::Shape;
pub use tape::{Adjacency, Gradients, Tape, Var};
pub use tensor::Tensor;
