//! `ccsa-fleet` — the front tier and control plane in front of N
//! gateway replicas.
//!
//! One fleet process gives a replica set a single address, sticky
//! consistent-hash routing, transparent failover, tail-latency hedging,
//! health-based ejection, and a hot-reloadable routing table driven by
//! an automated canary controller:
//!
//! ```text
//!                        clients (TCP JSON-lines / HTTP)
//!                                     │
//!                 ┌───────────────────▼───────────────────┐
//!                 │                 fleet                  │
//!                 │  ring ──── consistent hash on client   │
//!                 │  hedge ─── 2nd attempt at p99 deadline │
//!                 │  probe ─── /readyz rise/fall ejection  │
//!                 │  table ─── watch + validate + push     │
//!                 │  canary ── delta scrape → ramp/rollback│
//!                 └──┬───────────────┬───────────────┬────┘
//!                    │ keep-alive    │               │
//!              ┌─────▼────┐    ┌─────▼────┐    ┌─────▼────┐
//!              │ gateway 0 │    │ gateway 1 │    │ gateway N │
//!              └──────────┘    └──────────┘    └──────────┘
//! ```
//!
//! The data plane is transparent by construction — request and response
//! lines cross the fleet as raw bytes — so a `compare`/`rank` routed
//! through the fleet returns a byte-identical body to one sent at a
//! replica directly. The modules:
//!
//! * [`ring`] — the deterministic consistent-hash ring (vnodes, ~1/N
//!   remap on membership change);
//! * [`replica`] — per-replica health word and keep-alive connection
//!   pool;
//! * [`table`] — the validated, atomically-rewritten routing-table
//!   file and its `reload_routes` push form;
//! * [`canary`] — the pure promote/hold/rollback decision logic over
//!   shadow-vs-primary deltas;
//! * [`server`] — the accept loops, forwarding (hedge + failover),
//!   prober, table watcher, canary driver, and `ccsa_fleet_*` metrics.

pub mod canary;
pub mod replica;
pub mod ring;
pub mod server;
pub mod table;

pub use canary::{Canary, CanaryConfig, CanaryPhase, Decision, DeltaSample, RAMP};
pub use replica::{Replica, ReplicaConfig};
pub use ring::{Ring, VNODES};
pub use server::{Fleet, FleetConfig, FleetHandle, SpawnedFleet};
pub use table::{load as load_table, parse as parse_table, write_atomic, TableSpec};
