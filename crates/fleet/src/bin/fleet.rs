//! The `fleet` binary: front tier + control plane for N gateways.
//!
//! ```sh
//! # Two replicas, hedging at 25 ms, canary controller on a table file:
//! fleet --port 0 --port-file /tmp/fleet.port \
//!       --replica 127.0.0.1:7171,127.0.0.1:7180,gw-0 \
//!       --replica 127.0.0.1:7172,127.0.0.1:7181,gw-1 \
//!       --hedge-ms 25 --routes-file ./routes.json --canary
//!
//! # Clients speak the same JSON-lines protocol as to a gateway, plus
//! # the fleet-local 'fleet' stats verb:
//! printf '{"op":"fleet"}\n' | nc 127.0.0.1 $(cat /tmp/fleet.port)
//! ```

use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::Duration;

use ccsa_fleet::{CanaryConfig, Fleet, FleetConfig, ReplicaConfig};
use ccsa_gateway::signal;

struct Options {
    addr: String,
    port: u16,
    port_file: Option<PathBuf>,
    http_port: Option<u16>,
    http_port_file: Option<PathBuf>,
    replicas: Vec<ReplicaConfig>,
    config: FleetConfig,
    canary_on: bool,
}

fn usage_abort(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: fleet --replica TCP_ADDR,HTTP_ADDR[,ID] [--replica ...]...\n\
         \x20            [--addr HOST] [--port N] [--port-file PATH]\n\
         \x20            [--http-port N] [--http-port-file PATH]\n\
         \x20            [--hedge-ms N] [--forward-timeout SECS]\n\
         \x20            [--probe-interval-ms N] [--probe-rise N] [--probe-fall N]\n\
         \x20            [--probe-timeout-ms N]\n\
         \x20            [--routes-file PATH] [--table-poll-ms N]\n\
         \x20            [--canary] [--canary-interval-ms N] [--canary-bake N]\n\
         \x20            [--canary-rollback-after N] [--canary-max-p99-delta MS]\n\
         \x20            [--canary-max-error-delta F]\n\
         \x20            [--max-conns N] [--allow-remote-shutdown]\n\
         \n\
         Front tier for a set of gateway replicas: one address, sticky\n\
         consistent-hash routing on the 'client' key, transparent\n\
         failover, tail hedging (--hedge-ms, typically the replica p99),\n\
         /readyz health ejection with rise/fall hysteresis, and a\n\
         hot-reloadable routing table (--routes-file) pushed to every\n\
         replica via 'reload_routes'. --canary watches each replica's\n\
         shadow-vs-primary deltas and ramps the shadow candidate\n\
         1%->10%->50%->100% (or rolls it back to weight 0) by rewriting\n\
         the table — no process restarts. --probe-interval-ms 0 turns\n\
         the prober off. The HTTP front serves GET /healthz, /readyz,\n\
         /metrics, /v1/fleet and POST /v1/compare + /v1/rank."
    );
    std::process::exit(2);
}

fn parse_socket(spec: &str, what: &str) -> SocketAddr {
    spec.parse()
        .unwrap_or_else(|_| usage_abort(&format!("bad {what} address '{spec}'")))
}

fn parse_options() -> Options {
    let mut opts = Options {
        addr: "127.0.0.1".to_string(),
        port: 7272,
        port_file: None,
        http_port: None,
        http_port_file: None,
        replicas: Vec::new(),
        config: FleetConfig::default(),
        canary_on: false,
    };
    let mut canary = CanaryConfig::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i)
                .cloned()
                .unwrap_or_else(|| usage_abort("missing argument value"))
        };
        let millis = |i: &mut usize, what: &str| -> u64 {
            value(i)
                .parse()
                .unwrap_or_else(|_| usage_abort(&format!("bad {what}")))
        };
        match args[i].as_str() {
            "--addr" => opts.addr = value(&mut i),
            "--port" => {
                opts.port = value(&mut i)
                    .parse()
                    .unwrap_or_else(|_| usage_abort("bad --port"))
            }
            "--port-file" => opts.port_file = Some(PathBuf::from(value(&mut i))),
            "--http-port" => {
                opts.http_port = Some(
                    value(&mut i)
                        .parse()
                        .unwrap_or_else(|_| usage_abort("bad --http-port")),
                )
            }
            "--http-port-file" => opts.http_port_file = Some(PathBuf::from(value(&mut i))),
            "--replica" => {
                let spec = value(&mut i);
                let parts: Vec<&str> = spec.split(',').collect();
                let (tcp, http, id) = match parts.as_slice() {
                    [tcp, http] => (*tcp, *http, format!("replica-{}", opts.replicas.len())),
                    [tcp, http, id] if !id.is_empty() => (*tcp, *http, (*id).to_string()),
                    _ => usage_abort(&format!(
                        "--replica '{spec}' needs the form TCP_ADDR,HTTP_ADDR[,ID]"
                    )),
                };
                opts.replicas.push(ReplicaConfig {
                    id,
                    addr: parse_socket(tcp, "--replica TCP"),
                    http_addr: parse_socket(http, "--replica HTTP"),
                });
            }
            "--hedge-ms" => {
                opts.config.hedge_after = Some(Duration::from_millis(millis(&mut i, "--hedge-ms")))
            }
            "--forward-timeout" => {
                opts.config.forward_timeout =
                    Duration::from_secs(millis(&mut i, "--forward-timeout"))
            }
            "--probe-interval-ms" => {
                let ms = millis(&mut i, "--probe-interval-ms");
                opts.config.probe_interval = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--probe-rise" => {
                opts.config.probe_rise = millis(&mut i, "--probe-rise") as u32;
            }
            "--probe-fall" => {
                opts.config.probe_fall = millis(&mut i, "--probe-fall") as u32;
            }
            "--probe-timeout-ms" => {
                opts.config.probe_timeout =
                    Duration::from_millis(millis(&mut i, "--probe-timeout-ms"))
            }
            "--routes-file" => {
                opts.config.routes_file = Some(PathBuf::from(value(&mut i)));
            }
            "--table-poll-ms" => {
                opts.config.table_poll = Duration::from_millis(millis(&mut i, "--table-poll-ms"))
            }
            "--canary" => opts.canary_on = true,
            "--canary-interval-ms" => {
                canary.interval = Duration::from_millis(millis(&mut i, "--canary-interval-ms"));
                opts.canary_on = true;
            }
            "--canary-bake" => {
                canary.bake_ticks = millis(&mut i, "--canary-bake") as u32;
                opts.canary_on = true;
            }
            "--canary-rollback-after" => {
                canary.rollback_after = millis(&mut i, "--canary-rollback-after") as u32;
                opts.canary_on = true;
            }
            "--canary-max-p99-delta" => {
                canary.max_delta_p99_ms = value(&mut i)
                    .parse()
                    .unwrap_or_else(|_| usage_abort("bad --canary-max-p99-delta"));
                opts.canary_on = true;
            }
            "--canary-max-error-delta" => {
                canary.max_delta_error_rate = value(&mut i)
                    .parse()
                    .unwrap_or_else(|_| usage_abort("bad --canary-max-error-delta"));
                opts.canary_on = true;
            }
            "--max-conns" => {
                opts.config.max_connections = value(&mut i)
                    .parse()
                    .unwrap_or_else(|_| usage_abort("bad --max-conns"))
            }
            "--allow-remote-shutdown" => opts.config.allow_remote_shutdown = true,
            "--help" | "-h" => usage_abort(""),
            other => usage_abort(&format!("unknown argument '{other}'")),
        }
        i += 1;
    }
    if opts.replicas.is_empty() {
        usage_abort("need at least one --replica TCP_ADDR,HTTP_ADDR[,ID]");
    }
    if opts.canary_on {
        if opts.config.routes_file.is_none() {
            usage_abort("--canary needs --routes-file (the table the controller rewrites)");
        }
        opts.config.canary = Some(canary);
    }
    opts
}

fn main() {
    let mut opts = parse_options();
    opts.config.addr = format!("{}:{}", opts.addr, opts.port);
    opts.config.http_addr = opts.http_port.map(|port| format!("{}:{}", opts.addr, port));

    let fleet = match Fleet::bind(opts.replicas.clone(), opts.config) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: bind failed: {e}");
            std::process::exit(1);
        }
    };
    let addr = fleet.local_addr();
    let handle = fleet.handle();
    for replica in &opts.replicas {
        eprintln!(
            "[fleet] replica {} at {} (http {})",
            replica.id, replica.addr, replica.http_addr
        );
    }
    if let Some(http_addr) = fleet.http_addr() {
        eprintln!("[fleet] http front door on {http_addr} (healthz/readyz/metrics/v1)");
    }
    eprintln!(
        "[fleet] listening on {addr} ({} replicas)",
        opts.replicas.len()
    );

    // SIGTERM drains the fleet exactly like the 'shutdown' verb; the
    // poller is detached for the same reason the port-file writer is.
    if signal::install_sigterm_handler() {
        let sig_handle = handle.clone();
        let _detached = std::thread::spawn(move || loop {
            if signal::sigterm_received() {
                sig_handle.shutdown();
                return;
            }
            std::thread::sleep(Duration::from_millis(20));
        });
    } else {
        eprintln!("[fleet] warning: SIGTERM handler not installed; use the 'shutdown' op");
    }

    // Port files wait for the accept loops, as on the gateway: the file
    // appearing is the supervisor's "come probe me" signal.
    {
        let ready_handle = handle.clone();
        let port_file = opts.port_file.clone();
        let http_port_file = opts.http_port_file.clone();
        let http_port = fleet.http_addr().map(|a| a.port());
        let _detached = std::thread::spawn(move || {
            while !ready_handle.accepting() {
                std::thread::sleep(Duration::from_millis(2));
            }
            if let Some(path) = &port_file {
                if let Err(e) = std::fs::write(path, format!("{}\n", addr.port())) {
                    eprintln!("error: writing --port-file failed: {e}");
                    std::process::exit(1);
                }
            }
            if let (Some(path), Some(port)) = (&http_port_file, http_port) {
                if let Err(e) = std::fs::write(path, format!("{port}\n")) {
                    eprintln!("error: writing --http-port-file failed: {e}");
                    std::process::exit(1);
                }
            }
        });
    }

    if let Err(e) = fleet.run() {
        eprintln!("error: fleet failed: {e}");
        std::process::exit(1);
    }
    eprintln!("[fleet] drained cleanly");
}
