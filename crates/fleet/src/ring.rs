//! The consistent-hash replica ring.
//!
//! Sticky client keys must land on the *same replica* across fleet
//! processes and across ring rebuilds — a replica keeps a client's
//! embeddings warm in its cache, and reshuffling everyone on every
//! membership change would throw that locality away. Classic consistent
//! hashing gives exactly the bound we want: each replica owns
//! [`VNODES`] pseudo-random arcs of the hash circle, a key belongs to
//! the first point clockwise from its own hash, and removing one of `N`
//! replicas only reassigns the keys whose owning arc vanished —
//! expected `1/N` of them, every other key untouched.
//!
//! Determinism is load-bearing: points are derived from the replica
//! *id string* with the same FNV/splitmix primitives the gateway router
//! uses for sticky assignment, never from memory addresses or
//! insertion order. Two fleet processes configured with the same
//! replica set build bit-identical rings and route every key
//! identically — the same replica-stability argument the router makes
//! for routes, one tier up.

use ccsa_serve::hash::{fnv1a, Fnv1a};

/// Virtual nodes per replica. More vnodes = smoother key distribution
/// (relative imbalance shrinks roughly with `1/sqrt(VNODES)`); 64 keeps
/// build cost trivial while holding skew to a few percent.
pub const VNODES: usize = 64;

/// An immutable consistent-hash ring over replica indices. Rebuilt from
/// the healthy subset on every membership flip and swapped whole — a
/// lookup never observes a half-updated ring.
#[derive(Debug, Clone)]
pub struct Ring {
    /// `(point, replica index)` sorted by point; a key binary-searches
    /// for the first point at or after its own hash (wrapping).
    points: Vec<(u64, usize)>,
    /// Distinct replicas on the ring.
    members: usize,
}

impl Ring {
    /// Builds a ring from `(replica index, replica id)` members. The
    /// index is the caller's stable handle (position in the full
    /// replica list); the id string is what the points are derived
    /// from, so a replica's arcs never move as *other* replicas come
    /// and go.
    pub fn new<'a, I>(members: I) -> Ring
    where
        I: IntoIterator<Item = (usize, &'a str)>,
    {
        let mut points = Vec::new();
        let mut count = 0usize;
        for (index, id) in members {
            count += 1;
            for vnode in 0..VNODES {
                let mut h = Fnv1a::new();
                h.write(id.as_bytes());
                h.write(&(vnode as u64).to_le_bytes());
                points.push((fnv1a(&h.finish().to_le_bytes()), index));
            }
        }
        points.sort_unstable();
        Ring {
            points,
            members: count,
        }
    }

    /// Distinct replicas on the ring.
    pub fn members(&self) -> usize {
        self.members
    }

    /// Whether the ring has any members at all.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The owning replica index for a sticky client key, or `None` on
    /// an empty ring.
    pub fn replica_for(&self, client_key: &str) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let h = fnv1a(client_key.as_bytes());
        let at = self.points.partition_point(|&(p, _)| p < h);
        let at = if at == self.points.len() { 0 } else { at };
        Some(self.points[at].1)
    }

    /// The next *distinct* replica clockwise from the key's owner — the
    /// hedge/failover target. `None` when fewer than two replicas are
    /// on the ring.
    pub fn next_replica(&self, client_key: &str, owner: usize) -> Option<usize> {
        if self.members < 2 {
            return None;
        }
        let h = fnv1a(client_key.as_bytes());
        let start = self.points.partition_point(|&(p, _)| p < h);
        let n = self.points.len();
        (0..n)
            .map(|step| self.points[(start + step) % n].1)
            .find(|&ix| ix != owner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("replica-{i}")).collect()
    }

    fn ring_of(ids: &[String]) -> Ring {
        Ring::new(ids.iter().enumerate().map(|(ix, id)| (ix, id.as_str())))
    }

    #[test]
    fn lookup_is_deterministic_and_total() {
        let ids = ids(4);
        let ring = ring_of(&ids);
        for i in 0..1000 {
            let key = format!("client-{i}");
            let first = ring.replica_for(&key).unwrap();
            assert!(first < 4);
            assert_eq!(ring.replica_for(&key), Some(first));
        }
        assert!(Ring::new(std::iter::empty()).replica_for("x").is_none());
    }

    #[test]
    fn distribution_is_roughly_balanced() {
        let ids = ids(4);
        let ring = ring_of(&ids);
        let mut counts = [0usize; 4];
        let n = 40_000;
        for i in 0..n {
            counts[ring.replica_for(&format!("client-{i}")).unwrap()] += 1;
        }
        for (ix, &c) in counts.iter().enumerate() {
            let share = c as f64 / n as f64;
            assert!(
                (share - 0.25).abs() < 0.08,
                "replica {ix} owns share {share}, expected ~0.25"
            );
        }
    }

    #[test]
    fn next_replica_differs_from_owner() {
        let ids = ids(3);
        let ring = ring_of(&ids);
        for i in 0..500 {
            let key = format!("client-{i}");
            let owner = ring.replica_for(&key).unwrap();
            let next = ring.next_replica(&key, owner).unwrap();
            assert_ne!(next, owner);
        }
        // A single-member ring has no distinct neighbour.
        let solo = ring_of(&ids[..1]);
        assert!(solo.next_replica("x", 0).is_none());
    }
}
