//! The fleet front tier: TCP/HTTP data plane, health prober, routing
//! table watcher, and the canary driver — everything that runs.
//!
//! The data plane is deliberately *transparent*: a request line is
//! forwarded to its replica as raw bytes and the response line returned
//! verbatim, so a compare/rank through the fleet is byte-identical to
//! one against the replica directly. The fleet only ever parses a
//! request to decide *where* it goes (the sticky `client` key) and
//! whether it is one of the verbs answered locally: `fleet` stats,
//! `shutdown`, and `reload_routes` — the last applied through the
//! control plane (validate, persist, push to *every* replica) rather
//! than forwarded, because a raw forward would repoint one sticky
//! replica and silently desync it from the fleet's table.
//!
//! Reliability is layered:
//!
//! * **failover** — an attempt that fails at the socket level is
//!   retried transparently on the next healthy replica; scoring is
//!   idempotent, so the client sees one answer and zero errors while a
//!   replica dies;
//! * **hedging** — a scored request still unanswered at the hedge
//!   deadline gets a second attempt on the next distinct replica;
//!   whichever answers first wins. Only `compare`/`rank` are hedged —
//!   duplicating a mutating verb like `reload_routes` would apply it
//!   somewhere arbitrary;
//! * **health** — a background prober walks each replica's `/readyz`
//!   with rise/fall hysteresis and rebuilds the consistent-hash ring on
//!   every flip, so draining or dead replicas stop receiving new keys.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

use ccsa_serve::json::{self, Json};
use ccsa_serve::proto;
use ccsa_serve::{Counter, MetricKind, MetricsRegistry, Sample, SampleFamily};

use crate::canary::{Canary, CanaryConfig, CanaryPhase, Decision, DeltaSample};
use crate::replica::{Replica, ReplicaConfig};
use crate::ring::Ring;
use crate::table::{self, TableSpec};

/// The longest request line a session will buffer (same bound as the
/// gateway: one hostile client must not balloon resident memory).
const MAX_LINE_BYTES: usize = 8 << 20;

/// The wire verbs this fleet front refuses off-loopback unless
/// `allow_remote_shutdown` is set. A literal copy of
/// `ccsa_serve::proto::MUTATING_VERBS` on purpose — `ccsa-audit`'s
/// `verbs` rule diffs the lists, so a new mutating verb without a gate
/// entry here fails CI instead of being transparently forwarded to
/// replicas by the match below's default arm.
const LOOPBACK_GATED_VERBS: &[&str] = &["shutdown", "reload_routes"];

/// The refusal response for a gated verb arriving from a non-loopback
/// peer, or `None` when the request may proceed.
fn refuse_remote_admin(verb: &str, peer_is_loopback: bool, state: &FleetState) -> Option<String> {
    debug_assert!(LOOPBACK_GATED_VERBS.contains(&verb));
    if LOOPBACK_GATED_VERBS.contains(&verb)
        && !peer_is_loopback
        && !state.config.allow_remote_shutdown
    {
        Some(
            proto::error_response(&format!(
                "{verb} is only accepted from loopback \
                 (start the fleet with remote shutdown enabled to change this)"
            ))
            .to_string(),
        )
    } else {
        None
    }
}

/// Fleet construction settings.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Bind address for the JSON-lines front (port 0 = ephemeral).
    pub addr: String,
    /// Bind address for the HTTP front (`None` = TCP only).
    pub http_addr: Option<String>,
    /// Concurrent session cap across both fronts.
    pub max_connections: usize,
    /// Accept-loop poll cadence (bounds shutdown latency).
    pub poll_interval: Duration,
    /// Hedge deadline for scored requests (`None` = hedging off).
    /// Operationally this is derived from the replica p99 — a hedge
    /// should fire only for requests already slower than almost all.
    pub hedge_after: Option<Duration>,
    /// Per-attempt connect/read timeout on forwarded requests.
    pub forward_timeout: Duration,
    /// Probe cadence (`None` = prober off; replicas stay as they
    /// start, healthy).
    pub probe_interval: Option<Duration>,
    /// Consecutive probe successes before an ejected replica rejoins.
    pub probe_rise: u32,
    /// Consecutive probe failures before a replica is ejected.
    pub probe_fall: u32,
    /// Per-probe timeout.
    pub probe_timeout: Duration,
    /// The hot-reloadable routing-table file (`None` = control plane
    /// off).
    pub routes_file: Option<PathBuf>,
    /// How often the table file is polled for changes.
    pub table_poll: Duration,
    /// Canary controller tuning (`None` = controller off; it also
    /// stays idle until the table has a shadow entry).
    pub canary: Option<CanaryConfig>,
    /// Whether `shutdown` is honoured from non-loopback peers.
    pub allow_remote_shutdown: bool,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            addr: "127.0.0.1:0".to_string(),
            http_addr: None,
            max_connections: 128,
            poll_interval: Duration::from_millis(15),
            hedge_after: None,
            forward_timeout: Duration::from_secs(5),
            probe_interval: Some(Duration::from_millis(500)),
            probe_rise: 2,
            probe_fall: 2,
            probe_timeout: Duration::from_secs(1),
            routes_file: None,
            table_poll: Duration::from_millis(200),
            canary: None,
            allow_remote_shutdown: false,
        }
    }
}

/// State shared between the accept loops, session threads, background
/// workers, and handles.
pub(crate) struct FleetState {
    pub(crate) replicas: Vec<Arc<Replica>>,
    /// The consistent-hash ring over currently-healthy replicas.
    /// Rebuilt and swapped whole on every health flip.
    ring: RwLock<Arc<Ring>>,
    pub(crate) config: FleetConfig,
    shutdown: AtomicBool,
    active: AtomicUsize,
    tcp_accepting: AtomicBool,
    http_accepting: AtomicBool,
    metrics: Arc<MetricsRegistry>,
    /// Per-replica forwarded-request counters
    /// (`ccsa_fleet_requests_total{replica=<id>}`), indexed like
    /// `replicas`.
    request_counters: Vec<Counter>,
    hedges: Counter,
    hedge_wins: Counter,
    failovers: Counter,
    ejections: Counter,
    restores: Counter,
    canary_promotes: Counter,
    canary_holds: Counter,
    canary_rollbacks: Counter,
    /// Routing tables successfully pushed to replicas since boot.
    table_generation: AtomicU64,
    /// The last table validation/push error, for the stats verb.
    table_error: Mutex<Option<String>>,
    /// Set while the last table push left at least one healthy replica
    /// behind; the table watcher keeps retrying until it clears.
    push_incomplete: AtomicBool,
    /// The current table (as last pushed), for rewrites and stats.
    current_table: Mutex<Option<TableSpec>>,
    pub(crate) canary: Option<Canary>,
}

impl FleetState {
    fn ring(&self) -> Arc<Ring> {
        Arc::clone(&self.ring.read().expect("ring poisoned"))
    }

    /// Rebuilds the ring from the currently-healthy replica subset.
    fn rebuild_ring(&self) {
        let next = Ring::new(
            self.replicas
                .iter()
                .enumerate()
                .filter(|(_, r)| r.is_healthy())
                .map(|(ix, r)| (ix, r.config.id.as_str())),
        );
        *self.ring.write().expect("ring poisoned") = Arc::new(next);
    }

    fn draining(&self) -> bool {
        // SeqCst: lifecycle flags use the strongest ordering so the
        // accept loops and admin verbs agree on shutdown state.
        self.shutdown.load(Ordering::SeqCst)
    }

    fn accepting(&self) -> bool {
        // SeqCst: readiness flags, same lifecycle discipline as above.
        self.tcp_accepting.load(Ordering::SeqCst)
            && (self.config.http_addr.is_none() || self.http_accepting.load(Ordering::SeqCst))
    }

    fn record_request(&self, ix: usize) {
        // Relaxed: per-replica stats counter, read at snapshot time.
        self.replicas[ix].requests.fetch_add(1, Ordering::Relaxed);
        self.request_counters[ix].inc();
    }

    /// Pushes a table to one replica via `reload_routes`; best-effort.
    fn push_table_to(&self, spec: &TableSpec, ix: usize) -> Result<(), String> {
        let line = spec.reload_request().to_string();
        match self.replicas[ix].exchange(&line, self.config.forward_timeout) {
            Ok(response) => {
                let v = json::parse(&response).map_err(|e| e.to_string())?;
                match v.get("ok").and_then(Json::as_bool) {
                    Some(true) => Ok(()),
                    _ => Err(v
                        .get("error")
                        .and_then(Json::as_str)
                        .unwrap_or("reload_routes refused")
                        .to_string()),
                }
            }
            Err(e) => Err(e.to_string()),
        }
    }

    /// Persists (when a table file is configured) and pushes a table to
    /// every healthy replica. Partial push failures are recorded but do
    /// not roll the table back — the table watcher keeps retrying until
    /// every healthy replica has it, and the prober re-pushes when a
    /// replica recovers. `table_generation` counts only fully-delivered
    /// pushes.
    pub(crate) fn apply_table(&self, spec: &TableSpec, persist: bool) -> Result<(), String> {
        if persist {
            if let Some(path) = &self.config.routes_file {
                table::write_atomic(path, spec).map_err(|e| e.to_string())?;
            }
        }
        // Installed before the pushes so the watcher, seeing this
        // fleet's own persisted rewrite appear in the file, recognises
        // it as already applied instead of pushing it a second time.
        *self.current_table.lock().expect("table poisoned") = Some(spec.clone());
        let mut errors = Vec::new();
        for (ix, replica) in self.replicas.iter().enumerate() {
            if !replica.is_healthy() {
                continue;
            }
            if let Err(e) = self.push_table_to(spec, ix) {
                errors.push(format!("{}: {e}", replica.config.id));
            }
        }
        let error = (!errors.is_empty()).then(|| errors.join("; "));
        // SeqCst: the incomplete flag and generation bump must be seen
        // in a consistent order by status readers.
        self.push_incomplete
            .store(error.is_some(), Ordering::SeqCst);
        if error.is_none() {
            self.table_generation.fetch_add(1, Ordering::SeqCst);
        }
        *self.table_error.lock().expect("table error poisoned") = error.clone();
        match error {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }
}

/// A cloneable control handle onto a running fleet.
#[derive(Clone)]
pub struct FleetHandle {
    state: Arc<FleetState>,
    addr: SocketAddr,
    http_addr: Option<SocketAddr>,
}

impl FleetHandle {
    /// The bound JSON-lines address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound HTTP address, when configured.
    pub fn http_addr(&self) -> Option<SocketAddr> {
        self.http_addr
    }

    /// The fleet metrics registry (`ccsa_fleet_*`).
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.state.metrics)
    }

    /// Starts a graceful drain.
    pub fn shutdown(&self) {
        // SeqCst: lifecycle flag, pairs with draining().
        self.state.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether every configured accept loop is live (the port-file /
    /// readiness gate, as on the gateway).
    pub fn accepting(&self) -> bool {
        self.state.accepting()
    }

    /// Routing tables pushed since boot.
    pub fn table_generation(&self) -> u64 {
        // SeqCst: pairs with the push path's generation bump.
        self.state.table_generation.load(Ordering::SeqCst)
    }

    /// The canary's current phase label, when a controller is running.
    pub fn canary_phase(&self) -> Option<CanaryPhase> {
        self.state.canary.as_ref().map(Canary::phase)
    }
}

/// A bound-but-not-yet-running fleet.
pub struct Fleet {
    listener: TcpListener,
    http_listener: Option<TcpListener>,
    state: Arc<FleetState>,
    addr: SocketAddr,
    http_addr: Option<SocketAddr>,
}

/// A fleet running on a background thread (tests and embedding).
pub struct SpawnedFleet {
    handle: FleetHandle,
    join: JoinHandle<std::io::Result<()>>,
}

impl SpawnedFleet {
    /// The bound JSON-lines address.
    pub fn addr(&self) -> SocketAddr {
        self.handle.addr()
    }

    /// The bound HTTP address, when configured.
    pub fn http_addr(&self) -> Option<SocketAddr> {
        self.handle.http_addr()
    }

    /// A control handle.
    pub fn handle(&self) -> FleetHandle {
        self.handle.clone()
    }

    /// Drains the fleet and joins every worker.
    ///
    /// # Errors
    ///
    /// Propagates an accept-loop I/O failure.
    ///
    /// # Panics
    ///
    /// Panics if the accept-loop thread itself panicked.
    pub fn shutdown_and_join(self) -> std::io::Result<()> {
        self.handle.shutdown();
        self.join.join().expect("fleet accept loop panicked")
    }
}

impl Fleet {
    /// Binds the listeners; does not accept yet.
    ///
    /// # Errors
    ///
    /// Propagates bind failures; rejects an empty replica set or
    /// duplicate replica ids (`InvalidInput`).
    pub fn bind(replicas: Vec<ReplicaConfig>, config: FleetConfig) -> std::io::Result<Fleet> {
        let invalid =
            |message: String| std::io::Error::new(std::io::ErrorKind::InvalidInput, message);
        if replicas.is_empty() {
            return Err(invalid("fleet needs at least one replica".to_string()));
        }
        for (ix, replica) in replicas.iter().enumerate() {
            if replicas[..ix].iter().any(|r| r.id == replica.id) {
                return Err(invalid(format!("duplicate replica id {:?}", replica.id)));
            }
        }
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let (http_listener, http_addr) = match &config.http_addr {
            Some(addr) => {
                let l = TcpListener::bind(addr)?;
                let resolved = l.local_addr()?;
                (Some(l), Some(resolved))
            }
            None => (None, None),
        };

        let metrics = Arc::new(MetricsRegistry::new());
        let request_counters = replicas
            .iter()
            .map(|r| {
                metrics.counter(
                    "ccsa_fleet_requests_total",
                    "Requests forwarded through the fleet, by replica.",
                    &[("replica", r.id.as_str())],
                )
            })
            .collect();
        let scalar = |name: &str, help: &str| metrics.counter(name, help, &[]);
        let decision = |kind: &str| {
            metrics.counter(
                "ccsa_fleet_canary_decisions_total",
                "Canary controller decisions, by kind.",
                &[("decision", kind)],
            )
        };
        let replicas: Vec<Arc<Replica>> = replicas
            .into_iter()
            .map(|c| Arc::new(Replica::new(c)))
            .collect();
        let ring = Ring::new(
            replicas
                .iter()
                .enumerate()
                .map(|(ix, r)| (ix, r.config.id.as_str())),
        );
        let state = Arc::new(FleetState {
            replicas,
            ring: RwLock::new(Arc::new(ring)),
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            tcp_accepting: AtomicBool::new(false),
            http_accepting: AtomicBool::new(false),
            request_counters,
            hedges: scalar(
                "ccsa_fleet_hedges_total",
                "Second attempts fired because the first passed the hedge deadline.",
            ),
            hedge_wins: scalar(
                "ccsa_fleet_hedge_wins_total",
                "Hedged requests where the second attempt answered first.",
            ),
            failovers: scalar(
                "ccsa_fleet_failovers_total",
                "Requests transparently retried on another replica after a failure.",
            ),
            ejections: scalar(
                "ccsa_fleet_ejections_total",
                "Replicas ejected from the ring by the health prober.",
            ),
            restores: scalar(
                "ccsa_fleet_restores_total",
                "Ejected replicas restored to the ring on recovery.",
            ),
            canary_promotes: decision("promote"),
            canary_holds: decision("hold"),
            canary_rollbacks: decision("rollback"),
            table_generation: AtomicU64::new(0),
            table_error: Mutex::new(None),
            push_incomplete: AtomicBool::new(false),
            current_table: Mutex::new(None),
            canary: config.canary.clone().map(Canary::new),
            config,
            metrics,
        });
        let collector_state = Arc::downgrade(&state);
        state
            .metrics
            .register_collector(move || fleet_metric_families(&collector_state));
        Ok(Fleet {
            listener,
            http_listener,
            state,
            addr,
            http_addr,
        })
    }

    /// The bound JSON-lines address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound HTTP address, when configured.
    pub fn http_addr(&self) -> Option<SocketAddr> {
        self.http_addr
    }

    /// A control handle.
    pub fn handle(&self) -> FleetHandle {
        FleetHandle {
            state: Arc::clone(&self.state),
            addr: self.addr,
            http_addr: self.http_addr,
        }
    }

    /// Runs the accept loop on the calling thread until drained.
    ///
    /// # Errors
    ///
    /// Propagates fatal listener failures.
    pub fn run(self) -> std::io::Result<()> {
        let Fleet {
            listener,
            http_listener,
            state,
            ..
        } = self;
        let mut workers: Vec<JoinHandle<()>> = Vec::new();
        if let Some(l) = http_listener {
            let http_state = Arc::clone(&state);
            workers.push(
                std::thread::Builder::new()
                    .name("ccsa-fleet-http".to_string())
                    .spawn(move || run_http_loop(&http_state, &l))?,
            );
        }
        if state.config.probe_interval.is_some() {
            let probe_state = Arc::clone(&state);
            workers.push(
                std::thread::Builder::new()
                    .name("ccsa-fleet-probe".to_string())
                    .spawn(move || run_prober(&probe_state))?,
            );
        }
        if state.config.routes_file.is_some() {
            let table_state = Arc::clone(&state);
            workers.push(
                std::thread::Builder::new()
                    .name("ccsa-fleet-table".to_string())
                    .spawn(move || run_table_watcher(&table_state))?,
            );
        }
        if state.canary.is_some() {
            let canary_state = Arc::clone(&state);
            workers.push(
                std::thread::Builder::new()
                    .name("ccsa-fleet-canary".to_string())
                    .spawn(move || run_canary(&canary_state))?,
            );
        }
        listener.set_nonblocking(true)?;
        // SeqCst: readiness flag flip, ordered with the port file write.
        state.tcp_accepting.store(true, Ordering::SeqCst);
        let mut sessions: Vec<JoinHandle<()>> = Vec::new();
        while !state.draining() {
            match listener.accept() {
                Ok((stream, peer)) => {
                    let _ = stream.set_nonblocking(false);
                    let _ = stream.set_nodelay(true);
                    // SeqCst: admission gauge — check, take, and release
                    // all use the same ordering.
                    if state.active.load(Ordering::SeqCst) >= state.config.max_connections {
                        let mut stream = stream;
                        let line = proto::error_response(&format!(
                            "fleet at capacity ({} connections) — retry later",
                            state.config.max_connections
                        ));
                        let _ = writeln!(stream, "{line}");
                        continue;
                    }
                    state.active.fetch_add(1, Ordering::SeqCst); // SeqCst: take the slot
                    let session_state = Arc::clone(&state);
                    let session = std::thread::Builder::new()
                        .name(format!("ccsa-fleet-{peer}"))
                        .spawn(move || {
                            struct Slot<'a>(&'a AtomicUsize);
                            impl Drop for Slot<'_> {
                                fn drop(&mut self) {
                                    // SeqCst: release the admission slot.
                                    self.0.fetch_sub(1, Ordering::SeqCst);
                                }
                            }
                            let _slot = Slot(&session_state.active);
                            serve_connection(&session_state, stream, peer);
                        });
                    match session {
                        Ok(handle) => sessions.push(handle),
                        Err(_) => {
                            // SeqCst: spawn failed — give the slot back.
                            state.active.fetch_sub(1, Ordering::SeqCst);
                        }
                    }
                    sessions.retain(|s| !s.is_finished());
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(state.config.poll_interval);
                    sessions.retain(|s| !s.is_finished());
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => std::thread::sleep(state.config.poll_interval),
            }
        }
        for session in sessions {
            let _ = session.join();
        }
        for worker in workers {
            let _ = worker.join();
        }
        Ok(())
    }

    /// Binds and runs on a background thread.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn spawn(
        replicas: Vec<ReplicaConfig>,
        config: FleetConfig,
    ) -> std::io::Result<SpawnedFleet> {
        let fleet = Fleet::bind(replicas, config)?;
        let handle = fleet.handle();
        let join = std::thread::Builder::new()
            .name("ccsa-fleet-accept".to_string())
            .spawn(move || fleet.run())?;
        Ok(SpawnedFleet { handle, join })
    }
}

// ---------------------------------------------------------------------
// Data plane
// ---------------------------------------------------------------------

fn serve_connection(state: &Arc<FleetState>, stream: TcpStream, peer: SocketAddr) {
    if stream
        .set_read_timeout(Some(state.config.poll_interval))
        .is_err()
    {
        return;
    }
    let mut reader = match stream.try_clone() {
        Ok(clone) => BufReader::new(clone),
        Err(_) => return,
    };
    let mut writer = stream;
    let fallback_key = peer.ip().to_string();
    let mut line_buf: Vec<u8> = Vec::new();
    loop {
        if state.draining() {
            return;
        }
        let budget = (MAX_LINE_BYTES + 1).saturating_sub(line_buf.len()) as u64;
        match std::io::Read::take(&mut reader, budget).read_until(b'\n', &mut line_buf) {
            Ok(0) if line_buf.len() > MAX_LINE_BYTES => {
                let _ = writeln!(
                    writer,
                    "{}",
                    proto::error_response("request line exceeds 8 MiB")
                );
                return;
            }
            Ok(0) => return,
            Ok(_) => {
                if line_buf.last() != Some(&b'\n') {
                    continue;
                }
                if line_buf.iter().all(|b| b.is_ascii_whitespace()) {
                    line_buf.clear();
                    continue;
                }
                let Ok(line) = String::from_utf8(std::mem::take(&mut line_buf)) else {
                    let _ = writeln!(
                        writer,
                        "{}",
                        proto::error_response("request line is not valid UTF-8")
                    );
                    continue;
                };
                let line = line.trim_end_matches(['\n', '\r']);
                let (response, drain) =
                    handle_line(state, line, &fallback_key, peer.ip().is_loopback());
                if writeln!(writer, "{response}")
                    .and_then(|()| writer.flush())
                    .is_err()
                {
                    return;
                }
                if drain {
                    // SeqCst: lifecycle flag, pairs with draining().
                    state.shutdown.store(true, Ordering::SeqCst);
                    return;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Routes one request line: local verbs answered here, everything else
/// forwarded raw. Returns `(response line, drain?)`.
fn handle_line(
    state: &Arc<FleetState>,
    line: &str,
    fallback_key: &str,
    peer_is_loopback: bool,
) -> (String, bool) {
    // Peek at op/client; an unparseable line is still forwarded — the
    // replica's protocol error is the canonical one, and answering
    // locally would break transparency.
    let parsed = json::parse(line).ok();
    let op = parsed
        .as_ref()
        .and_then(|v| v.get("op"))
        .and_then(Json::as_str)
        .unwrap_or("");
    match op {
        "fleet" => (fleet_stats_response(state).to_string(), false),
        "shutdown" => {
            if let Some(refusal) = refuse_remote_admin("shutdown", peer_is_loopback, state) {
                return (refusal, false);
            }
            (
                Json::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("op", Json::str("shutdown")),
                    ("draining", Json::Bool(true)),
                ])
                .to_string(),
                true,
            )
        }
        "reload_routes" => {
            // Gated exactly like shutdown — and applied through the
            // control plane rather than forwarded: a raw forward would
            // repoint one sticky replica (which would see the fleet's
            // own address as the peer, waving the verb past its
            // loopback gate) and silently desync it from the fleet's
            // current table.
            if let Some(refusal) = refuse_remote_admin("reload_routes", peer_is_loopback, state) {
                return (refusal, false);
            }
            let request = parsed.as_ref().expect("op was read from this value");
            let response = match table::from_json(request) {
                Err(e) => proto::error_response(&format!("reload_routes rejected: {e}")),
                Ok(spec) => match state.apply_table(&spec, true) {
                    Ok(()) => Json::obj(vec![
                        ("ok", Json::Bool(true)),
                        ("op", Json::str("reload_routes")),
                        (
                            "table_generation",
                            // SeqCst: pairs with apply_table's bump.
                            Json::num(state.table_generation.load(Ordering::SeqCst) as f64),
                        ),
                    ]),
                    Err(e) => proto::error_response(&format!("reload_routes push incomplete: {e}")),
                },
            };
            (response.to_string(), false)
        }
        _ => {
            let client_key = parsed
                .as_ref()
                .and_then(|v| v.get("client"))
                .and_then(Json::as_str)
                .unwrap_or(fallback_key)
                .to_string();
            let hedgeable = matches!(op, "compare" | "rank");
            (forward(state, &client_key, line, hedgeable), false)
        }
    }
}

/// Forwards one raw request line to its sticky replica, hedging scored
/// requests and failing over on socket errors. Always returns a
/// response line (an `ok:false` one when every replica is gone).
pub(crate) fn forward(
    state: &Arc<FleetState>,
    client_key: &str,
    line: &str,
    hedgeable: bool,
) -> String {
    let ring = state.ring();
    let Some(primary) = ring.replica_for(client_key) else {
        return proto::error_response("no healthy replicas — retry later").to_string();
    };
    let hedge = state
        .config
        .hedge_after
        .filter(|_| hedgeable)
        .and_then(|deadline| {
            ring.next_replica(client_key, primary)
                .map(|second| (deadline, second))
        });
    let answered = match hedge {
        None => forward_sequential(
            state,
            attempt_order(&state.replicas, primary, &[]),
            line,
            false,
        ),
        Some((deadline, second)) => forward_hedged(state, primary, second, line, deadline),
    };
    answered.unwrap_or_else(|| {
        proto::error_response("no replica answered — all attempts failed").to_string()
    })
}

/// The replica indices to try: the primary first — unless it is in
/// `exclude` because an attempt on it already failed, in which case
/// retrying it would only add a known-dead round trip ahead of the
/// survivors — then every other healthy replica not in `exclude`.
fn attempt_order(replicas: &[Arc<Replica>], primary: usize, exclude: &[usize]) -> Vec<usize> {
    let mut order = Vec::new();
    if !exclude.contains(&primary) {
        order.push(primary);
    }
    for (ix, replica) in replicas.iter().enumerate() {
        if ix != primary && !exclude.contains(&ix) && replica.is_healthy() {
            order.push(ix);
        }
    }
    order
}

/// Tries replicas in order until one answers; successes after the first
/// failure count as failovers. Returns `None` when nobody answered.
fn forward_sequential(
    state: &Arc<FleetState>,
    order: Vec<usize>,
    line: &str,
    already_failed: bool,
) -> Option<String> {
    let mut failed = already_failed;
    for ix in order {
        match state.replicas[ix].exchange(line, state.config.forward_timeout) {
            Ok(response) => {
                state.record_request(ix);
                if failed {
                    state.failovers.inc();
                }
                return Some(response);
            }
            Err(_) => failed = true,
        }
    }
    None
}

/// The hedged path: first attempt on `primary`; if it has not answered
/// by `deadline`, a second attempt on `second` races it; the first
/// answer wins. Socket failures fall back to sequential failover over
/// the remaining healthy replicas.
fn forward_hedged(
    state: &Arc<FleetState>,
    primary: usize,
    second: usize,
    line: &str,
    deadline: Duration,
) -> Option<String> {
    let (tx, rx) = mpsc::channel::<(usize, std::io::Result<String>)>();
    spawn_attempt(state, primary, line, &tx);
    match rx.recv_timeout(deadline) {
        Ok((ix, Ok(response))) => {
            state.record_request(ix);
            Some(response)
        }
        Ok((_, Err(_))) => {
            // The primary failed outright before the hedge deadline:
            // plain failover, no hedge fired.
            forward_sequential(
                state,
                attempt_order(&state.replicas, primary, &[primary]),
                line,
                true,
            )
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            state.hedges.inc();
            spawn_attempt(state, second, line, &tx);
            let mut pending = 2;
            while pending > 0 {
                // Generous bound: each attempt's socket already times
                // out at `forward_timeout`.
                match rx.recv_timeout(state.config.forward_timeout + deadline) {
                    Ok((ix, Ok(response))) => {
                        if ix == second {
                            state.hedge_wins.inc();
                        }
                        state.record_request(ix);
                        return Some(response);
                    }
                    Ok((_, Err(_))) => pending -= 1,
                    Err(_) => break,
                }
            }
            forward_sequential(
                state,
                attempt_order(&state.replicas, primary, &[primary, second]),
                line,
                true,
            )
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => None,
    }
}

/// Runs one forwarding attempt on its own thread, reporting into the
/// hedge channel. Detached: a slow loser finishes its exchange (and
/// returns its pooled connection) in the background.
fn spawn_attempt(
    state: &Arc<FleetState>,
    ix: usize,
    line: &str,
    tx: &mpsc::Sender<(usize, std::io::Result<String>)>,
) {
    let state = Arc::clone(state);
    let line = line.to_string();
    let tx = tx.clone();
    let _ = std::thread::Builder::new()
        .name("ccsa-fleet-hedge".to_string())
        .spawn(move || {
            let result = state.replicas[ix].exchange(&line, state.config.forward_timeout);
            let _ = tx.send((ix, result));
        });
}

// ---------------------------------------------------------------------
// Background workers
// ---------------------------------------------------------------------

/// The health prober: walks every replica's `/readyz` with rise/fall
/// hysteresis, rebuilding the ring on flips and re-pushing the current
/// routing table to replicas that recover.
fn run_prober(state: &Arc<FleetState>) {
    let Some(interval) = state.config.probe_interval else {
        return;
    };
    while !state.draining() {
        for (ix, replica) in state.replicas.iter().enumerate() {
            let ok = probe_readyz(replica.config.http_addr, state.config.probe_timeout);
            let flipped = if ok {
                let rose = replica.probe_success(state.config.probe_rise);
                if rose {
                    state.restores.inc();
                    // A recovered replica may have missed table pushes.
                    let table = state.current_table.lock().expect("table poisoned").clone();
                    if let Some(spec) = table {
                        let _ = state.push_table_to(&spec, ix);
                    }
                }
                rose
            } else {
                let fell = replica.probe_failure(state.config.probe_fall);
                if fell {
                    state.ejections.inc();
                }
                fell
            };
            if flipped {
                state.rebuild_ring();
            }
        }
        std::thread::sleep(interval);
    }
}

/// One `/readyz` probe: connect, GET, expect 200.
fn probe_readyz(addr: SocketAddr, timeout: Duration) -> bool {
    let Ok(stream) = TcpStream::connect_timeout(&addr, timeout) else {
        return false;
    };
    if stream.set_read_timeout(Some(timeout)).is_err() || stream.set_nodelay(true).is_err() {
        return false;
    }
    let mut stream = stream;
    if stream
        .write_all(b"GET /readyz HTTP/1.1\r\nHost: fleet-probe\r\nConnection: close\r\n\r\n")
        .is_err()
    {
        return false;
    }
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    if reader.read_line(&mut status_line).is_err() {
        return false;
    }
    status_line
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        == Some(200)
}

/// Poll ticks between re-push attempts while the last table push left
/// a healthy replica behind.
const TABLE_RETRY_TICKS: u32 = 5;

/// The table watcher: polls the routing-table file and, when its
/// content changes, validates and pushes it. Invalid tables are
/// recorded and skipped — the last good table keeps serving. A file
/// change whose parsed spec matches the already-pushed table (the
/// canary persists its own rewrites through [`FleetState::apply_table`])
/// is not pushed again; a push that left a healthy replica behind is
/// retried every few ticks rather than waiting for the next file edit.
fn run_table_watcher(state: &Arc<FleetState>) {
    let Some(path) = state.config.routes_file.clone() else {
        return;
    };
    let mut last_hash: Option<u64> = None;
    let mut ticks_until_retry = TABLE_RETRY_TICKS;
    while !state.draining() {
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                let hash = ccsa_serve::hash::fnv1a(text.as_bytes());
                if last_hash != Some(hash) {
                    last_hash = Some(hash);
                    match table::parse(&text) {
                        Ok(spec) => {
                            // SeqCst: pairs with apply_table's store of
                            // the incomplete flag.
                            let already_applied = !state.push_incomplete.load(Ordering::SeqCst)
                                && state.current_table.lock().expect("table poisoned").as_ref()
                                    == Some(&spec);
                            if !already_applied {
                                let _ = state.apply_table(&spec, false);
                            }
                        }
                        Err(e) => {
                            *state.table_error.lock().expect("table error poisoned") =
                                Some(format!("{}: {e}", path.display()));
                        }
                    }
                // SeqCst: same flag, same pairing as above.
                } else if state.push_incomplete.load(Ordering::SeqCst) {
                    ticks_until_retry -= 1;
                    if ticks_until_retry == 0 {
                        let current = state.current_table.lock().expect("table poisoned").clone();
                        if let Some(spec) = current {
                            let _ = state.apply_table(&spec, false);
                        }
                    }
                }
                // SeqCst: same flag, same pairing as above.
                if ticks_until_retry == 0 || !state.push_incomplete.load(Ordering::SeqCst) {
                    ticks_until_retry = TABLE_RETRY_TICKS;
                }
            }
            Err(e) => {
                *state.table_error.lock().expect("table error poisoned") =
                    Some(format!("reading {}: {e}", path.display()));
            }
        }
        std::thread::sleep(state.config.table_poll);
    }
}

/// The canary driver: scrapes every healthy replica's `routes` verb,
/// aggregates the worst shadow deltas, feeds the controller, and
/// applies its promote/rollback decisions as table rewrites.
fn run_canary(state: &Arc<FleetState>) {
    let Some(canary) = &state.canary else {
        return;
    };
    while !state.draining() && canary.active() {
        std::thread::sleep(canary.interval());
        if state.draining() {
            return;
        }
        let Some(current) = state.current_table.lock().expect("table poisoned").clone() else {
            continue; // no table yet — nothing to ramp
        };
        let Some((candidate, _fraction)) = current.shadow.clone() else {
            continue; // no shadow arm — nothing to watch
        };
        let sample = scrape_worst_delta(state);
        let decision = canary.tick(sample);
        match &decision {
            Decision::Promote(_) => state.canary_promotes.inc(),
            Decision::Hold => state.canary_holds.inc(),
            Decision::Rollback(_) => state.canary_rollbacks.inc(),
        }
        match decision {
            Decision::Hold => {}
            Decision::Promote(weight) => {
                let next = promote_table(&current, &candidate, weight);
                let _ = state.apply_table(&next, true);
            }
            Decision::Rollback(_reason) => {
                let next = rollback_table(&current, &candidate);
                let _ = state.apply_table(&next, true);
            }
        }
    }
}

/// Scrapes every healthy replica's `routes` verb and returns the worst
/// (largest) shadow deltas seen, or `None` when any replica's deltas
/// were unavailable — the controller treats that as "not enough
/// evidence" and holds.
fn scrape_worst_delta(state: &Arc<FleetState>) -> Option<DeltaSample> {
    let mut worst: Option<DeltaSample> = None;
    for replica in state.replicas.iter().filter(|r| r.is_healthy()) {
        let response = replica
            .exchange(r#"{"op":"routes"}"#, state.config.forward_timeout)
            .ok()?;
        let v = json::parse(&response).ok()?;
        let shadow = v.get("shadow")?;
        let delta = |name: &str| shadow.get(name).and_then(Json::as_f64);
        let sample = DeltaSample {
            delta_p50_ms: delta("delta_p50_ms")?,
            delta_p99_ms: delta("delta_p99_ms")?,
            delta_error_rate: delta("delta_error_rate")?,
        };
        worst = Some(match worst {
            None => sample,
            Some(w) => DeltaSample {
                delta_p50_ms: w.delta_p50_ms.max(sample.delta_p50_ms),
                delta_p99_ms: w.delta_p99_ms.max(sample.delta_p99_ms),
                delta_error_rate: w.delta_error_rate.max(sample.delta_error_rate),
            },
        });
    }
    worst
}

/// The table after one promotion step: primaries scaled to `1 - weight`
/// of traffic, the candidate at `weight`. At full weight the candidate
/// becomes the sole route and the shadow entry is dropped.
fn promote_table(
    current: &TableSpec,
    candidate: &ccsa_serve::ModelSelector,
    weight: f64,
) -> TableSpec {
    if weight >= 1.0 {
        return TableSpec {
            routes: vec![(candidate.clone(), 1.0)],
            shadow: None,
        };
    }
    let base: Vec<(ccsa_serve::ModelSelector, f64)> = current
        .routes
        .iter()
        .filter(|(selector, w)| *w > 0.0 && !same_selector(selector, candidate))
        .cloned()
        .collect();
    if base.is_empty() {
        // Route weights are relative: with no other positive route to
        // hold the remaining (1 - weight) share, a lone fractional
        // candidate would silently mean 100% of traffic — make the full
        // promotion explicit instead of implying it.
        return TableSpec {
            routes: vec![(candidate.clone(), 1.0)],
            shadow: None,
        };
    }
    let total: f64 = base.iter().map(|(_, w)| w).sum();
    let mut routes: Vec<(ccsa_serve::ModelSelector, f64)> = base
        .iter()
        .map(|(selector, w)| (selector.clone(), w / total * (1.0 - weight)))
        .collect();
    routes.push((candidate.clone(), weight));
    TableSpec {
        routes,
        shadow: current.shadow.clone(),
    }
}

/// The table after a rollback: primaries restored to their full
/// weights, the candidate kept at weight 0 as the visible record, the
/// shadow entry dropped so mirroring stops.
fn rollback_table(current: &TableSpec, candidate: &ccsa_serve::ModelSelector) -> TableSpec {
    let mut routes: Vec<(ccsa_serve::ModelSelector, f64)> = current
        .routes
        .iter()
        .filter(|(selector, w)| *w > 0.0 && !same_selector(selector, candidate))
        .cloned()
        .collect();
    routes.push((candidate.clone(), 0.0));
    TableSpec {
        routes,
        shadow: None,
    }
}

fn same_selector(a: &ccsa_serve::ModelSelector, b: &ccsa_serve::ModelSelector) -> bool {
    a.name.as_deref().unwrap_or(ccsa_serve::DEFAULT_MODEL)
        == b.name.as_deref().unwrap_or(ccsa_serve::DEFAULT_MODEL)
        && a.version == b.version
}

// ---------------------------------------------------------------------
// Stats + metrics
// ---------------------------------------------------------------------

/// The `fleet` verb: replica/ring/hedge/canary state as one document.
pub(crate) fn fleet_stats_response(state: &FleetState) -> Json {
    let replicas: Vec<Json> = state
        .replicas
        .iter()
        .map(|r| {
            Json::obj(vec![
                ("id", Json::str(r.config.id.clone())),
                ("addr", Json::str(r.config.addr.to_string())),
                ("http_addr", Json::str(r.config.http_addr.to_string())),
                ("healthy", Json::Bool(r.is_healthy())),
                (
                    "requests",
                    // Relaxed: stats counter read at snapshot time.
                    Json::num(r.requests.load(Ordering::Relaxed) as f64),
                ),
                ("pooled_connections", Json::num(r.pooled() as f64)),
            ])
        })
        .collect();
    let counter = |c: &Counter| Json::num(c.get() as f64);
    let canary = match &state.canary {
        None => Json::Null,
        Some(canary) => {
            let phase = canary.phase();
            let (step, reason) = match &phase {
                CanaryPhase::Ramping(step) => (Json::num(*step as f64), Json::Null),
                CanaryPhase::RolledBack(reason) => (Json::Null, Json::str(reason.clone())),
                _ => (Json::Null, Json::Null),
            };
            Json::obj(vec![
                ("phase", Json::str(phase.label())),
                ("step", step),
                ("reason", reason),
            ])
        }
    };
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("op", Json::str("fleet")),
        ("replicas", Json::Arr(replicas)),
        ("ring_members", Json::num(state.ring().members() as f64)),
        ("hedges", counter(&state.hedges)),
        ("hedge_wins", counter(&state.hedge_wins)),
        ("failovers", counter(&state.failovers)),
        ("ejections", counter(&state.ejections)),
        ("restores", counter(&state.restores)),
        (
            "table_generation",
            // SeqCst: pairs with apply_table's bump.
            Json::num(state.table_generation.load(Ordering::SeqCst) as f64),
        ),
        (
            "table_error",
            match &*state.table_error.lock().expect("table error poisoned") {
                Some(e) => Json::str(e.clone()),
                None => Json::Null,
            },
        ),
        ("canary", canary),
    ])
}

/// Scrape-time gauges for ring/table state.
fn fleet_metric_families(state: &std::sync::Weak<FleetState>) -> Vec<SampleFamily> {
    use MetricKind::Gauge;
    let Some(state) = state.upgrade() else {
        return Vec::new();
    };
    let scalar = |name: &str, help: &str, v: f64| {
        SampleFamily::new(name, help, Gauge, vec![Sample::value(v)])
    };
    vec![
        scalar(
            "ccsa_fleet_ring_members",
            "Replicas currently on the consistent-hash ring.",
            state.ring().members() as f64,
        ),
        scalar(
            "ccsa_fleet_replicas",
            "Configured replicas, healthy or not.",
            state.replicas.len() as f64,
        ),
        scalar(
            "ccsa_fleet_table_generation",
            "Routing tables pushed to replicas since boot.",
            // SeqCst: pairs with apply_table's bump.
            state.table_generation.load(Ordering::SeqCst) as f64,
        ),
        scalar(
            "ccsa_fleet_active_connections",
            "Fleet sessions currently open.",
            // SeqCst: the admission gauge, read with its own ordering.
            state.active.load(Ordering::SeqCst) as f64,
        ),
    ]
}

// ---------------------------------------------------------------------
// HTTP front
// ---------------------------------------------------------------------

/// The minimal HTTP/1.1 front: probes, metrics, the fleet stats
/// document, and the scored verbs forwarded through the same data
/// plane as TCP.
fn run_http_loop(state: &Arc<FleetState>, listener: &TcpListener) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    // SeqCst: readiness flag flip, same discipline as tcp_accepting.
    state.http_accepting.store(true, Ordering::SeqCst);
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    while !state.draining() {
        match listener.accept() {
            Ok((stream, peer)) => {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_nodelay(true);
                let worker_state = Arc::clone(state);
                if let Ok(handle) = std::thread::Builder::new()
                    .name(format!("ccsa-fleet-http-{peer}"))
                    .spawn(move || serve_http_connection(&worker_state, stream, peer))
                {
                    workers.push(handle);
                }
                workers.retain(|w| !w.is_finished());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(state.config.poll_interval);
                workers.retain(|w| !w.is_finished());
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => std::thread::sleep(state.config.poll_interval),
        }
    }
    for worker in workers {
        let _ = worker.join();
    }
}

fn serve_http_connection(state: &Arc<FleetState>, stream: TcpStream, peer: SocketAddr) {
    if stream
        .set_read_timeout(Some(state.config.poll_interval))
        .is_err()
    {
        return;
    }
    let mut reader = match stream.try_clone() {
        Ok(clone) => BufReader::new(clone),
        Err(_) => return,
    };
    let mut writer = stream;
    let fallback_key = peer.ip().to_string();
    loop {
        if state.draining() {
            return;
        }
        match read_http_request(&mut reader) {
            Ok(Some((method, path, body))) => {
                let (status, reason, content_type, response_body) =
                    route_http(state, &method, &path, &body, &fallback_key);
                let head = format!(
                    "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
                     Content-Length: {}\r\nConnection: keep-alive\r\n\r\n",
                    response_body.len()
                );
                if writer
                    .write_all(head.as_bytes())
                    .and_then(|()| writer.write_all(response_body.as_bytes()))
                    .and_then(|()| writer.flush())
                    .is_err()
                {
                    return;
                }
            }
            Ok(None) => return, // clean EOF between requests
            Err(HttpReadError::Idle) => {}
            Err(HttpReadError::Fatal) => return,
        }
    }
}

enum HttpReadError {
    /// Read timeout with nothing buffered — poll the drain flag again.
    Idle,
    /// Malformed request or dead socket.
    Fatal,
}

/// Reads one request: `(method, path, body)`. `Ok(None)` on clean EOF.
fn read_http_request(
    reader: &mut BufReader<TcpStream>,
) -> Result<Option<(String, String, String)>, HttpReadError> {
    let mut request_line = String::new();
    match reader.read_line(&mut request_line) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e)
            if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut =>
        {
            return Err(HttpReadError::Idle)
        }
        Err(_) => return Err(HttpReadError::Fatal),
    }
    let mut parts = request_line.split_ascii_whitespace();
    let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
        return Err(HttpReadError::Fatal);
    };
    let (method, path) = (method.to_string(), path.to_string());
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => return Err(HttpReadError::Fatal),
            Ok(_) => {}
            // Mid-request timeouts are fatal: we cannot resume a
            // half-read head.
            Err(_) => return Err(HttpReadError::Fatal),
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| HttpReadError::Fatal)?;
            }
        }
    }
    if content_length > MAX_LINE_BYTES {
        return Err(HttpReadError::Fatal);
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|_| HttpReadError::Fatal)?;
    let body = String::from_utf8(body).map_err(|_| HttpReadError::Fatal)?;
    Ok(Some((method, path, body)))
}

/// Routes one HTTP request: `(status, reason, content type, body)`.
fn route_http(
    state: &Arc<FleetState>,
    method: &str,
    path: &str,
    body: &str,
    fallback_key: &str,
) -> (u16, &'static str, &'static str, String) {
    let path = path.split('?').next().unwrap_or("");
    match (method, path) {
        ("GET", "/healthz") => (200, "OK", "text/plain; charset=utf-8", "ok\n".to_string()),
        ("GET", "/readyz") => {
            if state.draining() {
                (
                    503,
                    "Service Unavailable",
                    "text/plain; charset=utf-8",
                    "draining\n".to_string(),
                )
            } else if !state.accepting() {
                (
                    503,
                    "Service Unavailable",
                    "text/plain; charset=utf-8",
                    "starting\n".to_string(),
                )
            } else {
                (
                    200,
                    "OK",
                    "text/plain; charset=utf-8",
                    "ready\n".to_string(),
                )
            }
        }
        ("GET", "/metrics") => (
            200,
            "OK",
            "text/plain; version=0.0.4; charset=utf-8",
            state.metrics.render(),
        ),
        ("GET", "/v1/fleet") => (
            200,
            "OK",
            "application/json",
            fleet_stats_response(state).to_string(),
        ),
        ("POST", "/v1/compare") => forward_http(state, "compare", body, fallback_key),
        ("POST", "/v1/rank") => forward_http(state, "rank", body, fallback_key),
        _ => (
            404,
            "Not Found",
            "application/json",
            proto::error_response(&format!("no such endpoint {path}")).to_string(),
        ),
    }
}

/// Forwards one HTTP scored request through the TCP data plane: the
/// body gains its `op` (the path is the op, as on the gateway) and the
/// replica's response line is the HTTP body — byte-identical to the
/// replica's own HTTP body for the same request.
fn forward_http(
    state: &Arc<FleetState>,
    op: &str,
    body: &str,
    fallback_key: &str,
) -> (u16, &'static str, &'static str, String) {
    let Ok(parsed) = json::parse(body) else {
        return (
            400,
            "Bad Request",
            "application/json",
            proto::error_response("request body is not valid JSON").to_string(),
        );
    };
    let client_key = parsed
        .get("client")
        .and_then(Json::as_str)
        .unwrap_or(fallback_key)
        .to_string();
    // The path *is* the op, as on the gateway. A body naming a
    // different op must not ride a scored endpoint into the data plane:
    // it would reach a replica from the fleet's own address (waving a
    // mutating verb like `shutdown` or `reload_routes` past the
    // replica's loopback gate) and be hedged — duplicated — on top.
    let line = match parsed.get("op") {
        Some(body_op) if body_op.as_str() == Some(op) => body.trim().to_string(),
        Some(body_op) => {
            return (
                400,
                "Bad Request",
                "application/json",
                proto::error_response(&format!(
                    "body op {body_op} does not match endpoint op \"{op}\""
                ))
                .to_string(),
            )
        }
        None => match &parsed {
            Json::Obj(members) => {
                let mut fields = vec![("op".to_string(), Json::str(op))];
                fields.extend(members.clone());
                Json::Obj(fields).to_string()
            }
            _ => body.trim().to_string(),
        },
    };
    let mut response = forward(state, &client_key, &line, true);
    let ok = json::parse(&response)
        .ok()
        .and_then(|v| v.get("ok").and_then(Json::as_bool))
        .unwrap_or(false);
    // The gateway's HTTP bodies end with the protocol line's newline;
    // match it so fleet-routed bodies stay byte-identical.
    response.push('\n');
    if ok {
        (200, "OK", "application/json", response)
    } else {
        (502, "Bad Gateway", "application/json", response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn replica_set(n: usize) -> Vec<Arc<Replica>> {
        (0..n)
            .map(|i| {
                Arc::new(Replica::new(ReplicaConfig {
                    id: format!("gw-{i}"),
                    addr: "127.0.0.1:1".parse().unwrap(),
                    http_addr: "127.0.0.1:1".parse().unwrap(),
                }))
            })
            .collect()
    }

    #[test]
    fn gate_list_matches_protocol_mutating_verbs() {
        // ccsa-audit's `verbs` rule checks this lexically; this end
        // checks it at link level so a unit-test run catches drift too.
        assert_eq!(LOOPBACK_GATED_VERBS, proto::MUTATING_VERBS);
    }

    #[test]
    fn attempt_order_puts_the_primary_first() {
        let replicas = replica_set(3);
        assert_eq!(attempt_order(&replicas, 1, &[]), vec![1, 0, 2]);
    }

    #[test]
    fn attempt_order_never_retries_an_excluded_primary() {
        // The failover paths exclude the attempt that just failed; the
        // primary must not sneak back in ahead of the survivors.
        let replicas = replica_set(3);
        assert_eq!(attempt_order(&replicas, 1, &[1]), vec![0, 2]);
        assert_eq!(attempt_order(&replicas, 1, &[1, 2]), vec![0]);
    }

    #[test]
    fn attempt_order_skips_unhealthy_followers() {
        let replicas = replica_set(3);
        replicas[2].probe_failure(1);
        assert_eq!(attempt_order(&replicas, 0, &[0]), vec![1]);
    }

    fn versioned(version: u32) -> ccsa_serve::ModelSelector {
        ccsa_serve::ModelSelector {
            name: None,
            version: Some(version),
        }
    }

    #[test]
    fn promote_table_scales_base_routes_to_the_remaining_share() {
        let current = TableSpec {
            routes: vec![(versioned(1), 1.0), (versioned(2), 0.0)],
            shadow: Some((versioned(2), 1.0)),
        };
        let next = promote_table(&current, &versioned(2), 0.1);
        assert_eq!(next.routes.len(), 2);
        let weight_of = |v: u32| {
            next.routes
                .iter()
                .find(|(s, _)| s.version == Some(v))
                .map(|(_, w)| *w)
                .unwrap()
        };
        assert!((weight_of(1) - 0.9).abs() < 1e-12);
        assert!((weight_of(2) - 0.1).abs() < 1e-12);
        assert!(next.shadow.is_some());
    }

    #[test]
    fn promote_table_with_no_base_routes_is_an_explicit_full_promotion() {
        // The only positive-weight route already IS the candidate.
        // Weights are relative, so a lone candidate at 0.1 would mean
        // 100% of traffic anyway — the rewrite must say so rather than
        // imply it with a fractional weight.
        let current = TableSpec {
            routes: vec![(versioned(2), 1.0)],
            shadow: Some((versioned(2), 1.0)),
        };
        let next = promote_table(&current, &versioned(2), 0.1);
        assert_eq!(next.routes, vec![(versioned(2), 1.0)]);
        assert!(next.shadow.is_none());
    }
}
