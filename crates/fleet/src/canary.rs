//! The automated canary controller: watch the shadow arm's deltas,
//! ramp a healthy candidate into real traffic, roll an unhealthy one
//! back — all by rewriting the routing table, never by restarting a
//! process.
//!
//! The paper's thesis is that *relative* judgments are the robust
//! signal, and the controller applies it to model versions themselves:
//! it never asks "is the candidate fast?" in absolute terms, only "how
//! does the shadow arm compare to the primary serving the same
//! traffic?" — the `delta_p50_ms` / `delta_p99_ms` /
//! `delta_error_rate` block each gateway computes over its rolling
//! windows. Decisions:
//!
//! | state        | observation                      | action |
//! |--------------|----------------------------------|--------|
//! | `Observing`  | deltas healthy for `bake_ticks`  | promote to 1% weight |
//! | `Ramping(k)` | deltas healthy for `bake_ticks`  | promote to next step (1%→10%→50%→100%) |
//! | any          | deltas unhealthy `rollback_after` consecutive ticks | zero the candidate, record why |
//! | any          | deltas absent / scrape failed    | hold (no bake credit) |
//! | `Promoted` / `RolledBack` | —                   | terminal |
//!
//! The final promotion step makes the candidate the sole route and
//! drops the shadow entry; a rollback keeps the candidate in the table
//! at weight 0 as the visible record of what was tried.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// The weight ramp a promoting candidate walks through.
pub const RAMP: [f64; 4] = [0.01, 0.10, 0.50, 1.00];

/// Controller tuning.
#[derive(Debug, Clone)]
pub struct CanaryConfig {
    /// Seconds between scrape/decide ticks.
    pub interval: Duration,
    /// Consecutive healthy ticks required before each promotion step —
    /// the bake time, in ticks.
    pub bake_ticks: u32,
    /// Consecutive unhealthy ticks that trigger a rollback (more than
    /// one, so a single noisy window cannot kill a good candidate).
    pub rollback_after: u32,
    /// Largest tolerable shadow-minus-primary p99 delta (ms).
    pub max_delta_p99_ms: f64,
    /// Largest tolerable shadow-minus-primary error-rate delta.
    pub max_delta_error_rate: f64,
}

impl Default for CanaryConfig {
    fn default() -> CanaryConfig {
        CanaryConfig {
            interval: Duration::from_secs(5),
            bake_ticks: 3,
            rollback_after: 2,
            max_delta_p99_ms: 250.0,
            max_delta_error_rate: 0.02,
        }
    }
}

/// Where the candidate currently stands.
#[derive(Debug, Clone, PartialEq)]
pub enum CanaryPhase {
    /// Shadow-only: mirrored traffic, no real weight yet.
    Observing,
    /// Serving real traffic at `RAMP[step]` of the total weight.
    Ramping(usize),
    /// Fully promoted: the candidate is the table.
    Promoted,
    /// Zeroed, with the recorded reason.
    RolledBack(String),
}

impl CanaryPhase {
    /// The phase as a stats-verb string.
    pub fn label(&self) -> &'static str {
        match self {
            CanaryPhase::Observing => "observing",
            CanaryPhase::Ramping(_) => "ramping",
            CanaryPhase::Promoted => "promoted",
            CanaryPhase::RolledBack(_) => "rolled_back",
        }
    }
}

/// One aggregated delta observation (worst replica per tick — a
/// candidate must be healthy *everywhere* to earn traffic).
#[derive(Debug, Clone, Copy)]
pub struct DeltaSample {
    /// Shadow-minus-primary p50 latency (ms).
    pub delta_p50_ms: f64,
    /// Shadow-minus-primary p99 latency (ms).
    pub delta_p99_ms: f64,
    /// Shadow-minus-primary error rate.
    pub delta_error_rate: f64,
}

/// What one tick decided.
#[derive(Debug, Clone, PartialEq)]
pub enum Decision {
    /// Advance the ramp (the payload is the candidate's new weight
    /// share; 1.0 means full promotion).
    Promote(f64),
    /// Not enough evidence yet, or mid-bake.
    Hold,
    /// Zero the candidate for this recorded reason.
    Rollback(String),
}

impl Decision {
    /// The decision as a metric label.
    pub fn label(&self) -> &'static str {
        match self {
            Decision::Promote(_) => "promote",
            Decision::Hold => "hold",
            Decision::Rollback(_) => "rollback",
        }
    }
}

/// The controller's mutable state. Pure decision logic — scraping and
/// table rewriting live in the server, so this part is directly
/// testable without sockets.
pub struct Canary {
    config: CanaryConfig,
    state: Mutex<CanaryState>,
    /// Decisions taken, by kind, for `ccsa_fleet_canary_decisions_total`.
    pub promotes: AtomicU64,
    pub holds: AtomicU64,
    pub rollbacks: AtomicU64,
}

struct CanaryState {
    phase: CanaryPhase,
    healthy_streak: u32,
    unhealthy_streak: u32,
}

impl Canary {
    /// A fresh controller in `Observing`.
    pub fn new(config: CanaryConfig) -> Canary {
        Canary {
            config,
            state: Mutex::new(CanaryState {
                phase: CanaryPhase::Observing,
                healthy_streak: 0,
                unhealthy_streak: 0,
            }),
            promotes: AtomicU64::new(0),
            holds: AtomicU64::new(0),
            rollbacks: AtomicU64::new(0),
        }
    }

    /// The scrape/decide cadence.
    pub fn interval(&self) -> Duration {
        self.config.interval
    }

    /// The current phase (cloned; the reason string rides along).
    pub fn phase(&self) -> CanaryPhase {
        self.state
            .lock()
            .expect("canary state poisoned")
            .phase
            .clone()
    }

    /// Whether the controller still has decisions to make.
    pub fn active(&self) -> bool {
        matches!(
            self.phase(),
            CanaryPhase::Observing | CanaryPhase::Ramping(_)
        )
    }

    /// Feeds one tick's observation (or `None` when the deltas were
    /// unavailable) and returns the decision. The caller applies
    /// `Promote`/`Rollback` to the routing table.
    pub fn tick(&self, sample: Option<DeltaSample>) -> Decision {
        let mut state = self.state.lock().expect("canary state poisoned");
        if matches!(
            state.phase,
            CanaryPhase::Promoted | CanaryPhase::RolledBack(_)
        ) {
            return Decision::Hold;
        }
        let decision = match sample {
            None => {
                // No evidence is not evidence of health: the bake clock
                // pauses, but an unhealthy streak is also not extended.
                state.healthy_streak = 0;
                Decision::Hold
            }
            Some(s) => {
                let unhealthy = s.delta_p99_ms > self.config.max_delta_p99_ms
                    || s.delta_error_rate > self.config.max_delta_error_rate;
                if unhealthy {
                    state.healthy_streak = 0;
                    state.unhealthy_streak += 1;
                    if state.unhealthy_streak >= self.config.rollback_after {
                        let reason = format!(
                            "delta_p99_ms={:.2} (max {:.2}), delta_error_rate={:.4} (max {:.4}) \
                             for {} consecutive ticks",
                            s.delta_p99_ms,
                            self.config.max_delta_p99_ms,
                            s.delta_error_rate,
                            self.config.max_delta_error_rate,
                            state.unhealthy_streak,
                        );
                        state.phase = CanaryPhase::RolledBack(reason.clone());
                        Decision::Rollback(reason)
                    } else {
                        Decision::Hold
                    }
                } else {
                    state.unhealthy_streak = 0;
                    state.healthy_streak += 1;
                    if state.healthy_streak >= self.config.bake_ticks {
                        state.healthy_streak = 0;
                        let next = match state.phase {
                            CanaryPhase::Observing => 0,
                            CanaryPhase::Ramping(step) => step + 1,
                            _ => unreachable!("terminal phases returned above"),
                        };
                        if next + 1 >= RAMP.len() {
                            state.phase = CanaryPhase::Promoted;
                            Decision::Promote(1.0)
                        } else {
                            state.phase = CanaryPhase::Ramping(next);
                            Decision::Promote(RAMP[next])
                        }
                    } else {
                        Decision::Hold
                    }
                }
            }
        };
        // Relaxed: stats counters, read only at snapshot time.
        match &decision {
            Decision::Promote(_) => self.promotes.fetch_add(1, Ordering::Relaxed),
            Decision::Hold => self.holds.fetch_add(1, Ordering::Relaxed),
            Decision::Rollback(_) => self.rollbacks.fetch_add(1, Ordering::Relaxed),
        };
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> CanaryConfig {
        CanaryConfig {
            interval: Duration::from_millis(10),
            bake_ticks: 2,
            rollback_after: 2,
            max_delta_p99_ms: 100.0,
            max_delta_error_rate: 0.02,
        }
    }

    fn healthy() -> Option<DeltaSample> {
        Some(DeltaSample {
            delta_p50_ms: 1.0,
            delta_p99_ms: 5.0,
            delta_error_rate: 0.0,
        })
    }

    fn unhealthy() -> Option<DeltaSample> {
        Some(DeltaSample {
            delta_p50_ms: 1.0,
            delta_p99_ms: 5.0,
            delta_error_rate: 0.5,
        })
    }

    #[test]
    fn promotes_through_the_full_ramp() {
        let canary = Canary::new(config());
        let mut weights = Vec::new();
        for _ in 0..20 {
            if let Decision::Promote(w) = canary.tick(healthy()) {
                weights.push(w);
            }
            if !canary.active() {
                break;
            }
        }
        assert_eq!(weights, vec![0.01, 0.10, 0.50, 1.0]);
        assert_eq!(canary.phase(), CanaryPhase::Promoted);
        // Terminal: further ticks are inert holds.
        assert_eq!(canary.tick(healthy()), Decision::Hold);
        assert_eq!(canary.phase(), CanaryPhase::Promoted);
    }

    #[test]
    fn rolls_back_after_consecutive_unhealthy_ticks() {
        let canary = Canary::new(config());
        assert_eq!(canary.tick(unhealthy()), Decision::Hold);
        let decision = canary.tick(unhealthy());
        assert!(matches!(decision, Decision::Rollback(_)));
        match canary.phase() {
            CanaryPhase::RolledBack(reason) => {
                assert!(reason.contains("delta_error_rate"), "reason: {reason}");
            }
            other => panic!("expected rollback, got {other:?}"),
        }
        assert_eq!(canary.rollbacks.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn single_bad_tick_does_not_kill_a_candidate() {
        let canary = Canary::new(config());
        assert_eq!(canary.tick(healthy()), Decision::Hold); // bake 1/2
        assert_eq!(canary.tick(unhealthy()), Decision::Hold); // streak reset
        assert_eq!(canary.tick(healthy()), Decision::Hold); // bake 1/2 again
        assert_eq!(canary.tick(healthy()), Decision::Promote(0.01));
        assert_eq!(canary.phase(), CanaryPhase::Ramping(0));
    }

    #[test]
    fn missing_deltas_pause_the_bake_clock() {
        let canary = Canary::new(config());
        assert_eq!(canary.tick(healthy()), Decision::Hold);
        assert_eq!(canary.tick(None), Decision::Hold); // scrape failed
        assert_eq!(canary.tick(healthy()), Decision::Hold); // restart bake
        assert_eq!(canary.tick(healthy()), Decision::Promote(0.01));
    }
}
