//! The hot-reloadable routing table: a JSON file on disk, validated
//! before use, rewritten atomically, and pushed to every replica via
//! the gateway's `reload_routes` verb.
//!
//! The file is the control plane's single source of truth — the canary
//! controller rewrites it, the watcher pushes it, and an operator can
//! edit it by hand; all three go through the same validate-then-swap
//! path, so a malformed table can never reach a replica. Format:
//!
//! ```json
//! {
//!   "routes": [{"model": "default", "version": 1, "weight": 1.0}],
//!   "shadow": {"model": "default", "version": 2, "fraction": 0.1}
//! }
//! ```
//!
//! `model`/`version` are optional exactly as in the wire protocol
//! (absent = registry default / latest). A route with `weight: 0` is a
//! *zeroed* entry: it stays in the file as the record of a rolled-back
//! candidate but is filtered out of what replicas receive (the gateway
//! router rejects non-positive weights, deliberately).

use std::path::Path;

use ccsa_serve::json::{self, Json};
use ccsa_serve::ModelSelector;

/// One parsed, validated routing table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSpec {
    /// Weighted routes (weight ≥ 0; zero-weight entries are kept in the
    /// file but not pushed).
    pub routes: Vec<(ModelSelector, f64)>,
    /// Optional shadow target and its mirror fraction.
    pub shadow: Option<(ModelSelector, f64)>,
}

impl TableSpec {
    /// The routes replicas actually receive: zero-weight entries
    /// filtered out.
    pub fn live_routes(&self) -> Vec<(ModelSelector, f64)> {
        self.routes
            .iter()
            .filter(|(_, w)| *w > 0.0)
            .cloned()
            .collect()
    }

    /// The `reload_routes` request line for this table.
    pub fn reload_request(&self) -> Json {
        let routes: Vec<Json> = self
            .live_routes()
            .iter()
            .map(|(selector, weight)| {
                let mut fields = selector_json(selector);
                fields.push(("weight", Json::num(*weight)));
                Json::obj(fields)
            })
            .collect();
        let shadow = match &self.shadow {
            Some((selector, fraction)) => {
                let mut fields = selector_json(selector);
                fields.push(("fraction", Json::num(*fraction)));
                Json::obj(fields)
            }
            None => Json::Null,
        };
        Json::obj(vec![
            ("op", Json::str("reload_routes")),
            ("routes", Json::Arr(routes)),
            ("shadow", shadow),
        ])
    }

    /// Renders the table back to its file form.
    pub fn render(&self) -> String {
        let routes: Vec<Json> = self
            .routes
            .iter()
            .map(|(selector, weight)| {
                let mut fields = selector_json(selector);
                fields.push(("weight", Json::num(*weight)));
                Json::obj(fields)
            })
            .collect();
        let shadow = match &self.shadow {
            Some((selector, fraction)) => {
                let mut fields = selector_json(selector);
                fields.push(("fraction", Json::num(*fraction)));
                Json::obj(fields)
            }
            None => Json::Null,
        };
        let mut text =
            Json::obj(vec![("routes", Json::Arr(routes)), ("shadow", shadow)]).to_string();
        text.push('\n');
        text
    }
}

fn selector_json(selector: &ModelSelector) -> Vec<(&'static str, Json)> {
    let mut fields = Vec::new();
    if let Some(name) = &selector.name {
        fields.push(("model", Json::str(name.clone())));
    }
    if let Some(version) = selector.version {
        fields.push(("version", Json::num(version as f64)));
    }
    fields
}

/// Parses and validates one routing-table document.
///
/// # Errors
///
/// Returns a human-readable message for malformed JSON, a missing or
/// empty route list, a negative/non-finite weight, an all-zero table,
/// or an out-of-range shadow fraction.
pub fn parse(text: &str) -> Result<TableSpec, String> {
    let v = json::parse(text).map_err(|e| e.to_string())?;
    from_json(&v)
}

/// Validates a routing-table document already decoded from JSON. The
/// file form and the `reload_routes` request body share this shape
/// (extra fields like `op` are ignored), so an operator pushing a table
/// at the fleet goes through exactly the file watcher's validation.
///
/// # Errors
///
/// As [`parse`], minus the JSON decode step.
pub fn from_json(v: &Json) -> Result<TableSpec, String> {
    let arr = v
        .get("routes")
        .and_then(Json::as_arr)
        .ok_or_else(|| "routing table needs array field 'routes'".to_string())?;
    if arr.is_empty() {
        return Err("routing table needs at least one route".to_string());
    }
    let mut routes = Vec::with_capacity(arr.len());
    for route in arr {
        let weight = route
            .get("weight")
            .and_then(Json::as_f64)
            .ok_or_else(|| "each route needs numeric field 'weight'".to_string())?;
        if !weight.is_finite() || weight < 0.0 {
            return Err(format!(
                "route weight must be finite and >= 0, got {weight}"
            ));
        }
        routes.push((selector_of(route)?, weight));
    }
    if !routes.iter().any(|(_, w)| *w > 0.0) {
        return Err("routing table needs at least one positive-weight route".to_string());
    }
    let shadow = match v.get("shadow") {
        None | Some(Json::Null) => None,
        Some(s) => {
            let fraction = s
                .get("fraction")
                .and_then(Json::as_f64)
                .ok_or_else(|| "shadow needs numeric field 'fraction'".to_string())?;
            if !fraction.is_finite() || !(0.0..=1.0).contains(&fraction) {
                return Err(format!(
                    "shadow fraction must be within [0, 1], got {fraction}"
                ));
            }
            Some((selector_of(s)?, fraction))
        }
    };
    Ok(TableSpec { routes, shadow })
}

fn selector_of(v: &Json) -> Result<ModelSelector, String> {
    let name = match v.get("model") {
        None => None,
        Some(m) => Some(
            m.as_str()
                .map(str::to_string)
                .ok_or_else(|| "'model' must be a string".to_string())?,
        ),
    };
    let version = match v.get("version") {
        None => None,
        Some(n) => Some(
            n.as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| "'version' must be an integer within u32 range".to_string())?,
        ),
    };
    Ok(ModelSelector { name, version })
}

/// Reads and validates the table file.
///
/// # Errors
///
/// I/O failures and validation failures, as one message.
pub fn load(path: &Path) -> Result<TableSpec, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    parse(&text)
}

/// Writes the table atomically: full content to a sibling temp file,
/// then a rename over the target. A watcher (this process's or another
/// fleet's) can never observe a half-written table.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_atomic(path: &Path, spec: &TableSpec) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, spec.render())?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_round_trips() {
        let text = r#"{"routes":[{"model":"default","version":1,"weight":0.9},{"model":"default","version":2,"weight":0.1}],"shadow":{"model":"default","version":3,"fraction":0.25}}"#;
        let spec = parse(text).unwrap();
        assert_eq!(spec.routes.len(), 2);
        assert_eq!(spec.shadow.as_ref().unwrap().1, 0.25);
        let again = parse(&spec.render()).unwrap();
        assert_eq!(spec, again);
    }

    #[test]
    fn zero_weight_routes_are_kept_but_not_pushed() {
        let text = r#"{"routes":[{"version":1,"weight":1.0},{"version":2,"weight":0}]}"#;
        let spec = parse(text).unwrap();
        assert_eq!(spec.routes.len(), 2);
        assert_eq!(spec.live_routes().len(), 1);
        let request = spec.reload_request();
        assert_eq!(request.get("routes").unwrap().as_arr().unwrap().len(), 1);
        assert_eq!(request.get("shadow"), Some(&Json::Null));
    }

    #[test]
    fn rejects_invalid_tables() {
        for bad in [
            "not json",
            r#"{"routes":[]}"#,
            r#"{"routes":[{"weight":-1}]}"#,
            r#"{"routes":[{"weight":0}]}"#,
            r#"{"routes":[{"version":"two","weight":1}]}"#,
            r#"{"routes":[{"weight":1}],"shadow":{"fraction":1.5}}"#,
            r#"{"routes":[{"weight":1}],"shadow":{}}"#,
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn atomic_write_round_trips_through_load() {
        let dir = std::env::temp_dir().join(format!("ccsa-table-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("routes.json");
        let spec = parse(r#"{"routes":[{"model":"m","version":4,"weight":2.0}]}"#).unwrap();
        write_atomic(&path, &spec).unwrap();
        assert_eq!(load(&path).unwrap(), spec);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
