//! One backend gateway replica: its addresses, health word, and a
//! keep-alive connection pool for the data plane.
//!
//! Pooling matters here for the same reason NODELAY does on the
//! gateway: fleet traffic is request/response lines, and a fresh TCP
//! handshake per forwarded request would double every round trip. The
//! pool is a plain LIFO stack of idle sessions — the most recently
//! used connection is the least likely to have been idle-timed-out by
//! the replica. A connection that errors mid-exchange is dropped, never
//! returned; the replica's accept loop hands out fresh ones cheaply.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Idle sessions kept per replica; excess check-ins are simply closed.
const POOL_CAP: usize = 16;

/// Where one replica listens.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// Stable identity — the consistent-hash ring derives this
    /// replica's points from it, so it must not change across restarts.
    pub id: String,
    /// The JSON-lines TCP address (the data plane forwards here).
    pub addr: SocketAddr,
    /// The HTTP front door (the prober hits `/readyz` here).
    pub http_addr: SocketAddr,
}

/// One replica's runtime state.
pub struct Replica {
    /// Static addressing.
    pub config: ReplicaConfig,
    /// Whether the replica is on the ring. Replicas start healthy — the
    /// fleet must serve before the first probe tick completes.
    healthy: AtomicBool,
    /// Consecutive probe successes/failures, for rise/fall hysteresis.
    streak_up: AtomicU32,
    streak_down: AtomicU32,
    /// Requests this replica answered through the fleet.
    pub requests: AtomicU64,
    /// Idle keep-alive sessions.
    pool: Mutex<VecDeque<TcpStream>>,
}

/// One pooled keep-alive session, checked out for a single exchange.
struct Session {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// Whether this session came from the pool (a stale pooled session
    /// failing is routine; a fresh one failing means the replica is
    /// actually unreachable).
    pooled: bool,
}

impl Replica {
    /// Wraps a config with fresh runtime state.
    pub fn new(config: ReplicaConfig) -> Replica {
        Replica {
            config,
            healthy: AtomicBool::new(true),
            streak_up: AtomicU32::new(0),
            streak_down: AtomicU32::new(0),
            requests: AtomicU64::new(0),
            pool: Mutex::new(VecDeque::new()),
        }
    }

    /// Whether the replica is currently on the ring.
    pub fn is_healthy(&self) -> bool {
        // SeqCst: health flips must be totally ordered with the streak
        // counters the prober updates (see probe_success/probe_failure).
        self.healthy.load(Ordering::SeqCst)
    }

    /// Records one probe success; returns `true` when this flip crossed
    /// the rise threshold and the replica just became healthy.
    pub fn probe_success(&self, rise: u32) -> bool {
        // SeqCst throughout: streak resets, streak bumps, and the health
        // flip must appear in one total order to every observer.
        self.streak_down.store(0, Ordering::SeqCst);
        let up = self.streak_up.fetch_add(1, Ordering::SeqCst) + 1;
        if up >= rise && !self.healthy.swap(true, Ordering::SeqCst) {
            return true;
        }
        false
    }

    /// Records one probe failure; returns `true` when this flip crossed
    /// the fall threshold and the replica just got ejected.
    pub fn probe_failure(&self, fall: u32) -> bool {
        // SeqCst throughout, mirroring probe_success's ordering.
        self.streak_up.store(0, Ordering::SeqCst);
        let down = self.streak_down.fetch_add(1, Ordering::SeqCst) + 1;
        if down >= fall && self.healthy.swap(false, Ordering::SeqCst) {
            // A dead replica's pooled sessions are dead too.
            self.pool.lock().expect("pool poisoned").clear();
            return true;
        }
        false
    }

    /// Idle pooled sessions (for the `fleet` stats verb).
    pub fn pooled(&self) -> usize {
        self.pool.lock().expect("pool poisoned").len()
    }

    /// Sends one raw protocol line and reads one response line, using a
    /// pooled session when one is idle. A stale pooled session (the
    /// replica closed it while idle) is retried once on a fresh
    /// connection before the error is surfaced — that distinction keeps
    /// routine keep-alive churn from looking like replica death.
    ///
    /// # Errors
    ///
    /// Propagates connect/exchange failures on a fresh connection.
    pub fn exchange(&self, line: &str, timeout: Duration) -> std::io::Result<String> {
        let mut session = self.checkout(timeout)?;
        match exchange_on(&mut session, line) {
            Ok(response) => {
                self.checkin(session);
                Ok(response)
            }
            Err(first) => {
                if !session.pooled {
                    return Err(first);
                }
                // The pooled session went stale; one fresh retry.
                let mut fresh = self.connect(timeout)?;
                let response = exchange_on(&mut fresh, line)?;
                self.checkin(fresh);
                Ok(response)
            }
        }
    }

    fn checkout(&self, timeout: Duration) -> std::io::Result<Session> {
        let idle = self.pool.lock().expect("pool poisoned").pop_back();
        match idle {
            Some(stream) => {
                let reader = stream.try_clone().map(BufReader::new)?;
                Ok(Session {
                    reader,
                    writer: stream,
                    pooled: true,
                })
            }
            None => self.connect(timeout),
        }
    }

    fn connect(&self, timeout: Duration) -> std::io::Result<Session> {
        let stream = TcpStream::connect_timeout(&self.config.addr, timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        Ok(Session {
            reader: stream.try_clone().map(BufReader::new)?,
            writer: stream,
            pooled: false,
        })
    }

    fn checkin(&self, session: Session) {
        let mut pool = self.pool.lock().expect("pool poisoned");
        if pool.len() < POOL_CAP {
            pool.push_back(session.writer);
        }
    }
}

/// One request/response exchange on a session. The request line is
/// forwarded as raw bytes and the response returned verbatim (minus the
/// newline) — the fleet never re-serializes either direction, which is
/// what makes fleet-routed responses byte-identical to direct ones.
fn exchange_on(session: &mut Session, line: &str) -> std::io::Result<String> {
    session.writer.write_all(line.as_bytes())?;
    session.writer.write_all(b"\n")?;
    session.writer.flush()?;
    let mut response = String::new();
    let n = session.reader.read_line(&mut response)?;
    if n == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "replica closed the session",
        ));
    }
    while response.ends_with('\n') || response.ends_with('\r') {
        response.pop();
    }
    Ok(response)
}
