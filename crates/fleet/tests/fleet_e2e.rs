//! End-to-end fleet tests: real sockets, real gateways behind it.
//!
//! The load-bearing invariants: (1) the fleet is *transparent* — a
//! scored response through the fleet is byte-identical to one from the
//! replica directly; (2) it is *reliable* — killing one of N replicas
//! under load produces zero client-visible errors; (3) the control
//! plane rewrites the routing table (promotion ramp and rollback)
//! without restarting any gateway process.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ccsa_fleet::{
    parse_table, CanaryConfig, Fleet, FleetConfig, ReplicaConfig, Ring, SpawnedFleet, TableSpec,
};
use ccsa_gateway::{Gateway, GatewayConfig, HttpGatewayClient, Route, Router, ShadowRoute};
use ccsa_model::comparator::{Comparator, EncoderConfig};
use ccsa_model::pipeline::TrainedModel;
use ccsa_nn::param::Params;
use ccsa_nn::treelstm::{Direction, TreeLstmConfig};
use ccsa_serve::json::{self, Json};
use ccsa_serve::{BatchConfig, ModelRegistry, ModelSelector, ServeConfig, ServeEngine};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const FAST: &str = "int main() { int n; cin >> n; cout << n * (n + 1) / 2; return 0; }";
const SLOW: &str = "int main() { int n; cin >> n; long long s = 0; \
                    for (int i = 0; i <= n; i++) for (int j = 0; j < i; j++) s++; \
                    cout << s; return 0; }";

fn tiny_model(seed: u64) -> TrainedModel {
    let config = EncoderConfig::TreeLstm(TreeLstmConfig {
        embed_dim: 6,
        hidden: 6,
        layers: 1,
        direction: Direction::Uni,
        sigmoid_candidate: false,
    });
    let mut params = Params::new();
    let comparator = Comparator::new(&config, &mut params, &mut StdRng::seed_from_u64(seed));
    TrainedModel { comparator, params }
}

/// A model whose encoder will fail at serve time: real architecture,
/// empty parameter store. Registered as a canary candidate it makes the
/// shadow arm's error rate spike — the rollback trigger.
fn corrupt_model() -> TrainedModel {
    let config = EncoderConfig::TreeLstm(TreeLstmConfig {
        embed_dim: 6,
        hidden: 6,
        layers: 1,
        direction: Direction::Uni,
        sigmoid_candidate: false,
    });
    let mut params = Params::new();
    let comparator = Comparator::new(&config, &mut params, &mut StdRng::seed_from_u64(7));
    TrainedModel {
        comparator,
        params: Params::new(),
    }
}

fn engine_with(versions: Vec<(u32, TrainedModel)>) -> Arc<ServeEngine> {
    let mut registry = ModelRegistry::new();
    for (version, model) in versions {
        registry.register("default", version, model);
    }
    Arc::new(ServeEngine::new(
        registry,
        &ServeConfig {
            cache_capacity: 512,
            cache_stripes: 0,
            cache_precision: Default::default(),
            batch: BatchConfig {
                workers: 2,
                max_batch: 8,
                ..BatchConfig::default()
            },
        },
    ))
}

fn versioned(version: u32) -> ModelSelector {
    ModelSelector {
        name: Some("default".to_string()),
        version: Some(version),
    }
}

fn single_route_router(version: u32, shadow: Option<(u32, f64)>) -> Router {
    Router::new(
        vec![Route {
            selector: versioned(version),
            weight: 1.0,
        }],
        shadow.map(|(v, fraction)| ShadowRoute {
            selector: versioned(v),
            fraction,
        }),
    )
    .unwrap()
}

/// Spawns a gateway (TCP + HTTP fronts) and returns it with its
/// replica-config entry for the fleet.
fn spawn_gateway(
    engine: Arc<ServeEngine>,
    router: Router,
    id: &str,
) -> (ccsa_gateway::SpawnedGateway, ReplicaConfig) {
    let gateway = Gateway::spawn(
        engine,
        router,
        GatewayConfig {
            http_addr: Some("127.0.0.1:0".to_string()),
            ..GatewayConfig::default()
        },
    )
    .expect("spawn gateway");
    let replica = ReplicaConfig {
        id: id.to_string(),
        addr: gateway.addr(),
        http_addr: gateway.http_addr().expect("gateway http addr"),
    };
    (gateway, replica)
}

/// One raw request/response exchange on a fresh socket — no client
/// library in the path, so the returned line is exactly what the server
/// wrote (minus the newline).
fn raw_exchange(addr: SocketAddr, line: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    writeln!(stream, "{line}").expect("write");
    let mut response = String::new();
    BufReader::new(stream)
        .read_line(&mut response)
        .expect("read");
    response.trim_end_matches(['\n', '\r']).to_string()
}

fn fleet_stats(addr: SocketAddr) -> Json {
    json::parse(&raw_exchange(addr, r#"{"op":"fleet"}"#)).expect("fleet stats json")
}

fn compare_line(client: &str) -> String {
    Json::obj(vec![
        ("op", Json::str("compare")),
        ("client", Json::str(client)),
        ("first", Json::str(SLOW)),
        ("second", Json::str(FAST)),
    ])
    .to_string()
}

fn wait_until(what: &str, deadline: Duration, mut done: impl FnMut() -> bool) {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if done() {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("timed out waiting for {what}");
}

fn default_fleet_config() -> FleetConfig {
    FleetConfig {
        probe_interval: None, // each test opts in explicitly
        ..FleetConfig::default()
    }
}

// ---------------------------------------------------------------------
// Ring invariants (property tests)
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        ..ProptestConfig::default()
    })]

    /// Consistent hashing's reason to exist: removing one of `n`
    /// replicas remaps only the vanished replica's own keys — expected
    /// `1/n` of them, bounded here by `2/n` of 10k sticky keys — and
    /// every key the victim did not own keeps its exact owner.
    #[test]
    fn removing_one_replica_remaps_at_most_two_over_n(
        n in 3usize..8,
        victim_seed in 0u64..1_000_000,
    ) {
        let ids: Vec<String> = (0..n).map(|i| format!("gw-{i}")).collect();
        let victim = (victim_seed % n as u64) as usize;
        let full = Ring::new(ids.iter().enumerate().map(|(ix, id)| (ix, id.as_str())));
        let reduced = Ring::new(
            ids.iter()
                .enumerate()
                .filter(|(ix, _)| *ix != victim)
                .map(|(ix, id)| (ix, id.as_str())),
        );
        let keys = 10_000usize;
        let mut remapped = 0usize;
        for i in 0..keys {
            let key = format!("client-{i}");
            let before = full.replica_for(&key).unwrap();
            let after = reduced.replica_for(&key).unwrap();
            if before == victim {
                prop_assert_ne!(after, victim);
                remapped += 1;
            } else {
                // A surviving replica's arcs never moved, so neither
                // did its keys.
                prop_assert_eq!(after, before);
            }
        }
        let bound = 2.0 / n as f64;
        let fraction = remapped as f64 / keys as f64;
        prop_assert!(
            fraction <= bound,
            "removing 1 of {} replicas remapped {:.4} of keys (bound {:.4})",
            n, fraction, bound
        );
    }

    /// Determinism across processes: two rings built independently from
    /// the same replica ids — even in reverse insertion order — route
    /// all 10k keys identically. The points derive from the id strings
    /// through the same FNV/splitmix primitives the gateway router
    /// uses, never from addresses or insertion order.
    #[test]
    fn independently_built_rings_agree_on_every_key(n in 2usize..8) {
        let ids: Vec<String> = (0..n).map(|i| format!("gw-{i}")).collect();
        let forward = Ring::new(ids.iter().enumerate().map(|(ix, id)| (ix, id.as_str())));
        let reverse = Ring::new(
            ids.iter().enumerate().rev().map(|(ix, id)| (ix, id.as_str())),
        );
        for i in 0..10_000 {
            let key = format!("client-{i}");
            prop_assert_eq!(forward.replica_for(&key), reverse.replica_for(&key));
        }
    }
}

// ---------------------------------------------------------------------
// Transparency
// ---------------------------------------------------------------------

#[test]
fn fleet_responses_are_byte_identical_to_direct_replica_responses() {
    let engine = engine_with(vec![(1, tiny_model(1))]);
    let (gateway, replica) = spawn_gateway(engine, single_route_router(1, None), "gw-0");
    let direct_addr = replica.addr;
    let fleet = Fleet::spawn(vec![replica], default_fleet_config()).expect("spawn fleet");

    // Saturate the replica's embedding cache first: `cache_hits` in the
    // response depends on cache state, so byte-identity is asserted
    // between *steady-state* responses.
    let compare = compare_line("client-bits");
    let rank = Json::obj(vec![
        ("op", Json::str("rank")),
        ("client", Json::str("client-bits")),
        (
            "candidates",
            Json::Arr(vec![Json::str(SLOW), Json::str(FAST)]),
        ),
    ])
    .to_string();
    let _ = raw_exchange(direct_addr, &compare);
    let _ = raw_exchange(direct_addr, &rank);

    for line in [&compare, &rank] {
        let direct = raw_exchange(direct_addr, line);
        let through_fleet = raw_exchange(fleet.addr(), line);
        assert_eq!(
            direct, through_fleet,
            "fleet response differs from direct replica response"
        );
        assert!(direct.contains(r#""ok":true"#), "response: {direct}");
    }

    fleet.shutdown_and_join().expect("fleet drain");
    gateway.shutdown_and_join().expect("gateway drain");
}

#[test]
fn http_front_serves_probes_metrics_and_scored_verbs() {
    let engine = engine_with(vec![(1, tiny_model(1))]);
    let (gateway, replica) = spawn_gateway(engine, single_route_router(1, None), "gw-0");
    let replica_http = replica.http_addr;
    let fleet = Fleet::spawn(
        vec![replica],
        FleetConfig {
            http_addr: Some("127.0.0.1:0".to_string()),
            ..default_fleet_config()
        },
    )
    .expect("spawn fleet");
    let http_addr = fleet.http_addr().expect("fleet http addr");
    wait_until("fleet accepting", Duration::from_secs(5), || {
        fleet.handle().accepting()
    });

    let mut http = HttpGatewayClient::connect(http_addr).expect("connect http");
    http.set_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    assert_eq!(http.get("/healthz").expect("healthz").status, 200);
    let ready = http.get("/readyz").expect("readyz");
    assert_eq!(ready.status, 200);
    assert_eq!(ready.body, "ready\n");
    let metrics = http.get("/metrics").expect("metrics");
    assert_eq!(metrics.status, 200);
    assert!(metrics.body.contains("ccsa_fleet_ring_members 1"));
    assert!(metrics.body.contains("ccsa_fleet_requests_total"));

    // The scored verbs go through the same data plane as TCP, so the
    // HTTP body is the replica's response line — byte-identical to the
    // replica's own HTTP body for the same request.
    let body = Json::obj(vec![
        ("client", Json::str("client-http")),
        ("first", Json::str(SLOW)),
        ("second", Json::str(FAST)),
    ])
    .to_string();
    let mut replica_client = HttpGatewayClient::connect(replica_http).expect("connect replica");
    replica_client
        .set_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let _ = replica_client
        .post("/v1/compare", &body, None)
        .expect("warm");
    let direct = replica_client
        .post("/v1/compare", &body, None)
        .expect("direct");
    let through_fleet = http
        .post("/v1/compare", &body, None)
        .expect("fleet compare");
    assert_eq!(through_fleet.status, 200);
    assert_eq!(direct.body, through_fleet.body);

    // A body naming a different op must not ride the scored endpoint
    // into the data plane: it would reach a replica from the fleet's
    // own (loopback) address, waving a mutating verb past the
    // replica's loopback gate — and hedged on top.
    let smuggled = http
        .post("/v1/compare", r#"{"op":"shutdown"}"#, None)
        .expect("smuggled op");
    assert_eq!(smuggled.status, 400, "body: {}", smuggled.body);
    // A body that names the endpoint's own op is still fine, and
    // neither the replica nor the fleet drained.
    let explicit_op = format!(
        r#"{{"op":"compare",{}"#,
        body.strip_prefix('{').expect("object body")
    );
    let explicit = http
        .post("/v1/compare", &explicit_op, None)
        .expect("explicit op");
    assert_eq!(explicit.status, 200, "body: {}", explicit.body);
    assert_eq!(explicit.body, direct.body);

    let stats = http.get("/v1/fleet").expect("fleet stats");
    assert_eq!(stats.status, 200);
    let stats = json::parse(&stats.body).expect("stats json");
    assert_eq!(stats.get("ok"), Some(&Json::Bool(true)));

    fleet.shutdown_and_join().expect("fleet drain");
    gateway.shutdown_and_join().expect("gateway drain");
}

// ---------------------------------------------------------------------
// Reliability
// ---------------------------------------------------------------------

#[test]
fn killing_one_replica_under_load_is_invisible_to_clients() {
    // Two replicas with the *same* model, so any replica's answer is
    // correct; the prober is off, so every request for a dead replica's
    // keys must succeed purely via transparent failover.
    let (gw_a, replica_a) = spawn_gateway(
        engine_with(vec![(1, tiny_model(1))]),
        single_route_router(1, None),
        "gw-a",
    );
    let (gw_b, replica_b) = spawn_gateway(
        engine_with(vec![(1, tiny_model(1))]),
        single_route_router(1, None),
        "gw-b",
    );
    let fleet =
        Fleet::spawn(vec![replica_a, replica_b], default_fleet_config()).expect("spawn fleet");

    let send = |i: usize| {
        let response = raw_exchange(fleet.addr(), &compare_line(&format!("client-{i}")));
        assert!(
            response.contains(r#""ok":true"#),
            "client-visible error at request {i}: {response}"
        );
    };
    for i in 0..40 {
        send(i);
    }
    gw_a.shutdown_and_join().expect("gateway a drain");
    for i in 40..140 {
        send(i);
    }

    let stats = fleet_stats(fleet.addr());
    let failovers = stats.get("failovers").and_then(Json::as_f64).unwrap();
    assert!(
        failovers >= 1.0,
        "expected at least one transparent failover, stats: {stats}"
    );

    fleet.shutdown_and_join().expect("fleet drain");
    gw_b.shutdown_and_join().expect("gateway b drain");
}

#[test]
fn prober_ejects_dead_replicas_and_restores_recovered_ones() {
    let (gw_a, replica_a) = spawn_gateway(
        engine_with(vec![(1, tiny_model(1))]),
        single_route_router(1, None),
        "gw-a",
    );
    let (gw_b, replica_b) = spawn_gateway(
        engine_with(vec![(1, tiny_model(1))]),
        single_route_router(1, None),
        "gw-b",
    );
    let a_tcp = replica_a.addr;
    let a_http = replica_a.http_addr;
    let fleet = Fleet::spawn(
        vec![replica_a, replica_b],
        FleetConfig {
            probe_interval: Some(Duration::from_millis(30)),
            probe_rise: 2,
            probe_fall: 2,
            probe_timeout: Duration::from_millis(500),
            ..FleetConfig::default()
        },
    )
    .expect("spawn fleet");

    let ring_members = || {
        fleet_stats(fleet.addr())
            .get("ring_members")
            .and_then(Json::as_f64)
            .unwrap() as usize
    };
    wait_until("both replicas on the ring", Duration::from_secs(10), || {
        ring_members() == 2
    });

    gw_a.shutdown_and_join().expect("gateway a drain");
    wait_until("dead replica ejected", Duration::from_secs(10), || {
        ring_members() == 1
    });

    // Resurrect a gateway on the same addresses: the prober must
    // restore it after `rise` consecutive healthy probes.
    let resurrected = Gateway::spawn(
        engine_with(vec![(1, tiny_model(1))]),
        single_route_router(1, None),
        GatewayConfig {
            addr: a_tcp.to_string(),
            http_addr: Some(a_http.to_string()),
            ..GatewayConfig::default()
        },
    )
    .expect("respawn gateway");
    wait_until(
        "recovered replica restored",
        Duration::from_secs(10),
        || ring_members() == 2,
    );

    let stats = fleet_stats(fleet.addr());
    assert!(stats.get("ejections").and_then(Json::as_f64).unwrap() >= 1.0);
    assert!(stats.get("restores").and_then(Json::as_f64).unwrap() >= 1.0);

    fleet.shutdown_and_join().expect("fleet drain");
    resurrected.shutdown_and_join().expect("resurrected drain");
    gw_b.shutdown_and_join().expect("gateway b drain");
}

#[test]
fn hedge_fires_at_the_deadline_and_the_fast_replica_wins() {
    // One "replica" accepts connections but never answers; the other is
    // a real gateway. A key owned by the black hole must still get its
    // answer — from the hedge attempt on the healthy replica.
    let black_hole = TcpListener::bind("127.0.0.1:0").expect("bind black hole");
    let black_hole_addr = black_hole.local_addr().unwrap();
    std::thread::spawn(move || {
        let mut held = Vec::new();
        for stream in black_hole.incoming() {
            match stream {
                Ok(s) => held.push(s), // accept and go silent
                Err(_) => return,
            }
        }
    });

    let (gateway, replica_fast) = spawn_gateway(
        engine_with(vec![(1, tiny_model(1))]),
        single_route_router(1, None),
        "gw-fast",
    );
    let replica_slow = ReplicaConfig {
        id: "gw-slow".to_string(),
        addr: black_hole_addr,
        http_addr: black_hole_addr,
    };

    // Find a client key the ring assigns to the black hole, using the
    // same deterministic construction the fleet uses.
    let ring = Ring::new([(0, "gw-slow"), (1, "gw-fast")]);
    let stuck_key = (0..10_000)
        .map(|i| format!("client-{i}"))
        .find(|k| ring.replica_for(k) == Some(0))
        .expect("some key maps to the slow replica");

    let fleet = Fleet::spawn(
        vec![replica_slow, replica_fast],
        FleetConfig {
            hedge_after: Some(Duration::from_millis(50)),
            forward_timeout: Duration::from_secs(2),
            ..default_fleet_config()
        },
    )
    .expect("spawn fleet");

    let response = raw_exchange(fleet.addr(), &compare_line(&stuck_key));
    assert!(
        response.contains(r#""ok":true"#),
        "hedged request failed: {response}"
    );
    let stats = fleet_stats(fleet.addr());
    assert!(stats.get("hedges").and_then(Json::as_f64).unwrap() >= 1.0);
    assert!(stats.get("hedge_wins").and_then(Json::as_f64).unwrap() >= 1.0);

    fleet.shutdown_and_join().expect("fleet drain");
    gateway.shutdown_and_join().expect("gateway drain");
}

// ---------------------------------------------------------------------
// Control plane
// ---------------------------------------------------------------------

#[test]
fn reload_routes_at_the_fleet_reaches_every_replica_not_one() {
    // The fleet answers reload_routes itself, through the control
    // plane: validate once, push to ALL replicas. Forwarded raw it
    // would repoint only the sender's sticky replica, desyncing the
    // set.
    let mut gateways = Vec::new();
    let mut replicas = Vec::new();
    for i in 0..2 {
        let engine = engine_with(vec![(1, tiny_model(1)), (2, tiny_model(2))]);
        let (gateway, replica) =
            spawn_gateway(engine, single_route_router(1, None), &format!("gw-{i}"));
        gateways.push(gateway);
        replicas.push(replica);
    }
    let replica_addrs: Vec<SocketAddr> = replicas.iter().map(|r| r.addr).collect();
    let fleet = Fleet::spawn(replicas, default_fleet_config()).expect("spawn fleet");

    let response = raw_exchange(
        fleet.addr(),
        r#"{"op":"reload_routes","routes":[{"model":"default","version":2,"weight":1.0}],"shadow":null}"#,
    );
    let v = json::parse(&response).expect("reload json");
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "response: {response}");
    assert_eq!(
        v.get("table_generation").and_then(Json::as_f64),
        Some(1.0),
        "response: {response}"
    );

    for addr in replica_addrs {
        let routes = json::parse(&raw_exchange(addr, r#"{"op":"routes"}"#)).expect("routes json");
        let table = routes.get("routes").and_then(Json::as_arr).unwrap();
        assert_eq!(table.len(), 1, "routes: {routes}");
        assert_eq!(
            table[0].get("version").and_then(Json::as_f64),
            Some(2.0),
            "routes: {routes}"
        );
    }

    // An invalid table is rejected by the fleet's own validation before
    // any replica sees it.
    let rejected = raw_exchange(fleet.addr(), r#"{"op":"reload_routes","routes":[]}"#);
    assert!(
        rejected.contains("reload_routes rejected"),
        "response: {rejected}"
    );

    fleet.shutdown_and_join().expect("fleet drain");
    for gateway in gateways {
        gateway.shutdown_and_join().expect("gateway drain");
    }
}

struct CanaryRig {
    fleet: SpawnedFleet,
    gateways: Vec<ccsa_gateway::SpawnedGateway>,
    table_path: std::path::PathBuf,
    dir: std::path::PathBuf,
}

/// Two replicas serving v1 with v2 mirrored on every request, a table
/// file seeded to match, and a fast-ticking canary controller.
fn canary_rig(name: &str, candidate_model: TrainedModel) -> CanaryRig {
    let dir = std::env::temp_dir().join(format!("ccsa-fleet-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let table_path = dir.join("routes.json");
    std::fs::write(
        &table_path,
        r#"{"routes":[{"model":"default","version":1,"weight":1.0}],"shadow":{"model":"default","version":2,"fraction":1.0}}"#,
    )
    .expect("seed table");

    let mut gateways = Vec::new();
    let mut replicas = Vec::new();
    for i in 0..2 {
        let engine = engine_with(vec![(1, tiny_model(1)), (2, candidate_model.clone())]);
        let (gateway, replica) = spawn_gateway(
            engine,
            single_route_router(1, Some((2, 1.0))),
            &format!("gw-{i}"),
        );
        gateways.push(gateway);
        replicas.push(replica);
    }
    let fleet = Fleet::spawn(
        replicas,
        FleetConfig {
            routes_file: Some(table_path.clone()),
            table_poll: Duration::from_millis(25),
            canary: Some(CanaryConfig {
                interval: Duration::from_millis(40),
                bake_ticks: 2,
                rollback_after: 2,
                max_delta_p99_ms: 10_000.0,
                max_delta_error_rate: 0.02,
            }),
            ..default_fleet_config()
        },
    )
    .expect("spawn fleet");
    CanaryRig {
        fleet,
        gateways,
        table_path,
        dir,
    }
}

impl CanaryRig {
    fn table(&self) -> TableSpec {
        parse_table(&std::fs::read_to_string(&self.table_path).expect("read table"))
            .expect("valid table")
    }

    fn canary_phase(&self) -> String {
        fleet_stats(self.fleet.addr())
            .get("canary")
            .and_then(|c| c.get("phase"))
            .and_then(Json::as_str)
            .unwrap_or("missing")
            .to_string()
    }

    fn drive_traffic(&self, round: usize) {
        for i in 0..8 {
            let _ = raw_exchange(
                self.fleet.addr(),
                &compare_line(&format!("client-{round}-{i}")),
            );
        }
    }

    fn teardown(self) {
        self.fleet.shutdown_and_join().expect("fleet drain");
        for gateway in self.gateways {
            gateway.shutdown_and_join().expect("gateway drain");
        }
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

#[test]
fn canary_promotes_through_the_full_ramp_without_restarting_gateways() {
    let rig = canary_rig("promote", tiny_model(2));
    let replica_addr = rig.gateways[0].addr();

    // Keep traffic (and therefore shadow deltas) flowing while the
    // controller bakes and ramps. The same two gateway processes serve
    // throughout — promotion happens purely via reload_routes pushes.
    let start = Instant::now();
    let mut round = 0;
    while start.elapsed() < Duration::from_secs(60) {
        rig.drive_traffic(round);
        round += 1;
        if rig.canary_phase() == "promoted" {
            break;
        }
    }
    assert_eq!(rig.canary_phase(), "promoted", "canary never promoted");

    // The table file now names the candidate as the sole route.
    wait_until("promoted table on disk", Duration::from_secs(5), || {
        let table = rig.table();
        table.shadow.is_none()
            && table.routes.len() == 1
            && table.routes[0].0.version == Some(2)
            && (table.routes[0].1 - 1.0).abs() < 1e-9
    });

    // The replicas (same processes) observed the whole ramp as reloads.
    let routes = json::parse(&raw_exchange(replica_addr, r#"{"op":"routes"}"#)).unwrap();
    let generation = routes
        .get("reload_generation")
        .and_then(Json::as_f64)
        .unwrap();
    assert!(
        generation >= 4.0,
        "expected one reload per ramp step, routes: {routes}"
    );
    let table = routes.get("routes").and_then(Json::as_arr).unwrap();
    assert_eq!(table.len(), 1, "routes: {routes}");
    assert_eq!(
        table[0].get("version").and_then(Json::as_f64),
        Some(2.0),
        "routes: {routes}"
    );

    rig.teardown();
}

#[test]
fn canary_rolls_back_a_bad_candidate_and_records_why() {
    // The candidate's encoder fails at serve time, so the shadow arm's
    // error-rate delta spikes; the controller must zero the candidate
    // in the table (keeping it as the record) and stop the mirror.
    let rig = canary_rig("rollback", corrupt_model());

    let start = Instant::now();
    let mut round = 0;
    while start.elapsed() < Duration::from_secs(60) {
        rig.drive_traffic(round);
        round += 1;
        if rig.canary_phase() == "rolled_back" {
            break;
        }
    }
    assert_eq!(
        rig.canary_phase(),
        "rolled_back",
        "canary never rolled back"
    );

    let reason = fleet_stats(rig.fleet.addr())
        .get("canary")
        .and_then(|c| c.get("reason"))
        .and_then(Json::as_str)
        .unwrap_or_default()
        .to_string();
    assert!(
        reason.contains("delta_error_rate"),
        "rollback reason should name the tripped threshold: {reason:?}"
    );

    wait_until("rolled-back table on disk", Duration::from_secs(5), || {
        let table = rig.table();
        let zeroed = table
            .routes
            .iter()
            .any(|(s, w)| s.version == Some(2) && *w == 0.0);
        let primary_intact = table
            .routes
            .iter()
            .any(|(s, w)| s.version == Some(1) && *w > 0.0);
        table.shadow.is_none() && zeroed && primary_intact
    });

    // Replicas received only the positive-weight route.
    let routes = json::parse(&raw_exchange(rig.gateways[0].addr(), r#"{"op":"routes"}"#)).unwrap();
    let table = routes.get("routes").and_then(Json::as_arr).unwrap();
    assert_eq!(table.len(), 1, "routes: {routes}");
    assert_eq!(table[0].get("version").and_then(Json::as_f64), Some(1.0));

    rig.teardown();
}
