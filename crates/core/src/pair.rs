//! Code-pair generation, labelling and sampling (§II-B of the paper).
//!
//! For `N` submissions there are `N²` ordered pairs; the paper argues a
//! random subset suffices and studies how many are needed (Figure 5).
//! Labels follow Eq. (1): a pair `(i, j)` is labelled `1` when
//! `tᵢ ≥ tⱼ` — "the second program is faster or equivalent" — and `0`
//! otherwise.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

use ccsa_corpus::Submission;

/// An ordered pair of submission indices with its Eq.-(1) label.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pair {
    /// Index of the first submission (pᵢ).
    pub a: usize,
    /// Index of the second submission (pⱼ).
    pub b: usize,
    /// `1.0` when submission `a` is slower or equivalent (`tₐ ≥ t_b`).
    pub label: f32,
}

/// Computes the Eq.-(1) label for `(a, b)`.
pub fn label_of(subs: &[Submission], a: usize, b: usize) -> f32 {
    if subs[a].runtime_ms >= subs[b].runtime_ms {
        1.0
    } else {
        0.0
    }
}

/// Pair-sampling strategy.
#[derive(Debug, Clone, PartialEq)]
pub struct PairConfig {
    /// Maximum number of pairs to draw (caps quadratic growth).
    pub max_pairs: usize,
    /// Also include the mirrored ordering `(b, a)` for every sampled
    /// `(a, b)` (§VI-D finds this worth up to 2 %).
    pub symmetric: bool,
    /// Exclude self-pairs `(i, i)` (always-label-1 noise).
    pub exclude_self: bool,
}

impl Default for PairConfig {
    fn default() -> PairConfig {
        PairConfig {
            max_pairs: 2_000,
            symmetric: true,
            exclude_self: true,
        }
    }
}

/// Samples labelled pairs among `indices` (submission positions within
/// `subs`), uniformly without replacement up to `config.max_pairs`.
///
/// With `symmetric`, mirrored copies are added *within* the same budget
/// (each draw contributes the pair and its mirror), matching the paper's
/// equal-total-pairs comparison.
pub fn sample_pairs(
    subs: &[Submission],
    indices: &[usize],
    config: &PairConfig,
    seed: u64,
) -> Vec<Pair> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = indices.len();
    if n < 2 {
        return Vec::new();
    }
    // Enumerate unordered index pairs lazily via shuffled reservoir when the
    // full cross product is small, otherwise rejection-sample.
    let total_unordered = n * (n - 1) / 2;
    let budget = if config.symmetric {
        config.max_pairs / 2
    } else {
        config.max_pairs
    };
    let budget = budget.max(1);

    let mut chosen: Vec<(usize, usize)> = if total_unordered <= budget {
        let mut all = Vec::with_capacity(total_unordered);
        for x in 0..n {
            for y in (x + 1)..n {
                all.push((x, y));
            }
        }
        all
    } else if total_unordered <= 4 * budget {
        let mut all = Vec::with_capacity(total_unordered);
        for x in 0..n {
            for y in (x + 1)..n {
                all.push((x, y));
            }
        }
        all.shuffle(&mut rng);
        all.truncate(budget);
        all
    } else {
        let mut seen = std::collections::HashSet::with_capacity(budget * 2);
        let mut picked = Vec::with_capacity(budget);
        while picked.len() < budget {
            let x = rng.random_range(0..n);
            let y = rng.random_range(0..n);
            if x == y {
                continue;
            }
            let key = (x.min(y), x.max(y));
            if seen.insert(key) {
                picked.push(key);
            }
        }
        picked
    };
    chosen.shuffle(&mut rng);

    let mut pairs = Vec::with_capacity(chosen.len() * 2);
    for (x, y) in chosen {
        let (a, b) = (indices[x], indices[y]);
        if config.exclude_self && a == b {
            continue;
        }
        // Randomise which ordering is "first" so labels stay balanced even
        // without symmetric augmentation.
        let (a, b) = if rng.random_bool(0.5) { (a, b) } else { (b, a) };
        pairs.push(Pair {
            a,
            b,
            label: label_of(subs, a, b),
        });
        if config.symmetric {
            pairs.push(Pair {
                a: b,
                b: a,
                label: label_of(subs, b, a),
            });
        }
    }
    pairs
}

/// Splits `n` submissions into disjoint train/test index sets (the paper
/// always evaluates on submissions disjoint from training).
pub fn split_indices(n: usize, test_fraction: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5117);
    let mut all: Vec<usize> = (0..n).collect();
    all.shuffle(&mut rng);
    let test_n = ((n as f64 * test_fraction).round() as usize).clamp(1, n.saturating_sub(1).max(1));
    let test = all[..test_n].to_vec();
    let train = all[test_n..].to_vec();
    (train, test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsa_corpus::{CorpusConfig, ProblemDataset, ProblemSpec, ProblemTag};

    fn dataset() -> ProblemDataset {
        ProblemDataset::generate(ProblemSpec::curated(ProblemTag::H), &CorpusConfig::tiny(77))
            .unwrap()
    }

    #[test]
    fn labels_follow_equation_1() {
        let ds = dataset();
        let subs = &ds.submissions;
        for (a, b) in [(0usize, 1usize), (3, 7), (5, 2)] {
            let l = label_of(subs, a, b);
            let expected = (subs[a].runtime_ms >= subs[b].runtime_ms) as i32 as f32;
            assert_eq!(l, expected);
        }
    }

    #[test]
    fn label_antisymmetry_for_distinct_runtimes() {
        let ds = dataset();
        let subs = &ds.submissions;
        for a in 0..subs.len() {
            for b in 0..subs.len() {
                if (subs[a].runtime_ms - subs[b].runtime_ms).abs() > 1e-12 {
                    assert_ne!(
                        label_of(subs, a, b),
                        label_of(subs, b, a),
                        "antisymmetric labels required for distinct runtimes"
                    );
                }
            }
        }
    }

    #[test]
    fn sampling_respects_budget_and_determinism() {
        let ds = dataset();
        let indices: Vec<usize> = (0..ds.submissions.len()).collect();
        let config = PairConfig {
            max_pairs: 30,
            symmetric: false,
            exclude_self: true,
        };
        let p1 = sample_pairs(&ds.submissions, &indices, &config, 5);
        let p2 = sample_pairs(&ds.submissions, &indices, &config, 5);
        assert_eq!(p1, p2);
        assert!(p1.len() <= 30);
        assert!(!p1.is_empty());
        for p in &p1 {
            assert_ne!(p.a, p.b);
        }
    }

    #[test]
    fn symmetric_adds_mirrors_within_budget() {
        let ds = dataset();
        let indices: Vec<usize> = (0..ds.submissions.len()).collect();
        let config = PairConfig {
            max_pairs: 40,
            symmetric: true,
            exclude_self: true,
        };
        let pairs = sample_pairs(&ds.submissions, &indices, &config, 9);
        assert!(pairs.len() <= 40);
        // Every even position is mirrored by the following odd position.
        for chunk in pairs.chunks(2) {
            assert_eq!(chunk[0].a, chunk[1].b);
            assert_eq!(chunk[0].b, chunk[1].a);
        }
    }

    #[test]
    fn labels_reasonably_balanced() {
        let ds = dataset();
        let indices: Vec<usize> = (0..ds.submissions.len()).collect();
        let pairs = sample_pairs(&ds.submissions, &indices, &PairConfig::default(), 3);
        let positives = pairs.iter().filter(|p| p.label == 1.0).count();
        let ratio = positives as f64 / pairs.len() as f64;
        assert!((0.3..=0.7).contains(&ratio), "label ratio {ratio}");
    }

    #[test]
    fn split_is_disjoint_and_total() {
        let (train, test) = split_indices(50, 0.25, 4);
        assert_eq!(train.len() + test.len(), 50);
        let t: std::collections::HashSet<_> = test.iter().collect();
        assert!(train.iter().all(|i| !t.contains(i)));
        assert!((test.len() as f64 - 12.5).abs() <= 1.0);
    }

    #[test]
    fn tiny_inputs_dont_panic() {
        let (train, test) = split_indices(2, 0.5, 1);
        assert_eq!(train.len() + test.len(), 2);
        let ds = dataset();
        assert!(sample_pairs(&ds.submissions, &[0], &PairConfig::default(), 1).is_empty());
    }
}
