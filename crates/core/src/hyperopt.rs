//! Hyper-parameter search (§V-C) — the Optuna substitute.
//!
//! The paper tunes the GCN's depth (1–16) and hidden width (8–256) and
//! the tree-LSTM's hidden/embedding sizes with Optuna. We reproduce the
//! study with seeded random search over the same spaces: sample a
//! configuration, train briefly, record validation accuracy, keep the
//! best. Random search is a strong baseline for ≤ 2-dimensional spaces
//! and keeps the dependency budget at zero.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// An inclusive integer search range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Range {
    /// Lower bound (inclusive).
    pub lo: usize,
    /// Upper bound (inclusive).
    pub hi: usize,
}

impl Range {
    /// Samples uniformly from the range.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        rng.random_range(self.lo..=self.hi)
    }
}

/// A sampled configuration: `(layers, hidden)` as in the paper's GCN
/// study, reusable for any two-axis sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Candidate {
    /// Number of layers.
    pub layers: usize,
    /// Hidden width.
    pub hidden: usize,
}

/// One evaluated trial.
#[derive(Debug, Clone, PartialEq)]
pub struct Trial {
    /// The configuration evaluated.
    pub candidate: Candidate,
    /// Validation accuracy achieved.
    pub accuracy: f64,
}

/// The search space (paper's GCN study: layers 1–16, hidden 8–256).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchSpace {
    /// Range of layer counts.
    pub layers: Range,
    /// Range of hidden widths.
    pub hidden: Range,
}

impl SearchSpace {
    /// The paper's GCN space.
    pub fn paper_gcn() -> SearchSpace {
        SearchSpace {
            layers: Range { lo: 1, hi: 16 },
            hidden: Range { lo: 8, hi: 256 },
        }
    }
}

/// Runs `trials` random-search evaluations, returning all trials sorted by
/// accuracy (best first). Duplicate candidates are skipped (re-sampled).
pub fn random_search(
    space: &SearchSpace,
    trials: usize,
    seed: u64,
    mut evaluate: impl FnMut(Candidate) -> f64,
) -> Vec<Trial> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0b7a);
    let mut seen = std::collections::HashSet::new();
    let mut results = Vec::with_capacity(trials);
    let mut attempts = 0;
    while results.len() < trials && attempts < trials * 20 {
        attempts += 1;
        let candidate = Candidate {
            layers: space.layers.sample(&mut rng),
            hidden: space.hidden.sample(&mut rng),
        };
        if !seen.insert(candidate) {
            continue;
        }
        let accuracy = evaluate(candidate);
        results.push(Trial {
            candidate,
            accuracy,
        });
    }
    results.sort_by(|a, b| b.accuracy.partial_cmp(&a.accuracy).expect("NaN accuracy"));
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_the_planted_optimum() {
        // Plant a smooth objective peaking at layers=6, hidden=117 (the
        // paper's tuned GCN) and verify random search climbs toward it.
        let space = SearchSpace::paper_gcn();
        let objective = |c: Candidate| {
            let dl = (c.layers as f64 - 6.0) / 16.0;
            let dh = (c.hidden as f64 - 117.0) / 256.0;
            0.685 - (dl * dl + dh * dh)
        };
        let trials = random_search(&space, 60, 3, objective);
        assert_eq!(trials.len(), 60);
        let best = &trials[0];
        assert!(
            (best.candidate.layers as i64 - 6).abs() <= 4,
            "best layers {} too far from optimum",
            best.candidate.layers
        );
        assert!(best.accuracy > 0.6);
        // Sorted descending.
        for w in trials.windows(2) {
            assert!(w[0].accuracy >= w[1].accuracy);
        }
    }

    #[test]
    fn deterministic_and_duplicate_free() {
        let space = SearchSpace {
            layers: Range { lo: 1, hi: 3 },
            hidden: Range { lo: 8, hi: 16 },
        };
        let run = || random_search(&space, 10, 5, |c| (c.layers * c.hidden) as f64);
        let a = run();
        let b = run();
        assert_eq!(a, b);
        let set: std::collections::HashSet<_> = a.iter().map(|t| t.candidate).collect();
        assert_eq!(set.len(), a.len(), "duplicates evaluated");
    }

    #[test]
    fn small_space_saturates_gracefully() {
        let space = Range { lo: 1, hi: 2 };
        let space = SearchSpace {
            layers: space,
            hidden: Range { lo: 1, hi: 2 },
        };
        let trials = random_search(&space, 100, 1, |_| 0.5);
        assert!(trials.len() <= 4, "only 4 distinct candidates exist");
    }
}
