//! End-to-end pipeline: corpus → pairs → training → evaluation.
//!
//! [`Pipeline`] wires the full system of Figure 1 together behind a small
//! API: generate (or accept) a labelled corpus, sample training pairs from
//! a disjoint submission split, train a [`Comparator`], and evaluate on
//! held-out submissions of the same or a different problem.

use rand::rngs::StdRng;
use rand::SeedableRng;

use ccsa_corpus::{CorpusConfig, InterpError, ProblemDataset, ProblemSpec, ProblemTag};
use ccsa_cppast::{parse_program, AstGraph, ParseError};
use ccsa_nn::param::Params;
use ccsa_nn::treelstm::{Direction, TreeLstmConfig};

use crate::comparator::{Comparator, EncoderConfig};
use crate::metrics::EvalResult;
use crate::pair::{sample_pairs, split_indices, PairConfig};
use crate::trainer::{evaluate, train, TrainConfig, TrainReport};

/// Everything needed to reproduce one training run.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineConfig {
    /// Corpus generation settings.
    pub corpus: CorpusConfig,
    /// Which encoder to train.
    pub encoder: EncoderConfig,
    /// Pair sampling settings.
    pub pairs: PairConfig,
    /// Optimizer / epoch settings.
    pub train: TrainConfig,
    /// Fraction of submissions held out for testing.
    pub test_fraction: f64,
    /// Master seed (model init, splits, pair sampling).
    pub seed: u64,
}

impl PipelineConfig {
    /// A minutes-scale default: reduced corpus and a mid-sized alternating
    /// tree-LSTM. The experiment binaries start from this and scale up.
    pub fn default_experiment(seed: u64) -> PipelineConfig {
        PipelineConfig {
            corpus: CorpusConfig {
                seed,
                ..CorpusConfig::default()
            },
            encoder: EncoderConfig::TreeLstm(TreeLstmConfig {
                embed_dim: 24,
                hidden: 24,
                layers: 3,
                direction: Direction::Alternating,
                sigmoid_candidate: false,
            }),
            pairs: PairConfig {
                max_pairs: 1200,
                symmetric: true,
                exclude_self: true,
            },
            train: TrainConfig {
                epochs: 6,
                batch_size: 32,
                lr: 0.01,
                clip: 5.0,
                threads: 0,
                seed,
            },
            test_fraction: 0.3,
            seed,
        }
    }

    /// A seconds-scale configuration for tests and doc examples.
    pub fn tiny(seed: u64) -> PipelineConfig {
        PipelineConfig {
            corpus: CorpusConfig::tiny(seed),
            encoder: EncoderConfig::TreeLstm(TreeLstmConfig {
                embed_dim: 8,
                hidden: 8,
                layers: 1,
                direction: Direction::Uni,
                sigmoid_candidate: false,
            }),
            pairs: PairConfig {
                max_pairs: 120,
                symmetric: true,
                exclude_self: true,
            },
            train: TrainConfig::tiny(seed),
            test_fraction: 0.3,
            seed,
        }
    }
}

/// A trained comparator with its learned parameters.
#[derive(Debug, Clone)]
pub struct TrainedModel {
    /// The model architecture.
    pub comparator: Comparator,
    /// The learned weights.
    pub params: Params,
}

/// The verdict of comparing two programs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Comparison {
    /// Model probability that the *first* program is slower.
    pub prob_first_slower: f32,
}

impl Comparison {
    /// `true` when the model believes the first program is the slower one.
    pub fn first_is_slower(&self) -> bool {
        self.prob_first_slower >= 0.5
    }
}

impl TrainedModel {
    /// Compares two mini-C++ sources: does the first run slower?
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] if either source fails to parse.
    pub fn compare_sources(&self, first: &str, second: &str) -> Result<Comparison, ParseError> {
        let a = AstGraph::from_program(&parse_program(first)?);
        let b = AstGraph::from_program(&parse_program(second)?);
        Ok(self.compare_graphs(&a, &b))
    }

    /// Compares two already-parsed ASTs.
    pub fn compare_graphs(&self, first: &AstGraph, second: &AstGraph) -> Comparison {
        Comparison {
            prob_first_slower: self.comparator.predict(&self.params, first, second),
        }
    }
}

/// Outcome of a single-problem run.
#[derive(Debug, Clone)]
pub struct SingleOutcome {
    /// Accuracy on held-out same-problem pairs (the paper's line plot in
    /// Figure 3).
    pub test_accuracy: f64,
    /// Full held-out evaluation (scores for ROC etc.).
    pub eval: EvalResult,
    /// Training telemetry.
    pub report: TrainReport,
    /// The trained model, ready for cross-problem evaluation.
    pub model: TrainedModel,
    /// The generated dataset (reusable for sensitivity analysis).
    pub dataset: ProblemDataset,
}

/// The end-to-end driver.
#[derive(Debug, Clone)]
pub struct Pipeline {
    config: PipelineConfig,
}

impl Pipeline {
    /// Creates a pipeline from a configuration.
    pub fn new(config: PipelineConfig) -> Pipeline {
        Pipeline { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Generates the corpus for one curated problem, trains on a disjoint
    /// split, and evaluates on the held-out split.
    ///
    /// # Errors
    ///
    /// Propagates corpus-generation failures.
    pub fn run_single(&self, tag: ProblemTag) -> Result<SingleOutcome, InterpError> {
        let dataset = ProblemDataset::generate(ProblemSpec::curated(tag), &self.config.corpus)?;
        Ok(self.run_on_dataset(dataset))
    }

    /// Trains and evaluates on an already-generated dataset.
    pub fn run_on_dataset(&self, dataset: ProblemDataset) -> SingleOutcome {
        let subs = &dataset.submissions;
        let (train_ix, test_ix) =
            split_indices(subs.len(), self.config.test_fraction, self.config.seed);
        let train_pairs = sample_pairs(
            subs,
            &train_ix,
            &self.config.pairs,
            self.config.seed ^ 0xaaaa,
        );
        let test_pairs = sample_pairs(
            subs,
            &test_ix,
            &self.config.pairs,
            self.config.seed ^ 0xbbbb,
        );

        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0x0de1);
        let comparator = Comparator::new(&self.config.encoder, &mut params, &mut rng);
        let report = train(
            &comparator,
            &mut params,
            subs,
            &train_pairs,
            &self.config.train,
        );
        let eval = evaluate(
            &comparator,
            &params,
            subs,
            &test_pairs,
            self.config.train.threads,
        );

        SingleOutcome {
            test_accuracy: eval.accuracy,
            eval,
            report,
            model: TrainedModel { comparator, params },
            dataset,
        }
    }

    /// Trains a model on a *pool* of datasets (the paper's MP setting:
    /// pairs are sampled within each problem, never across problems, since
    /// cross-problem runtimes are not comparable).
    ///
    /// Returns the model and the per-dataset held-out test pair sets.
    pub fn train_on_pool(
        &self,
        datasets: &[ProblemDataset],
    ) -> (TrainedModel, Vec<Vec<crate::pair::Pair>>, TrainReport) {
        // Concatenate submissions, remapping indices.
        let mut all_subs = Vec::new();
        let mut train_pairs = Vec::new();
        let mut test_pairs_per_ds = Vec::new();
        for (k, ds) in datasets.iter().enumerate() {
            let base = all_subs.len();
            let subs = &ds.submissions;
            let (train_ix, test_ix) = split_indices(
                subs.len(),
                self.config.test_fraction,
                self.config.seed ^ k as u64,
            );
            // Budget pairs per problem so the pool total matches config.
            let per_problem = PairConfig {
                max_pairs: (self.config.pairs.max_pairs / datasets.len().max(1)).max(2),
                ..self.config.pairs.clone()
            };
            let tp = sample_pairs(
                subs,
                &train_ix,
                &per_problem,
                self.config.seed ^ (k as u64) << 8,
            );
            let ep = sample_pairs(
                subs,
                &test_ix,
                &per_problem,
                self.config.seed ^ (k as u64) << 9,
            );
            train_pairs.extend(tp.into_iter().map(|p| crate::pair::Pair {
                a: p.a + base,
                b: p.b + base,
                label: p.label,
            }));
            test_pairs_per_ds.push(
                ep.into_iter()
                    .map(|p| crate::pair::Pair {
                        a: p.a + base,
                        b: p.b + base,
                        label: p.label,
                    })
                    .collect::<Vec<_>>(),
            );
            all_subs.extend(subs.iter().cloned());
        }

        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0x0de1);
        let comparator = Comparator::new(&self.config.encoder, &mut params, &mut rng);
        let report = train(
            &comparator,
            &mut params,
            &all_subs,
            &train_pairs,
            &self.config.train,
        );
        (
            TrainedModel { comparator, params },
            test_pairs_per_ds,
            report,
        )
    }

    /// Evaluates a trained model on a different problem's dataset —
    /// cross-problem generalisation (Figure 3 box plots, Table II).
    pub fn evaluate_cross(&self, model: &TrainedModel, dataset: &ProblemDataset) -> EvalResult {
        let subs = &dataset.submissions;
        let indices: Vec<usize> = (0..subs.len()).collect();
        let pairs = sample_pairs(subs, &indices, &self.config.pairs, self.config.seed ^ 0xcc);
        evaluate(
            &model.comparator,
            &model.params,
            subs,
            &pairs,
            self.config.train.threads,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_single_problem_run_beats_chance() {
        let outcome = Pipeline::new(PipelineConfig::tiny(3))
            .run_single(ProblemTag::E)
            .unwrap();
        assert!(
            outcome.test_accuracy > 0.5,
            "tiny run should beat chance, got {}",
            outcome.test_accuracy
        );
        assert!(!outcome.report.epoch_loss.is_empty());
    }

    #[test]
    fn trained_model_compares_sources() {
        let outcome = Pipeline::new(PipelineConfig::tiny(4))
            .run_single(ProblemTag::H)
            .unwrap();
        let fast = "int main() { int n; cin >> n; cout << n * (n + 1) / 2; return 0; }";
        let slow = "int main() { int n; cin >> n; long long s = 0; \
                    for (int i = 0; i <= n; i++) for (int j = 0; j < i; j++) s++; \
                    cout << s; return 0; }";
        let cmp = outcome.model.compare_sources(slow, fast).unwrap();
        assert!((0.0..=1.0).contains(&cmp.prob_first_slower));
        let bad = outcome.model.compare_sources("int main() {", fast);
        assert!(bad.is_err(), "parse errors must surface");
    }

    #[test]
    fn cross_problem_evaluation_runs() {
        let pipeline = Pipeline::new(PipelineConfig::tiny(5));
        let outcome = pipeline.run_single(ProblemTag::E).unwrap();
        let other = ProblemDataset::generate(
            ProblemSpec::curated(ProblemTag::G),
            &pipeline.config().corpus,
        )
        .unwrap();
        let eval = pipeline.evaluate_cross(&outcome.model, &other);
        assert!((0.0..=1.0).contains(&eval.accuracy));
        assert!(!eval.scored.is_empty());
    }

    #[test]
    fn pool_training_runs() {
        let pipeline = Pipeline::new(PipelineConfig::tiny(6));
        let datasets: Vec<ProblemDataset> = [ProblemTag::E, ProblemTag::H]
            .iter()
            .map(|&t| {
                ProblemDataset::generate(ProblemSpec::curated(t), &pipeline.config().corpus)
                    .unwrap()
            })
            .collect();
        let (model, test_pairs, _report) = pipeline.train_on_pool(&datasets);
        assert_eq!(test_pairs.len(), 2);
        // Evaluate pooled model on each problem's held-out pairs.
        let mut all_subs = Vec::new();
        for ds in &datasets {
            all_subs.extend(ds.submissions.iter().cloned());
        }
        for pairs in &test_pairs {
            let eval =
                crate::trainer::evaluate(&model.comparator, &model.params, &all_subs, pairs, 0);
            assert!((0.0..=1.0).contains(&eval.accuracy));
        }
    }
}
