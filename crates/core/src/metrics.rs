//! Evaluation metrics: pairwise accuracy, ROC curves and AUC (§VI-B).

/// A scored prediction: `(score, label)` where `score` is the model's
/// probability that the first program is slower and `label ∈ {0, 1}`.
pub type Scored = (f32, f32);

/// Fraction of predictions on the correct side of `threshold`.
///
/// Returns 0.5 (chance) for an empty slice so callers can fold results
/// without special cases.
pub fn accuracy_at(scored: &[Scored], threshold: f32) -> f64 {
    if scored.is_empty() {
        return 0.5;
    }
    let correct = scored
        .iter()
        .filter(|&&(score, label)| (score >= threshold) == (label >= 0.5))
        .count();
    correct as f64 / scored.len() as f64
}

/// Accuracy at the conventional 0.5 threshold — the paper's headline
/// metric.
pub fn accuracy(scored: &[Scored]) -> f64 {
    accuracy_at(scored, 0.5)
}

/// A receiver-operating-characteristic curve with its area.
#[derive(Debug, Clone, PartialEq)]
pub struct RocCurve {
    /// `(false positive rate, true positive rate)` points, sweeping the
    /// confidence threshold from +∞ down to −∞ (so FPR ascends).
    pub points: Vec<(f64, f64)>,
    /// Area under the curve (trapezoidal).
    pub auc: f64,
}

/// Builds the ROC curve over scored predictions (Figure 4 of the paper).
///
/// Ties in scores are handled by grouping: threshold steps happen between
/// distinct score values, which yields the standard staircase with
/// diagonal tie segments.
pub fn roc(scored: &[Scored]) -> RocCurve {
    let pos = scored.iter().filter(|&&(_, l)| l >= 0.5).count() as f64;
    let neg = scored.len() as f64 - pos;
    if pos == 0.0 || neg == 0.0 {
        return RocCurve {
            points: vec![(0.0, 0.0), (1.0, 1.0)],
            auc: 0.5,
        };
    }
    let mut sorted: Vec<Scored> = scored.to_vec();
    sorted.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("NaN score"));

    let mut points = vec![(0.0, 0.0)];
    let (mut tp, mut fp) = (0.0f64, 0.0f64);
    let mut i = 0;
    while i < sorted.len() {
        let score = sorted[i].0;
        // Consume the whole tie group before emitting a point.
        while i < sorted.len() && sorted[i].0 == score {
            if sorted[i].1 >= 0.5 {
                tp += 1.0;
            } else {
                fp += 1.0;
            }
            i += 1;
        }
        points.push((fp / neg, tp / pos));
    }
    if *points.last().expect("nonempty") != (1.0, 1.0) {
        points.push((1.0, 1.0));
    }

    let mut auc = 0.0;
    for w in points.windows(2) {
        let (x0, y0) = w[0];
        let (x1, y1) = w[1];
        auc += (x1 - x0) * (y0 + y1) / 2.0;
    }
    RocCurve { points, auc }
}

/// Summary of a model evaluation on a pair set.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalResult {
    /// All scored predictions.
    pub scored: Vec<Scored>,
    /// Accuracy at threshold 0.5.
    pub accuracy: f64,
}

impl EvalResult {
    /// Builds the summary from raw scored predictions.
    pub fn from_scored(scored: Vec<Scored>) -> EvalResult {
        let accuracy = accuracy(&scored);
        EvalResult { scored, accuracy }
    }

    /// The ROC curve of these predictions.
    pub fn roc(&self) -> RocCurve {
        roc(&self.scored)
    }
}

/// Five-number summary used for the paper's Figure 3 box plots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxStats {
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

impl BoxStats {
    /// Computes the five-number summary.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn of(values: &[f64]) -> BoxStats {
        assert!(!values.is_empty(), "box stats of empty slice");
        let mut v = values.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("NaN"));
        let q = |p: f64| -> f64 {
            let pos = p * (v.len() - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            let frac = pos - lo as f64;
            v[lo] * (1.0 - frac) + v[hi] * frac
        };
        BoxStats {
            min: v[0],
            q1: q(0.25),
            median: q(0.5),
            q3: q(0.75),
            max: *v.last().expect("nonempty"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_correct_sides() {
        let scored = vec![(0.9, 1.0), (0.2, 0.0), (0.6, 0.0), (0.4, 1.0)];
        assert_eq!(accuracy(&scored), 0.5);
        assert_eq!(accuracy(&[(0.8, 1.0), (0.1, 0.0)]), 1.0);
        assert_eq!(accuracy(&[]), 0.5);
    }

    #[test]
    fn perfect_classifier_auc_is_one() {
        let scored = vec![(0.9, 1.0), (0.8, 1.0), (0.3, 0.0), (0.1, 0.0)];
        let curve = roc(&scored);
        assert!((curve.auc - 1.0).abs() < 1e-9, "{curve:?}");
    }

    #[test]
    fn reversed_classifier_auc_is_zero() {
        let scored = vec![(0.1, 1.0), (0.2, 1.0), (0.8, 0.0), (0.9, 0.0)];
        let curve = roc(&scored);
        assert!(curve.auc.abs() < 1e-9);
    }

    #[test]
    fn random_scores_auc_near_half() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(1);
        let scored: Vec<Scored> = (0..4000)
            .map(|_| (rng.random::<f32>(), rng.random_bool(0.5) as i32 as f32))
            .collect();
        let curve = roc(&scored);
        assert!((curve.auc - 0.5).abs() < 0.05, "auc {}", curve.auc);
    }

    #[test]
    fn auc_hand_computed_case() {
        // Scores: pos at 0.9, neg at 0.5, pos at 0.3 → one mistake.
        // AUC = P(score_pos > score_neg) = (1 + 0) / 2 = 0.5? No: pairs are
        // (0.9 vs 0.5)=win, (0.3 vs 0.5)=loss → AUC = 1/2.
        let scored = vec![(0.9, 1.0), (0.5, 0.0), (0.3, 1.0)];
        let curve = roc(&scored);
        assert!((curve.auc - 0.5).abs() < 1e-9, "{curve:?}");
    }

    #[test]
    fn roc_monotone_and_bounded() {
        let scored: Vec<Scored> = (0..100)
            .map(|i| ((i as f32) / 100.0, ((i % 3) == 0) as i32 as f32))
            .collect();
        let curve = roc(&scored);
        for w in curve.points.windows(2) {
            assert!(w[1].0 >= w[0].0, "FPR must be non-decreasing");
            assert!(w[1].1 >= w[0].1, "TPR must be non-decreasing");
        }
        assert!(curve.auc >= 0.0 && curve.auc <= 1.0);
        assert_eq!(curve.points[0], (0.0, 0.0));
        assert_eq!(*curve.points.last().unwrap(), (1.0, 1.0));
    }

    #[test]
    fn degenerate_single_class() {
        let scored = vec![(0.7, 1.0), (0.6, 1.0)];
        assert_eq!(roc(&scored).auc, 0.5);
    }

    #[test]
    fn box_stats_quartiles() {
        let stats = BoxStats::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(stats.min, 1.0);
        assert_eq!(stats.median, 3.0);
        assert_eq!(stats.q1, 2.0);
        assert_eq!(stats.q3, 4.0);
        assert_eq!(stats.max, 5.0);
    }

    #[test]
    fn auc_invariant_to_monotone_score_transform() {
        let scored = vec![
            (0.9f32, 1.0f32),
            (0.5, 0.0),
            (0.3, 1.0),
            (0.8, 1.0),
            (0.2, 0.0),
        ];
        let transformed: Vec<Scored> = scored.iter().map(|&(s, l)| (s * s * 10.0, l)).collect();
        assert!((roc(&scored).auc - roc(&transformed).auc).abs() < 1e-12);
    }
}
