//! The comparative performance-prediction pipeline (the paper's primary
//! contribution).
//!
//! Given a corpus of labelled submissions (see [`ccsa_corpus`]), this crate
//! implements everything in the paper's Figure 1 and evaluation section:
//!
//! * [`pair`] — code-pair generation with Eq.-(1) labels, random-subset
//!   sampling, symmetric augmentation, disjoint train/test splits (§II-B);
//! * [`comparator`] — shared encoder F (tree-LSTM or GCN) + concatenated
//!   codes + fully connected sigmoid classifier C (§III-A, §IV-D);
//! * [`trainer`] — BCE training with Adam, data-parallel gradients,
//!   deterministic evaluation (§IV-C);
//! * [`metrics`] — pairwise accuracy, ROC/AUC (§VI-B), box statistics for
//!   Figure 3;
//! * [`sensitivity`] — the runtime-gap threshold sweep of Figure 6;
//! * [`tsne`] — exact t-SNE for Figure 7's embedding plots;
//! * [`hyperopt`] — seeded random search over the paper's §V-C spaces;
//! * [`persist`] — versioned binary model serialisation;
//! * [`pipeline`] — one-call end-to-end driver.
//!
//! # Example
//!
//! ```
//! use ccsa_model::pipeline::{Pipeline, PipelineConfig};
//! use ccsa_corpus::ProblemTag;
//!
//! let outcome = Pipeline::new(PipelineConfig::tiny(1)).run_single(ProblemTag::H)?;
//! println!("held-out accuracy: {:.3}", outcome.test_accuracy);
//! # Ok::<(), ccsa_corpus::InterpError>(())
//! ```

pub mod comparator;
pub mod hyperopt;
pub mod metrics;
pub mod pair;
pub mod persist;
pub mod pipeline;
pub mod sensitivity;
pub mod trainer;
pub mod tsne;

pub use comparator::{Comparator, Encoder, EncoderConfig};
pub use metrics::{accuracy, roc, BoxStats, EvalResult, RocCurve};
pub use pair::{label_of, sample_pairs, split_indices, Pair, PairConfig};
pub use pipeline::{Comparison, Pipeline, PipelineConfig, SingleOutcome, TrainedModel};
pub use sensitivity::{sensitivity_curve, SensitivityPoint};
pub use trainer::{evaluate, train, TrainConfig, TrainReport};
pub use tsne::{tsne, TsneConfig};
