//! Model persistence: a small, versioned binary format for [`Params`] and
//! complete trained models, plus a directory layout for *versioned* model
//! artefacts that the serving engine's registry loads from.
//!
//! Parameter-block layout (all integers little-endian):
//!
//! ```text
//! magic   b"CCSA"
//! version u32 (currently 1)
//! count   u32
//! per parameter:
//!   name_len u32, name bytes (UTF-8)
//!   rank     u8, dims (u32 × rank)
//!   data     f32 × len
//! ```
//!
//! A full model artefact (`save_model`/`load_model`) prepends the encoder
//! architecture so the comparator can be reconstructed without any
//! out-of-band configuration:
//!
//! ```text
//! magic   b"CCSM"
//! version u32 (currently 1)
//! encoder u8 tag (0 = tree-LSTM, 1 = GCN) + architecture fields
//! params  (the CCSA block above)
//! ```
//!
//! Versioned artefacts live in a directory as `model-v<N>.ccsm`;
//! [`save_version`] appends the next version and [`load_version`] loads a
//! specific or the latest one — the registry's load-by-version API.
//!
//! Hand-rolled rather than serde: the format is trivial, stable, and keeps
//! serialisation out of the public dependency set (DESIGN.md §3).

use std::fmt;
use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use rand::rngs::StdRng;
use rand::SeedableRng;

use ccsa_nn::gcn::{Activation, GcnConfig};
use ccsa_nn::param::Params;
use ccsa_nn::treelstm::{Direction, TreeLstmConfig};
use ccsa_tensor::{Shape, Tensor};

use crate::comparator::{Comparator, EncoderConfig};
use crate::pipeline::TrainedModel;

const MAGIC: &[u8; 4] = b"CCSA";
const VERSION: u32 = 1;
const MODEL_MAGIC: &[u8; 4] = b"CCSM";
const MODEL_VERSION: u32 = 1;

/// Why loading failed.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Not a CCSA parameter file.
    BadMagic,
    /// File version unsupported by this build.
    BadVersion(u32),
    /// Structurally invalid content.
    Corrupt(String),
    /// A versioned-model directory holds no artefacts (or not the
    /// requested version).
    MissingVersion(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::BadMagic => write!(f, "not a CCSA parameter file"),
            PersistError::BadVersion(v) => write!(f, "unsupported file version {v}"),
            PersistError::Corrupt(msg) => write!(f, "corrupt parameter file: {msg}"),
            PersistError::MissingVersion(msg) => write!(f, "missing model version: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> PersistError {
        PersistError::Io(e)
    }
}

/// Serialises parameters to a writer.
///
/// # Errors
///
/// Propagates writer I/O errors.
pub fn save_params<W: Write>(params: &Params, mut w: W) -> Result<(), PersistError> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(params.len() as u32).to_le_bytes())?;
    for (name, tensor) in params.iter() {
        w.write_all(&(name.len() as u32).to_le_bytes())?;
        w.write_all(name.as_bytes())?;
        let shape = tensor.shape();
        let dims = shape.dims();
        w.write_all(&[dims.len() as u8])?;
        for &d in dims {
            w.write_all(&(d as u32).to_le_bytes())?;
        }
        for &v in tensor.as_slice() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Deserialises parameters from a reader.
///
/// # Errors
///
/// Returns [`PersistError`] on I/O failure or malformed content.
pub fn load_params<R: Read>(mut r: R) -> Result<Params, PersistError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(PersistError::BadVersion(version));
    }
    let count = read_u32(&mut r)? as usize;
    if count > 1_000_000 {
        return Err(PersistError::Corrupt(format!(
            "implausible parameter count {count}"
        )));
    }
    let mut params = Params::new();
    for _ in 0..count {
        let name_len = read_u32(&mut r)? as usize;
        if name_len > 4096 {
            return Err(PersistError::Corrupt(format!(
                "implausible name length {name_len}"
            )));
        }
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let name = String::from_utf8(name)
            .map_err(|_| PersistError::Corrupt("non-UTF-8 parameter name".into()))?;
        let mut rank = [0u8; 1];
        r.read_exact(&mut rank)?;
        let rank = rank[0] as usize;
        if rank > 2 {
            return Err(PersistError::Corrupt(format!("rank {rank} exceeds 2")));
        }
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(read_u32(&mut r)? as usize);
        }
        let shape = match rank {
            0 => Shape::SCALAR,
            1 => Shape::vector(dims[0]),
            _ => Shape::matrix(dims[0], dims[1]),
        };
        if shape.len() > 100_000_000 {
            return Err(PersistError::Corrupt(format!(
                "implausible tensor size {}",
                shape.len()
            )));
        }
        let mut data = vec![0.0f32; shape.len()];
        let mut buf = [0u8; 4];
        for v in &mut data {
            r.read_exact(&mut buf)?;
            *v = f32::from_le_bytes(buf);
        }
        params.insert(name, Tensor::from_vec(data, shape));
    }
    Ok(params)
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, PersistError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u8<R: Read>(r: &mut R) -> Result<u8, PersistError> {
    let mut buf = [0u8; 1];
    r.read_exact(&mut buf)?;
    Ok(buf[0])
}

fn write_encoder_config<W: Write>(config: &EncoderConfig, w: &mut W) -> Result<(), PersistError> {
    match config {
        EncoderConfig::TreeLstm(c) => {
            w.write_all(&[0u8])?;
            w.write_all(&(c.embed_dim as u32).to_le_bytes())?;
            w.write_all(&(c.hidden as u32).to_le_bytes())?;
            w.write_all(&(c.layers as u32).to_le_bytes())?;
            let dir = match c.direction {
                Direction::Uni => 0u8,
                Direction::Bi => 1,
                Direction::Alternating => 2,
            };
            w.write_all(&[dir, c.sigmoid_candidate as u8])?;
        }
        EncoderConfig::Gcn(c) => {
            w.write_all(&[1u8])?;
            w.write_all(&(c.embed_dim as u32).to_le_bytes())?;
            w.write_all(&(c.hidden as u32).to_le_bytes())?;
            w.write_all(&(c.layers as u32).to_le_bytes())?;
            let act = match c.activation {
                Activation::Relu => 0u8,
                Activation::Tanh => 1,
            };
            w.write_all(&[act])?;
        }
    }
    Ok(())
}

fn read_encoder_config<R: Read>(r: &mut R) -> Result<EncoderConfig, PersistError> {
    match read_u8(r)? {
        0 => {
            let embed_dim = read_u32(r)? as usize;
            let hidden = read_u32(r)? as usize;
            let layers = read_u32(r)? as usize;
            let direction = match read_u8(r)? {
                0 => Direction::Uni,
                1 => Direction::Bi,
                2 => Direction::Alternating,
                d => return Err(PersistError::Corrupt(format!("unknown direction tag {d}"))),
            };
            let sigmoid_candidate = match read_u8(r)? {
                0 => false,
                1 => true,
                s => return Err(PersistError::Corrupt(format!("bad sigmoid flag {s}"))),
            };
            Ok(EncoderConfig::TreeLstm(TreeLstmConfig {
                embed_dim,
                hidden,
                layers,
                direction,
                sigmoid_candidate,
            }))
        }
        1 => {
            let embed_dim = read_u32(r)? as usize;
            let hidden = read_u32(r)? as usize;
            let layers = read_u32(r)? as usize;
            let activation = match read_u8(r)? {
                0 => Activation::Relu,
                1 => Activation::Tanh,
                a => return Err(PersistError::Corrupt(format!("unknown activation tag {a}"))),
            };
            Ok(EncoderConfig::Gcn(GcnConfig {
                embed_dim,
                hidden,
                layers,
                activation,
            }))
        }
        t => Err(PersistError::Corrupt(format!("unknown encoder tag {t}"))),
    }
}

/// Serialises a complete trained model (architecture + weights).
///
/// # Errors
///
/// Propagates writer I/O errors.
pub fn save_model<W: Write>(model: &TrainedModel, mut w: W) -> Result<(), PersistError> {
    w.write_all(MODEL_MAGIC)?;
    w.write_all(&MODEL_VERSION.to_le_bytes())?;
    write_encoder_config(model.comparator.config(), &mut w)?;
    save_params(&model.params, w)
}

/// Deserialises a complete trained model: the comparator is rebuilt from
/// the stored architecture and its weights are replaced with the stored
/// tensors (names and shapes are cross-checked against a fresh
/// construction, so file/architecture drift is caught at load time).
///
/// # Errors
///
/// Returns [`PersistError`] on I/O failure, malformed content, or a
/// parameter set inconsistent with the stored architecture.
pub fn load_model<R: Read>(mut r: R) -> Result<TrainedModel, PersistError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MODEL_MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = read_u32(&mut r)?;
    if version != MODEL_VERSION {
        return Err(PersistError::BadVersion(version));
    }
    let config = read_encoder_config(&mut r)?;
    let params = load_params(r)?;

    // Rebuild the architecture into a scratch parameter store: this both
    // reconstructs the Comparator and yields the reference name/shape
    // registry the stored weights must match. The RNG seed is irrelevant —
    // every scratch tensor is replaced.
    let mut scratch = Params::new();
    let comparator = Comparator::new(&config, &mut scratch, &mut StdRng::seed_from_u64(0));
    let params = migrate_legacy_gate_params(params, &scratch)?;
    if scratch.len() != params.len() {
        return Err(PersistError::Corrupt(format!(
            "architecture expects {} parameters, file holds {}",
            scratch.len(),
            params.len()
        )));
    }
    for ((expect_name, expect_tensor), (got_name, got_tensor)) in scratch.iter().zip(params.iter())
    {
        if expect_name != got_name {
            return Err(PersistError::Corrupt(format!(
                "parameter order mismatch: expected '{expect_name}', file holds '{got_name}'"
            )));
        }
        if expect_tensor.shape() != got_tensor.shape() {
            return Err(PersistError::Corrupt(format!(
                "parameter '{got_name}' has shape {:?}, architecture expects {:?}",
                got_tensor.shape().dims(),
                expect_tensor.shape().dims()
            )));
        }
    }
    Ok(TrainedModel { comparator, params })
}

/// Folds pre-fusion tree-LSTM checkpoints into the fused gate layout.
///
/// Artefacts written before the 4-gate fusion stored each gate's
/// projections as separate tensors (`….w_i`, `….u_f`, `….b_o`, …); the
/// fused architecture expects single `[4h, d]` / `[4h, h]` / `[4h]`
/// tensors with gate row blocks ordered as
/// [`ccsa_nn::treelstm::GATE_ORDER`]. Concatenating the legacy blocks is
/// bit-exact, so old checkpoints keep producing identical predictions.
///
/// Files already in the fused layout pass through untouched (including
/// their registration order, which the caller cross-checks).
fn migrate_legacy_gate_params(file: Params, expected: &Params) -> Result<Params, PersistError> {
    let legacy_suffix = |name: &str, gate: char| {
        // "tree.l0.up.w" + 'i' → "tree.l0.up.w_i".
        format!("{name}_{gate}")
    };
    let has_legacy = expected.iter().any(|(name, _)| {
        (name.ends_with(".w") || name.ends_with(".u") || name.ends_with(".b"))
            && file.iter().any(|(n, _)| n == legacy_suffix(name, 'i'))
    });
    if !has_legacy {
        return Ok(file);
    }
    let mut migrated = Params::new();
    let mut consumed = 0usize;
    for (name, _) in expected.iter() {
        if let Some(t) = file.iter().find(|(n, _)| *n == name).map(|(_, t)| t) {
            migrated.insert(name, t.clone());
            consumed += 1;
            continue;
        }
        let fusable = name.ends_with(".w") || name.ends_with(".u") || name.ends_with(".b");
        if !fusable {
            return Err(PersistError::Corrupt(format!(
                "parameter '{name}' missing from checkpoint"
            )));
        }
        let mut blocks = Vec::with_capacity(4);
        for gate in ccsa_nn::treelstm::GATE_ORDER {
            let legacy = legacy_suffix(name, gate);
            match file.iter().find(|(n, _)| *n == legacy).map(|(_, t)| t) {
                Some(t) => blocks.push(t),
                None => {
                    return Err(PersistError::Corrupt(format!(
                        "parameter '{name}' missing and no legacy '{legacy}' to migrate"
                    )))
                }
            }
        }
        if blocks.iter().any(|b| b.shape() != blocks[0].shape()) {
            return Err(PersistError::Corrupt(format!(
                "legacy gate blocks for '{name}' disagree in shape"
            )));
        }
        migrated.insert(
            name,
            ccsa_nn::treelstm::fuse_gate_blocks([blocks[0], blocks[1], blocks[2], blocks[3]]),
        );
        consumed += 4;
    }
    if consumed != file.len() {
        return Err(PersistError::Corrupt(format!(
            "checkpoint holds {} parameters, migration consumed {consumed}",
            file.len()
        )));
    }
    Ok(migrated)
}

/// The artefact path for one model version inside `dir`.
pub fn version_path(dir: &Path, version: u32) -> PathBuf {
    dir.join(format!("model-v{version}.ccsm"))
}

/// Versions present in a model directory, ascending. A missing directory
/// reads as empty.
///
/// # Errors
///
/// Propagates directory-read failures other than "not found".
pub fn list_versions(dir: &Path) -> Result<Vec<u32>, PersistError> {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(PersistError::Io(e)),
    };
    let mut versions = Vec::new();
    for entry in entries {
        let name = entry?.file_name();
        let name = name.to_string_lossy();
        if let Some(v) = name
            .strip_prefix("model-v")
            .and_then(|rest| rest.strip_suffix(".ccsm"))
            .and_then(|num| num.parse::<u32>().ok())
        {
            versions.push(v);
        }
    }
    versions.sort_unstable();
    Ok(versions)
}

/// Saves `model` as the *next* version in `dir` (creating the directory
/// if needed) and returns the assigned version number.
///
/// # Errors
///
/// Propagates filesystem failures.
pub fn save_version(dir: &Path, model: &TrainedModel) -> Result<u32, PersistError> {
    fs::create_dir_all(dir)?;
    let next = list_versions(dir)?.last().copied().unwrap_or(0) + 1;
    let mut buf = Vec::new();
    save_model(model, &mut buf)?;
    fs::write(version_path(dir, next), buf)?;
    Ok(next)
}

/// Loads the requested version from `dir` (`None` → the latest), returning
/// the resolved version number alongside the model.
///
/// # Errors
///
/// Returns [`PersistError::MissingVersion`] when the directory holds no
/// artefacts or lacks the requested version; otherwise propagates load
/// failures.
pub fn load_version(dir: &Path, version: Option<u32>) -> Result<(u32, TrainedModel), PersistError> {
    let available = list_versions(dir)?;
    let resolved = match version {
        Some(v) => {
            if !available.contains(&v) {
                return Err(PersistError::MissingVersion(format!(
                    "version {v} not in {} (available: {available:?})",
                    dir.display()
                )));
            }
            v
        }
        None => *available.last().ok_or_else(|| {
            PersistError::MissingVersion(format!("no model artefacts in {}", dir.display()))
        })?,
    };
    let bytes = fs::read(version_path(dir, resolved))?;
    Ok((resolved, load_model(bytes.as_slice())?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_params() -> Params {
        let mut p = Params::new();
        p.insert(
            "emb",
            Tensor::from_vec((0..12).map(|x| x as f32 * 0.5).collect(), [3, 4]),
        );
        p.insert("bias", Tensor::from_vec(vec![-1.0, 2.5], [2]));
        p.insert("scalar", Tensor::scalar(3.75));
        p
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let p = sample_params();
        let mut buf = Vec::new();
        save_params(&p, &mut buf).unwrap();
        let q = load_params(buf.as_slice()).unwrap();
        assert_eq!(p.len(), q.len());
        for ((n1, t1), (n2, t2)) in p.iter().zip(q.iter()) {
            assert_eq!(n1, n2, "order must be preserved");
            assert_eq!(t1.shape(), t2.shape());
            assert_eq!(t1.as_slice(), t2.as_slice());
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            load_params(&b"NOPE"[..]),
            Err(PersistError::BadMagic)
        ));
        assert!(load_params(&b"CC"[..]).is_err());
        let mut buf = Vec::new();
        save_params(&sample_params(), &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(
            load_params(buf.as_slice()).is_err(),
            "truncated file must fail"
        );
    }

    #[test]
    fn rejects_wrong_version() {
        let mut buf = Vec::new();
        save_params(&sample_params(), &mut buf).unwrap();
        buf[4] = 99;
        assert!(matches!(
            load_params(buf.as_slice()),
            Err(PersistError::BadVersion(99))
        ));
    }

    // ── Full-model artefacts ─────────────────────────────────────────

    use ccsa_cppast::{parse_program, AstGraph};
    use ccsa_nn::treelstm::{Direction, TreeLstmConfig};

    fn sample_model(seed: u64) -> TrainedModel {
        let config = EncoderConfig::TreeLstm(TreeLstmConfig {
            embed_dim: 6,
            hidden: 6,
            layers: 2,
            direction: Direction::Alternating,
            sigmoid_candidate: false,
        });
        let mut params = Params::new();
        let comparator = Comparator::new(&config, &mut params, &mut StdRng::seed_from_u64(seed));
        TrainedModel { comparator, params }
    }

    fn graphs() -> (AstGraph, AstGraph) {
        let a = AstGraph::from_program(
            &parse_program(
                "int main() { int s = 0; for (int i = 0; i < 9; i++) s += i; return s; }",
            )
            .unwrap(),
        );
        let b = AstGraph::from_program(&parse_program("int main() { return 7; }").unwrap());
        (a, b)
    }

    #[test]
    fn model_roundtrip_preserves_predictions_exactly() {
        let model = sample_model(21);
        let (a, b) = graphs();
        let before_ab = model.compare_graphs(&a, &b).prob_first_slower;
        let before_ba = model.compare_graphs(&b, &a).prob_first_slower;

        let mut buf = Vec::new();
        save_model(&model, &mut buf).unwrap();
        let loaded = load_model(buf.as_slice()).unwrap();

        assert_eq!(model.comparator.config(), loaded.comparator.config());
        assert_eq!(before_ab, loaded.compare_graphs(&a, &b).prob_first_slower);
        assert_eq!(before_ba, loaded.compare_graphs(&b, &a).prob_first_slower);
    }

    #[test]
    fn gcn_model_roundtrips() {
        let config = EncoderConfig::Gcn(ccsa_nn::gcn::GcnConfig::small(5));
        let mut params = Params::new();
        let comparator = Comparator::new(&config, &mut params, &mut StdRng::seed_from_u64(3));
        let model = TrainedModel { comparator, params };
        let (a, b) = graphs();
        let before = model.compare_graphs(&a, &b).prob_first_slower;
        let mut buf = Vec::new();
        save_model(&model, &mut buf).unwrap();
        let loaded = load_model(buf.as_slice()).unwrap();
        assert_eq!(before, loaded.compare_graphs(&a, &b).prob_first_slower);
    }

    /// Extracts one gate's block from a fused `[4h, d]` / `[4h]` tensor
    /// (`block` indexes [`ccsa_nn::treelstm::GATE_ORDER`]).
    fn gate_block(t: &Tensor, block: usize) -> Tensor {
        let dims: Vec<usize> = t.shape().dims().to_vec();
        if dims.len() == 1 {
            let h = dims[0] / 4;
            Tensor::from_vec(t.as_slice()[block * h..(block + 1) * h].to_vec(), [h])
        } else {
            let (h, c) = (dims[0] / 4, dims[1]);
            Tensor::from_vec(
                t.as_slice()[block * h * c..(block + 1) * h * c].to_vec(),
                [h, c],
            )
        }
    }

    /// Rebuilds the pre-fusion parameter store of `model`: per-gate
    /// tensors under the legacy names, in the legacy registration order
    /// (w_i, u_i, w_f, u_f, w_o, u_o, w_u, u_u, then the four biases).
    fn legacy_param_layout(model: &TrainedModel) -> Params {
        // Fused row blocks sit in GATE_ORDER = [i, o, u, f].
        let (gi, go, gu, gf) = (0usize, 1usize, 2usize, 3usize);
        let mut legacy = Params::new();
        for (name, tensor) in model.params.iter() {
            let is_cell = name.contains(".up.") || name.contains(".down.");
            if let Some(prefix) = name.strip_suffix(".w") {
                if is_cell {
                    let u = model.params.get(&format!("{prefix}.u"));
                    let b = model.params.get(&format!("{prefix}.b"));
                    for (gate, block) in [('i', gi), ('f', gf), ('o', go), ('u', gu)] {
                        legacy.insert(format!("{prefix}.w_{gate}"), gate_block(tensor, block));
                        legacy.insert(format!("{prefix}.u_{gate}"), gate_block(u, block));
                    }
                    for (gate, block) in [('i', gi), ('f', gf), ('o', go), ('u', gu)] {
                        legacy.insert(format!("{prefix}.b_{gate}"), gate_block(b, block));
                    }
                    continue;
                }
            }
            if is_cell && (name.ends_with(".u") || name.ends_with(".b")) {
                continue; // emitted with the cell's .w
            }
            legacy.insert(name, tensor.clone());
        }
        legacy
    }

    fn legacy_artefact_bytes(model: &TrainedModel, legacy: &Params) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(MODEL_MAGIC);
        buf.extend_from_slice(&MODEL_VERSION.to_le_bytes());
        write_encoder_config(model.comparator.config(), &mut buf).unwrap();
        save_params(legacy, &mut buf).unwrap();
        buf
    }

    #[test]
    fn legacy_per_gate_checkpoint_loads_into_fused_layout_bit_exactly() {
        // Artefacts persisted before the 4-gate fusion stored twelve
        // tensors per cell; they must keep loading — folded into the
        // fused [4h, d] layout with identical bits and predictions.
        let model = sample_model(33);
        let legacy = legacy_param_layout(&model);
        assert!(
            legacy.len() > model.params.len(),
            "legacy layout must actually be split"
        );
        let buf = legacy_artefact_bytes(&model, &legacy);
        let loaded = load_model(buf.as_slice()).unwrap();

        assert_eq!(loaded.params.len(), model.params.len());
        for ((en, et), (ln, lt)) in model.params.iter().zip(loaded.params.iter()) {
            assert_eq!(en, ln, "migrated order must match the architecture");
            assert_eq!(et.shape(), lt.shape());
            assert_eq!(
                et.as_slice(),
                lt.as_slice(),
                "'{en}' must migrate bit-exactly"
            );
        }
        let (a, b) = graphs();
        assert_eq!(
            model.compare_graphs(&a, &b).prob_first_slower,
            loaded.compare_graphs(&a, &b).prob_first_slower
        );
    }

    #[test]
    fn legacy_checkpoint_with_missing_gate_is_rejected() {
        let model = sample_model(34);
        let legacy = legacy_param_layout(&model);
        // Drop one gate tensor: migration must fail loudly, not guess.
        let mut partial = Params::new();
        for (name, t) in legacy.iter() {
            if name.ends_with(".u_f") {
                continue;
            }
            partial.insert(name, t.clone());
        }
        let buf = legacy_artefact_bytes(&model, &partial);
        assert!(matches!(
            load_model(buf.as_slice()),
            Err(PersistError::Corrupt(_))
        ));
    }

    #[test]
    fn model_load_rejects_corruption() {
        let model = sample_model(5);
        let mut buf = Vec::new();
        save_model(&model, &mut buf).unwrap();
        assert!(matches!(
            load_model(&b"NOPE"[..]),
            Err(PersistError::BadMagic)
        ));
        let mut truncated = buf.clone();
        truncated.truncate(truncated.len() / 2);
        assert!(load_model(truncated.as_slice()).is_err());
        let mut bad_tag = buf.clone();
        bad_tag[8] = 9; // encoder tag
        assert!(load_model(bad_tag.as_slice()).is_err());
    }

    fn temp_model_dir(label: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ccsa-persist-{label}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn versioned_directory_assigns_sequential_versions() {
        let dir = temp_model_dir("seq");
        assert_eq!(list_versions(&dir).unwrap(), Vec::<u32>::new());
        let m1 = sample_model(1);
        let m2 = sample_model(2);
        assert_eq!(save_version(&dir, &m1).unwrap(), 1);
        assert_eq!(save_version(&dir, &m2).unwrap(), 2);
        assert_eq!(list_versions(&dir).unwrap(), vec![1, 2]);

        // Latest resolves to v2 and its weights, not v1's.
        let (latest, loaded) = load_version(&dir, None).unwrap();
        assert_eq!(latest, 2);
        let (a, b) = graphs();
        assert_eq!(
            loaded.compare_graphs(&a, &b).prob_first_slower,
            m2.compare_graphs(&a, &b).prob_first_slower
        );
        // Specific versions load independently.
        let (v, first) = load_version(&dir, Some(1)).unwrap();
        assert_eq!(v, 1);
        assert_eq!(
            first.compare_graphs(&a, &b).prob_first_slower,
            m1.compare_graphs(&a, &b).prob_first_slower
        );
        // Missing versions are a typed error.
        assert!(matches!(
            load_version(&dir, Some(9)),
            Err(PersistError::MissingVersion(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_directory_is_a_missing_version_error() {
        let dir = temp_model_dir("empty");
        assert!(matches!(
            load_version(&dir, None),
            Err(PersistError::MissingVersion(_))
        ));
    }
}
