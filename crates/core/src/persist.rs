//! Model persistence: a small, versioned binary format for [`Params`].
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic   b"CCSA"
//! version u32 (currently 1)
//! count   u32
//! per parameter:
//!   name_len u32, name bytes (UTF-8)
//!   rank     u8, dims (u32 × rank)
//!   data     f32 × len
//! ```
//!
//! Hand-rolled rather than serde: the format is trivial, stable, and keeps
//! serialisation out of the public dependency set (DESIGN.md §3).

use std::fmt;
use std::io::{Read, Write};

use ccsa_nn::param::Params;
use ccsa_tensor::{Shape, Tensor};

const MAGIC: &[u8; 4] = b"CCSA";
const VERSION: u32 = 1;

/// Why loading failed.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Not a CCSA parameter file.
    BadMagic,
    /// File version unsupported by this build.
    BadVersion(u32),
    /// Structurally invalid content.
    Corrupt(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::BadMagic => write!(f, "not a CCSA parameter file"),
            PersistError::BadVersion(v) => write!(f, "unsupported file version {v}"),
            PersistError::Corrupt(msg) => write!(f, "corrupt parameter file: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> PersistError {
        PersistError::Io(e)
    }
}

/// Serialises parameters to a writer.
///
/// # Errors
///
/// Propagates writer I/O errors.
pub fn save_params<W: Write>(params: &Params, mut w: W) -> Result<(), PersistError> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(params.len() as u32).to_le_bytes())?;
    for (name, tensor) in params.iter() {
        w.write_all(&(name.len() as u32).to_le_bytes())?;
        w.write_all(name.as_bytes())?;
        let shape = tensor.shape();
        let dims = shape.dims();
        w.write_all(&[dims.len() as u8])?;
        for &d in dims {
            w.write_all(&(d as u32).to_le_bytes())?;
        }
        for &v in tensor.as_slice() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Deserialises parameters from a reader.
///
/// # Errors
///
/// Returns [`PersistError`] on I/O failure or malformed content.
pub fn load_params<R: Read>(mut r: R) -> Result<Params, PersistError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(PersistError::BadVersion(version));
    }
    let count = read_u32(&mut r)? as usize;
    if count > 1_000_000 {
        return Err(PersistError::Corrupt(format!("implausible parameter count {count}")));
    }
    let mut params = Params::new();
    for _ in 0..count {
        let name_len = read_u32(&mut r)? as usize;
        if name_len > 4096 {
            return Err(PersistError::Corrupt(format!("implausible name length {name_len}")));
        }
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let name = String::from_utf8(name)
            .map_err(|_| PersistError::Corrupt("non-UTF-8 parameter name".into()))?;
        let mut rank = [0u8; 1];
        r.read_exact(&mut rank)?;
        let rank = rank[0] as usize;
        if rank > 2 {
            return Err(PersistError::Corrupt(format!("rank {rank} exceeds 2")));
        }
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(read_u32(&mut r)? as usize);
        }
        let shape = match rank {
            0 => Shape::SCALAR,
            1 => Shape::vector(dims[0]),
            _ => Shape::matrix(dims[0], dims[1]),
        };
        if shape.len() > 100_000_000 {
            return Err(PersistError::Corrupt(format!("implausible tensor size {}", shape.len())));
        }
        let mut data = vec![0.0f32; shape.len()];
        let mut buf = [0u8; 4];
        for v in &mut data {
            r.read_exact(&mut buf)?;
            *v = f32::from_le_bytes(buf);
        }
        params.insert(name, Tensor::from_vec(data, shape));
    }
    Ok(params)
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, PersistError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_params() -> Params {
        let mut p = Params::new();
        p.insert("emb", Tensor::from_vec((0..12).map(|x| x as f32 * 0.5).collect(), [3, 4]));
        p.insert("bias", Tensor::from_vec(vec![-1.0, 2.5], [2]));
        p.insert("scalar", Tensor::scalar(3.75));
        p
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let p = sample_params();
        let mut buf = Vec::new();
        save_params(&p, &mut buf).unwrap();
        let q = load_params(buf.as_slice()).unwrap();
        assert_eq!(p.len(), q.len());
        for ((n1, t1), (n2, t2)) in p.iter().zip(q.iter()) {
            assert_eq!(n1, n2, "order must be preserved");
            assert_eq!(t1.shape(), t2.shape());
            assert_eq!(t1.as_slice(), t2.as_slice());
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(load_params(&b"NOPE"[..]), Err(PersistError::BadMagic)));
        assert!(load_params(&b"CC"[..]).is_err());
        let mut buf = Vec::new();
        save_params(&sample_params(), &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(load_params(buf.as_slice()).is_err(), "truncated file must fail");
    }

    #[test]
    fn rejects_wrong_version() {
        let mut buf = Vec::new();
        save_params(&sample_params(), &mut buf).unwrap();
        buf[4] = 99;
        assert!(matches!(load_params(buf.as_slice()), Err(PersistError::BadVersion(99))));
    }
}
