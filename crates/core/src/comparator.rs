//! The comparative model: shared encoder F + concatenation + classifier C
//! (§III-A of the paper).
//!
//! Both programs of a pair run through the *same* deep feature extractor
//! `F : P → Z`; their latent codes are concatenated (`z̄ᵢⱼ = [zᵢ, zⱼ]`,
//! dimension 2d) and a single fully connected layer with sigmoid produces
//! the probability that the first program is the slower one.

use rand::rngs::StdRng;

use ccsa_cppast::AstGraph;
use ccsa_nn::gcn::{GcnConfig, GcnEncoder};
use ccsa_nn::layers::Linear;
use ccsa_nn::param::{Ctx, Params};
use ccsa_nn::treelstm::{TreeLstmConfig, TreeLstmEncoder};
use ccsa_tensor::{Tape, Tensor, Var};

/// Which representation learner backs the comparator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncoderConfig {
    /// Child-sum tree-LSTM (the paper's proposal).
    TreeLstm(TreeLstmConfig),
    /// Graph-convolution baseline.
    Gcn(GcnConfig),
}

impl EncoderConfig {
    /// A human-readable name for tables.
    pub fn name(&self) -> &'static str {
        match self {
            EncoderConfig::TreeLstm(_) => "tree-LSTM",
            EncoderConfig::Gcn(_) => "GCN",
        }
    }
}

/// The instantiated encoder.
#[derive(Debug, Clone)]
pub enum Encoder {
    /// Tree-LSTM instance.
    TreeLstm(TreeLstmEncoder),
    /// GCN instance.
    Gcn(GcnEncoder),
}

impl Encoder {
    /// Encodes one AST into its latent code vector.
    pub fn encode<'t>(&self, ctx: &Ctx<'t, '_>, graph: &AstGraph) -> Var<'t> {
        match self {
            Encoder::TreeLstm(e) => e.encode(ctx, graph),
            Encoder::Gcn(e) => e.encode(ctx, graph),
        }
    }

    /// Batched forward entry point: level-fused across every graph in
    /// the batch — one matmul per level per gate instead of per-node
    /// matvecs, parameters bound once.
    pub fn encode_batch<'t>(&self, ctx: &Ctx<'t, '_>, graphs: &[&AstGraph]) -> Vec<Var<'t>> {
        match self {
            Encoder::TreeLstm(e) => e.encode_batch(ctx, graphs),
            Encoder::Gcn(e) => e.encode_batch(ctx, graphs),
        }
    }

    /// [`Encoder::encode_batch`] plus fused-width telemetry.
    pub fn encode_batch_with_stats<'t>(
        &self,
        ctx: &Ctx<'t, '_>,
        graphs: &[&AstGraph],
    ) -> (Vec<Var<'t>>, ccsa_nn::FusedStats) {
        match self {
            Encoder::TreeLstm(e) => e.encode_batch_with_stats(ctx, graphs),
            Encoder::Gcn(e) => e.encode_batch_with_stats(ctx, graphs),
        }
    }

    /// [`Encoder::encode_batch_with_stats`] drawing scheduling buffers
    /// from a caller-owned [`ccsa_nn::SchedBufs`] — the steady-state
    /// serving entry (see [`ccsa_nn::EncodeScratch`]).
    pub fn encode_batch_with_stats_in<'t>(
        &self,
        ctx: &Ctx<'t, '_>,
        graphs: &[&AstGraph],
        sched: &mut ccsa_nn::SchedBufs,
    ) -> (Vec<Var<'t>>, ccsa_nn::FusedStats) {
        match self {
            Encoder::TreeLstm(e) => e.encode_batch_with_stats_in(ctx, graphs, sched),
            Encoder::Gcn(e) => e.encode_batch_with_stats_in(ctx, graphs, sched),
        }
    }

    /// The per-node reference path (shared tape, no cross-tree fusion) —
    /// kept for equivalence tests and fused-vs-sequential benchmarks.
    pub fn encode_batch_sequential<'t>(
        &self,
        ctx: &Ctx<'t, '_>,
        graphs: &[&AstGraph],
    ) -> Vec<Var<'t>> {
        match self {
            Encoder::TreeLstm(e) => e.encode_batch_sequential(ctx, graphs),
            Encoder::Gcn(e) => e.encode_batch_sequential(ctx, graphs),
        }
    }

    /// Latent dimensionality d.
    pub fn output_dim(&self) -> usize {
        match self {
            Encoder::TreeLstm(e) => e.output_dim(),
            Encoder::Gcn(e) => e.output_dim(),
        }
    }
}

/// Encoder + pairwise classifier.
#[derive(Debug, Clone)]
pub struct Comparator {
    /// The shared feature extractor.
    pub encoder: Encoder,
    classifier: Linear,
    config: EncoderConfig,
}

impl Comparator {
    /// Builds the model and registers all parameters.
    pub fn new(config: &EncoderConfig, params: &mut Params, rng: &mut StdRng) -> Comparator {
        let encoder = match config {
            EncoderConfig::TreeLstm(c) => Encoder::TreeLstm(TreeLstmEncoder::new(c, params, rng)),
            EncoderConfig::Gcn(c) => Encoder::Gcn(GcnEncoder::new(c, params, rng)),
        };
        let d = encoder.output_dim();
        // "This classifier's number of parameters is 2·d": a single
        // fully connected sigmoid unit over the concatenated codes.
        let classifier = Linear::new("cls", 2 * d, 1, params, rng);
        Comparator {
            encoder,
            classifier,
            config: config.clone(),
        }
    }

    /// The configuration this model was built from.
    pub fn config(&self) -> &EncoderConfig {
        &self.config
    }

    /// The raw logit that program `a` is slower than program `b`.
    pub fn logit<'t>(&self, ctx: &Ctx<'t, '_>, a: &AstGraph, b: &AstGraph) -> Var<'t> {
        let za = self.encoder.encode(ctx, a);
        let zb = self.encoder.encode(ctx, b);
        let zab = ctx.tape.concat(&[za, zb]);
        self.classifier.forward(ctx, zab)
    }

    /// Batched training forward: one logit per pair, with *all* graphs
    /// of the batch — both sides of every pair — encoded in a single
    /// level-fused [`Encoder::encode_batch`] call on the shared tape, so
    /// same-level nodes across the whole pair batch coalesce into the
    /// same per-level matmuls. The classifier then runs once as a
    /// `[pairs, 2d]` batched linear.
    ///
    /// Each returned logit is a one-element tensor that agrees with the
    /// per-pair [`Comparator::logit`] bit-for-bit (the fused encoder
    /// reproduces the sequential accumulation order), which the trainer
    /// parity tests pin down.
    pub fn logit_batch<'t>(
        &self,
        ctx: &Ctx<'t, '_>,
        pairs: &[(&AstGraph, &AstGraph)],
    ) -> Vec<Var<'t>> {
        if pairs.is_empty() {
            return Vec::new();
        }
        let mut graphs: Vec<&AstGraph> = Vec::with_capacity(pairs.len() * 2);
        for &(a, b) in pairs {
            graphs.push(a);
            graphs.push(b);
        }
        let codes = self.encoder.encode_batch(ctx, &graphs);
        let zabs: Vec<Var<'t>> = codes
            .chunks_exact(2)
            .map(|pair| ctx.tape.concat(&[pair[0], pair[1]]))
            .collect();
        let stacked = ctx.tape.stack(&zabs);
        let logits = self.classifier.forward_rows(ctx, stacked);
        (0..pairs.len()).map(|p| logits.row(p)).collect()
    }

    /// Scalar BCE training loss for one labelled pair.
    pub fn loss<'t>(&self, ctx: &Ctx<'t, '_>, a: &AstGraph, b: &AstGraph, label: f32) -> Var<'t> {
        self.logit(ctx, a, b).sum().bce_with_logits(label)
    }

    /// Inference: probability that `a` is the slower program.
    pub fn predict(&self, params: &Params, a: &AstGraph, b: &AstGraph) -> f32 {
        let tape = Tape::new();
        let ctx = Ctx::new(&tape, params);
        let z = self.logit(&ctx, a, b).value().item();
        sigmoid(z)
    }

    /// Encodes a batch of graphs into concrete latent-code tensors on one
    /// shared tape (inference only — no gradients). The serving engine
    /// caches these codes by canonical AST hash and feeds them back
    /// through [`Comparator::predict_from_codes`], skipping the encoder
    /// entirely on cache hits.
    pub fn encode_codes(&self, params: &Params, graphs: &[&AstGraph]) -> Vec<Tensor> {
        self.encode_codes_with_stats(params, graphs).0
    }

    /// [`Comparator::encode_codes`] plus level-fusion telemetry: how many
    /// fused level matmuls the pass ran and how many node rows they
    /// covered. The serving pool aggregates this into its `stats` output
    /// so the fused width is observable under live traffic.
    pub fn encode_codes_with_stats(
        &self,
        params: &Params,
        graphs: &[&AstGraph],
    ) -> (Vec<Tensor>, ccsa_nn::FusedStats) {
        let tape = Tape::new();
        let ctx = Ctx::new(&tape, params);
        let (codes, stats) = self.encoder.encode_batch_with_stats(&ctx, graphs);
        (codes.into_iter().map(|v| v.value()).collect(), stats)
    }

    /// [`Comparator::encode_codes_with_stats`] running on a worker-owned
    /// [`ccsa_nn::EncodeScratch`]: the tape and scheduling buffers are
    /// recycled batch to batch, so a warmed worker encodes with ~0 heap
    /// allocations (tensor buffers come from the
    /// [pool](ccsa_tensor::pool)). Results are identical to the fresh-
    /// tape path — the scratch only changes where memory comes from.
    pub fn encode_codes_with_scratch(
        &self,
        params: &Params,
        graphs: &[&AstGraph],
        scratch: &mut ccsa_nn::EncodeScratch,
    ) -> (Vec<Tensor>, ccsa_nn::FusedStats) {
        scratch.reset();
        let (tape, sched) = scratch.parts();
        let ctx = Ctx::new(tape, params);
        let (codes, stats) = self.encoder.encode_batch_with_stats_in(&ctx, graphs, sched);
        (codes.into_iter().map(|v| v.value()).collect(), stats)
    }

    /// Reference inference path that still runs one matvec per node
    /// (tape/parameter binding shared, nothing fused). Benchmarks compare
    /// this against [`Comparator::encode_codes`] to measure the fusion
    /// win; tests pin the two paths to equal results.
    pub fn encode_codes_sequential(&self, params: &Params, graphs: &[&AstGraph]) -> Vec<Tensor> {
        let tape = Tape::new();
        let ctx = Ctx::new(&tape, params);
        self.encoder
            .encode_batch_sequential(&ctx, graphs)
            .into_iter()
            .map(|v| v.value())
            .collect()
    }

    /// Inference from precomputed latent codes: runs only the classifier
    /// head (2·d weights — orders of magnitude cheaper than the encoder).
    ///
    /// # Panics
    ///
    /// Panics if a code's length differs from the encoder's output
    /// dimensionality.
    pub fn predict_from_codes(&self, params: &Params, za: &Tensor, zb: &Tensor) -> f32 {
        let d = self.encoder.output_dim();
        assert_eq!(za.len(), d, "first latent code has wrong dimensionality");
        assert_eq!(zb.len(), d, "second latent code has wrong dimensionality");
        // Tape-free: concatenate into a pooled scratch buffer and run
        // the classifier head through `Linear::forward_into`. The
        // arithmetic chain (concat → matvec → bias add → sigmoid) is
        // exactly what the old tape path recorded, so probabilities are
        // bit-identical — and the warm serving path performs zero heap
        // allocations once the pool is primed.
        let mut zab = ccsa_tensor::pool::take_cap(2 * d);
        zab.extend_from_slice(za.as_slice());
        zab.extend_from_slice(zb.as_slice());
        let mut logit = [0.0f32];
        self.classifier.forward_into(params, &zab, &mut logit);
        ccsa_tensor::pool::put(zab);
        sigmoid(logit[0])
    }
}

fn sigmoid(z: f32) -> f32 {
    1.0 / (1.0 + (-z).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsa_cppast::parse_program;
    use ccsa_nn::treelstm::Direction;
    use rand::SeedableRng;

    fn graph(src: &str) -> AstGraph {
        AstGraph::from_program(&parse_program(src).unwrap())
    }

    fn tiny_tree_config() -> EncoderConfig {
        EncoderConfig::TreeLstm(TreeLstmConfig {
            embed_dim: 6,
            hidden: 6,
            layers: 1,
            direction: Direction::Uni,
            sigmoid_candidate: false,
        })
    }

    #[test]
    fn prediction_is_probability() {
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(1);
        let model = Comparator::new(&tiny_tree_config(), &mut params, &mut rng);
        let a = graph("int main() { return 0; }");
        let b = graph("int main() { for (int i = 0; i < 5; i++) { } return 0; }");
        let p = model.predict(&params, &a, &b);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn loss_decreases_under_gradient_steps() {
        // One pair, repeated Adam steps: the BCE loss must fall — the whole
        // model is differentiable end to end.
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(2);
        let model = Comparator::new(&tiny_tree_config(), &mut params, &mut rng);
        let a = graph("int main() { return 0; }");
        let b = graph("int main() { while (true) { break; } return 0; }");
        let mut opt = ccsa_nn::optim::Adam::new(0.02);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..25 {
            let tape = Tape::new();
            let ctx = Ctx::new(&tape, &params);
            let loss = model.loss(&ctx, &a, &b, 1.0);
            last = loss.value().item() as f64;
            first.get_or_insert(last);
            let grads = tape.backward(loss);
            let store = ctx.grads(&grads);
            opt.step(&mut params, &store);
        }
        let first = first.unwrap();
        assert!(last < first * 0.5, "loss did not fall: {first} → {last}");
    }

    #[test]
    fn gcn_variant_works_end_to_end() {
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(3);
        let config = EncoderConfig::Gcn(GcnConfig::small(5));
        let model = Comparator::new(&config, &mut params, &mut rng);
        let a = graph("int main() { return 1; }");
        let b = graph("int main() { return 2 * 3; }");
        let tape = Tape::new();
        let ctx = Ctx::new(&tape, &params);
        let loss = model.loss(&ctx, &a, &b, 0.0);
        assert!(loss.value().item().is_finite());
        let grads = tape.backward(loss);
        assert!(!ctx.grads(&grads).is_empty());
    }

    #[test]
    fn predict_from_cached_codes_matches_direct_prediction() {
        // The serving cache depends on this identity: encode once, reuse
        // the codes, and the classifier head must produce the exact same
        // probability as a full forward pass.
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(9);
        let model = Comparator::new(&tiny_tree_config(), &mut params, &mut rng);
        let a = graph("int main() { int s = 0; for (int i = 0; i < 9; i++) s += i; return s; }");
        let b = graph("int main() { return 42; }");
        let direct_ab = model.predict(&params, &a, &b);
        let direct_ba = model.predict(&params, &b, &a);
        let codes = model.encode_codes(&params, &[&a, &b]);
        assert_eq!(codes.len(), 2);
        let cached_ab = model.predict_from_codes(&params, &codes[0], &codes[1]);
        let cached_ba = model.predict_from_codes(&params, &codes[1], &codes[0]);
        assert!(
            (direct_ab - cached_ab).abs() < 1e-6,
            "{direct_ab} vs {cached_ab}"
        );
        assert!(
            (direct_ba - cached_ba).abs() < 1e-6,
            "{direct_ba} vs {cached_ba}"
        );
    }

    #[test]
    fn logit_batch_matches_per_pair_logit() {
        // The fused training forward must sit on the same loss surface:
        // per-pair logits computed by one batched encode + one batched
        // classifier matmul agree with the sequential per-pair path.
        for config in [
            tiny_tree_config(),
            EncoderConfig::TreeLstm(TreeLstmConfig {
                embed_dim: 5,
                hidden: 4,
                layers: 3,
                direction: Direction::Alternating,
                sigmoid_candidate: false,
            }),
            EncoderConfig::Gcn(GcnConfig::small(5)),
        ] {
            let mut params = Params::new();
            let mut rng = StdRng::seed_from_u64(17);
            let model = Comparator::new(&config, &mut params, &mut rng);
            let graphs = [
                graph("int main() { return 0; }"),
                graph("int main() { for (int i = 0; i < 7; i++) { } return 1; }"),
                graph("int f(int x) { return x * x; } int main() { return f(4); }"),
            ];
            let pairs: Vec<(&AstGraph, &AstGraph)> = vec![
                (&graphs[0], &graphs[1]),
                (&graphs[2], &graphs[0]),
                (&graphs[1], &graphs[1]),
            ];
            let tape = Tape::new();
            let ctx = Ctx::new(&tape, &params);
            let batched = model.logit_batch(&ctx, &pairs);
            assert_eq!(batched.len(), pairs.len());
            for (p, (a, b)) in pairs.iter().enumerate() {
                let single = model.logit(&ctx, a, b).value().item();
                let fused = batched[p].value().item();
                assert!(
                    (single - fused).abs() <= 1e-6,
                    "{} pair {p}: {single} vs {fused}",
                    config.name()
                );
            }
        }
    }

    #[test]
    fn logit_batch_empty_is_empty() {
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(1);
        let model = Comparator::new(&tiny_tree_config(), &mut params, &mut rng);
        let tape = Tape::new();
        let ctx = Ctx::new(&tape, &params);
        assert!(model.logit_batch(&ctx, &[]).is_empty());
    }

    #[test]
    fn classifier_dimension_matches_paper() {
        // d = 6 → classifier weight [1, 12] = 2·d parameters (+1 bias).
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(4);
        let _model = Comparator::new(&tiny_tree_config(), &mut params, &mut rng);
        assert_eq!(params.get("cls.w").shape().dims(), &[1, 12]);
        assert_eq!(params.get("cls.b").shape().dims(), &[1]);
    }
}
