//! Prediction-sensitivity analysis (§VI-E, Figure 6).
//!
//! "We sort the evaluation sets and record accuracy for pairs with a
//! difference beyond a certain threshold": accuracy is recomputed over the
//! subset of test pairs whose true runtime gap `|tᵢ − tⱼ|` is at least a
//! minimum, sweeping that minimum upward. Accuracy rises with the
//! threshold because large gaps come from structurally obvious differences
//! (extra loop nests, much longer code) while small gaps are dominated by
//! measurement noise.

use ccsa_corpus::Submission;

use crate::metrics::accuracy;
use crate::pair::Pair;

/// One point of the sensitivity curve.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitivityPoint {
    /// Minimum runtime difference (ms) for a pair to be counted.
    pub min_diff_ms: f64,
    /// Accuracy over the retained pairs.
    pub accuracy: f64,
    /// Number of retained pairs.
    pub pairs: usize,
}

/// Computes the Figure-6 curve: accuracy over pairs whose runtime gap is at
/// least each threshold.
///
/// `scored` must align 1:1 with `pairs` (as produced by
/// [`evaluate`](crate::trainer::evaluate)). Thresholds are taken at
/// `steps` evenly spaced quantile positions of the observed gaps, so the
/// curve spans the dataset's actual range whatever its units.
pub fn sensitivity_curve(
    subs: &[Submission],
    pairs: &[Pair],
    scored: &[(f32, f32)],
    steps: usize,
) -> Vec<SensitivityPoint> {
    assert_eq!(pairs.len(), scored.len(), "pairs and scores must align");
    let gaps: Vec<f64> = pairs
        .iter()
        .map(|p| (subs[p.a].runtime_ms - subs[p.b].runtime_ms).abs())
        .collect();
    let mut sorted_gaps = gaps.clone();
    sorted_gaps.sort_by(|a, b| a.partial_cmp(b).expect("NaN gap"));
    let steps = steps.max(2);

    let mut curve = Vec::with_capacity(steps);
    for s in 0..steps {
        // Quantile positions from 0 % to 90 % keep ≥ 10 % of pairs at the
        // deepest threshold.
        let q = 0.9 * s as f64 / (steps - 1) as f64;
        let threshold = sorted_gaps[((sorted_gaps.len() - 1) as f64 * q) as usize];
        let retained: Vec<(f32, f32)> = gaps
            .iter()
            .zip(scored)
            .filter(|(g, _)| **g >= threshold)
            .map(|(_, s)| *s)
            .collect();
        curve.push(SensitivityPoint {
            min_diff_ms: threshold,
            accuracy: accuracy(&retained),
            pairs: retained.len(),
        });
    }
    curve
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsa_corpus::{CorpusConfig, ProblemDataset, ProblemSpec, ProblemTag};

    /// A synthetic "model" whose noise is independent of the gap: accuracy
    /// must rise with the threshold because close pairs are noise-labelled.
    #[test]
    fn accuracy_rises_with_threshold_for_noisy_scores() {
        let ds =
            ProblemDataset::generate(ProblemSpec::curated(ProblemTag::E), &CorpusConfig::tiny(31))
                .unwrap();
        let subs = &ds.submissions;
        let indices: Vec<usize> = (0..subs.len()).collect();
        let pairs = crate::pair::sample_pairs(
            subs,
            &indices,
            &crate::pair::PairConfig {
                max_pairs: 400,
                symmetric: false,
                exclude_self: true,
            },
            1,
        );
        // Oracle on the *true* cost ordering before noise: emulate by
        // predicting from runtime with additive disturbance, creating
        // mistakes concentrated at small gaps.
        let scored: Vec<(f32, f32)> = pairs
            .iter()
            .enumerate()
            .map(|(k, p)| {
                let gap = subs[p.a].runtime_ms - subs[p.b].runtime_ms;
                let noise = ((k * 2654435761) % 1000) as f64 / 1000.0 - 0.5;
                let pred = if gap + noise * 20.0 >= 0.0 {
                    0.9f32
                } else {
                    0.1
                };
                (pred, p.label)
            })
            .collect();
        let curve = sensitivity_curve(subs, &pairs, &scored, 6);
        assert_eq!(curve.len(), 6);
        assert!(
            curve.last().unwrap().accuracy >= curve.first().unwrap().accuracy,
            "accuracy should not fall with larger gaps: {curve:?}"
        );
        for w in curve.windows(2) {
            assert!(w[1].min_diff_ms >= w[0].min_diff_ms);
            assert!(w[1].pairs <= w[0].pairs);
        }
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn mismatched_lengths_panic() {
        let ds =
            ProblemDataset::generate(ProblemSpec::curated(ProblemTag::H), &CorpusConfig::tiny(1))
                .unwrap();
        let pairs = crate::pair::sample_pairs(
            &ds.submissions,
            &[0, 1, 2],
            &crate::pair::PairConfig::default(),
            1,
        );
        let _ = sensitivity_curve(&ds.submissions, &pairs, &[], 4);
    }
}
