//! Exact t-SNE for visualising learned representations (Figure 7).
//!
//! Standard van der Maaten & Hinton formulation: per-point Gaussian
//! bandwidths calibrated to a target perplexity by bisection, symmetrised
//! affinities, Student-t low-dimensional kernel, gradient descent with
//! momentum and early exaggeration. Exact (O(n²)) — the paper projects a
//! few hundred embeddings, where Barnes–Hut brings nothing.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// t-SNE hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TsneConfig {
    /// Target perplexity (effective neighbour count).
    pub perplexity: f64,
    /// Gradient-descent iterations.
    pub iterations: usize,
    /// Learning rate η.
    pub learning_rate: f64,
    /// Early-exaggeration factor applied for the first quarter of the run.
    pub exaggeration: f64,
    /// Seed for the initial layout.
    pub seed: u64,
}

impl Default for TsneConfig {
    fn default() -> TsneConfig {
        TsneConfig {
            perplexity: 20.0,
            iterations: 400,
            learning_rate: 100.0,
            exaggeration: 8.0,
            seed: 0,
        }
    }
}

/// Embeds `data` (n points, any dimension) into 2-D.
///
/// Returns one `[x, y]` per input point. Deterministic for a fixed config.
///
/// # Panics
///
/// Panics if fewer than 3 points are supplied or dimensions are ragged.
pub fn tsne(data: &[Vec<f32>], config: &TsneConfig) -> Vec<[f64; 2]> {
    let n = data.len();
    assert!(n >= 3, "t-SNE needs at least 3 points, got {n}");
    let dim = data[0].len();
    assert!(
        data.iter().all(|p| p.len() == dim),
        "ragged input dimensions"
    );

    // Pairwise squared Euclidean distances.
    let mut d2 = vec![0.0f64; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let dist: f64 = data[i]
                .iter()
                .zip(&data[j])
                .map(|(&a, &b)| {
                    let d = (a - b) as f64;
                    d * d
                })
                .sum();
            d2[i * n + j] = dist;
            d2[j * n + i] = dist;
        }
    }

    // Per-point bandwidth by bisection on perplexity.
    let target_entropy = config.perplexity.max(2.0).ln();
    let mut p = vec![0.0f64; n * n];
    for i in 0..n {
        let row = &d2[i * n..(i + 1) * n];
        let (mut beta, mut beta_lo, mut beta_hi) = (1.0f64, 0.0f64, f64::INFINITY);
        for _ in 0..50 {
            // Compute entropy at current beta.
            let mut sum = 0.0;
            let mut sum_dp = 0.0;
            for (j, &dist) in row.iter().enumerate() {
                if j == i {
                    continue;
                }
                let pij = (-beta * dist).exp();
                sum += pij;
                sum_dp += pij * dist;
            }
            if sum <= f64::MIN_POSITIVE {
                beta /= 2.0;
                continue;
            }
            let entropy = beta * sum_dp / sum + sum.ln();
            if (entropy - target_entropy).abs() < 1e-5 {
                break;
            }
            if entropy > target_entropy {
                beta_lo = beta;
                beta = if beta_hi.is_finite() {
                    (beta + beta_hi) / 2.0
                } else {
                    beta * 2.0
                };
            } else {
                beta_hi = beta;
                beta = (beta + beta_lo) / 2.0;
            }
        }
        let mut sum = 0.0;
        for (j, &dist) in row.iter().enumerate() {
            if j != i {
                let v = (-beta * dist).exp();
                p[i * n + j] = v;
                sum += v;
            }
        }
        if sum > 0.0 {
            for j in 0..n {
                p[i * n + j] /= sum;
            }
        }
    }

    // Symmetrise; floor for numerical stability.
    let mut pij = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            pij[i * n + j] = ((p[i * n + j] + p[j * n + i]) / (2.0 * n as f64)).max(1e-12);
        }
    }

    // Initial layout: small Gaussian.
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x75e3);
    let mut y: Vec<[f64; 2]> = (0..n)
        .map(|_| [0.0001 * gaussian(&mut rng), 0.0001 * gaussian(&mut rng)])
        .collect();
    let mut velocity = vec![[0.0f64; 2]; n];
    let mut gains = vec![[1.0f64; 2]; n];

    let exaggeration_until = config.iterations / 4;
    for iter in 0..config.iterations {
        let exaggeration = if iter < exaggeration_until {
            config.exaggeration
        } else {
            1.0
        };
        let momentum = if iter < exaggeration_until { 0.5 } else { 0.8 };

        // Student-t affinities in the embedding.
        let mut q_num = vec![0.0f64; n * n];
        let mut q_sum = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                let dx = y[i][0] - y[j][0];
                let dy = y[i][1] - y[j][1];
                let q = 1.0 / (1.0 + dx * dx + dy * dy);
                q_num[i * n + j] = q;
                q_num[j * n + i] = q;
                q_sum += 2.0 * q;
            }
        }
        let q_sum = q_sum.max(1e-12);

        for i in 0..n {
            let mut grad = [0.0f64; 2];
            for j in 0..n {
                if i == j {
                    continue;
                }
                let qn = q_num[i * n + j];
                let qij = (qn / q_sum).max(1e-12);
                let coeff = 4.0 * (exaggeration * pij[i * n + j] - qij) * qn;
                grad[0] += coeff * (y[i][0] - y[j][0]);
                grad[1] += coeff * (y[i][1] - y[j][1]);
            }
            for k in 0..2 {
                // Adaptive gains (Jacobs rule) as in the reference code.
                gains[i][k] = if grad[k].signum() != velocity[i][k].signum() {
                    (gains[i][k] + 0.2).min(10.0)
                } else {
                    (gains[i][k] * 0.8).max(0.01)
                };
                velocity[i][k] =
                    momentum * velocity[i][k] - config.learning_rate * gains[i][k] * grad[k];
            }
        }
        let mut mean = [0.0f64; 2];
        for i in 0..n {
            y[i][0] += velocity[i][0];
            y[i][1] += velocity[i][1];
            mean[0] += y[i][0];
            mean[1] += y[i][1];
        }
        // Keep the layout centred.
        mean[0] /= n as f64;
        mean[1] /= n as f64;
        for point in &mut y {
            point[0] -= mean[0];
            point[1] -= mean[1];
        }
    }
    y
}

fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated clusters in 10-D must stay separated in 2-D.
    #[test]
    fn clusters_remain_separated() {
        let mut data = Vec::new();
        let mut rng = StdRng::seed_from_u64(3);
        for c in 0..3 {
            for _ in 0..15 {
                let mut p = vec![0.0f32; 10];
                for (k, v) in p.iter_mut().enumerate() {
                    *v = if k == c { 10.0 } else { 0.0 };
                    *v += 0.1 * gaussian(&mut rng) as f32;
                }
                data.push(p);
            }
        }
        let config = TsneConfig {
            iterations: 250,
            perplexity: 10.0,
            ..TsneConfig::default()
        };
        let y = tsne(&data, &config);
        assert_eq!(y.len(), 45);
        // Mean intra-cluster distance must be well below inter-cluster.
        let centroid = |c: usize| -> [f64; 2] {
            let pts = &y[c * 15..(c + 1) * 15];
            let mut m = [0.0; 2];
            for p in pts {
                m[0] += p[0] / 15.0;
                m[1] += p[1] / 15.0;
            }
            m
        };
        let dist =
            |a: [f64; 2], b: [f64; 2]| ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2)).sqrt();
        let mut intra: f64 = 0.0;
        for c in 0..3 {
            let m = centroid(c);
            for p in &y[c * 15..(c + 1) * 15] {
                intra += dist(*p, m) / 45.0;
            }
        }
        let inter = (dist(centroid(0), centroid(1))
            + dist(centroid(1), centroid(2))
            + dist(centroid(0), centroid(2)))
            / 3.0;
        assert!(
            inter > 2.0 * intra,
            "clusters not separated: intra {intra:.3} vs inter {inter:.3}"
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let data: Vec<Vec<f32>> = (0..12)
            .map(|i| vec![(i % 4) as f32, (i / 4) as f32, 0.5])
            .collect();
        let config = TsneConfig {
            iterations: 50,
            perplexity: 5.0,
            ..TsneConfig::default()
        };
        let a = tsne(&data, &config);
        let b = tsne(&data, &config);
        assert_eq!(a, b);
    }

    #[test]
    fn output_is_finite_and_centred() {
        let data: Vec<Vec<f32>> = (0..20)
            .map(|i| vec![i as f32, (i * i % 7) as f32])
            .collect();
        let y = tsne(
            &data,
            &TsneConfig {
                iterations: 80,
                ..TsneConfig::default()
            },
        );
        let mut mean = [0.0f64; 2];
        for p in &y {
            assert!(p[0].is_finite() && p[1].is_finite());
            mean[0] += p[0] / 20.0;
            mean[1] += p[1] / 20.0;
        }
        assert!(mean[0].abs() < 1e-6 && mean[1].abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "at least 3 points")]
    fn too_few_points_panics() {
        let _ = tsne(&[vec![1.0], vec![2.0]], &TsneConfig::default());
    }
}
