//! Mini-batch training and evaluation of comparators.
//!
//! The default forward/backward runs on the **level-fused batched
//! encoder**: each worker shard builds one tape for its whole slice of
//! the mini-batch and encodes every graph of those pairs in a single
//! [`Comparator::logit_batch`] call, so same-level nodes across all
//! trees coalesce into one matmul per level per projection. The
//! historical one-tape-per-pair path survives as
//! [`TrainPath::PerPair`] for parity tests and benchmarks.
//!
//! Gradients are accumulated data-parallel across CPU threads (see
//! [`ccsa_nn::parallel`]) and applied with Adam + global-norm clipping.
//! Results are deterministic for a fixed seed and thread-stable because
//! shard gradients are summed before the optimizer step; the fused path
//! keeps gradient averaging, clipping, and Adam semantics of the
//! per-pair baseline (parity pinned to ≤ 1e-5 by tests).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use ccsa_corpus::Submission;
use ccsa_cppast::AstGraph;
use ccsa_nn::optim::{Adam, GradClip};
use ccsa_nn::parallel::{parallel_batch, BatchResult};
use ccsa_nn::param::{Ctx, Params};
use ccsa_tensor::Tape;

use crate::comparator::Comparator;
use crate::metrics::EvalResult;
use crate::pair::Pair;

/// Which forward/backward implementation the trainer drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TrainPath {
    /// One tape per worker shard; all graphs of the shard's pairs run
    /// through one level-fused `encode_batch` call (the default).
    #[default]
    FusedBatch,
    /// The reference baseline: one tape per pair, node-by-node cell.
    PerPair,
}

/// Training-loop hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the pair set.
    pub epochs: usize,
    /// Pairs per optimizer step.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Global-norm gradient clip.
    pub clip: f32,
    /// Worker threads (`0` → auto).
    pub threads: usize,
    /// Shuffling seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> TrainConfig {
        TrainConfig {
            epochs: 6,
            batch_size: 32,
            lr: 0.01,
            clip: 5.0,
            threads: 0,
            seed: 0,
        }
    }
}

impl TrainConfig {
    /// A minimal configuration for tests and doc examples.
    pub fn tiny(seed: u64) -> TrainConfig {
        TrainConfig {
            epochs: 2,
            batch_size: 16,
            lr: 0.02,
            clip: 5.0,
            threads: 0,
            seed,
        }
    }
}

/// Per-epoch training telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean loss per epoch.
    pub epoch_loss: Vec<f64>,
    /// Training accuracy per epoch.
    pub epoch_accuracy: Vec<f64>,
}

/// Trains `model` on labelled `pairs` over `subs`, updating `params` in
/// place, on the fused batched path ([`TrainPath::FusedBatch`]).
pub fn train(
    model: &Comparator,
    params: &mut Params,
    subs: &[Submission],
    pairs: &[Pair],
    config: &TrainConfig,
) -> TrainReport {
    train_with_path(model, params, subs, pairs, config, TrainPath::FusedBatch)
}

/// [`train`] with an explicit forward/backward implementation — the
/// per-pair baseline exists for parity tests and the `train_throughput`
/// benchmark.
pub fn train_with_path(
    model: &Comparator,
    params: &mut Params,
    subs: &[Submission],
    pairs: &[Pair],
    config: &TrainConfig,
    path: TrainPath,
) -> TrainReport {
    let threads = if config.threads == 0 {
        ccsa_nn::parallel::default_threads()
    } else {
        config.threads
    };
    let mut optimizer = Adam::new(config.lr);
    let clip = GradClip {
        max_norm: config.clip,
    };
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x7ea1);
    let mut order: Vec<usize> = (0..pairs.len()).collect();
    let mut report = TrainReport {
        epoch_loss: Vec::new(),
        epoch_accuracy: Vec::new(),
    };

    for _epoch in 0..config.epochs {
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0;
        let mut epoch_correct = 0usize;
        let mut epoch_count = 0usize;
        for batch_ixs in order.chunks(config.batch_size.max(1)) {
            let batch: Vec<Pair> = batch_ixs.iter().map(|&i| pairs[i]).collect();
            let shared: &Params = params;
            let mut result = match path {
                TrainPath::PerPair => parallel_batch(&batch, threads, |pair| {
                    batch_forward_backward(model, shared, subs, std::slice::from_ref(pair), false)
                }),
                TrainPath::FusedBatch => {
                    // Shard the batch across workers; each shard runs one
                    // fused tape over all of its pairs' graphs.
                    let shards: Vec<&[Pair]> =
                        batch.chunks(batch.len().div_ceil(threads.max(1))).collect();
                    parallel_batch(&shards, threads, |shard| {
                        batch_forward_backward(model, shared, subs, shard, true)
                    })
                }
            };
            epoch_loss += result.loss;
            epoch_correct += result.correct;
            epoch_count += result.count;
            result.grads.scale(1.0 / batch.len().max(1) as f32);
            clip.apply(&mut result.grads);
            optimizer.step(params, &result.grads);
        }
        report
            .epoch_loss
            .push(epoch_loss / epoch_count.max(1) as f64);
        report
            .epoch_accuracy
            .push(epoch_correct as f64 / epoch_count.max(1) as f64);
    }
    report
}

/// One tape over `shard`: forward (fused `logit_batch` or sequential
/// per-pair `logit`), summed BCE loss, one backward. The gradients are
/// *sums* over the shard's pairs — the caller divides by the full batch
/// size, exactly as the per-pair baseline does.
fn batch_forward_backward(
    model: &Comparator,
    params: &Params,
    subs: &[Submission],
    shard: &[Pair],
    fused: bool,
) -> BatchResult {
    let tape = Tape::new();
    let ctx = Ctx::new(&tape, params);
    let graphs: Vec<(&AstGraph, &AstGraph)> = shard
        .iter()
        .map(|pair| (&subs[pair.a].graph, &subs[pair.b].graph))
        .collect();
    let logits = if fused {
        model.logit_batch(&ctx, &graphs)
    } else {
        graphs
            .iter()
            .map(|&(a, b)| model.logit(&ctx, a, b))
            .collect()
    };
    let mut loss_sum = 0.0f64;
    let mut correct = 0usize;
    let mut losses = Vec::with_capacity(shard.len());
    for (logit, pair) in logits.into_iter().zip(shard) {
        let logit = logit.sum();
        let loss = logit.bce_with_logits(pair.label);
        loss_sum += loss.value().item() as f64;
        let predicted_slower = logit.value().item() >= 0.0;
        correct += (predicted_slower == (pair.label >= 0.5)) as usize;
        losses.push(loss);
    }
    let total = ctx.tape.add_n(&losses);
    let grads = tape.backward(total);
    BatchResult {
        grads: ctx.grads(&grads),
        loss: loss_sum,
        correct,
        count: shard.len(),
    }
}

/// Scores `pairs` with a trained model (no parameter updates).
///
/// `subs` must be the submission list the pair indices refer to — which
/// may belong to a *different problem* than the training set (cross-problem
/// generalisation, Figure 3 / Table II).
pub fn evaluate(
    model: &Comparator,
    params: &Params,
    subs: &[Submission],
    pairs: &[Pair],
    threads: usize,
) -> EvalResult {
    let threads = if threads == 0 {
        ccsa_nn::parallel::default_threads()
    } else {
        threads
    };
    // Score in parallel, preserving order via index tagging.
    let indexed: Vec<(usize, Pair)> = pairs.iter().copied().enumerate().collect();
    let scores = std::sync::Mutex::new(vec![(0.0f32, 0.0f32); pairs.len()]);
    parallel_batch(&indexed, threads, |&(ix, pair)| {
        let p = model.predict(params, &subs[pair.a].graph, &subs[pair.b].graph);
        scores.lock().expect("poisoned")[ix] = (p, pair.label);
        BatchResult {
            count: 1,
            ..BatchResult::default()
        }
    });
    let scored = scores.into_inner().expect("poisoned");
    EvalResult::from_scored(scored)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comparator::EncoderConfig;
    use crate::pair::{sample_pairs, split_indices, PairConfig};
    use ccsa_corpus::{CorpusConfig, ProblemDataset, ProblemSpec, ProblemTag};
    use ccsa_nn::treelstm::{Direction, TreeLstmConfig};

    fn tiny_encoder() -> EncoderConfig {
        EncoderConfig::TreeLstm(TreeLstmConfig {
            embed_dim: 8,
            hidden: 8,
            layers: 1,
            direction: Direction::Uni,
            sigmoid_candidate: false,
        })
    }

    #[test]
    fn training_learns_above_chance_and_is_deterministic() {
        let ds =
            ProblemDataset::generate(ProblemSpec::curated(ProblemTag::E), &CorpusConfig::tiny(21))
                .unwrap();
        let subs = &ds.submissions;
        let (train_ix, test_ix) = split_indices(subs.len(), 0.3, 1);
        let pair_cfg = PairConfig {
            max_pairs: 280,
            symmetric: true,
            exclude_self: true,
        };
        let train_pairs = sample_pairs(subs, &train_ix, &pair_cfg, 2);
        let test_pairs = sample_pairs(subs, &test_ix, &pair_cfg, 3);

        let run = |seed: u64| {
            let mut params = Params::new();
            let mut rng = StdRng::seed_from_u64(seed);
            let model = Comparator::new(&tiny_encoder(), &mut params, &mut rng);
            let cfg = TrainConfig {
                epochs: 8,
                batch_size: 16,
                lr: 0.02,
                clip: 5.0,
                threads: 2,
                seed,
            };
            let report = train(&model, &mut params, subs, &train_pairs, &cfg);
            let eval = evaluate(&model, &params, subs, &test_pairs, 2);
            (report, eval)
        };

        let (report, eval) = run(7);
        assert!(
            report.epoch_loss.last().unwrap() < report.epoch_loss.first().unwrap(),
            "loss should fall: {:?}",
            report.epoch_loss
        );
        assert!(
            eval.accuracy > 0.55,
            "tiny model should beat chance on E (got {})",
            eval.accuracy
        );

        let (_report2, eval2) = run(7);
        assert_eq!(eval.accuracy, eval2.accuracy, "same seed must reproduce");
    }

    #[test]
    fn fused_batch_matches_per_pair_baseline_loss_and_grads() {
        // The ISSUE-4 parity gate: one mini-batch, forward + backward on
        // the fused per-batch tape vs one tape per pair — loss and every
        // parameter gradient agree to ≤ 1e-5.
        let ds =
            ProblemDataset::generate(ProblemSpec::curated(ProblemTag::E), &CorpusConfig::tiny(11))
                .unwrap();
        let subs = &ds.submissions;
        let pair_cfg = PairConfig {
            max_pairs: 16,
            symmetric: true,
            exclude_self: true,
        };
        let pairs = sample_pairs(subs, &(0..subs.len()).collect::<Vec<_>>(), &pair_cfg, 5);
        assert!(pairs.len() >= 8, "need a real batch, got {}", pairs.len());

        // A 3-layer alternating stack so every fused code path
        // (up/down passes, gate fusion, incremental gather) is active.
        let encoder = EncoderConfig::TreeLstm(TreeLstmConfig {
            embed_dim: 6,
            hidden: 6,
            layers: 3,
            direction: Direction::Alternating,
            sigmoid_candidate: false,
        });
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(23);
        let model = Comparator::new(&encoder, &mut params, &mut rng);

        let fused = super::batch_forward_backward(&model, &params, subs, &pairs, true);
        let mut per_pair = ccsa_nn::parallel::BatchResult::default();
        for pair in &pairs {
            per_pair.merge(super::batch_forward_backward(
                &model,
                &params,
                subs,
                std::slice::from_ref(pair),
                false,
            ));
        }

        assert_eq!(fused.count, per_pair.count);
        assert_eq!(fused.correct, per_pair.correct);
        assert!(
            (fused.loss - per_pair.loss).abs() <= 1e-5,
            "loss diverged: {} vs {}",
            fused.loss,
            per_pair.loss
        );
        for name in params.names() {
            let f = fused.grads.get(name).unwrap_or_else(|| {
                panic!("fused path produced no gradient for {name}");
            });
            let s = per_pair.grads.get(name).unwrap_or_else(|| {
                panic!("per-pair path produced no gradient for {name}");
            });
            // ≤ 1e-5 relative to the gradient's own scale: the two paths
            // sum identical per-pair contributions in different orders,
            // so the budget is f32 reassociation noise, not a fixed
            // absolute (a summed-over-16-pairs gradient of magnitude ~10
            // carries ~1e-5 of legitimate rounding).
            let scale = s.as_slice().iter().fold(1.0f32, |m, &x| m.max(x.abs()));
            let diff = f.max_abs_diff(s) / scale;
            assert!(
                diff <= 1e-5,
                "gradient for {name} diverged by {diff} (relative)"
            );
        }
    }

    #[test]
    fn fused_and_per_pair_training_reports_agree() {
        // Whole training runs on both paths: identical accuracy
        // trajectories and near-identical losses (grad reassociation can
        // drift parameters by f32 noise over epochs).
        let ds =
            ProblemDataset::generate(ProblemSpec::curated(ProblemTag::E), &CorpusConfig::tiny(31))
                .unwrap();
        let subs = &ds.submissions;
        let pair_cfg = PairConfig {
            max_pairs: 96,
            symmetric: true,
            exclude_self: true,
        };
        let pairs = sample_pairs(subs, &(0..subs.len()).collect::<Vec<_>>(), &pair_cfg, 9);
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 16,
            lr: 0.02,
            clip: 5.0,
            threads: 2,
            seed: 3,
        };
        let run = |path: TrainPath| {
            let mut params = Params::new();
            let mut rng = StdRng::seed_from_u64(41);
            let model = Comparator::new(&tiny_encoder(), &mut params, &mut rng);
            train_with_path(&model, &mut params, subs, &pairs, &cfg, path)
        };
        let fused = run(TrainPath::FusedBatch);
        let per_pair = run(TrainPath::PerPair);
        for (f, s) in fused.epoch_loss.iter().zip(&per_pair.epoch_loss) {
            assert!((f - s).abs() <= 1e-3, "epoch loss diverged: {f} vs {s}");
        }
        for (f, s) in fused.epoch_accuracy.iter().zip(&per_pair.epoch_accuracy) {
            assert!((f - s).abs() <= 0.05, "epoch accuracy diverged: {f} vs {s}");
        }
    }

    #[test]
    fn evaluate_preserves_pair_order() {
        let ds =
            ProblemDataset::generate(ProblemSpec::curated(ProblemTag::H), &CorpusConfig::tiny(5))
                .unwrap();
        let subs = &ds.submissions;
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(1);
        let model = Comparator::new(&tiny_encoder(), &mut params, &mut rng);
        let pairs = sample_pairs(
            subs,
            &(0..subs.len()).collect::<Vec<_>>(),
            &PairConfig::default(),
            1,
        );
        let seq = evaluate(&model, &params, subs, &pairs[..10], 1);
        let par = evaluate(&model, &params, subs, &pairs[..10], 4);
        assert_eq!(
            seq.scored, par.scored,
            "thread count must not change results"
        );
        for ((_, label), pair) in seq.scored.iter().zip(&pairs[..10]) {
            assert_eq!(*label, pair.label);
        }
    }
}
