//! Mini-batch training and evaluation of comparators.
//!
//! Gradients are accumulated data-parallel across CPU threads (see
//! [`ccsa_nn::parallel`]) and applied with Adam + global-norm clipping.
//! Results are deterministic for a fixed seed and thread-stable because
//! shard gradients are summed before the optimizer step.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use ccsa_corpus::Submission;
use ccsa_nn::optim::{Adam, GradClip};
use ccsa_nn::parallel::{parallel_batch, BatchResult};
use ccsa_nn::param::{Ctx, Params};
use ccsa_tensor::Tape;

use crate::comparator::Comparator;
use crate::metrics::EvalResult;
use crate::pair::Pair;

/// Training-loop hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the pair set.
    pub epochs: usize,
    /// Pairs per optimizer step.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Global-norm gradient clip.
    pub clip: f32,
    /// Worker threads (`0` → auto).
    pub threads: usize,
    /// Shuffling seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> TrainConfig {
        TrainConfig {
            epochs: 6,
            batch_size: 32,
            lr: 0.01,
            clip: 5.0,
            threads: 0,
            seed: 0,
        }
    }
}

impl TrainConfig {
    /// A minimal configuration for tests and doc examples.
    pub fn tiny(seed: u64) -> TrainConfig {
        TrainConfig {
            epochs: 2,
            batch_size: 16,
            lr: 0.02,
            clip: 5.0,
            threads: 0,
            seed,
        }
    }
}

/// Per-epoch training telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean loss per epoch.
    pub epoch_loss: Vec<f64>,
    /// Training accuracy per epoch.
    pub epoch_accuracy: Vec<f64>,
}

/// Trains `model` on labelled `pairs` over `subs`, updating `params` in
/// place.
pub fn train(
    model: &Comparator,
    params: &mut Params,
    subs: &[Submission],
    pairs: &[Pair],
    config: &TrainConfig,
) -> TrainReport {
    let threads = if config.threads == 0 {
        ccsa_nn::parallel::default_threads()
    } else {
        config.threads
    };
    let mut optimizer = Adam::new(config.lr);
    let clip = GradClip {
        max_norm: config.clip,
    };
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x7ea1);
    let mut order: Vec<usize> = (0..pairs.len()).collect();
    let mut report = TrainReport {
        epoch_loss: Vec::new(),
        epoch_accuracy: Vec::new(),
    };

    for _epoch in 0..config.epochs {
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0;
        let mut epoch_correct = 0usize;
        let mut epoch_count = 0usize;
        for batch_ixs in order.chunks(config.batch_size.max(1)) {
            let batch: Vec<Pair> = batch_ixs.iter().map(|&i| pairs[i]).collect();
            let shared: &Params = params;
            let mut result = parallel_batch(&batch, threads, |pair| {
                let tape = Tape::new();
                let ctx = Ctx::new(&tape, shared);
                let a = &subs[pair.a].graph;
                let b = &subs[pair.b].graph;
                let logit = model.logit(&ctx, a, b).sum();
                let loss = logit.bce_with_logits(pair.label);
                let loss_value = loss.value().item() as f64;
                let predicted_slower = logit.value().item() >= 0.0;
                let correct = predicted_slower == (pair.label >= 0.5);
                let grads = tape.backward(loss);
                BatchResult {
                    grads: ctx.grads(&grads),
                    loss: loss_value,
                    correct: correct as usize,
                    count: 1,
                }
            });
            epoch_loss += result.loss;
            epoch_correct += result.correct;
            epoch_count += result.count;
            result.grads.scale(1.0 / batch.len().max(1) as f32);
            clip.apply(&mut result.grads);
            optimizer.step(params, &result.grads);
        }
        report
            .epoch_loss
            .push(epoch_loss / epoch_count.max(1) as f64);
        report
            .epoch_accuracy
            .push(epoch_correct as f64 / epoch_count.max(1) as f64);
    }
    report
}

/// Scores `pairs` with a trained model (no parameter updates).
///
/// `subs` must be the submission list the pair indices refer to — which
/// may belong to a *different problem* than the training set (cross-problem
/// generalisation, Figure 3 / Table II).
pub fn evaluate(
    model: &Comparator,
    params: &Params,
    subs: &[Submission],
    pairs: &[Pair],
    threads: usize,
) -> EvalResult {
    let threads = if threads == 0 {
        ccsa_nn::parallel::default_threads()
    } else {
        threads
    };
    // Score in parallel, preserving order via index tagging.
    let indexed: Vec<(usize, Pair)> = pairs.iter().copied().enumerate().collect();
    let scores = std::sync::Mutex::new(vec![(0.0f32, 0.0f32); pairs.len()]);
    parallel_batch(&indexed, threads, |&(ix, pair)| {
        let p = model.predict(params, &subs[pair.a].graph, &subs[pair.b].graph);
        scores.lock().expect("poisoned")[ix] = (p, pair.label);
        BatchResult {
            count: 1,
            ..BatchResult::default()
        }
    });
    let scored = scores.into_inner().expect("poisoned");
    EvalResult::from_scored(scored)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comparator::EncoderConfig;
    use crate::pair::{sample_pairs, split_indices, PairConfig};
    use ccsa_corpus::{CorpusConfig, ProblemDataset, ProblemSpec, ProblemTag};
    use ccsa_nn::treelstm::{Direction, TreeLstmConfig};

    fn tiny_encoder() -> EncoderConfig {
        EncoderConfig::TreeLstm(TreeLstmConfig {
            embed_dim: 8,
            hidden: 8,
            layers: 1,
            direction: Direction::Uni,
            sigmoid_candidate: false,
        })
    }

    #[test]
    fn training_learns_above_chance_and_is_deterministic() {
        let ds =
            ProblemDataset::generate(ProblemSpec::curated(ProblemTag::E), &CorpusConfig::tiny(21))
                .unwrap();
        let subs = &ds.submissions;
        let (train_ix, test_ix) = split_indices(subs.len(), 0.3, 1);
        let pair_cfg = PairConfig {
            max_pairs: 280,
            symmetric: true,
            exclude_self: true,
        };
        let train_pairs = sample_pairs(subs, &train_ix, &pair_cfg, 2);
        let test_pairs = sample_pairs(subs, &test_ix, &pair_cfg, 3);

        let run = |seed: u64| {
            let mut params = Params::new();
            let mut rng = StdRng::seed_from_u64(seed);
            let model = Comparator::new(&tiny_encoder(), &mut params, &mut rng);
            let cfg = TrainConfig {
                epochs: 8,
                batch_size: 16,
                lr: 0.02,
                clip: 5.0,
                threads: 2,
                seed,
            };
            let report = train(&model, &mut params, subs, &train_pairs, &cfg);
            let eval = evaluate(&model, &params, subs, &test_pairs, 2);
            (report, eval)
        };

        let (report, eval) = run(7);
        assert!(
            report.epoch_loss.last().unwrap() < report.epoch_loss.first().unwrap(),
            "loss should fall: {:?}",
            report.epoch_loss
        );
        assert!(
            eval.accuracy > 0.55,
            "tiny model should beat chance on E (got {})",
            eval.accuracy
        );

        let (_report2, eval2) = run(7);
        assert_eq!(eval.accuracy, eval2.accuracy, "same seed must reproduce");
    }

    #[test]
    fn evaluate_preserves_pair_order() {
        let ds =
            ProblemDataset::generate(ProblemSpec::curated(ProblemTag::H), &CorpusConfig::tiny(5))
                .unwrap();
        let subs = &ds.submissions;
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(1);
        let model = Comparator::new(&tiny_encoder(), &mut params, &mut rng);
        let pairs = sample_pairs(
            subs,
            &(0..subs.len()).collect::<Vec<_>>(),
            &PairConfig::default(),
            1,
        );
        let seq = evaluate(&model, &params, subs, &pairs[..10], 1);
        let par = evaluate(&model, &params, subs, &pairs[..10], 4);
        assert_eq!(
            seq.scored, par.scored,
            "thread count must not change results"
        );
        for ((_, label), pair) in seq.scored.iter().zip(&pairs[..10]) {
            assert_eq!(*label, pair.label);
        }
    }
}
