//! Property-based equivalence of the level-fused batched encoders
//! against the per-node sequential path, over randomly generated
//! corpus-style programs.
//!
//! The fused path reorders the computation (cross-tree level matmuls
//! instead of per-node matvecs) but is built to reproduce the sequential
//! accumulation order, so the two must agree to well under the 1e-5
//! budget on every tree, every stacking variant, and every encoder.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use ccsa_cppast::{parse_program, AstGraph};
use ccsa_nn::gcn::{Activation, GcnConfig, GcnEncoder};
use ccsa_nn::param::{Ctx, Params};
use ccsa_nn::treelstm::{Direction, TreeLstmConfig, TreeLstmEncoder};
use ccsa_tensor::Tape;

/// Tolerance the fused path must meet against the sequential one.
const TOL: f32 = 1e-5;

/// A random mini-C++ expression of bounded depth.
fn random_expr(rng: &mut StdRng, depth: usize) -> String {
    if depth == 0 || rng.random_bool(0.4) {
        return match rng.random_range(0u32..4) {
            0 => format!("{}", rng.random_range(0i64..100)),
            1 => "x".to_string(),
            2 => "s".to_string(),
            _ => format!("{}", rng.random_range(0i64..10)),
        };
    }
    let a = random_expr(rng, depth - 1);
    let b = random_expr(rng, depth - 1);
    let op = ["+", "-", "*", "/", "%", "<", ">", "=="][rng.random_range(0usize..8)];
    format!("({a} {op} {b})")
}

/// A random statement; recursion bounded by `depth`.
fn random_stmt(rng: &mut StdRng, depth: usize, out: &mut String) {
    let choice = if depth == 0 {
        rng.random_range(0u32..2)
    } else {
        rng.random_range(0u32..6)
    };
    match choice {
        0 => out.push_str(&format!("s += {};", random_expr(rng, 1))),
        1 => out.push_str(&format!("x = {};", random_expr(rng, 2))),
        2 => {
            let n = rng.random_range(2i64..9);
            out.push_str(&format!("for (int i = 0; i < {n}; i++) {{ "));
            random_stmt(rng, depth - 1, out);
            out.push_str(" }");
        }
        3 => {
            out.push_str(&format!("if ({}) {{ ", random_expr(rng, 1)));
            random_stmt(rng, depth - 1, out);
            if rng.random_bool(0.5) {
                out.push_str(" } else { ");
                random_stmt(rng, depth - 1, out);
            }
            out.push_str(" }");
        }
        4 => {
            out.push_str("while (x < 20) { x++; ");
            random_stmt(rng, depth - 1, out);
            out.push_str(" }");
        }
        _ => {
            out.push_str("{ ");
            random_stmt(rng, depth - 1, out);
            out.push(' ');
            random_stmt(rng, depth - 1, out);
            out.push_str(" }");
        }
    }
}

/// A random parseable program with 1–2 functions and nested control flow.
fn random_program(seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut src = String::new();
    if rng.random_bool(0.4) {
        src.push_str("int helper(int x) { int s = 1; ");
        random_stmt(&mut rng, 2, &mut src);
        src.push_str(" return s; } ");
    }
    src.push_str("int main() { int x = 1; int s = 0; ");
    let stmts = rng.random_range(1usize..4);
    for _ in 0..stmts {
        random_stmt(&mut rng, 3, &mut src);
        src.push(' ');
    }
    src.push_str("return s; }");
    src
}

fn random_batch(seed: u64, batch: usize) -> Vec<AstGraph> {
    (0..batch)
        .map(|k| {
            let src = random_program(seed.wrapping_mul(0x9e37_79b9).wrapping_add(k as u64));
            AstGraph::from_program(
                &parse_program(&src)
                    .unwrap_or_else(|e| panic!("generated source invalid: {e}\n{src}")),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn fused_treelstm_matches_sequential(
        seed in 0u64..1_000_000,
        batch in 1usize..9,
        layers in 1usize..4,
        dir in prop::sample::select(vec![
            Direction::Uni,
            Direction::Bi,
            Direction::Alternating,
        ]),
    ) {
        let graphs = random_batch(seed, batch);
        let refs: Vec<&AstGraph> = graphs.iter().collect();
        let config = TreeLstmConfig {
            embed_dim: 6,
            hidden: 5,
            layers,
            direction: dir,
            sigmoid_candidate: seed % 2 == 0,
        };
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
        let enc = TreeLstmEncoder::new(&config, &mut params, &mut rng);
        let tape = Tape::new();
        let ctx = Ctx::new(&tape, &params);
        let fused = enc.encode_batch(&ctx, &refs);
        let sequential = enc.encode_batch_sequential(&ctx, &refs);
        for (g, (f, s)) in fused.iter().zip(&sequential).enumerate() {
            let diff = f.value().max_abs_diff(&s.value());
            prop_assert!(
                diff <= TOL,
                "graph {g} ({} nodes, {dir} {layers}-layer): diff {diff}",
                graphs[g].node_count(),
            );
        }
    }

    #[test]
    fn fused_gcn_matches_sequential(
        seed in 0u64..1_000_000,
        batch in 1usize..9,
        layers in 1usize..5,
    ) {
        let graphs = random_batch(seed ^ 0x5a5a, batch);
        let refs: Vec<&AstGraph> = graphs.iter().collect();
        let config = GcnConfig {
            embed_dim: 6,
            hidden: 5,
            layers,
            activation: if seed % 2 == 0 { Activation::Relu } else { Activation::Tanh },
        };
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1234);
        let enc = GcnEncoder::new(&config, &mut params, &mut rng);
        let tape = Tape::new();
        let ctx = Ctx::new(&tape, &params);
        let fused = enc.encode_batch(&ctx, &refs);
        let sequential = enc.encode_batch_sequential(&ctx, &refs);
        for (g, (f, s)) in fused.iter().zip(&sequential).enumerate() {
            let diff = f.value().max_abs_diff(&s.value());
            prop_assert!(
                diff <= TOL,
                "graph {g} ({} nodes, {layers}-layer GCN): diff {diff}",
                graphs[g].node_count(),
            );
        }
    }

    #[test]
    fn fused_gradients_match_sequential_gradients(
        seed in 0u64..1_000_000,
        batch in 1usize..5,
    ) {
        // Training through the fused path must see the same loss surface:
        // parameter gradients of Σ tanh(code) agree with the sequential
        // graph's gradients within a small multiple of f32 noise.
        let graphs = random_batch(seed ^ 0x77, batch);
        let refs: Vec<&AstGraph> = graphs.iter().collect();
        let config = TreeLstmConfig {
            embed_dim: 4,
            hidden: 4,
            layers: 2,
            direction: Direction::Alternating,
            sigmoid_candidate: false,
        };
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x99);
        let enc = TreeLstmEncoder::new(&config, &mut params, &mut rng);

        let grads_of = |fused: bool| {
            let tape = Tape::new();
            let ctx = Ctx::new(&tape, &params);
            let codes = if fused {
                enc.encode_batch(&ctx, &refs)
            } else {
                enc.encode_batch_sequential(&ctx, &refs)
            };
            let loss = tape.stack(&codes).tanh().sum();
            let grads = tape.backward(loss);
            ctx.grads(&grads)
        };
        let fused = grads_of(true);
        let sequential = grads_of(false);
        for (name, tensor) in params.iter() {
            // A parameter the loss genuinely does not depend on (e.g. the
            // forget gate of a final downward layer, whose only read node
            // is the parentless root) may be reported as an explicit zero
            // by one path and as absent by the other.
            let zeros = ccsa_tensor::Tensor::zeros(tensor.shape());
            let f = fused.get(name).unwrap_or(&zeros);
            let s = sequential.get(name).unwrap_or(&zeros);
            let diff = f.max_abs_diff(s);
            prop_assert!(diff <= 1e-4, "gradient for {name} diverged by {diff}");
        }
    }
}
