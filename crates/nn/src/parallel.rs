//! Data-parallel gradient accumulation over CPU threads.
//!
//! The paper trained on a Tesla P100; our CPU stand-in shards each
//! mini-batch across `std::thread::scope` workers. Every worker builds its
//! own tapes against the *shared, read-only* parameters
//! ([`Tensor`](ccsa_tensor::Tensor) is `Arc`-backed, so this is cheap) and
//! returns a [`GradStore`]; the shards are summed on the caller's thread.
//! This is synchronous data parallelism — gradients are mathematically
//! identical to a sequential pass, so results stay deterministic for a
//! fixed batch order.

use crate::param::GradStore;

/// Aggregate result of a sharded batch: summed gradients plus summed
/// scalar metrics (loss, #correct, …).
#[derive(Debug, Clone, Default)]
pub struct BatchResult {
    /// Sum of per-example gradients.
    pub grads: GradStore,
    /// Sum of per-example losses.
    pub loss: f64,
    /// Number of correctly classified examples.
    pub correct: usize,
    /// Number of examples processed.
    pub count: usize,
}

impl BatchResult {
    /// Merges another shard into this one.
    pub fn merge(&mut self, other: BatchResult) {
        self.grads.merge(other.grads);
        self.loss += other.loss;
        self.correct += other.correct;
        self.count += other.count;
    }

    /// Mean loss per example (0 when empty).
    pub fn mean_loss(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.loss / self.count as f64
        }
    }

    /// Fraction of examples classified correctly (0 when empty).
    pub fn accuracy(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.correct as f64 / self.count as f64
        }
    }
}

/// Processes `items` with `f` across up to `threads` worker threads,
/// merging the per-shard [`BatchResult`]s.
///
/// `f` must be a pure function of the item (plus captured read-only
/// state): it is called concurrently. With `threads <= 1` everything runs
/// on the caller's thread — handy for debugging.
pub fn parallel_batch<T: Sync>(
    items: &[T],
    threads: usize,
    f: impl Fn(&T) -> BatchResult + Sync,
) -> BatchResult {
    let threads = threads.max(1).min(items.len().max(1));
    if threads <= 1 {
        let mut total = BatchResult::default();
        for item in items {
            total.merge(f(item));
        }
        return total;
    }

    let chunk = items.len().div_ceil(threads);
    let f = &f;
    let shards: Vec<BatchResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|shard| {
                scope.spawn(move || {
                    let mut acc = BatchResult::default();
                    for item in shard {
                        acc.merge(f(item));
                    }
                    acc
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    let mut total = BatchResult::default();
    for shard in shards {
        total.merge(shard);
    }
    total
}

/// Order-preserving parallel map over `items` with up to `threads`
/// workers: the inference-side sibling of [`parallel_batch`]. `f` must be
/// a pure function of the item plus captured read-only state. With
/// `threads <= 1` everything runs on the caller's thread.
pub fn parallel_map<T: Sync, R: Send>(
    items: &[T],
    threads: usize,
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    let threads = threads.max(1).min(items.len().max(1));
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|shard| scope.spawn(move || shard.iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker panicked"))
            .collect()
    })
}

/// A reasonable worker count for this machine (logical CPUs, capped at 8 —
/// gradient summation becomes the bottleneck beyond that).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsa_tensor::Tensor;

    fn item_result(x: &f64) -> BatchResult {
        let mut grads = GradStore::new();
        grads.accumulate("w", &Tensor::from_vec(vec![*x as f32], [1]));
        BatchResult {
            grads,
            loss: *x,
            correct: (*x > 0.0) as usize,
            count: 1,
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let items: Vec<f64> = (0..100).map(|i| (i as f64) / 10.0 - 3.0).collect();
        let seq = parallel_batch(&items, 1, item_result);
        let par = parallel_batch(&items, 4, item_result);
        assert_eq!(seq.count, par.count);
        assert_eq!(seq.correct, par.correct);
        assert!((seq.loss - par.loss).abs() < 1e-9);
        let gs = seq.grads.get("w").unwrap().as_slice()[0];
        let gp = par.grads.get("w").unwrap().as_slice()[0];
        assert!((gs - gp).abs() < 1e-3, "{gs} vs {gp}");
    }

    #[test]
    fn empty_batch() {
        let items: Vec<f64> = Vec::new();
        let r = parallel_batch(&items, 4, item_result);
        assert_eq!(r.count, 0);
        assert_eq!(r.mean_loss(), 0.0);
        assert_eq!(r.accuracy(), 0.0);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..103).collect();
        let seq = parallel_map(&items, 1, |x| x * 3 + 1);
        let par = parallel_map(&items, 5, |x| x * 3 + 1);
        assert_eq!(seq, par);
        assert_eq!(par[10], 31);
        let empty: Vec<u64> = Vec::new();
        assert!(parallel_map(&empty, 4, |x| *x).is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let items = vec![1.0, 2.0];
        let r = parallel_batch(&items, 16, item_result);
        assert_eq!(r.count, 2);
        assert!((r.loss - 3.0).abs() < 1e-9);
    }
}
