//! Weight initialisation.

use rand::rngs::StdRng;
use rand::RngExt;

use ccsa_tensor::Tensor;

/// Xavier/Glorot-uniform initialisation for a `[rows, cols]` weight matrix:
/// `U(−√(6/(rows+cols)), +√(6/(rows+cols)))`.
pub fn xavier(rows: usize, cols: usize, rng: &mut StdRng) -> Tensor {
    let bound = (6.0 / (rows + cols) as f32).sqrt();
    uniform([rows, cols].into(), bound, rng)
}

/// Uniform initialisation in `(−bound, +bound)` — the paper initialises
/// node embeddings randomly and lets training tune them.
pub fn uniform(shape: ccsa_tensor::Shape, bound: f32, rng: &mut StdRng) -> Tensor {
    let data = (0..shape.len())
        .map(|_| rng.random_range(-bound..bound))
        .collect();
    Tensor::from_vec(data, shape)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn xavier_is_bounded_and_seeded() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = xavier(50, 70, &mut rng);
        let bound = (6.0f32 / 120.0).sqrt();
        for &x in w.as_slice() {
            assert!(x.abs() <= bound);
        }
        let w2 = xavier(50, 70, &mut StdRng::seed_from_u64(1));
        assert_eq!(w.as_slice(), w2.as_slice());
    }

    #[test]
    fn uniform_not_degenerate() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = uniform([100].into(), 0.5, &mut rng);
        let mean: f32 = t.as_slice().iter().sum::<f32>() / 100.0;
        assert!(mean.abs() < 0.2, "mean {mean} suspiciously far from 0");
        assert!(t.as_slice().iter().any(|&x| x > 0.0));
        assert!(t.as_slice().iter().any(|&x| x < 0.0));
    }
}
