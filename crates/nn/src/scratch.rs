//! Reusable per-worker encode scratch.
//!
//! A batched encode pass needs a tape (thousands of nodes for a real
//! batch) and several scheduling buffers (per-node level numbers, level
//! bucket lists, flattened kind ids). Building these fresh per batch
//! makes the allocator the steady-state bottleneck once tensor buffers
//! themselves are pooled. [`EncodeScratch`] keeps them alive across
//! batches: the tape spine and every scheduling vector retain their
//! capacity, so a warmed worker re-runs the whole encode with ~0 heap
//! allocations (the residual is the per-op `Arc<Vec<usize>>` index
//! lists the tape ops take ownership of — small, and bounded by the
//! number of ops, not the number of nodes).
//!
//! Each [`EncodePool`] worker owns one `EncodeScratch` for its whole
//! life; training code can keep using plain per-batch tapes.
//!
//! [`EncodePool`]: https://docs.rs/ccsa-serve

use ccsa_tensor::Tape;

/// Reusable scheduling buffers for one batched encode pass.
///
/// All fields are cleared (capacity kept) by [`EncodeScratch::reset`];
/// encoders treat the *contents* as garbage on entry.
#[derive(Debug, Default)]
pub struct SchedBufs {
    /// Flattened node-kind ids across the whole batch.
    pub ids: Vec<u16>,
    /// Per-node level number (height or depth) in global node order.
    pub level: Vec<usize>,
    /// Level buckets: `levels[l]` lists the global node ids at level
    /// `l`. Outer and inner capacities both survive reuse.
    pub levels: Vec<Vec<usize>>,
}

impl SchedBufs {
    /// Clears every buffer, keeping capacity. Inner level buckets are
    /// kept allocated too — a batch with fewer levels than the last one
    /// simply ignores the tail.
    pub fn clear(&mut self) {
        self.ids.clear();
        self.level.clear();
        for bucket in &mut self.levels {
            bucket.clear();
        }
    }
}

/// A worker-owned arena for steady-state batched encoding: one
/// long-lived [`Tape`] plus the scheduling buffers, recycled batch to
/// batch.
///
/// ```
/// use ccsa_nn::EncodeScratch;
///
/// let mut scratch = EncodeScratch::new();
/// let (tape, _sched) = scratch.parts();
/// assert!(tape.is_empty());
/// ```
#[derive(Debug, Default)]
pub struct EncodeScratch {
    tape: Tape,
    sched: SchedBufs,
}

impl EncodeScratch {
    /// An empty scratch; buffers grow to steady-state size over the
    /// first few batches and then stop allocating.
    pub fn new() -> EncodeScratch {
        EncodeScratch::default()
    }

    /// Prepares the scratch for a new batch: resets the tape (dropping
    /// the previous batch's node tensors back into the buffer pool,
    /// keeping the node spine's capacity) and clears the scheduling
    /// buffers. Any `Var` from a previous batch is invalidated.
    pub fn reset(&mut self) {
        self.tape.reset();
        self.sched.clear();
    }

    /// Split access: the tape (shared, for `Ctx`/`Var` recording) and
    /// the scheduling buffers (mutable, for the encoder's level
    /// bookkeeping).
    pub fn parts(&mut self) -> (&Tape, &mut SchedBufs) {
        (&self.tape, &mut self.sched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_keeps_capacity() {
        let mut s = EncodeScratch::new();
        s.sched.ids.extend_from_slice(&[1, 2, 3]);
        s.sched.level.extend_from_slice(&[0, 1, 1]);
        s.sched.levels.push(vec![0]);
        s.sched.levels.push(vec![1, 2]);
        let id_cap = s.sched.ids.capacity();
        let bucket_cap = s.sched.levels[1].capacity();
        s.reset();
        assert!(s.sched.ids.is_empty());
        assert!(s.sched.level.is_empty());
        assert!(s.sched.levels.iter().all(Vec::is_empty));
        assert_eq!(s.sched.ids.capacity(), id_cap);
        assert_eq!(s.sched.levels[1].capacity(), bucket_cap);
    }
}
