//! Parameter storage and per-tape parameter binding.

use std::cell::RefCell;
use std::collections::HashMap;

use ccsa_tensor::{Gradients, Tape, Tensor, Var};

/// A named, ordered collection of model parameters.
///
/// Ordering is deterministic (insertion order), which keeps optimizer state
/// and serialisation stable across runs.
#[derive(Debug, Clone, Default)]
pub struct Params {
    names: Vec<String>,
    tensors: Vec<Tensor>,
    index: HashMap<String, usize>,
}

impl Params {
    /// An empty parameter store.
    pub fn new() -> Params {
        Params::default()
    }

    /// Registers a new parameter.
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken — layer constructors must use
    /// unique prefixes.
    pub fn insert(&mut self, name: impl Into<String>, tensor: Tensor) {
        let name = name.into();
        assert!(
            !self.index.contains_key(&name),
            "duplicate parameter name '{name}'"
        );
        self.index.insert(name.clone(), self.tensors.len());
        self.names.push(name);
        self.tensors.push(tensor);
    }

    /// Number of parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// `true` when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }

    /// Total number of scalar weights.
    pub fn scalar_count(&self) -> usize {
        self.tensors.iter().map(Tensor::len).sum()
    }

    /// Looks a parameter up by name.
    ///
    /// # Panics
    ///
    /// Panics if the parameter does not exist (a construction bug, not a
    /// runtime condition).
    pub fn get(&self, name: &str) -> &Tensor {
        let ix = self.ix(name);
        &self.tensors[ix]
    }

    /// Mutable access by name (used by optimizers).
    ///
    /// # Panics
    ///
    /// Panics if the parameter does not exist.
    pub fn get_mut(&mut self, name: &str) -> &mut Tensor {
        let ix = self.ix(name);
        &mut self.tensors[ix]
    }

    fn ix(&self, name: &str) -> usize {
        *self
            .index
            .get(name)
            .unwrap_or_else(|| panic!("unknown parameter '{name}'"))
    }

    /// Iterates `(name, tensor)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Tensor)> {
        self.names
            .iter()
            .map(String::as_str)
            .zip(self.tensors.iter())
    }

    /// Parameter names in registration order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(String::as_str)
    }

    /// Applies `f` to every tensor (used by optimizers).
    pub fn for_each_mut(&mut self, mut f: impl FnMut(&str, &mut Tensor)) {
        for (name, t) in self.names.iter().zip(self.tensors.iter_mut()) {
            f(name, t);
        }
    }
}

/// Accumulated gradients keyed by parameter name.
#[derive(Debug, Clone, Default)]
pub struct GradStore {
    grads: HashMap<String, Tensor>,
}

impl GradStore {
    /// An empty store.
    pub fn new() -> GradStore {
        GradStore::default()
    }

    /// Adds `delta` into the slot for `name`.
    pub fn accumulate(&mut self, name: &str, delta: &Tensor) {
        match self.grads.get_mut(name) {
            Some(g) => g.axpy(1.0, delta),
            None => {
                self.grads.insert(name.to_string(), delta.clone());
            }
        }
    }

    /// Merges another store into this one (summing shared slots).
    pub fn merge(&mut self, other: GradStore) {
        for (name, g) in other.grads {
            self.accumulate(&name, &g);
        }
    }

    /// Scales every gradient by `s` (e.g. `1 / batch_size`).
    pub fn scale(&mut self, s: f32) {
        for g in self.grads.values_mut() {
            *g = g.scale(s);
        }
    }

    /// The gradient for `name`, if any was recorded.
    pub fn get(&self, name: &str) -> Option<&Tensor> {
        self.grads.get(name)
    }

    /// Number of parameters with gradients.
    pub fn len(&self) -> usize {
        self.grads.len()
    }

    /// `true` when no gradients were recorded.
    pub fn is_empty(&self) -> bool {
        self.grads.is_empty()
    }

    /// Global L2 norm across all gradients.
    pub fn global_norm(&self) -> f32 {
        self.grads
            .values()
            .map(|g| {
                let n = g.norm();
                n * n
            })
            .sum::<f32>()
            .sqrt()
    }
}

/// Binds a [`Params`] store to one [`Tape`], creating at most one leaf
/// [`Var`] per parameter so gradient extraction is unambiguous.
///
/// The tape lifetime `'t` and parameter-store lifetime `'p` are distinct
/// so a short-lived tape can borrow long-lived parameters.
pub struct Ctx<'t, 'p> {
    /// The underlying tape (exposed for non-parameter leaves).
    pub tape: &'t Tape,
    params: &'p Params,
    bound: RefCell<Vec<Option<Var<'t>>>>,
}

impl<'t, 'p> Ctx<'t, 'p> {
    /// Creates a binding context for a forward pass.
    pub fn new(tape: &'t Tape, params: &'p Params) -> Ctx<'t, 'p> {
        Ctx {
            tape,
            params,
            bound: RefCell::new(vec![None; params.len()]),
        }
    }

    /// Creates a context whose parameters are *pre-bound* to the given
    /// variables, in registration order. Used by gradient-checking tests
    /// that need analytic gradients to flow to externally created leaves.
    ///
    /// # Panics
    ///
    /// Panics if `vars.len()` differs from the parameter count.
    pub fn with_bound(tape: &'t Tape, params: &'p Params, vars: &[Var<'t>]) -> Ctx<'t, 'p> {
        assert_eq!(vars.len(), params.len(), "one var per parameter required");
        Ctx {
            tape,
            params,
            bound: RefCell::new(vars.iter().copied().map(Some).collect()),
        }
    }

    /// The leaf variable for parameter `name` (created on first use).
    ///
    /// # Panics
    ///
    /// Panics if the parameter does not exist.
    pub fn param(&self, name: &str) -> Var<'t> {
        let ix = self.params.ix(name);
        if let Some(var) = self.bound.borrow()[ix] {
            return var;
        }
        let var = self.tape.leaf(self.params.tensors[ix].clone());
        self.bound.borrow_mut()[ix] = Some(var);
        var
    }

    /// Extracts parameter gradients from a backward pass into a
    /// [`GradStore`]. Parameters never bound on this tape are skipped.
    pub fn grads(&self, gradients: &Gradients) -> GradStore {
        let mut store = GradStore::new();
        for (ix, slot) in self.bound.borrow().iter().enumerate() {
            if let Some(var) = slot {
                if gradients.contains(*var) {
                    store.accumulate(&self.params.names[ix], &gradients.get(*var));
                }
            }
        }
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut p = Params::new();
        p.insert("w", Tensor::ones([2, 2]));
        p.insert("b", Tensor::zeros([2]));
        assert_eq!(p.len(), 2);
        assert_eq!(p.scalar_count(), 6);
        assert_eq!(p.get("b").len(), 2);
        assert_eq!(p.names().collect::<Vec<_>>(), vec!["w", "b"]);
    }

    #[test]
    #[should_panic(expected = "duplicate parameter")]
    fn duplicate_name_panics() {
        let mut p = Params::new();
        p.insert("w", Tensor::ones([1]));
        p.insert("w", Tensor::ones([1]));
    }

    #[test]
    fn ctx_binds_each_param_once() {
        let mut p = Params::new();
        p.insert("w", Tensor::from_vec(vec![2.0], [1]));
        let tape = Tape::new();
        let ctx = Ctx::new(&tape, &p);
        let a = ctx.param("w");
        let b = ctx.param("w");
        assert_eq!(a.id(), b.id(), "same leaf for repeated binds");
        // loss = w * w → dw = 2w = 4.
        let loss = a.mul(b).sum();
        let grads = tape.backward(loss);
        let store = ctx.grads(&grads);
        assert_eq!(store.get("w").unwrap().as_slice(), &[4.0]);
    }

    #[test]
    fn grad_store_merge_and_scale() {
        let mut a = GradStore::new();
        a.accumulate("w", &Tensor::from_vec(vec![1.0, 2.0], [2]));
        let mut b = GradStore::new();
        b.accumulate("w", &Tensor::from_vec(vec![3.0, 4.0], [2]));
        b.accumulate("v", &Tensor::from_vec(vec![1.0], [1]));
        a.merge(b);
        a.scale(0.5);
        assert_eq!(a.get("w").unwrap().as_slice(), &[2.0, 3.0]);
        assert_eq!(a.get("v").unwrap().as_slice(), &[0.5]);
    }

    #[test]
    fn global_norm() {
        let mut g = GradStore::new();
        g.accumulate("a", &Tensor::from_vec(vec![3.0], [1]));
        g.accumulate("b", &Tensor::from_vec(vec![4.0], [1]));
        assert!((g.global_norm() - 5.0).abs() < 1e-6);
    }
}
