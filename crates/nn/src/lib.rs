//! Neural-network building blocks for CCSA.
//!
//! Implements, on top of [`ccsa_tensor`]'s autograd, every architecture the
//! paper evaluates:
//!
//! * [`layers`] — learnable node-kind [`layers::Embedding`] (§IV-B) and
//!   [`layers::Linear`] maps;
//! * [`treelstm`] — the child-sum tree-LSTM (§III-B, Eq. 4) with the
//!   paper's three multi-layer variants: uni-directional, bi-directional
//!   and alternating (§IV-C, Figure 2); the four gate projections are
//!   fused into single `[4h, d]` / `[4h, h]` parameters so each fused
//!   level runs one matmul per projection instead of four;
//! * [`gcn`] — the graph-convolutional baseline (§V-B);
//! * [`optim`] — SGD and Adam with gradient clipping;
//! * [`parallel`] — scoped-thread data-parallel gradient accumulation
//!   (the CPU stand-in for the paper's P100).
//!
//! # Example
//!
//! ```
//! use ccsa_nn::param::{Ctx, Params};
//! use ccsa_nn::treelstm::{Direction, TreeLstmConfig, TreeLstmEncoder};
//! use ccsa_tensor::Tape;
//! use ccsa_cppast::{parse_program, AstGraph};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let graph = AstGraph::from_program(
//!     &parse_program("int main() { return 2 + 2; }").unwrap(),
//! );
//! let config = TreeLstmConfig { embed_dim: 8, hidden: 8, layers: 1,
//!     direction: Direction::Uni, sigmoid_candidate: false };
//! let mut params = Params::new();
//! let encoder = TreeLstmEncoder::new(&config, &mut params, &mut StdRng::seed_from_u64(0));
//! let tape = Tape::new();
//! let ctx = Ctx::new(&tape, &params);
//! let code_vec = encoder.encode(&ctx, &graph);
//! assert_eq!(code_vec.value().len(), 8);
//! ```

pub mod gcn;
pub mod init;
pub mod layers;
pub mod optim;
pub mod parallel;
pub mod param;
pub mod scratch;
pub mod treelstm;

pub use gcn::{Activation, GcnConfig, GcnEncoder};
pub use layers::{Embedding, Linear};
pub use optim::{Adam, GradClip, Sgd};
pub use param::{Ctx, GradStore, Params};
pub use scratch::{EncodeScratch, SchedBufs};
pub use treelstm::{Direction, TreeLstmConfig, TreeLstmEncoder};

/// Telemetry from a level-fused batched forward pass.
///
/// The fused encoders bucket same-level nodes *across every graph in the
/// batch* and run one matmul per level per gate instead of per-node
/// matvecs. `rows / levels` is therefore the mean number of node rows
/// each fused matmul covered — the width that actually hits the
/// hardware, as opposed to the trees-per-batch count the serving pool
/// reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FusedStats {
    /// Fused level steps executed (one per level per pass per layer).
    pub levels: u64,
    /// Node rows processed across all fused level steps.
    pub rows: u64,
}

impl FusedStats {
    /// Accumulates another pass's counters into this one.
    pub fn merge(&mut self, other: FusedStats) {
        self.levels += other.levels;
        self.rows += other.rows;
    }

    /// Mean node rows per fused level matmul (0 when nothing ran).
    pub fn mean_width(&self) -> f64 {
        if self.levels == 0 {
            0.0
        } else {
            self.rows as f64 / self.levels as f64
        }
    }
}
