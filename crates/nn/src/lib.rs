//! Neural-network building blocks for CCSA.
//!
//! Implements, on top of [`ccsa_tensor`]'s autograd, every architecture the
//! paper evaluates:
//!
//! * [`layers`] — learnable node-kind [`layers::Embedding`] (§IV-B) and
//!   [`layers::Linear`] maps;
//! * [`treelstm`] — the child-sum tree-LSTM (§III-B, Eq. 4) with the
//!   paper's three multi-layer variants: uni-directional, bi-directional
//!   and alternating (§IV-C, Figure 2);
//! * [`gcn`] — the graph-convolutional baseline (§V-B);
//! * [`optim`] — SGD and Adam with gradient clipping;
//! * [`parallel`] — scoped-thread data-parallel gradient accumulation
//!   (the CPU stand-in for the paper's P100).
//!
//! # Example
//!
//! ```
//! use ccsa_nn::param::{Ctx, Params};
//! use ccsa_nn::treelstm::{Direction, TreeLstmConfig, TreeLstmEncoder};
//! use ccsa_tensor::Tape;
//! use ccsa_cppast::{parse_program, AstGraph};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let graph = AstGraph::from_program(
//!     &parse_program("int main() { return 2 + 2; }").unwrap(),
//! );
//! let config = TreeLstmConfig { embed_dim: 8, hidden: 8, layers: 1,
//!     direction: Direction::Uni, sigmoid_candidate: false };
//! let mut params = Params::new();
//! let encoder = TreeLstmEncoder::new(&config, &mut params, &mut StdRng::seed_from_u64(0));
//! let tape = Tape::new();
//! let ctx = Ctx::new(&tape, &params);
//! let code_vec = encoder.encode(&ctx, &graph);
//! assert_eq!(code_vec.value().len(), 8);
//! ```

pub mod gcn;
pub mod init;
pub mod layers;
pub mod optim;
pub mod parallel;
pub mod param;
pub mod treelstm;

pub use gcn::{Activation, GcnConfig, GcnEncoder};
pub use layers::{Embedding, Linear};
pub use optim::{Adam, GradClip, Sgd};
pub use param::{Ctx, GradStore, Params};
pub use treelstm::{Direction, TreeLstmConfig, TreeLstmEncoder};
