//! Graph Convolutional Network baseline (§V-B of the paper).
//!
//! A stack of Kipf–Welling graph convolutions over the *undirected* AST
//! edge set with self-loops: `H^{l+1} = ReLU(Â · H^l · W_lᵀ + b_l)`, where
//! `Â = D^{-1/2}(A+I)D^{-1/2}`. The code vector is the mean of the final
//! node states ("the GCN applies semi-supervised node classification …
//! to help decide the type for the whole AST" — a mean readout over node
//! states, passed to the same classifier as the tree-LSTM).
//!
//! The key contrast the paper draws: GCN layers mix information over
//! *neighbourhoods* symmetrically, discarding the parent/child asymmetry
//! the tree-LSTM exploits — which is why its accuracy tops out lower
//! (68.5 % vs 73 % on the combined dataset).

use std::sync::Arc;

use rand::rngs::StdRng;

use ccsa_cppast::AstGraph;
use ccsa_tensor::{Adjacency, Var};

use crate::layers::{Embedding, Linear};
use crate::param::{Ctx, Params};

/// Per-layer nonlinearity of the GCN.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Activation {
    /// Rectified linear unit (Kipf & Welling's choice; the default).
    Relu,
    /// Hyperbolic tangent — smooth, used by gradient-checking tests and a
    /// common alternative in shallow GCNs.
    Tanh,
}

/// Hyper-parameters of the GCN baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GcnConfig {
    /// Node-embedding dimensionality.
    pub embed_dim: usize,
    /// Hidden width of every convolution layer.
    pub hidden: usize,
    /// Number of stacked graph convolutions (paper sweeps 1–16; Optuna
    /// picked 6).
    pub layers: usize,
    /// Per-layer nonlinearity.
    pub activation: Activation,
}

impl GcnConfig {
    /// The paper's tuned configuration: 6 layers, hidden size 117.
    pub fn paper() -> GcnConfig {
        GcnConfig {
            embed_dim: 120,
            hidden: 117,
            layers: 6,
            activation: Activation::Relu,
        }
    }

    /// A small configuration for tests.
    pub fn small(hidden: usize) -> GcnConfig {
        GcnConfig {
            embed_dim: hidden,
            hidden,
            layers: 2,
            activation: Activation::Relu,
        }
    }
}

/// The GCN encoder: AST → code vector.
#[derive(Debug, Clone)]
pub struct GcnEncoder {
    config: GcnConfig,
    embedding: Embedding,
    convs: Vec<Linear>,
}

impl GcnEncoder {
    /// Registers parameters for the configured stack.
    ///
    /// # Panics
    ///
    /// Panics if `config.layers == 0`.
    pub fn new(config: &GcnConfig, params: &mut Params, rng: &mut StdRng) -> GcnEncoder {
        assert!(config.layers > 0, "encoder needs at least one layer");
        let embedding = Embedding::new(
            "gcn.emb",
            ccsa_cppast::VOCAB_SIZE,
            config.embed_dim,
            params,
            rng,
        );
        let mut convs = Vec::with_capacity(config.layers);
        let mut in_dim = config.embed_dim;
        for l in 0..config.layers {
            convs.push(Linear::new(
                &format!("gcn.l{l}"),
                in_dim,
                config.hidden,
                params,
                rng,
            ));
            in_dim = config.hidden;
        }
        GcnEncoder {
            config: config.clone(),
            embedding,
            convs,
        }
    }

    /// The dimensionality of the produced code vector.
    pub fn output_dim(&self) -> usize {
        self.config.hidden
    }

    /// The configuration this encoder was built with.
    pub fn config(&self) -> &GcnConfig {
        &self.config
    }

    /// Builds the normalised adjacency for an AST (cacheable per tree).
    pub fn adjacency(graph: &AstGraph) -> Arc<Adjacency> {
        Arc::new(Adjacency::normalized_from_edges(
            graph.node_count(),
            &graph.edges(),
        ))
    }

    /// Encodes an AST into its code vector.
    pub fn encode<'t>(&self, ctx: &Ctx<'t, '_>, graph: &AstGraph) -> Var<'t> {
        self.encode_with_adjacency(ctx, graph, GcnEncoder::adjacency(graph))
    }

    /// Batched forward entry point: the whole mini-batch is encoded as
    /// one block-diagonal disjoint-union graph — a single embedding
    /// gather, one fused spmm + linear per layer over every node of
    /// every tree, and a per-graph segment-mean readout. Normalised
    /// adjacency is component-local, so the union is exactly the
    /// block-diagonal of the per-graph operators and the fused result
    /// matches [`GcnEncoder::encode`] row for row.
    pub fn encode_batch<'t>(&self, ctx: &Ctx<'t, '_>, graphs: &[&AstGraph]) -> Vec<Var<'t>> {
        self.encode_batch_with_stats(ctx, graphs).0
    }

    /// The reference per-graph batched path (shared tape, per-graph
    /// spmm). Kept for fused-vs-sequential equivalence tests.
    pub fn encode_batch_sequential<'t>(
        &self,
        ctx: &Ctx<'t, '_>,
        graphs: &[&AstGraph],
    ) -> Vec<Var<'t>> {
        graphs.iter().map(|g| self.encode(ctx, g)).collect()
    }

    /// [`GcnEncoder::encode_batch`] plus fused-width telemetry.
    pub fn encode_batch_with_stats<'t>(
        &self,
        ctx: &Ctx<'t, '_>,
        graphs: &[&AstGraph],
    ) -> (Vec<Var<'t>>, crate::FusedStats) {
        self.encode_batch_with_stats_in(ctx, graphs, &mut crate::SchedBufs::default())
    }

    /// [`GcnEncoder::encode_batch_with_stats`] drawing reusable buffers
    /// from a caller-owned [`crate::SchedBufs`] (the steady-state
    /// serving entry; see [`crate::EncodeScratch`]). The adjacency
    /// matrix is still built per batch — it is structural, not a flat
    /// buffer, and the GCN path is not the serving default.
    pub fn encode_batch_with_stats_in<'t>(
        &self,
        ctx: &Ctx<'t, '_>,
        graphs: &[&AstGraph],
        sched: &mut crate::SchedBufs,
    ) -> (Vec<Var<'t>>, crate::FusedStats) {
        let mut stats = crate::FusedStats::default();
        if graphs.is_empty() {
            return (Vec::new(), stats);
        }
        sched.clear();
        let mut offsets = Vec::with_capacity(graphs.len() + 1);
        let mut edges: Vec<(u32, u32)> = Vec::new();
        let mut total = 0usize;
        for g in graphs {
            offsets.push(total);
            sched
                .ids
                .extend((0..g.node_count() as u32).map(|ix| g.kind_id(ix)));
            edges.extend(
                g.edges()
                    .iter()
                    .map(|&(a, b)| (a + total as u32, b + total as u32)),
            );
            total += g.node_count();
        }
        offsets.push(total);
        let adj = Arc::new(Adjacency::normalized_from_edges(total, &edges));

        let mut h = self.embedding.lookup(ctx, &sched.ids);
        for conv in &self.convs {
            let mixed = ctx.tape.spmm(Arc::clone(&adj), h);
            let pre = conv.forward_rows(ctx, mixed);
            h = match self.config.activation {
                Activation::Relu => pre.relu(),
                Activation::Tanh => pre.tanh(),
            };
            stats.levels += 1;
            stats.rows += total as u64;
        }

        // Per-graph mean readout: segment sums scaled by 1/n_g (a
        // constant leaf — no gradient flows to it).
        let sums = ctx.tape.segment_sum(h, offsets.clone());
        let mut inv = Vec::with_capacity(graphs.len() * self.config.hidden);
        for g in graphs {
            let scale = 1.0 / g.node_count().max(1) as f32;
            inv.extend(std::iter::repeat(scale).take(self.config.hidden));
        }
        let inv = ctx.tape.leaf(ccsa_tensor::Tensor::from_vec(
            inv,
            [graphs.len(), self.config.hidden],
        ));
        let means = sums.mul(inv);
        ((0..graphs.len()).map(|g| means.row(g)).collect(), stats)
    }

    /// Like [`GcnEncoder::encode`] with a precomputed adjacency (avoids
    /// rebuilding Â every epoch for the same tree).
    pub fn encode_with_adjacency<'t>(
        &self,
        ctx: &Ctx<'t, '_>,
        graph: &AstGraph,
        adj: Arc<Adjacency>,
    ) -> Var<'t> {
        let ids: Vec<u16> = (0..graph.node_count() as u32)
            .map(|ix| graph.kind_id(ix))
            .collect();
        let mut h = self.embedding.lookup(ctx, &ids);
        for conv in &self.convs {
            let mixed = ctx.tape.spmm(Arc::clone(&adj), h);
            let pre = conv.forward_rows(ctx, mixed);
            h = match self.config.activation {
                Activation::Relu => pre.relu(),
                Activation::Tanh => pre.tanh(),
            };
        }
        h.mean_rows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsa_cppast::parse_program;
    use ccsa_tensor::Tape;
    use rand::SeedableRng;

    fn graph(src: &str) -> AstGraph {
        AstGraph::from_program(&parse_program(src).unwrap())
    }

    fn encode(config: &GcnConfig, src: &str, seed: u64) -> Vec<f32> {
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let enc = GcnEncoder::new(config, &mut params, &mut rng);
        let tape = Tape::new();
        let ctx = Ctx::new(&tape, &params);
        enc.encode(&ctx, &graph(src)).value().as_slice().to_vec()
    }

    #[test]
    fn output_is_finite_and_sized() {
        for layers in [1, 2, 6] {
            let config = GcnConfig {
                embed_dim: 7,
                hidden: 5,
                layers,
                activation: Activation::Relu,
            };
            let v = encode(&config, "int main() { return 1 + 2; }", 3);
            assert_eq!(v.len(), 5);
            assert!(v.iter().all(|x| x.is_finite()));
        }
    }

    #[test]
    fn distinguishes_structures() {
        let config = GcnConfig::small(6);
        let a = encode(&config, "int main() { return 0; }", 1);
        let b = encode(
            &config,
            "int main() { while (true) { break; } return 0; }",
            1,
        );
        assert_ne!(a, b);
    }

    #[test]
    fn gradients_reach_embedding_and_all_layers() {
        let config = GcnConfig {
            embed_dim: 4,
            hidden: 4,
            layers: 3,
            activation: Activation::Relu,
        };
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(5);
        let enc = GcnEncoder::new(&config, &mut params, &mut rng);
        let tape = Tape::new();
        let ctx = Ctx::new(&tape, &params);
        let g = graph("int main() { int x = 2; return x * x; }");
        let loss = enc.encode(&ctx, &g).sum();
        let grads = tape.backward(loss);
        let store = ctx.grads(&grads);
        // ReLU can zero a row, but with 3 layers every parameter should
        // appear in the graph (gradient present, possibly small).
        for name in params.names() {
            assert!(store.get(name).is_some(), "no gradient for {name}");
        }
    }

    #[test]
    fn gradcheck_whole_gcn() {
        // Checked with the smooth tanh activation: ReLU's kink makes
        // central differences unreliable at f32 precision for the many
        // near-zero pre-activations a freshly initialised net produces.
        let g = graph("int main() { return 1; }");
        let config = GcnConfig {
            embed_dim: 3,
            hidden: 3,
            layers: 2,
            activation: Activation::Tanh,
        };
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(8);
        let enc = GcnEncoder::new(&config, &mut params, &mut rng);
        let tensors: Vec<ccsa_tensor::Tensor> = params.iter().map(|(_, t)| t.clone()).collect();
        let report = ccsa_tensor::grad_check(&tensors, 1e-2, |tape, vars| {
            let ctx = Ctx::with_bound(tape, &params, vars);
            ccsa_tensor::TapeScalar(enc.encode(&ctx, &g).tanh().sum())
        });
        assert!(report.passes(3e-2), "GCN gradient check failed: {report:?}");
    }

    #[test]
    fn fused_batch_matches_sequential() {
        let sources = [
            "int main() { return 1 + 2; }",
            "int main() { int s = 0; for (int i = 0; i < 9; i++) s += i; return s; }",
            "int main() { return 0; }",
        ];
        let graphs: Vec<AstGraph> = sources.iter().map(|s| graph(s)).collect();
        let refs: Vec<&AstGraph> = graphs.iter().collect();
        for activation in [Activation::Relu, Activation::Tanh] {
            let config = GcnConfig {
                embed_dim: 5,
                hidden: 4,
                layers: 3,
                activation,
            };
            let mut params = Params::new();
            let mut rng = StdRng::seed_from_u64(6);
            let enc = GcnEncoder::new(&config, &mut params, &mut rng);
            let tape = Tape::new();
            let ctx = Ctx::new(&tape, &params);
            let (fused, stats) = enc.encode_batch_with_stats(&ctx, &refs);
            let sequential = enc.encode_batch_sequential(&ctx, &refs);
            assert_eq!(stats.levels, 3);
            for (g, (f, s)) in fused.iter().zip(&sequential).enumerate() {
                let diff = f.value().max_abs_diff(&s.value());
                assert!(diff < 1e-6, "graph {g}: fused GCN diverged by {diff}");
            }
        }
    }

    #[test]
    fn fused_batch_gradients_reach_all_parameters() {
        let config = GcnConfig::small(4);
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(7);
        let enc = GcnEncoder::new(&config, &mut params, &mut rng);
        let tape = Tape::new();
        let ctx = Ctx::new(&tape, &params);
        let g1 = graph("int main() { int x = 2; return x * x; }");
        let g2 = graph("int main() { return 1; }");
        let codes = enc.encode_batch(&ctx, &[&g1, &g2]);
        let loss = tape.stack(&codes).sum();
        let grads = tape.backward(loss);
        let store = ctx.grads(&grads);
        for name in params.names() {
            assert!(store.get(name).is_some(), "no fused gradient for {name}");
        }
    }

    #[test]
    fn adjacency_reuse_matches_fresh() {
        let config = GcnConfig::small(4);
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(2);
        let enc = GcnEncoder::new(&config, &mut params, &mut rng);
        let g = graph("int main() { return 3; }");
        let adj = GcnEncoder::adjacency(&g);
        let tape = Tape::new();
        let ctx = Ctx::new(&tape, &params);
        let fresh = enc.encode(&ctx, &g).value();
        let reused = enc.encode_with_adjacency(&ctx, &g, adj).value();
        assert_eq!(fresh.as_slice(), reused.as_slice());
    }
}
