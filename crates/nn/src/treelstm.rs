//! Child-sum tree-LSTM encoders for ASTs (§III-B of the paper).
//!
//! The upward cell implements Eq. (4): per node `j` with children `C(j)`,
//!
//! ```text
//! h̃ = Σ_k h_k
//! i  = σ(W_i x_j + U_i h̃ + b_i)
//! f_k = σ(W_f x_j + U_f h_k + b_f)      (one forget gate per child)
//! o  = σ(W_o x_j + U_o h̃ + b_o)
//! u  = tanh(W_u x_j + U_u h̃ + b_u)
//! c  = i ⊙ u + Σ_k f_k ⊙ c_k
//! h  = o ⊙ tanh(c)
//! ```
//!
//! Three stacked-layer variants follow §IV-C / Figure 2:
//!
//! * [`Direction::Uni`] — upward passes only; layer *l* feeds its per-node
//!   hidden states to layer *l+1*.
//! * [`Direction::Bi`] — each layer runs an independent upward and
//!   downward pass and concatenates the two hidden states per node. The
//!   final layer runs upward only ("the downward pass in the final layer
//!   is not required" — the classifier consumes the root state).
//! * [`Direction::Alternating`] — layers alternate upward, downward,
//!   upward… with half the parameters of `Bi`; the paper's best performer.
//!
//! The downward pass treats the parent as the single "child": the root
//! starts from zero state and every node receives its parent's (h, c) —
//! "the parent node copies its representation to all its children".
//!
//! Note on Eq. (3)/(4): the paper's text writes `u = σ(…)`, while the
//! original Tai et al. formulation uses `tanh`. [`TreeLstmConfig::sigmoid_candidate`]
//! selects the paper-literal variant; the default follows Tai et al.
//!
//! The four gate projections of each cell are stored **fused**: one
//! `[4h, x_dim]` input matrix, one `[4h, h]` hidden matrix and one
//! `[4h]` bias, with gate row blocks ordered by [`GATE_ORDER`]. Both
//! the per-node cell and the level-fused batched pass compute a single
//! pre-activation per projection and split it per gate afterwards —
//! bit-identical to four separate projections, at a quarter of the
//! matmul launches.

use rand::rngs::StdRng;

use ccsa_cppast::AstGraph;
use ccsa_tensor::Var;

use crate::init;
use crate::param::{Ctx, Params};

/// Stacking scheme for multi-layer tree-LSTMs (paper Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Leaf-to-root passes only.
    Uni,
    /// Independent up + down passes per layer, concatenated.
    Bi,
    /// Alternating up/down/up… passes.
    Alternating,
}

impl std::fmt::Display for Direction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Direction::Uni => write!(f, "uni-directional"),
            Direction::Bi => write!(f, "bi-directional"),
            Direction::Alternating => write!(f, "alternating"),
        }
    }
}

/// Hyper-parameters of a tree-LSTM encoder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeLstmConfig {
    /// Node-embedding dimensionality λ (paper: 120).
    pub embed_dim: usize,
    /// Hidden-state size d (paper: 100).
    pub hidden: usize,
    /// Number of stacked layers (paper explores 1–3).
    pub layers: usize,
    /// Stacking scheme.
    pub direction: Direction,
    /// Use the paper-literal `σ` candidate activation instead of Tai
    /// et al.'s `tanh`.
    pub sigmoid_candidate: bool,
}

impl TreeLstmConfig {
    /// The paper's best configuration: 3-layer alternating, d=100, λ=120.
    pub fn paper() -> TreeLstmConfig {
        TreeLstmConfig {
            embed_dim: 120,
            hidden: 100,
            layers: 3,
            direction: Direction::Alternating,
            sigmoid_candidate: false,
        }
    }

    /// A small configuration for tests and quick experiments.
    pub fn small(hidden: usize) -> TreeLstmConfig {
        TreeLstmConfig {
            embed_dim: hidden,
            hidden,
            layers: 1,
            direction: Direction::Uni,
            sigmoid_candidate: false,
        }
    }
}

/// Row-block order of the fused gate tensors: input, output, candidate,
/// forget. The forget block sits last so the i/o/u blocks the child-sum
/// pre-activation needs are one contiguous prefix.
pub const GATE_ORDER: [char; 4] = ['i', 'o', 'u', 'f'];

/// Concatenates four equal-width per-gate matrices (or vectors) into the
/// fused row-block layout of [`GATE_ORDER`]: `[h, d]` parts become
/// `[4h, d]`, `[h]` parts become `[4h]`.
///
/// Exposed so checkpoint migration can fold pre-fusion per-gate tensors
/// into the fused layout bit-exactly.
///
/// # Panics
///
/// Panics if shapes disagree or parts are not all rank 1 or all rank 2.
pub fn fuse_gate_blocks(parts: [&ccsa_tensor::Tensor; 4]) -> ccsa_tensor::Tensor {
    let shape = parts[0].shape();
    let mut data = Vec::with_capacity(shape.len() * 4);
    for p in parts {
        assert_eq!(p.shape(), shape, "gate block shape mismatch");
        data.extend_from_slice(p.as_slice());
    }
    match shape.rank() {
        1 => ccsa_tensor::Tensor::from_vec(data, [4 * shape.len()]),
        2 => ccsa_tensor::Tensor::from_vec(data, [4 * shape.rows(), shape.cols()]),
        _ => panic!("gate blocks must be vectors or matrices, got {shape}"),
    }
}

/// One direction's gate parameters for one layer, fused: the four gate
/// projections live in single tensors (row blocks ordered by
/// [`GATE_ORDER`]) so each level runs one matmul per projection instead
/// of four.
#[derive(Debug, Clone)]
struct CellParams {
    /// `[4h, x_dim]` input projections (W row blocks).
    w: String,
    /// `[4h, h]` hidden projections (U row blocks).
    u: String,
    /// `[4h]` biases (forget block initialised to 1).
    b: String,
}

impl CellParams {
    fn new(
        prefix: &str,
        x_dim: usize,
        hidden: usize,
        params: &mut Params,
        rng: &mut StdRng,
    ) -> CellParams {
        // Draw the per-gate blocks in the historical registration order
        // (w_i, u_i, w_f, u_f, w_o, u_o, w_u, u_u) with per-gate Xavier
        // bounds, so the random stream — and therefore every seeded run
        // and previously trained checkpoint — is bit-identical to the
        // unfused layout.
        let w_i = init::xavier(hidden, x_dim, rng);
        let u_i = init::xavier(hidden, hidden, rng);
        let w_f = init::xavier(hidden, x_dim, rng);
        let u_f = init::xavier(hidden, hidden, rng);
        let w_o = init::xavier(hidden, x_dim, rng);
        let u_o = init::xavier(hidden, hidden, rng);
        let w_u = init::xavier(hidden, x_dim, rng);
        let u_u = init::xavier(hidden, hidden, rng);
        let w = format!("{prefix}.w");
        let u = format!("{prefix}.u");
        let b = format!("{prefix}.b");
        params.insert(&w, fuse_gate_blocks([&w_i, &w_o, &w_u, &w_f]));
        params.insert(&u, fuse_gate_blocks([&u_i, &u_o, &u_u, &u_f]));
        // Positive forget bias (last block): standard LSTM practice,
        // keeps early training from zeroing child states.
        let mut bias = vec![0.0f32; 4 * hidden];
        for v in &mut bias[3 * hidden..] {
            *v = 1.0;
        }
        params.insert(&b, ccsa_tensor::Tensor::from_vec(bias, [4 * hidden]));
        CellParams { w, u, b }
    }

    /// Applies the child-sum cell to one node. `children` supplies the
    /// (h, c) pairs being aggregated — actual children for the upward
    /// pass, the single parent for the downward pass.
    fn step<'t>(
        &self,
        ctx: &Ctx<'t, '_>,
        x: Var<'t>,
        children: &[(Var<'t>, Var<'t>)],
        sigmoid_candidate: bool,
        hidden: usize,
    ) -> (Var<'t>, Var<'t>) {
        let h_sum = if children.is_empty() {
            ctx.tape.zeros([hidden])
        } else {
            let hs: Vec<Var<'t>> = children.iter().map(|&(h, _)| h).collect();
            ctx.tape.add_n(&hs)
        };

        // One fused matvec per projection ([4h, d]·x + b, [4h, h]·h̃),
        // split into the gate blocks afterwards. Per-element arithmetic
        // is identical to four separate gate matvecs, so results match
        // the unfused cell bit-for-bit. The h̃ matvec includes the unused
        // forget block: avoiding it would need a per-node [3h, h] prefix
        // gather that costs more than the h² madds it saves (the fused
        // pass hoists that gather per *pass*, where it does pay off).
        let wxb = ctx.param(&self.w).affine(x, ctx.param(&self.b));
        let pre = wxb.add(ctx.param(&self.u).matvec(h_sum));
        let i = pre.slice_cols(0, hidden).sigmoid();
        let o = pre.slice_cols(hidden, hidden).sigmoid();
        let u_pre = pre.slice_cols(2 * hidden, hidden);
        let u = if sigmoid_candidate {
            u_pre.sigmoid()
        } else {
            u_pre.tanh()
        };

        let mut c = i.mul(u);
        if !children.is_empty() {
            // The forget gate aggregates per child: W_f x + b_f is the
            // fused pre-activation's last block, U_f the last row block
            // of the fused hidden projection.
            let fx = wxb.slice_cols(3 * hidden, hidden);
            let u_f = ctx
                .param(&self.u)
                .index_rows((3 * hidden..4 * hidden).collect::<Vec<usize>>());
            for &(h_k, c_k) in children {
                let f_k = fx.add(u_f.matvec(h_k)).sigmoid();
                c = c.add(f_k.mul(c_k));
            }
        }
        let h = o.mul(c.tanh());
        (h, c)
    }
}

/// The batch's global node numbering: graph `g`'s node `ix` lives at
/// global id `offsets[g] + ix`; `offsets` carries a final end sentinel.
struct BatchLayout<'g> {
    graphs: &'g [&'g AstGraph],
    offsets: Vec<usize>,
}

impl BatchLayout<'_> {
    fn total(&self) -> usize {
        *self.offsets.last().expect("offsets include the end")
    }

    /// The global ids a node aggregates from: its children for the
    /// upward pass, its parent (none for a root) for the downward pass.
    fn incoming(&self, node: usize, up: bool) -> Vec<usize> {
        // The owning graph: the last offset ≤ node.
        let g = self.offsets.partition_point(|&o| o <= node) - 1;
        let base = self.offsets[g];
        let ix = (node - base) as u32;
        let graph = self.graphs[g];
        if up {
            graph
                .children(ix)
                .iter()
                .map(|&c| base + c as usize)
                .collect()
        } else if ix == graph.root() {
            Vec::new()
        } else {
            vec![base + graph.parent(ix) as usize]
        }
    }
}

/// A pass within one layer.
// The variant payloads are name bundles of very different sizes; only a
// handful of LayerKind values exist per encoder, so boxing the large
// variant would add indirection for no measurable win.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
enum LayerKind {
    Up(CellParams),
    Down(CellParams),
    UpDown(CellParams, CellParams),
}

/// A multi-layer child-sum tree-LSTM encoder: AST → code vector.
#[derive(Debug, Clone)]
pub struct TreeLstmEncoder {
    config: TreeLstmConfig,
    embedding: crate::layers::Embedding,
    layers: Vec<LayerKind>,
}

impl TreeLstmEncoder {
    /// Registers all parameters for the configured stack.
    ///
    /// # Panics
    ///
    /// Panics if `config.layers == 0`.
    pub fn new(config: &TreeLstmConfig, params: &mut Params, rng: &mut StdRng) -> TreeLstmEncoder {
        assert!(config.layers > 0, "encoder needs at least one layer");
        let embedding = crate::layers::Embedding::new(
            "tree.emb",
            ccsa_cppast::VOCAB_SIZE,
            config.embed_dim,
            params,
            rng,
        );
        let h = config.hidden;
        let mut layers = Vec::with_capacity(config.layers);
        let mut x_dim = config.embed_dim;
        for l in 0..config.layers {
            let is_last = l + 1 == config.layers;
            let kind = match config.direction {
                Direction::Uni => {
                    let cell = CellParams::new(&format!("tree.l{l}.up"), x_dim, h, params, rng);
                    x_dim = h;
                    LayerKind::Up(cell)
                }
                Direction::Bi => {
                    if is_last {
                        // Final layer: upward only (classifier reads the root).
                        let cell = CellParams::new(&format!("tree.l{l}.up"), x_dim, h, params, rng);
                        x_dim = h;
                        LayerKind::Up(cell)
                    } else {
                        let up = CellParams::new(&format!("tree.l{l}.up"), x_dim, h, params, rng);
                        let down =
                            CellParams::new(&format!("tree.l{l}.down"), x_dim, h, params, rng);
                        x_dim = 2 * h;
                        LayerKind::UpDown(up, down)
                    }
                }
                Direction::Alternating => {
                    if l % 2 == 0 {
                        let cell = CellParams::new(&format!("tree.l{l}.up"), x_dim, h, params, rng);
                        x_dim = h;
                        LayerKind::Up(cell)
                    } else {
                        let cell =
                            CellParams::new(&format!("tree.l{l}.down"), x_dim, h, params, rng);
                        x_dim = h;
                        LayerKind::Down(cell)
                    }
                }
            };
            layers.push(kind);
        }
        TreeLstmEncoder {
            config: config.clone(),
            embedding,
            layers,
        }
    }

    /// The dimensionality of the produced code vector.
    pub fn output_dim(&self) -> usize {
        self.config.hidden
    }

    /// The configuration this encoder was built with.
    pub fn config(&self) -> &TreeLstmConfig {
        &self.config
    }

    /// Batched forward entry point — the serving hot path.
    ///
    /// Level-fused: nodes are bucketed by level *across every graph in
    /// the batch* and each gate runs one `[rows, d] · [d, h]` matmul per
    /// level instead of a matvec per node, so the whole mini-batch
    /// becomes a handful of large tensor ops per tree level. Parameters
    /// are bound once for the batch, and the fused ops all carry
    /// backward passes, so this path is differentiable end to end.
    ///
    /// The per-node path survives as
    /// [`TreeLstmEncoder::encode_batch_sequential`]; the two agree to
    /// f32 equality (the fused ops reproduce the sequential accumulation
    /// order), which the equivalence property tests pin down.
    pub fn encode_batch<'t>(&self, ctx: &Ctx<'t, '_>, graphs: &[&AstGraph]) -> Vec<Var<'t>> {
        self.encode_batch_with_stats(ctx, graphs).0
    }

    /// The reference per-node batched path: every node still runs its own
    /// matvecs, only tape/parameter binding is shared. Kept for
    /// fused-vs-sequential equivalence tests and benchmarks.
    pub fn encode_batch_sequential<'t>(
        &self,
        ctx: &Ctx<'t, '_>,
        graphs: &[&AstGraph],
    ) -> Vec<Var<'t>> {
        graphs.iter().map(|g| self.encode(ctx, g)).collect()
    }

    /// [`TreeLstmEncoder::encode_batch`] plus fused-width telemetry (how
    /// many level matmuls ran and how many node rows they covered).
    pub fn encode_batch_with_stats<'t>(
        &self,
        ctx: &Ctx<'t, '_>,
        graphs: &[&AstGraph],
    ) -> (Vec<Var<'t>>, crate::FusedStats) {
        self.encode_batch_with_stats_in(ctx, graphs, &mut crate::SchedBufs::default())
    }

    /// [`TreeLstmEncoder::encode_batch_with_stats`] drawing its
    /// scheduling buffers from a caller-owned [`crate::SchedBufs`] —
    /// the steady-state serving entry, where a pool worker reuses one
    /// scratch across every batch it ever runs (see
    /// [`crate::EncodeScratch`]).
    pub fn encode_batch_with_stats_in<'t>(
        &self,
        ctx: &Ctx<'t, '_>,
        graphs: &[&AstGraph],
        sched: &mut crate::SchedBufs,
    ) -> (Vec<Var<'t>>, crate::FusedStats) {
        let mut stats = crate::FusedStats::default();
        if graphs.is_empty() {
            return (Vec::new(), stats);
        }
        sched.clear();
        // Global node numbering: graph g's node ix lives at
        // offsets[g] + ix. One embedding gather covers the whole batch.
        let mut offsets = Vec::with_capacity(graphs.len() + 1);
        let mut total = 0usize;
        for g in graphs {
            offsets.push(total);
            total += g.node_count();
            sched
                .ids
                .extend((0..g.node_count() as u32).map(|ix| g.kind_id(ix)));
        }
        offsets.push(total);
        let layout = BatchLayout { graphs, offsets };

        let mut x = self.embedding.lookup(ctx, &sched.ids);
        let mut last = None;
        for layer in &self.layers {
            match layer {
                LayerKind::Up(cell) => {
                    let h = self.fused_pass(ctx, &layout, cell, x, true, &mut stats, sched);
                    last = Some(h);
                    x = h;
                }
                LayerKind::Down(cell) => {
                    let h = self.fused_pass(ctx, &layout, cell, x, false, &mut stats, sched);
                    last = Some(h);
                    x = h;
                }
                LayerKind::UpDown(up, down) => {
                    let hu = self.fused_pass(ctx, &layout, up, x, true, &mut stats, sched);
                    let hd = self.fused_pass(ctx, &layout, down, x, false, &mut stats, sched);
                    last = Some(hu);
                    x = hu.concat_cols(hd);
                }
            }
        }
        // The code vector per graph: its root's hidden state in the final
        // pass (roots sit at each graph's global offset).
        let roots: Vec<usize> = layout.offsets[..graphs.len()].to_vec();
        let root_rows = last.expect("at least one layer").index_rows(roots);
        let codes = (0..graphs.len()).map(|g| root_rows.row(g)).collect();
        (codes, stats)
    }

    /// One level-scheduled pass (upward when `up`, else downward) over
    /// every graph in the batch. `x` is `[N, x_dim]` in global node
    /// order; the result is `[N, hidden]` in the same order.
    #[allow(clippy::too_many_arguments)]
    fn fused_pass<'t>(
        &self,
        ctx: &Ctx<'t, '_>,
        layout: &BatchLayout<'_>,
        cell: &CellParams,
        x: Var<'t>,
        up: bool,
        stats: &mut crate::FusedStats,
        sched: &mut crate::SchedBufs,
    ) -> Var<'t> {
        let total = layout.total();
        let hidden = self.config.hidden;
        // Schedule: upward levels are node heights (leaves first), so a
        // node runs only after all its children; downward levels are
        // depths (roots first), so a node runs only after its parent.
        // The level array and buckets live in the worker scratch —
        // capacity survives across batches.
        let level = &mut sched.level;
        level.clear();
        level.resize(total, 0);
        let mut max_level = 0usize;
        for (g, graph) in layout.graphs.iter().enumerate() {
            let base = layout.offsets[g];
            let n = graph.node_count();
            if up {
                // Children have higher indices than their parent
                // (construction invariant), so a reverse scan sees them
                // first.
                for ix in (0..n).rev() {
                    let mut h = 0usize;
                    for &c in graph.children(ix as u32) {
                        h = h.max(level[base + c as usize] + 1);
                    }
                    level[base + ix] = h;
                    max_level = max_level.max(h);
                }
            } else {
                for ix in 1..n {
                    let d = level[base + graph.parent(ix as u32) as usize] + 1;
                    level[base + ix] = d;
                    max_level = max_level.max(d);
                }
            }
        }
        if sched.levels.len() < max_level + 1 {
            sched.levels.resize_with(max_level + 1, Vec::new);
        }
        for bucket in &mut sched.levels {
            bucket.clear();
        }
        for (node, &l) in level.iter().enumerate().take(total) {
            sched.levels[l].push(node);
        }
        let levels = &sched.levels[..max_level + 1];

        // proc_row[node]: the node's row in processing order (levels are
        // appended as they complete). Each completed level stays its own
        // tensor in `level_h` / `level_c`; child/parent reads gather from
        // the level list directly (`gather_rows_multi`), so deep trees no
        // longer pay the old O(levels · N · h) per-level re-stacking copy.
        let mut proc_row = vec![usize::MAX; total];
        let mut level_h: Vec<Var<'t>> = Vec::new();
        let mut level_c: Vec<Var<'t>> = Vec::new();
        let mut done = 0usize;

        // Bound once per pass: the i/o/u prefix (first 3h rows) of the
        // fused `[4h, h]` hidden projection — the forget block never
        // multiplies h̃, so projecting against the prefix saves a quarter
        // of the level matmul — and the forget block (last h rows) for
        // the per-edge forget gate.
        let u_iou = ctx
            .param(&cell.u)
            .index_rows((0..3 * hidden).collect::<Vec<usize>>());
        let u_f = ctx
            .param(&cell.u)
            .index_rows((3 * hidden..4 * hidden).collect::<Vec<usize>>());

        for sel in levels {
            let width = sel.len();
            let xl = x.index_rows(sel.clone());

            // Aggregated incoming state h̃: the child-sum for the upward
            // pass, the single parent state for the downward pass. The
            // gathered source rows (`hk`) are shared with the forget
            // edges below.
            let mut agg_rows: Vec<usize> = Vec::new();
            let mut agg_offsets: Vec<usize> = Vec::with_capacity(width + 1);
            agg_offsets.push(0);
            for &node in sel {
                for src in layout.incoming(node, up) {
                    debug_assert_ne!(proc_row[src], usize::MAX, "level order violated");
                    agg_rows.push(proc_row[src]);
                }
                agg_offsets.push(agg_rows.len());
            }
            let hk = if agg_rows.is_empty() {
                None
            } else {
                Some(ctx.tape.gather_rows_multi(&level_h, agg_rows.clone()))
            };
            let h_tilde = match hk {
                None => ctx.tape.zeros([width, hidden]),
                Some(hk) => ctx.tape.segment_sum(hk, agg_offsets.clone()),
            };

            // One matmul per projection for all four gates: the fused
            // `[width, d] · [d, 4h]` input projection (+ bias) and the
            // `[width, h] · [h, 3h]` hidden projection (i/o/u prefix),
            // sliced into gate blocks afterwards. Per-element arithmetic
            // matches the per-gate matmuls (and the sequential cell)
            // bit-for-bit.
            let wxb = xl
                .matmul_nt(ctx.param(&cell.w))
                .add_row_broadcast(ctx.param(&cell.b));
            let pre = wxb.slice_cols(0, 3 * hidden).add(h_tilde.matmul_nt(u_iou));
            let i = pre.slice_cols(0, hidden).sigmoid();
            let o = pre.slice_cols(hidden, hidden).sigmoid();
            let u_pre = pre.slice_cols(2 * hidden, hidden);
            let u = if self.config.sigmoid_candidate {
                u_pre.sigmoid()
            } else {
                u_pre.tanh()
            };
            let iu = i.mul(u);

            // Forget edges: one σ(W_f x_j + U_f h_src + b_f) ⊙ c_src per
            // incoming edge, folded into c starting from i⊙u (the same
            // left-to-right association as the sequential cell). The
            // W_f x + b_f part is the fused pre-activation's last block,
            // computed once per node and gathered per edge.
            let c_l = match hk {
                None => iu,
                Some(hk) => {
                    let mut edge_parent: Vec<usize> = Vec::with_capacity(agg_rows.len());
                    for (local, window) in agg_offsets.windows(2).enumerate() {
                        edge_parent.extend(std::iter::repeat(local).take(window[1] - window[0]));
                    }
                    let fx = wxb.slice_cols(3 * hidden, hidden).index_rows(edge_parent);
                    let ck = ctx.tape.gather_rows_multi(&level_c, agg_rows);
                    let f = fx.add(hk.matmul_nt(u_f)).sigmoid();
                    ctx.tape.segment_sum_init(iu, f.mul(ck), agg_offsets)
                }
            };
            let h_l = o.mul(c_l.tanh());

            for (local, &node) in sel.iter().enumerate() {
                proc_row[node] = done + local;
            }
            done += width;
            level_h.push(h_l);
            level_c.push(c_l);
            stats.levels += 1;
            stats.rows += width as u64;
        }

        // Back to global node order for the next layer / root readout.
        let perm: Vec<usize> = proc_row;
        ctx.tape.gather_rows_multi(&level_h, perm)
    }

    /// Encodes an AST into its code vector (the root hidden state of the
    /// final upward pass; for a stack ending in a downward pass, the mean
    /// of leaf-ward states would discard the aggregation the paper relies
    /// on, so the root state of that pass is used as well).
    pub fn encode<'t>(&self, ctx: &Ctx<'t, '_>, graph: &AstGraph) -> Var<'t> {
        let n = graph.node_count();
        let ids: Vec<u16> = (0..n as u32).map(|ix| graph.kind_id(ix)).collect();
        let emb_rows = self.embedding.lookup(ctx, &ids);
        let mut inputs: Vec<Var<'t>> = (0..n).map(|i| emb_rows.row(i)).collect();

        let mut root_h = None;
        for layer in &self.layers {
            match layer {
                LayerKind::Up(cell) => {
                    let (hs, _cs) = self.upward(ctx, graph, cell, &inputs);
                    root_h = Some(hs[graph.root() as usize]);
                    inputs = hs;
                }
                LayerKind::Down(cell) => {
                    let hs = self.downward(ctx, graph, cell, &inputs);
                    root_h = Some(hs[graph.root() as usize]);
                    inputs = hs;
                }
                LayerKind::UpDown(up, down) => {
                    let (up_hs, _) = self.upward(ctx, graph, up, &inputs);
                    let down_hs = self.downward(ctx, graph, down, &inputs);
                    root_h = Some(up_hs[graph.root() as usize]);
                    inputs = up_hs
                        .iter()
                        .zip(&down_hs)
                        .map(|(&u, &d)| ctx.tape.concat(&[u, d]))
                        .collect();
                }
            }
        }
        root_h.expect("at least one layer")
    }

    /// Leaf-to-root pass: children processed before parents.
    fn upward<'t>(
        &self,
        ctx: &Ctx<'t, '_>,
        graph: &AstGraph,
        cell: &CellParams,
        inputs: &[Var<'t>],
    ) -> (Vec<Var<'t>>, Vec<Var<'t>>) {
        let n = graph.node_count();
        let mut hs: Vec<Option<Var<'t>>> = vec![None; n];
        let mut cs: Vec<Option<Var<'t>>> = vec![None; n];
        for ix in graph.post_order() {
            let children: Vec<(Var<'t>, Var<'t>)> = graph
                .children(ix)
                .iter()
                .map(|&c| (hs[c as usize].unwrap(), cs[c as usize].unwrap()))
                .collect();
            let (h, c) = cell.step(
                ctx,
                inputs[ix as usize],
                &children,
                self.config.sigmoid_candidate,
                self.config.hidden,
            );
            hs[ix as usize] = Some(h);
            cs[ix as usize] = Some(c);
        }
        (
            hs.into_iter().map(Option::unwrap).collect(),
            cs.into_iter().map(Option::unwrap).collect(),
        )
    }

    /// Root-to-leaf pass: each node aggregates its parent's state.
    fn downward<'t>(
        &self,
        ctx: &Ctx<'t, '_>,
        graph: &AstGraph,
        cell: &CellParams,
        inputs: &[Var<'t>],
    ) -> Vec<Var<'t>> {
        let n = graph.node_count();
        let mut hs: Vec<Option<Var<'t>>> = vec![None; n];
        let mut cs: Vec<Option<Var<'t>>> = vec![None; n];
        for ix in graph.pre_order() {
            let parents: Vec<(Var<'t>, Var<'t>)> = if ix == graph.root() {
                Vec::new()
            } else {
                let p = graph.parent(ix) as usize;
                vec![(hs[p].unwrap(), cs[p].unwrap())]
            };
            let (h, c) = cell.step(
                ctx,
                inputs[ix as usize],
                &parents,
                self.config.sigmoid_candidate,
                self.config.hidden,
            );
            hs[ix as usize] = Some(h);
            cs[ix as usize] = Some(c);
        }
        hs.into_iter().map(Option::unwrap).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsa_cppast::parse_program;
    use ccsa_tensor::Tape;
    use rand::SeedableRng;

    fn graph(src: &str) -> AstGraph {
        AstGraph::from_program(&parse_program(src).unwrap())
    }

    fn encode_with(config: &TreeLstmConfig, src: &str, seed: u64) -> Vec<f32> {
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let enc = TreeLstmEncoder::new(config, &mut params, &mut rng);
        let tape = Tape::new();
        let ctx = Ctx::new(&tape, &params);
        enc.encode(&ctx, &graph(src)).value().as_slice().to_vec()
    }

    #[test]
    fn all_variants_produce_finite_vectors() {
        for direction in [Direction::Uni, Direction::Bi, Direction::Alternating] {
            for layers in 1..=3 {
                let config = TreeLstmConfig {
                    embed_dim: 6,
                    hidden: 5,
                    layers,
                    direction,
                    sigmoid_candidate: false,
                };
                let v = encode_with(&config, "int main() { return 1 + 2 * 3; }", 7);
                assert_eq!(v.len(), 5, "{direction} {layers}-layer");
                assert!(
                    v.iter().all(|x| x.is_finite()),
                    "{direction} {layers}-layer: {v:?}"
                );
                assert!(
                    v.iter().any(|&x| x != 0.0),
                    "{direction} {layers}-layer all-zero"
                );
            }
        }
    }

    #[test]
    fn different_programs_different_codes() {
        let config = TreeLstmConfig::small(8);
        let a = encode_with(&config, "int main() { return 0; }", 3);
        let b = encode_with(
            &config,
            "int main() { for (int i = 0; i < 9; i++) { } return 0; }",
            3,
        );
        assert_ne!(a, b);
    }

    #[test]
    fn child_order_permutation_invariance() {
        // The child-sum cell aggregates children by sum, so sibling order
        // must not change the root representation. Two functions in
        // different order produce mirrored root children.
        let config = TreeLstmConfig::small(6);
        let a = encode_with(
            &config,
            "int f() { return 1; } int g() { return 2 + 3; } int main() { return 0; }",
            5,
        );
        // Note: same multiset of subtrees under the root, different order.
        let b = encode_with(
            &config,
            "int g() { return 2 + 3; } int f() { return 1; } int main() { return 0; }",
            5,
        );
        for (x, y) in a.iter().zip(&b) {
            assert!(
                (x - y).abs() < 1e-5,
                "child-sum must be order invariant: {a:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn gradients_flow_to_all_parameters() {
        let config = TreeLstmConfig {
            embed_dim: 4,
            hidden: 4,
            layers: 3,
            direction: Direction::Alternating,
            sigmoid_candidate: false,
        };
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(11);
        let enc = TreeLstmEncoder::new(&config, &mut params, &mut rng);
        let tape = Tape::new();
        let ctx = Ctx::new(&tape, &params);
        let g = graph("int main() { int x = 1; while (x < 5) x++; return x; }");
        let loss = enc.encode(&ctx, &g).sum();
        let grads = tape.backward(loss);
        let store = ctx.grads(&grads);
        for name in params.names() {
            assert!(
                store.get(name).is_some(),
                "parameter {name} received no gradient"
            );
        }
    }

    #[test]
    fn gradcheck_whole_encoder() {
        // End-to-end finite-difference check of the full 1-layer encoder —
        // embedding table, all eight gate matrices and four biases — on a
        // real (tiny) AST.
        let g = graph("int main() { return 1; }");
        let config = TreeLstmConfig::small(3);
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(2);
        let enc = TreeLstmEncoder::new(&config, &mut params, &mut rng);
        let tensors: Vec<ccsa_tensor::Tensor> = params.iter().map(|(_, t)| t.clone()).collect();
        let report = ccsa_tensor::grad_check(&tensors, 1e-2, |tape, vars| {
            let ctx = Ctx::with_bound(tape, &params, vars);
            ccsa_tensor::TapeScalar(enc.encode(&ctx, &g).tanh().sum())
        });
        assert!(
            report.passes(3e-2),
            "tree-LSTM gradient check failed: {report:?}"
        );
    }

    #[test]
    fn downward_pass_sees_ancestors() {
        // In an alternating 2-layer stack the second (downward) pass must
        // propagate root information to the leaves: two trees differing
        // only at the root's *other* child produce different per-node
        // states, observable at the root of the down pass.
        let config = TreeLstmConfig {
            embed_dim: 5,
            hidden: 5,
            layers: 2,
            direction: Direction::Alternating,
            sigmoid_candidate: false,
        };
        let a = encode_with(&config, "int main() { return 1; } int f() { return 2; }", 9);
        let b = encode_with(
            &config,
            "int main() { return 1; } int f() { return 2 + 3; }",
            9,
        );
        assert_ne!(a, b);
    }

    #[test]
    fn fused_batch_matches_sequential_all_variants() {
        let sources = [
            "int main() { return 1 + 2 * 3; }",
            "int main() { int s = 0; for (int i = 0; i < 9; i++) s += i; return s; }",
            "int f(int x) { if (x > 0) { return x; } return -x; } int main() { return f(3); }",
            "int main() { return 0; }",
        ];
        let graphs: Vec<AstGraph> = sources.iter().map(|s| graph(s)).collect();
        let refs: Vec<&AstGraph> = graphs.iter().collect();
        for direction in [Direction::Uni, Direction::Bi, Direction::Alternating] {
            for layers in 1..=3 {
                for sigmoid_candidate in [false, true] {
                    let config = TreeLstmConfig {
                        embed_dim: 5,
                        hidden: 4,
                        layers,
                        direction,
                        sigmoid_candidate,
                    };
                    let mut params = Params::new();
                    let mut rng = StdRng::seed_from_u64(13);
                    let enc = TreeLstmEncoder::new(&config, &mut params, &mut rng);
                    let tape = Tape::new();
                    let ctx = Ctx::new(&tape, &params);
                    let (fused, stats) = enc.encode_batch_with_stats(&ctx, &refs);
                    let sequential = enc.encode_batch_sequential(&ctx, &refs);
                    assert!(stats.levels > 0 && stats.rows > 0);
                    for (g, (f, s)) in fused.iter().zip(&sequential).enumerate() {
                        let diff = f.value().max_abs_diff(&s.value());
                        assert!(
                            diff < 1e-6,
                            "{direction} {layers}-layer sc={sigmoid_candidate} graph {g}: \
                             fused diverged by {diff}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fused_batch_gradients_flow_to_all_parameters() {
        let config = TreeLstmConfig {
            embed_dim: 4,
            hidden: 4,
            layers: 3,
            direction: Direction::Alternating,
            sigmoid_candidate: false,
        };
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(21);
        let enc = TreeLstmEncoder::new(&config, &mut params, &mut rng);
        let tape = Tape::new();
        let ctx = Ctx::new(&tape, &params);
        let g1 = graph("int main() { int x = 1; while (x < 5) x++; return x; }");
        let g2 = graph("int main() { return 2; }");
        let codes = enc.encode_batch(&ctx, &[&g1, &g2]);
        let loss = ctx.tape.stack(&codes).sum();
        let grads = tape.backward(loss);
        let store = ctx.grads(&grads);
        for name in params.names() {
            assert!(
                store.get(name).is_some(),
                "parameter {name} received no gradient through the fused path"
            );
        }
    }

    #[test]
    fn gradcheck_fused_batch_encoder() {
        // Finite-difference check of the whole fused path — two graphs on
        // one tape so cross-tree level fusion is actually exercised.
        let g1 = graph("int main() { return 1 + 2; }");
        let g2 = graph("int main() { return 0; }");
        let config = TreeLstmConfig {
            embed_dim: 3,
            hidden: 3,
            layers: 2,
            direction: Direction::Alternating,
            sigmoid_candidate: false,
        };
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(4);
        let enc = TreeLstmEncoder::new(&config, &mut params, &mut rng);
        let tensors: Vec<ccsa_tensor::Tensor> = params.iter().map(|(_, t)| t.clone()).collect();
        let report = ccsa_tensor::grad_check(&tensors, 1e-2, |tape, vars| {
            let ctx = Ctx::with_bound(tape, &params, vars);
            let codes = enc.encode_batch(&ctx, &[&g1, &g2]);
            ccsa_tensor::TapeScalar(tape.stack(&codes).tanh().sum())
        });
        assert!(
            report.passes(3e-2),
            "fused tree-LSTM gradient check failed: {report:?}"
        );
    }

    #[test]
    fn sigmoid_candidate_variant_differs() {
        let mut config = TreeLstmConfig::small(4);
        let a = encode_with(&config, "int main() { return 7; }", 4);
        config.sigmoid_candidate = true;
        let b = encode_with(&config, "int main() { return 7; }", 4);
        assert_ne!(a, b, "candidate activation must change the encoding");
    }
}
