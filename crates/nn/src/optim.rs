//! Optimizers: SGD and Adam, with global-norm gradient clipping.

use std::collections::HashMap;

use ccsa_tensor::Tensor;

use crate::param::{GradStore, Params};

/// Global-norm gradient clipping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradClip {
    /// Maximum allowed global L2 norm.
    pub max_norm: f32,
}

impl GradClip {
    /// Scales all gradients down when their global norm exceeds the limit.
    pub fn apply(&self, grads: &mut GradStore) {
        let norm = grads.global_norm();
        if norm > self.max_norm && norm > 0.0 {
            grads.scale(self.max_norm / norm);
        }
    }
}

/// Plain stochastic gradient descent.
#[derive(Debug, Clone, PartialEq)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// Applies one step: `θ ← θ − lr · g`.
    pub fn step(&mut self, params: &mut Params, grads: &GradStore) {
        params.for_each_mut(|name, tensor| {
            if let Some(g) = grads.get(name) {
                tensor.axpy(-self.lr, g);
            }
        });
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate (paper-era default 1e-3).
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    t: u64,
    m: HashMap<String, Tensor>,
    v: HashMap<String, Tensor>,
}

impl Adam {
    /// Adam with standard hyper-parameters and the given learning rate.
    pub fn new(lr: f32) -> Adam {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: HashMap::new(),
            v: HashMap::new(),
        }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Applies one update step.
    pub fn step(&mut self, params: &mut Params, grads: &GradStore) {
        self.t += 1;
        let t = self.t as f32;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        let (beta1, beta2, lr, eps) = (self.beta1, self.beta2, self.lr, self.eps);
        let m_map = &mut self.m;
        let v_map = &mut self.v;
        params.for_each_mut(|name, tensor| {
            let Some(g) = grads.get(name) else { return };
            let m = m_map
                .entry(name.to_string())
                .or_insert_with(|| Tensor::zeros(g.shape()));
            let v = v_map
                .entry(name.to_string())
                .or_insert_with(|| Tensor::zeros(g.shape()));
            let mm = m.make_mut();
            let gs = g.as_slice();
            for (mi, &gi) in mm.iter_mut().zip(gs) {
                *mi = beta1 * *mi + (1.0 - beta1) * gi;
            }
            let vv = v.make_mut();
            for (vi, &gi) in vv.iter_mut().zip(gs) {
                *vi = beta2 * *vi + (1.0 - beta2) * gi * gi;
            }
            let dst = tensor.make_mut();
            for ((di, &mi), &vi) in dst.iter_mut().zip(mm.iter()).zip(vv.iter()) {
                let m_hat = mi / bc1;
                let v_hat = vi / bc2;
                *di -= lr * m_hat / (v_hat.sqrt() + eps);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_params(x0: f32) -> Params {
        let mut p = Params::new();
        p.insert("x", Tensor::from_vec(vec![x0], [1]));
        p
    }

    fn quadratic_grad(p: &Params) -> GradStore {
        // f(x) = (x − 3)², ∇ = 2(x − 3).
        let x = p.get("x").as_slice()[0];
        let mut g = GradStore::new();
        g.accumulate("x", &Tensor::from_vec(vec![2.0 * (x - 3.0)], [1]));
        g
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut p = quadratic_params(0.0);
        let mut opt = Sgd { lr: 0.1 };
        for _ in 0..100 {
            let g = quadratic_grad(&p);
            opt.step(&mut p, &g);
        }
        assert!((p.get("x").as_slice()[0] - 3.0).abs() < 1e-3);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut p = quadratic_params(-5.0);
        let mut opt = Adam::new(0.3);
        for _ in 0..300 {
            let g = quadratic_grad(&p);
            opt.step(&mut p, &g);
        }
        assert!(
            (p.get("x").as_slice()[0] - 3.0).abs() < 1e-2,
            "x = {:?}",
            p.get("x")
        );
        assert_eq!(opt.steps(), 300);
    }

    #[test]
    fn clip_rescales_large_gradients() {
        let mut g = GradStore::new();
        g.accumulate("a", &Tensor::from_vec(vec![30.0, 40.0], [2]));
        GradClip { max_norm: 5.0 }.apply(&mut g);
        assert!((g.global_norm() - 5.0).abs() < 1e-4);
        // Direction preserved.
        let a = g.get("a").unwrap();
        assert!((a.as_slice()[0] / a.as_slice()[1] - 0.75).abs() < 1e-5);
    }

    #[test]
    fn clip_leaves_small_gradients_alone() {
        let mut g = GradStore::new();
        g.accumulate("a", &Tensor::from_vec(vec![0.3], [1]));
        GradClip { max_norm: 5.0 }.apply(&mut g);
        assert_eq!(g.get("a").unwrap().as_slice(), &[0.3]);
    }

    #[test]
    fn untouched_params_stay_fixed() {
        let mut p = Params::new();
        p.insert("used", Tensor::from_vec(vec![1.0], [1]));
        p.insert("frozen", Tensor::from_vec(vec![9.0], [1]));
        let mut g = GradStore::new();
        g.accumulate("used", &Tensor::from_vec(vec![1.0], [1]));
        Sgd { lr: 0.5 }.step(&mut p, &g);
        assert_eq!(p.get("used").as_slice(), &[0.5]);
        assert_eq!(p.get("frozen").as_slice(), &[9.0]);
    }
}
