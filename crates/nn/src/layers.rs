//! Basic learnable layers: embeddings and linear maps.

use rand::rngs::StdRng;

use ccsa_tensor::Var;

use crate::init;
use crate::param::{Ctx, Params};

/// A learnable embedding table: node-kind ID → λ-dimensional vector.
///
/// This is the paper's §IV-B "embedding lookup structure": randomly
/// initialised, tuned by backpropagation through the scatter-add of
/// [`ccsa_tensor::Tape::gather`].
#[derive(Debug, Clone)]
pub struct Embedding {
    name: String,
    vocab: usize,
    dim: usize,
}

impl Embedding {
    /// Registers a `[vocab, dim]` table under `name`.
    pub fn new(
        name: impl Into<String>,
        vocab: usize,
        dim: usize,
        params: &mut Params,
        rng: &mut StdRng,
    ) -> Embedding {
        let name = name.into();
        params.insert(&name, init::uniform([vocab, dim].into(), 0.25, rng));
        Embedding { name, vocab, dim }
    }

    /// Embedding dimensionality λ.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Looks up rows for `ids`, producing a `[len(ids), dim]` matrix.
    ///
    /// # Panics
    ///
    /// Panics if an id is out of vocabulary range.
    pub fn lookup<'t>(&self, ctx: &Ctx<'t, '_>, ids: &[u16]) -> Var<'t> {
        let table = ctx.param(&self.name);
        let indices: Vec<usize> = ids.iter().map(|&k| k as usize).collect();
        ctx.tape.gather(table, indices)
    }
}

/// A dense affine layer `y = W·x + b`.
#[derive(Debug, Clone)]
pub struct Linear {
    w: String,
    b: String,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Registers `[out, in]` weights and `[out]` bias under `name.w` /
    /// `name.b`.
    pub fn new(
        name: &str,
        in_dim: usize,
        out_dim: usize,
        params: &mut Params,
        rng: &mut StdRng,
    ) -> Linear {
        let w = format!("{name}.w");
        let b = format!("{name}.b");
        params.insert(&w, init::xavier(out_dim, in_dim, rng));
        params.insert(&b, ccsa_tensor::Tensor::zeros([out_dim]));
        Linear {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Applies to a single vector: `[in] → [out]`.
    pub fn forward<'t>(&self, ctx: &Ctx<'t, '_>, x: Var<'t>) -> Var<'t> {
        ctx.param(&self.w).affine(x, ctx.param(&self.b))
    }

    /// Applies to a batch of row vectors: `[n, in] → [n, out]`, computed as
    /// `X·Wᵀ + b` with weights stored `[out, in]`.
    pub fn forward_rows<'t>(&self, ctx: &Ctx<'t, '_>, x: Var<'t>) -> Var<'t> {
        x.matmul_nt(ctx.param(&self.w))
            .add_row_broadcast(ctx.param(&self.b))
    }

    /// Tape-free inference: writes `W·x + b` into `out` through the
    /// dispatched kernels — the same matvec-then-bias-add chain
    /// [`Linear::forward`] records, so the result is bit-identical to
    /// the tape path. No tape, no gradients, and (given a warmed buffer
    /// pool upstream) no allocations: this is the warm-serving
    /// classifier head.
    ///
    /// # Panics
    ///
    /// Panics unless `x.len() == in_dim` and `out.len() == out_dim`.
    pub fn forward_into(&self, params: &Params, x: &[f32], out: &mut [f32]) {
        assert_eq!(x.len(), self.in_dim, "forward_into input width");
        assert_eq!(out.len(), self.out_dim, "forward_into output width");
        let w = params.get(&self.w);
        let b = params.get(&self.b);
        out.fill(0.0);
        (ccsa_tensor::kernels::active().matvec)(w.as_slice(), x, out, self.out_dim, self.in_dim);
        for (o, &bv) in out.iter_mut().zip(b.as_slice()) {
            *o += bv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsa_tensor::{Tape, Tensor};
    use rand::SeedableRng;

    #[test]
    fn embedding_lookup_shapes_and_grads() {
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(3);
        let emb = Embedding::new("emb", 10, 4, &mut params, &mut rng);
        let tape = Tape::new();
        let ctx = Ctx::new(&tape, &params);
        let rows = emb.lookup(&ctx, &[1, 7, 1]);
        assert_eq!(rows.value().shape().dims(), &[3, 4]);
        let grads = tape.backward(rows.sum());
        let store = ctx.grads(&grads);
        let g = store.get("emb").unwrap();
        // Row 1 used twice → gradient 2, row 7 once → 1, others 0.
        assert_eq!(g.at(1, 0), 2.0);
        assert_eq!(g.at(7, 0), 1.0);
        assert_eq!(g.at(0, 0), 0.0);
    }

    #[test]
    fn linear_vector_and_batch_agree() {
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(4);
        let lin = Linear::new("l", 3, 2, &mut params, &mut rng);
        let tape = Tape::new();
        let ctx = Ctx::new(&tape, &params);
        let x = tape.leaf(Tensor::from_vec(vec![0.5, -1.0, 2.0], [3]));
        let single = lin.forward(&ctx, x);
        let batch_in = tape.leaf(Tensor::from_vec(vec![0.5, -1.0, 2.0], [1, 3]));
        let batch = lin.forward_rows(&ctx, batch_in);
        let a = single.value();
        let b = batch.value();
        assert_eq!(a.len(), 2);
        for j in 0..2 {
            assert!((a.as_slice()[j] - b.at(0, j)).abs() < 1e-5);
        }
    }

    #[test]
    fn batched_linear_gradcheck() {
        let mut rng = StdRng::seed_from_u64(5);
        let w = crate::init::xavier(3, 4, &mut rng);
        let b = crate::init::uniform([3].into(), 0.1, &mut rng);
        let x = crate::init::uniform([2, 4].into(), 1.0, &mut rng);
        let report = ccsa_tensor::grad_check(&[w, b, x], 1e-2, |_tape, vars| {
            ccsa_tensor::TapeScalar(
                vars[2]
                    .matmul_nt(vars[0])
                    .add_row_broadcast(vars[1])
                    .tanh()
                    .sum(),
            )
        });
        assert!(report.passes(2e-2), "{report:?}");
    }
}
