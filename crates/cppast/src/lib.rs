//! Mini-C++ frontend: lexer, parser, typed AST and model-facing AST graphs.
//!
//! The original paper generates abstract syntax trees with the ROSE
//! source-to-source compiler and keeps, per translation unit, only the
//! subtrees of function definitions, hung beneath a synthetic root node.
//! This crate reproduces that interface for a realistic subset of C++
//! ("mini-C++"): the control flow, integer/floating arithmetic, `vector`,
//! `string` and stream-I/O constructs that dominate competitive-programming
//! submissions.
//!
//! Pipeline:
//!
//! 1. [`lexer::Lexer`] turns source text into tokens;
//! 2. [`parser::parse_program`] builds a typed [`ast::Program`];
//! 3. [`tree::AstGraph::from_program`] flattens it into the node-kind tree
//!    the models consume (kind IDs from [`vocab::NodeKind`], parent/child
//!    edges, ROSE-style pruning to function definitions);
//! 4. [`printer::print_program`] renders a program back to source text
//!    (used by the corpus generator and round-trip tests).
//!
//! # Example
//!
//! ```
//! use ccsa_cppast::{parse_program, AstGraph};
//!
//! let src = r#"
//!     int main() {
//!         int n;
//!         cin >> n;
//!         long long s = 0;
//!         for (int i = 0; i < n; i++) { s += i; }
//!         cout << s;
//!         return 0;
//!     }
//! "#;
//! let program = parse_program(src)?;
//! let graph = AstGraph::from_program(&program);
//! assert!(graph.node_count() > 10);
//! # Ok::<(), ccsa_cppast::ParseError>(())
//! ```

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod tree;
pub mod vocab;

pub use ast::{BinOp, Decl, Expr, ForInit, Function, Init, Program, Stmt, Type, UnOp};
pub use lexer::{LexError, Lexer, Token, TokenKind};
pub use parser::{parse_program, ParseError};
pub use printer::print_program;
pub use tree::AstGraph;
pub use vocab::{NodeCategory, NodeKind, VOCAB_SIZE};
