//! Flattened, model-facing AST graphs.
//!
//! [`AstGraph`] is the exact interface the paper's pipeline hands to the
//! deep-learning models: "a list of the node IDs and a list of links
//! between nodes". Identifiers and literal *values* are erased — only node
//! *kinds* remain — and, following the paper's ROSE post-processing, only
//! the function-definition subtrees survive, hung as children of a
//! synthetic [`NodeKind::Root`].

use std::sync::OnceLock;

use crate::ast::*;
use crate::vocab::NodeKind;

/// An AST flattened to parallel arrays: per-node kind IDs, children lists
/// and parent links. Node `0` is always the synthetic root.
///
/// # Example
///
/// ```
/// use ccsa_cppast::{parse_program, AstGraph, NodeKind};
///
/// let p = parse_program("int main() { return 0; }")?;
/// let g = AstGraph::from_program(&p);
/// assert_eq!(g.kind(g.root()), NodeKind::Root);
/// assert_eq!(g.kind(g.children(g.root())[0]), NodeKind::FunctionDef);
/// # Ok::<(), ccsa_cppast::ParseError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct AstGraph {
    kinds: Vec<u16>,
    children: Vec<Vec<u32>>,
    parent: Vec<u32>, // parent[root] == root
    /// Memoized [`AstGraph::canonical_hash`] — the serving cache key is
    /// asked for on every request, the structure never changes after
    /// construction, and computing it walks the whole tree.
    hash: OnceLock<u64>,
}

// Equality is structural only: the lazily memoized hash is derived state
// and must not make an un-hashed graph differ from a hashed equal one.
impl PartialEq for AstGraph {
    fn eq(&self, other: &AstGraph) -> bool {
        self.kinds == other.kinds && self.children == other.children && self.parent == other.parent
    }
}

impl Eq for AstGraph {}

impl AstGraph {
    /// Flattens a parsed program, keeping only function-definition subtrees
    /// under a synthetic root (the paper's ROSE pruning step).
    pub fn from_program(program: &Program) -> AstGraph {
        let mut b = Builder {
            g: AstGraph::default(),
        };
        let root = b.push(NodeKind::Root, u32::MAX);
        for func in &program.functions {
            b.function(func, root);
        }
        b.g.parent[root as usize] = root;
        b.g
    }

    /// The synthetic root node (always index 0).
    #[inline]
    pub fn root(&self) -> u32 {
        0
    }

    /// Number of nodes in the graph.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.kinds.len()
    }

    /// The kind of node `ix`.
    ///
    /// # Panics
    ///
    /// Panics if `ix` is out of bounds.
    #[inline]
    pub fn kind(&self, ix: u32) -> NodeKind {
        NodeKind::from_id(self.kinds[ix as usize])
    }

    /// The embedding-table ID of node `ix` — what the models actually read.
    ///
    /// # Panics
    ///
    /// Panics if `ix` is out of bounds.
    #[inline]
    pub fn kind_id(&self, ix: u32) -> u16 {
        self.kinds[ix as usize]
    }

    /// Children of node `ix` in source order.
    ///
    /// # Panics
    ///
    /// Panics if `ix` is out of bounds.
    #[inline]
    pub fn children(&self, ix: u32) -> &[u32] {
        &self.children[ix as usize]
    }

    /// Parent of node `ix`; the root is its own parent.
    ///
    /// # Panics
    ///
    /// Panics if `ix` is out of bounds.
    #[inline]
    pub fn parent(&self, ix: u32) -> u32 {
        self.parent[ix as usize]
    }

    /// `true` if the node has no children.
    #[inline]
    pub fn is_leaf(&self, ix: u32) -> bool {
        self.children[ix as usize].is_empty()
    }

    /// Node indices in post-order (every node appears after all of its
    /// children) — the evaluation order of the upward tree-LSTM pass.
    ///
    /// Because [`AstGraph`] construction appends parents before their
    /// children, the reverse index order is a valid post-order; this method
    /// returns exactly that, making the order deterministic and O(n).
    pub fn post_order(&self) -> Vec<u32> {
        (0..self.node_count() as u32).rev().collect()
    }

    /// Node indices in pre-order (every node appears before its children) —
    /// the evaluation order of the downward tree-LSTM pass.
    pub fn pre_order(&self) -> Vec<u32> {
        (0..self.node_count() as u32).collect()
    }

    /// Undirected edges `(parent, child)` — input to GCN adjacency
    /// construction.
    pub fn edges(&self) -> Vec<(u32, u32)> {
        let mut edges = Vec::with_capacity(self.node_count().saturating_sub(1));
        for (p, kids) in self.children.iter().enumerate() {
            for &c in kids {
                edges.push((p as u32, c));
            }
        }
        edges
    }

    /// Maximum depth of the tree (root = 0).
    pub fn depth(&self) -> usize {
        let mut depth = vec![0usize; self.node_count()];
        let mut max = 0;
        // Parents precede children in index order (construction invariant).
        for ix in 1..self.node_count() {
            depth[ix] = depth[self.parent[ix] as usize] + 1;
            max = max.max(depth[ix]);
        }
        max
    }

    /// A canonical structural hash of the tree: a pure function of node
    /// kinds and parent/child topology, independent of how the graph was
    /// built. Two sources that flatten to the same [`AstGraph`] (e.g.
    /// differing only in identifier names or literal values) hash equal;
    /// any structural difference changes the hash with overwhelming
    /// probability.
    ///
    /// This is the cache key used by the serving engine's embedding cache:
    /// encoders are pure functions of the graph, so equal hashes mean the
    /// latent code can be reused.
    pub fn canonical_hash(&self) -> u64 {
        // Memoized: the first call walks the tree, every later call is a
        // load — the warm serving path computes no hash and allocates
        // nothing.
        *self.hash.get_or_init(|| self.compute_canonical_hash())
    }

    fn compute_canonical_hash(&self) -> u64 {
        // Bottom-up Merkle-style combine (children before parents, which
        // index order guarantees): hash(node) folds the node's kind over
        // its children's hashes in source order.
        const SEED: u64 = 0x9ae1_6a3b_2f90_404f;
        fn mix(mut h: u64, v: u64) -> u64 {
            // SplitMix64-style avalanche of the running state with `v`.
            h ^= v
                .wrapping_add(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(h << 6)
                .wrapping_add(h >> 2);
            h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            h ^ (h >> 27)
        }
        let n = self.node_count();
        let mut hashes = vec![0u64; n];
        for ix in (0..n).rev() {
            let mut h = mix(SEED, self.kinds[ix] as u64 + 1);
            for &c in &self.children[ix] {
                h = mix(h, hashes[c as usize]);
            }
            hashes[ix] = h;
        }
        hashes.first().copied().unwrap_or(SEED)
    }

    /// Per-kind occurrence counts (histogram over the vocabulary).
    pub fn kind_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; crate::vocab::VOCAB_SIZE];
        for &k in &self.kinds {
            hist[k as usize] += 1;
        }
        hist
    }
}

struct Builder {
    g: AstGraph,
}

impl Builder {
    fn push(&mut self, kind: NodeKind, parent: u32) -> u32 {
        let ix = self.g.kinds.len() as u32;
        self.g.kinds.push(kind.id());
        self.g.children.push(Vec::new());
        self.g.parent.push(parent);
        if parent != u32::MAX {
            self.g.children[parent as usize].push(ix);
        }
        ix
    }

    fn ty(&mut self, t: &Type, parent: u32) {
        let kind = match t {
            Type::Int => NodeKind::TypeInt,
            Type::Double => NodeKind::TypeDouble,
            Type::Bool => NodeKind::TypeBool,
            Type::Char => NodeKind::TypeChar,
            Type::Str => NodeKind::TypeString,
            Type::Void => NodeKind::TypeVoid,
            Type::Vec(inner) => {
                let ix = self.push(NodeKind::TypeVector, parent);
                self.ty(inner, ix);
                return;
            }
        };
        self.push(kind, parent);
    }

    fn function(&mut self, func: &Function, parent: u32) {
        let f = self.push(NodeKind::FunctionDef, parent);
        self.ty(&func.ret, f);
        let params = self.push(NodeKind::ParamList, f);
        for (ty, _name) in &func.params {
            let p = self.push(NodeKind::Param, params);
            self.ty(ty, p);
        }
        let body = self.push(NodeKind::Block, f);
        for stmt in &func.body {
            self.stmt(stmt, body);
        }
    }

    fn decl(&mut self, d: &Decl, parent: u32) {
        let ix = self.push(NodeKind::DeclStmt, parent);
        self.ty(&d.ty, ix);
        for declarator in &d.declarators {
            let dn = self.push(NodeKind::Declarator, ix);
            match &declarator.init {
                None => {}
                Some(Init::Expr(e)) => self.expr(e, dn),
                Some(Init::Ctor(args)) => {
                    let c = self.push(NodeKind::CtorInit, dn);
                    for a in args {
                        self.expr(a, c);
                    }
                }
            }
        }
    }

    fn stmt(&mut self, s: &Stmt, parent: u32) {
        match s {
            Stmt::Decl(d) => self.decl(d, parent),
            Stmt::Expr(e) => {
                let ix = self.push(NodeKind::ExprStmt, parent);
                self.expr(e, ix);
            }
            Stmt::If { cond, then, els } => {
                let ix = self.push(NodeKind::IfStmt, parent);
                self.expr(cond, ix);
                self.stmt(then, ix);
                if let Some(els) = els {
                    self.stmt(els, ix);
                }
            }
            Stmt::While { cond, body } => {
                let ix = self.push(NodeKind::WhileStmt, parent);
                self.expr(cond, ix);
                self.stmt(body, ix);
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                let ix = self.push(NodeKind::ForStmt, parent);
                match init {
                    Some(ForInit::Decl(d)) => self.decl(d, ix),
                    Some(ForInit::Expr(e)) => self.expr(e, ix),
                    None => {}
                }
                if let Some(c) = cond {
                    self.expr(c, ix);
                }
                if let Some(st) = step {
                    self.expr(st, ix);
                }
                self.stmt(body, ix);
            }
            Stmt::Return(e) => {
                let ix = self.push(NodeKind::ReturnStmt, parent);
                if let Some(e) = e {
                    self.expr(e, ix);
                }
            }
            Stmt::Break => {
                self.push(NodeKind::BreakStmt, parent);
            }
            Stmt::Continue => {
                self.push(NodeKind::ContinueStmt, parent);
            }
            Stmt::Block(stmts) => {
                let ix = self.push(NodeKind::Block, parent);
                for s in stmts {
                    self.stmt(s, ix);
                }
            }
            Stmt::Empty => {
                self.push(NodeKind::EmptyStmt, parent);
            }
        }
    }

    fn expr(&mut self, e: &Expr, parent: u32) {
        match e {
            Expr::Int(_) => {
                self.push(NodeKind::IntLit, parent);
            }
            Expr::Float(_) => {
                self.push(NodeKind::FloatLit, parent);
            }
            Expr::Bool(_) => {
                self.push(NodeKind::BoolLit, parent);
            }
            Expr::Char(_) => {
                self.push(NodeKind::CharLit, parent);
            }
            Expr::Str(_) => {
                self.push(NodeKind::StrLit, parent);
            }
            Expr::Var(_) => {
                self.push(NodeKind::VarRef, parent);
            }
            Expr::Unary(op, inner) => {
                let kind = match op {
                    UnOp::Neg => NodeKind::NegOp,
                    UnOp::Not => NodeKind::NotOp,
                    UnOp::BitNot => NodeKind::BitNotOp,
                };
                let ix = self.push(kind, parent);
                self.expr(inner, ix);
            }
            Expr::Binary(op, lhs, rhs) => {
                let ix = self.push(binop_kind(*op), parent);
                self.expr(lhs, ix);
                self.expr(rhs, ix);
            }
            Expr::Assign(lhs, rhs) => {
                let ix = self.push(NodeKind::AssignExpr, parent);
                self.expr(lhs, ix);
                self.expr(rhs, ix);
            }
            Expr::CompoundAssign(op, lhs, rhs) => {
                let kind = match op {
                    BinOp::Add => NodeKind::PlusAssignOp,
                    BinOp::Sub => NodeKind::MinusAssignOp,
                    BinOp::Mul => NodeKind::TimesAssignOp,
                    BinOp::Div => NodeKind::DivAssignOp,
                    _ => NodeKind::ModAssignOp,
                };
                let ix = self.push(kind, parent);
                self.expr(lhs, ix);
                self.expr(rhs, ix);
            }
            Expr::IncDec { pre, inc, target } => {
                let kind = match (pre, inc) {
                    (true, true) => NodeKind::PreIncOp,
                    (true, false) => NodeKind::PreDecOp,
                    (false, true) => NodeKind::PostIncOp,
                    (false, false) => NodeKind::PostDecOp,
                };
                let ix = self.push(kind, parent);
                self.expr(target, ix);
            }
            Expr::Index(base, index) => {
                let ix = self.push(NodeKind::IndexExpr, parent);
                self.expr(base, ix);
                self.expr(index, ix);
            }
            Expr::Call(_, args) => {
                let ix = self.push(NodeKind::CallExpr, parent);
                for a in args {
                    self.expr(a, ix);
                }
            }
            Expr::MethodCall(recv, _, args) => {
                let ix = self.push(NodeKind::MethodCallExpr, parent);
                self.expr(recv, ix);
                for a in args {
                    self.expr(a, ix);
                }
            }
            Expr::Ternary(c, a, b) => {
                let ix = self.push(NodeKind::TernaryExpr, parent);
                self.expr(c, ix);
                self.expr(a, ix);
                self.expr(b, ix);
            }
            Expr::Cast(ty, inner) => {
                let ix = self.push(NodeKind::CastExpr, parent);
                self.ty(ty, ix);
                self.expr(inner, ix);
            }
            Expr::StreamIn(targets) => {
                let ix = self.push(NodeKind::StreamInExpr, parent);
                for t in targets {
                    self.expr(t, ix);
                }
            }
            Expr::StreamOut(values) => {
                let ix = self.push(NodeKind::StreamOutExpr, parent);
                for v in values {
                    self.expr(v, ix);
                }
            }
        }
    }
}

fn binop_kind(op: BinOp) -> NodeKind {
    match op {
        BinOp::Add => NodeKind::AddOp,
        BinOp::Sub => NodeKind::SubOp,
        BinOp::Mul => NodeKind::MulOp,
        BinOp::Div => NodeKind::DivOp,
        BinOp::Mod => NodeKind::ModOp,
        BinOp::Eq => NodeKind::EqOp,
        BinOp::Ne => NodeKind::NeOp,
        BinOp::Lt => NodeKind::LtOp,
        BinOp::Gt => NodeKind::GtOp,
        BinOp::Le => NodeKind::LeOp,
        BinOp::Ge => NodeKind::GeOp,
        BinOp::And => NodeKind::AndOp,
        BinOp::Or => NodeKind::OrOp,
        BinOp::BitAnd => NodeKind::BitAndOp,
        BinOp::BitOr => NodeKind::BitOrOp,
        BinOp::BitXor => NodeKind::BitXorOp,
        BinOp::Shl => NodeKind::ShlOp,
        BinOp::Shr => NodeKind::ShrOp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::vocab::NodeKind;

    fn graph(src: &str) -> AstGraph {
        AstGraph::from_program(&parse_program(src).unwrap())
    }

    #[test]
    fn root_holds_function_defs() {
        let g = graph("int f() { return 1; } int main() { return 0; }");
        assert_eq!(g.kind(0), NodeKind::Root);
        let kids = g.children(0);
        assert_eq!(kids.len(), 2);
        for &k in kids {
            assert_eq!(g.kind(k), NodeKind::FunctionDef);
        }
    }

    #[test]
    fn globals_are_pruned() {
        // ROSE-style pruning: only function definitions survive.
        let with_global = graph("long long big(100, 0); int main() { return 0; }");
        let without = graph("int main() { return 0; }");
        assert_eq!(with_global.node_count(), without.node_count());
    }

    #[test]
    fn parents_and_children_are_consistent() {
        let g = graph("int main() { int x = 1 + 2; if (x > 1) { x++; } return x; }");
        for ix in 1..g.node_count() as u32 {
            let p = g.parent(ix);
            assert!(
                g.children(p).contains(&ix),
                "node {ix} missing from parent {p}"
            );
        }
        assert_eq!(g.parent(g.root()), g.root());
    }

    #[test]
    fn post_order_is_children_first() {
        let g = graph("int main() { int x = (1 + 2) * 3; return x; }");
        let order = g.post_order();
        let mut seen = vec![false; g.node_count()];
        for &ix in &order {
            for &c in g.children(ix) {
                assert!(seen[c as usize], "child {c} not visited before parent {ix}");
            }
            seen[ix as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn pre_order_is_parents_first() {
        let g = graph("int main() { while (true) { break; } return 0; }");
        let mut seen = vec![false; g.node_count()];
        for &ix in &g.pre_order() {
            if ix != g.root() {
                assert!(seen[g.parent(ix) as usize]);
            }
            seen[ix as usize] = true;
        }
    }

    #[test]
    fn edges_form_a_tree() {
        let g = graph("int main() { for (int i = 0; i < 3; i++) { cout << i; } return 0; }");
        let edges = g.edges();
        assert_eq!(edges.len(), g.node_count() - 1, "tree must have n-1 edges");
    }

    #[test]
    fn loop_nodes_present() {
        let g = graph("int main() { for (int i = 0; i < 3; i++) { while (false) {} } return 0; }");
        let hist = g.kind_histogram();
        assert_eq!(hist[NodeKind::ForStmt.id() as usize], 1);
        assert_eq!(hist[NodeKind::WhileStmt.id() as usize], 1);
    }

    #[test]
    fn identifiers_are_erased() {
        // Two programs differing only in names flatten identically.
        let a = graph("int main() { int alpha = 3; return alpha; }");
        let b = graph("int main() { int beta = 7; return beta; }");
        assert_eq!(a, b);
    }

    #[test]
    fn structure_differences_are_visible() {
        let flat = graph("int main() { int s = 0; for (int i = 0; i < 9; i++) s += i; return s; }");
        let nested = graph(
            "int main() { int s = 0; for (int i = 0; i < 9; i++) \
             for (int j = 0; j < 9; j++) s += j; return s; }",
        );
        assert_ne!(flat, nested);
        assert!(nested.node_count() > flat.node_count());
        assert!(nested.depth() > flat.depth());
    }

    #[test]
    fn canonical_hash_ignores_names_and_values_but_sees_structure() {
        // Same structure, different identifiers/literals → same graph,
        // same hash.
        let a = graph("int main() { int alpha = 3; return alpha; }");
        let b = graph("int main() { int beta = 7; return beta; }");
        assert_eq!(a.canonical_hash(), b.canonical_hash());

        // Structural changes move the hash.
        let c = graph("int main() { int alpha = 3; return alpha + 1; }");
        assert_ne!(a.canonical_hash(), c.canonical_hash());

        // Child order matters (it changes evaluation order).
        let d = graph("int main() { return 1 / 2; }");
        let e = graph("int main() { return 2 / 1; }");
        // Literal *values* are erased, so these hash equal…
        assert_eq!(d.canonical_hash(), e.canonical_hash());
        // …but operator asymmetry is visible.
        let f = graph("int main() { return 1 - (2 / 3); }");
        let g = graph("int main() { return (1 - 2) / 3; }");
        assert_ne!(f.canonical_hash(), g.canonical_hash());
    }

    #[test]
    fn canonical_hash_is_stable_across_reparses() {
        let src = "int main() { int s = 0; for (int i = 0; i < 9; i++) s += i; return s; }";
        let h1 = graph(src).canonical_hash();
        let h2 = graph(src).canonical_hash();
        assert_eq!(h1, h2);
    }

    #[test]
    fn depth_of_trivial_program() {
        let g = graph("int main() { return 0; }");
        // Root → FunctionDef → Block → ReturnStmt → IntLit.
        assert_eq!(g.depth(), 4);
    }
}
