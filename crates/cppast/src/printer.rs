//! Source emission for mini-C++ programs.
//!
//! The corpus generator composes programs as typed ASTs and uses this
//! printer to materialise "submissions" as source text, which then flows
//! through the lexer/parser exactly like real user code would. The
//! printer/parser pair round-trips: `parse(print(p)) == p` up to the
//! normalisations noted on [`print_program`].

use std::fmt::Write as _;

use crate::ast::*;

/// Renders a program as compilable-looking C++ source.
///
/// Normalisations (deliberate; they make round-trip equality exact):
/// all integer types print as `long long`, parentheses follow the
/// precedence table rather than the original token stream, and blocks are
/// re-indented.
pub fn print_program(program: &Program) -> String {
    let mut out = String::new();
    for line in &program.preprocessor {
        let _ = writeln!(out, "#{line}");
    }
    if program.preprocessor.is_empty() {
        out.push_str("#include <bits/stdc++.h>\n");
    }
    out.push_str("using namespace std;\n\n");
    for decl in &program.globals {
        print_decl(&mut out, decl, 0);
    }
    if !program.globals.is_empty() {
        out.push('\n');
    }
    for (i, func) in program.functions.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        print_function(&mut out, func);
    }
    out
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn print_function(out: &mut String, func: &Function) {
    // `int main()` by convention; all other integer returns widen to
    // `long long` like every other integer in the corpus.
    if func.name == "main" && func.ret == Type::Int {
        let _ = write!(out, "int {}(", func.name);
    } else {
        let _ = write!(out, "{} {}(", func.ret, func.name);
    }
    for (i, (ty, name)) in func.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        // Vectors pass by reference: matches both common contest style and
        // the interpreter's aliasing semantics for containers.
        match ty {
            Type::Vec(_) => {
                let _ = write!(out, "{ty}& {name}");
            }
            _ => {
                let _ = write!(out, "{ty} {name}");
            }
        }
    }
    out.push_str(") {\n");
    for stmt in &func.body {
        print_stmt(out, stmt, 1);
    }
    out.push_str("}\n");
}

fn print_decl(out: &mut String, decl: &Decl, level: usize) {
    indent(out, level);
    let _ = write!(out, "{} ", decl.ty);
    for (i, d) in decl.declarators.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&d.name);
        match &d.init {
            None => {}
            Some(Init::Expr(e)) => {
                out.push_str(" = ");
                print_expr(out, e, 0);
            }
            Some(Init::Ctor(args)) => {
                out.push('(');
                for (j, a) in args.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    print_expr(out, a, 0);
                }
                out.push(')');
            }
        }
    }
    out.push_str(";\n");
}

fn print_stmt(out: &mut String, stmt: &Stmt, level: usize) {
    match stmt {
        Stmt::Decl(d) => print_decl(out, d, level),
        Stmt::Expr(e) => {
            indent(out, level);
            print_expr(out, e, 0);
            out.push_str(";\n");
        }
        Stmt::If { cond, then, els } => {
            indent(out, level);
            out.push_str("if (");
            print_expr(out, cond, 0);
            out.push(')');
            print_branch(out, then, level);
            if let Some(els) = els {
                indent(out, level);
                out.push_str("else");
                print_branch(out, els, level);
            }
        }
        Stmt::While { cond, body } => {
            indent(out, level);
            out.push_str("while (");
            print_expr(out, cond, 0);
            out.push(')');
            print_branch(out, body, level);
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            indent(out, level);
            out.push_str("for (");
            match init {
                Some(ForInit::Decl(d)) => {
                    let mut tmp = String::new();
                    print_decl(&mut tmp, d, 0);
                    // Strip trailing newline; keep the ';'.
                    out.push_str(tmp.trim_end());
                }
                Some(ForInit::Expr(e)) => {
                    print_expr(out, e, 0);
                    out.push(';');
                }
                None => out.push(';'),
            }
            out.push(' ');
            if let Some(c) = cond {
                print_expr(out, c, 0);
            }
            out.push_str("; ");
            if let Some(s) = step {
                print_expr(out, s, 0);
            }
            out.push(')');
            print_branch(out, body, level);
        }
        Stmt::Return(e) => {
            indent(out, level);
            out.push_str("return");
            if let Some(e) = e {
                out.push(' ');
                print_expr(out, e, 0);
            }
            out.push_str(";\n");
        }
        Stmt::Break => {
            indent(out, level);
            out.push_str("break;\n");
        }
        Stmt::Continue => {
            indent(out, level);
            out.push_str("continue;\n");
        }
        Stmt::Block(stmts) => {
            indent(out, level);
            out.push_str("{\n");
            for s in stmts {
                print_stmt(out, s, level + 1);
            }
            indent(out, level);
            out.push_str("}\n");
        }
        Stmt::Empty => {
            indent(out, level);
            out.push_str(";\n");
        }
    }
}

fn print_branch(out: &mut String, body: &Stmt, level: usize) {
    match body {
        Stmt::Block(stmts) => {
            out.push_str(" {\n");
            for s in stmts {
                print_stmt(out, s, level + 1);
            }
            indent(out, level);
            out.push_str("}\n");
        }
        other => {
            out.push('\n');
            print_stmt(out, other, level + 1);
        }
    }
}

/// Prints `expr`, parenthesising when the context binds tighter than
/// `min_prec` (the same precedence table the parser climbs).
fn print_expr(out: &mut String, expr: &Expr, min_prec: u8) {
    match expr {
        Expr::Int(v) => {
            let _ = write!(out, "{v}");
        }
        Expr::Float(v) => {
            if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                let _ = write!(out, "{v:.1}");
            } else {
                let _ = write!(out, "{v}");
            }
        }
        Expr::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Expr::Char(c) => {
            let escaped = match c {
                '\n' => "\\n".to_string(),
                '\t' => "\\t".to_string(),
                '\r' => "\\r".to_string(),
                '\\' => "\\\\".to_string(),
                '\'' => "\\'".to_string(),
                other => other.to_string(),
            };
            let _ = write!(out, "'{escaped}'");
        }
        Expr::Str(s) => {
            out.push('"');
            for c in s.chars() {
                match c {
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    '\r' => out.push_str("\\r"),
                    '\\' => out.push_str("\\\\"),
                    '"' => out.push_str("\\\""),
                    other => out.push(other),
                }
            }
            out.push('"');
        }
        Expr::Var(name) => out.push_str(name),
        Expr::Unary(op, inner) => {
            out.push_str(op.symbol());
            print_expr_paren(out, inner, 11);
        }
        Expr::Binary(op, lhs, rhs) => {
            let prec = op.precedence();
            let need = prec < min_prec;
            if need {
                out.push('(');
            }
            print_expr(out, lhs, prec);
            let _ = write!(out, " {} ", op.symbol());
            print_expr(out, rhs, prec + 1);
            if need {
                out.push(')');
            }
        }
        Expr::Assign(lhs, rhs) => {
            if min_prec > 0 {
                out.push('(');
            }
            print_expr(out, lhs, 11);
            out.push_str(" = ");
            print_expr(out, rhs, 0);
            if min_prec > 0 {
                out.push(')');
            }
        }
        Expr::CompoundAssign(op, lhs, rhs) => {
            if min_prec > 0 {
                out.push('(');
            }
            print_expr(out, lhs, 11);
            let _ = write!(out, " {}= ", op.symbol());
            print_expr(out, rhs, 0);
            if min_prec > 0 {
                out.push(')');
            }
        }
        Expr::IncDec { pre, inc, target } => {
            let sym = if *inc { "++" } else { "--" };
            if *pre {
                out.push_str(sym);
                print_expr_paren(out, target, 11);
            } else {
                print_expr_paren(out, target, 11);
                out.push_str(sym);
            }
        }
        Expr::Index(base, ix) => {
            print_expr_paren(out, base, 11);
            out.push('[');
            print_expr(out, ix, 0);
            out.push(']');
        }
        Expr::Call(name, args) => {
            out.push_str(name);
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                print_expr(out, a, 0);
            }
            out.push(')');
        }
        Expr::MethodCall(recv, name, args) => {
            print_expr_paren(out, recv, 11);
            let _ = write!(out, ".{name}(");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                print_expr(out, a, 0);
            }
            out.push(')');
        }
        Expr::Ternary(c, a, b) => {
            if min_prec > 0 {
                out.push('(');
            }
            print_expr(out, c, 1);
            out.push_str(" ? ");
            print_expr(out, a, 0);
            out.push_str(" : ");
            print_expr(out, b, 0);
            if min_prec > 0 {
                out.push(')');
            }
        }
        Expr::Cast(ty, inner) => {
            let _ = write!(out, "({ty})");
            print_expr_paren(out, inner, 11);
        }
        Expr::StreamIn(targets) => {
            out.push_str("cin");
            for t in targets {
                out.push_str(" >> ");
                print_expr_paren(out, t, 11);
            }
        }
        Expr::StreamOut(values) => {
            out.push_str("cout");
            for v in values {
                out.push_str(" << ");
                print_expr(out, v, BinOp::Add.precedence());
            }
        }
    }
}

/// Prints with parentheses unless the node is atomic (primary/postfix).
fn print_expr_paren(out: &mut String, expr: &Expr, min_prec: u8) {
    let atomic = matches!(
        expr,
        Expr::Int(_)
            | Expr::Float(_)
            | Expr::Bool(_)
            | Expr::Char(_)
            | Expr::Str(_)
            | Expr::Var(_)
            | Expr::Call(_, _)
            | Expr::MethodCall(_, _, _)
            | Expr::Index(_, _)
    );
    let _ = min_prec; // parenthesised sub-expressions restart at precedence 0
    if atomic {
        print_expr(out, expr, 0);
    } else {
        out.push('(');
        print_expr(out, expr, 0);
        out.push(')');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn roundtrip(src: &str) -> Program {
        let p1 = parse_program(src).expect("first parse");
        let printed = print_program(&p1);
        let p2 = parse_program(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n--- printed ---\n{printed}"));
        assert_eq!(
            p1.functions, p2.functions,
            "round-trip mismatch:\n{printed}"
        );
        p1
    }

    #[test]
    fn roundtrip_quickstart() {
        roundtrip(
            "int main() { int n; cin >> n; long long s = 0; \
             for (int i = 0; i < n; i++) { s += i; } cout << s; return 0; }",
        );
    }

    #[test]
    fn roundtrip_precedence_preserved() {
        roundtrip("int main() { int x = (1 + 2) * (3 - 4) / 5 % 6; return x; }");
        roundtrip("int main() { bool b = 1 < 2 && 3 >= 4 || !(5 == 6); return b; }");
        roundtrip("int main() { int x = 1 + 2 * 3 - 4 / 2; return x; }");
    }

    #[test]
    fn roundtrip_control_flow() {
        roundtrip(
            "int main() { int i = 0; while (i < 10) { if (i % 2) i++; else { i += 3; } } \
             for (;;) { break; } return i; }",
        );
    }

    #[test]
    fn roundtrip_vectors_and_methods() {
        roundtrip(
            "int main() { vector<long long> v(10, 0); v.push_back(1); \
             vector<vector<long long>> g(5); long long n = v.size(); return n; }",
        );
    }

    #[test]
    fn roundtrip_functions_recursion() {
        roundtrip(
            "long long f(long long n) { if (n < 2) return n; return f(n - 1) + f(n - 2); } \
             int main() { cout << f(20) << endl; return 0; }",
        );
    }

    #[test]
    fn roundtrip_ternary_cast_unary() {
        roundtrip(
            "int main() { double d = 3.5; long long x = (long long)d; \
             long long y = x > 0 ? x : -x; return (y + 1) % 7; }",
        );
    }

    #[test]
    fn roundtrip_strings_chars() {
        roundtrip(
            "int main() { string s = \"ab\\ncd\"; char c = '\\t'; \
             long long n = s.length(); cout << s << c; return n; }",
        );
    }

    #[test]
    fn roundtrip_globals() {
        roundtrip("long long memo(128, 0); int main() { return 0; }");
    }

    #[test]
    fn printed_source_is_plausible_cpp() {
        let p = parse_program("int main() { int n; cin >> n; cout << n * 2; return 0; }").unwrap();
        let s = print_program(&p);
        assert!(s.contains("#include"));
        assert!(s.contains("using namespace std;"));
        assert!(s.contains("long long") || s.contains("int"));
    }
}
