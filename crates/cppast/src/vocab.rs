//! The node-kind vocabulary shared by every AST in the corpus.
//!
//! The paper assigns "a unique ID to each type of internal node (e.g. `for`,
//! `while`), consistent across all trees in the database"; the embedding
//! table is indexed by these IDs. [`NodeKind`] is that vocabulary. Each kind
//! also carries a [`NodeCategory`] matching the colour classes of the
//! paper's Figure 7 (operations, other expressions, statements, literals,
//! support nodes).

use std::fmt;

macro_rules! node_kinds {
    ($( $variant:ident => $category:ident ),+ $(,)?) => {
        /// The kind of an AST node — the unit of the learned embedding
        /// vocabulary.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        #[repr(u16)]
        pub enum NodeKind {
            $( #[allow(missing_docs)] $variant ),+
        }

        /// Number of distinct node kinds (the embedding-table height `D`).
        pub const VOCAB_SIZE: usize = [$( NodeKind::$variant ),+].len();

        impl NodeKind {
            /// All node kinds in ID order.
            pub const ALL: [NodeKind; VOCAB_SIZE] = [$( NodeKind::$variant ),+];

            /// The stable integer ID used to index embedding tables.
            #[inline]
            pub fn id(self) -> u16 {
                self as u16
            }

            /// Recovers a kind from its ID.
            ///
            /// # Panics
            ///
            /// Panics if `id >= VOCAB_SIZE`.
            pub fn from_id(id: u16) -> NodeKind {
                Self::ALL[id as usize]
            }

            /// The Figure-7 colour category of this kind.
            pub fn category(self) -> NodeCategory {
                match self {
                    $( NodeKind::$variant => NodeCategory::$category ),+
                }
            }
        }
    };
}

node_kinds! {
    // ── Support nodes (black in Fig. 7) ────────────────────────────────
    Root => Support,
    FunctionDef => Support,
    ParamList => Support,
    Param => Support,
    TypeInt => Support,
    TypeDouble => Support,
    TypeBool => Support,
    TypeChar => Support,
    TypeString => Support,
    TypeVoid => Support,
    TypeVector => Support,
    Declarator => Support,
    CtorInit => Support,

    // ── Statements (blue) ──────────────────────────────────────────────
    Block => Statement,
    DeclStmt => Statement,
    ExprStmt => Statement,
    IfStmt => Statement,
    WhileStmt => Statement,
    ForStmt => Statement,
    ReturnStmt => Statement,
    BreakStmt => Statement,
    ContinueStmt => Statement,
    EmptyStmt => Statement,

    // ── Other expressions (red) ────────────────────────────────────────
    VarRef => Expression,
    CallExpr => Expression,
    MethodCallExpr => Expression,
    IndexExpr => Expression,
    AssignExpr => Expression,
    TernaryExpr => Expression,
    CastExpr => Expression,
    StreamInExpr => Expression,
    StreamOutExpr => Expression,

    // ── Operations (green) ─────────────────────────────────────────────
    AddOp => Operation,
    SubOp => Operation,
    MulOp => Operation,
    DivOp => Operation,
    ModOp => Operation,
    EqOp => Operation,
    NeOp => Operation,
    LtOp => Operation,
    GtOp => Operation,
    LeOp => Operation,
    GeOp => Operation,
    AndOp => Operation,
    OrOp => Operation,
    NotOp => Operation,
    NegOp => Operation,
    BitNotOp => Operation,
    BitAndOp => Operation,
    BitOrOp => Operation,
    BitXorOp => Operation,
    ShlOp => Operation,
    ShrOp => Operation,
    PlusAssignOp => Operation,
    MinusAssignOp => Operation,
    TimesAssignOp => Operation,
    DivAssignOp => Operation,
    ModAssignOp => Operation,
    PreIncOp => Operation,
    PreDecOp => Operation,
    PostIncOp => Operation,
    PostDecOp => Operation,

    // ── Literals (yellow) ──────────────────────────────────────────────
    IntLit => Literal,
    FloatLit => Literal,
    BoolLit => Literal,
    CharLit => Literal,
    StrLit => Literal,
}

/// The coarse family of a node kind — the colour classes the paper uses
/// when visualising learned node embeddings (Figure 7a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeCategory {
    /// Arithmetic / logical / assignment operators (green).
    Operation,
    /// Non-operator expressions (red).
    Expression,
    /// Statements (blue).
    Statement,
    /// Literal values (yellow).
    Literal,
    /// Structural support nodes: root, functions, types (black).
    Support,
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

impl fmt::Display for NodeCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip() {
        for kind in NodeKind::ALL {
            assert_eq!(NodeKind::from_id(kind.id()), kind);
        }
    }

    #[test]
    fn ids_are_dense_and_unique() {
        for (i, kind) in NodeKind::ALL.iter().enumerate() {
            assert_eq!(kind.id() as usize, i);
        }
    }

    #[test]
    fn vocab_has_all_five_categories() {
        use NodeCategory::*;
        for cat in [Operation, Expression, Statement, Literal, Support] {
            assert!(
                NodeKind::ALL.iter().any(|k| k.category() == cat),
                "no node kind in category {cat}"
            );
        }
    }

    #[test]
    fn spot_check_categories() {
        assert_eq!(NodeKind::ForStmt.category(), NodeCategory::Statement);
        assert_eq!(NodeKind::AddOp.category(), NodeCategory::Operation);
        assert_eq!(NodeKind::IntLit.category(), NodeCategory::Literal);
        assert_eq!(NodeKind::VarRef.category(), NodeCategory::Expression);
        assert_eq!(NodeKind::Root.category(), NodeCategory::Support);
    }

    #[test]
    fn vocab_size_is_stable() {
        // The embedding table height; bump intentionally when adding kinds.
        assert_eq!(VOCAB_SIZE, 67);
    }
}
