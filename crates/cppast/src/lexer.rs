//! Tokenizer for mini-C++.

use std::fmt;

/// A lexical error with byte position and a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset in the source where the error was detected.
    pub pos: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for LexError {}

/// The kind (and payload) of a [`Token`].
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (keywords are distinguished by the parser).
    Ident(String),
    /// Integer literal; `LL`/`L`/`U` suffixes are accepted and dropped.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// Character literal with escapes resolved.
    Char(char),
    /// String literal with escapes resolved.
    Str(String),
    /// A preprocessor line (e.g. `#include <vector>`), captured verbatim
    /// without the leading `#`.
    Preprocessor(String),

    // Punctuation / operators.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Dot,
    Colon,
    ColonColon,
    Question,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    PlusPlus,
    MinusMinus,
    PlusEq,
    MinusEq,
    StarEq,
    SlashEq,
    PercentEq,
    Assign,
    Eq,
    Ne,
    Lt,
    Gt,
    Le,
    Ge,
    AndAnd,
    OrOr,
    Not,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Shl,
    Shr,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// `true` for identifier tokens whose text equals `word`.
    pub fn is_ident(&self, word: &str) -> bool {
        matches!(self, TokenKind::Ident(s) if s == word)
    }
}

/// A token with its starting byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// Byte offset of the first character.
    pub pos: usize,
}

/// A whole-input tokenizer.
///
/// # Example
///
/// ```
/// use ccsa_cppast::lexer::{Lexer, TokenKind};
///
/// let tokens = Lexer::tokenize("int x = 42;")?;
/// assert!(matches!(tokens[2].kind, TokenKind::Assign));
/// assert!(matches!(tokens[3].kind, TokenKind::Int(42)));
/// # Ok::<(), ccsa_cppast::lexer::LexError>(())
/// ```
#[derive(Debug)]
pub struct Lexer<'s> {
    src: &'s [u8],
    pos: usize,
}

impl<'s> Lexer<'s> {
    /// Tokenizes an entire source string, appending a trailing
    /// [`TokenKind::Eof`].
    ///
    /// # Errors
    ///
    /// Returns a [`LexError`] on unterminated literals/comments or
    /// unexpected characters.
    pub fn tokenize(src: &'s str) -> Result<Vec<Token>, LexError> {
        let mut lexer = Lexer {
            src: src.as_bytes(),
            pos: 0,
        };
        let mut out = Vec::new();
        loop {
            let tok = lexer.next_token()?;
            let done = tok.kind == TokenKind::Eof;
            out.push(tok);
            if done {
                return Ok(out);
            }
        }
    }

    fn peek(&self) -> u8 {
        *self.src.get(self.pos).unwrap_or(&0)
    }

    fn peek2(&self) -> u8 {
        *self.src.get(self.pos + 1).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek();
        self.pos += 1;
        c
    }

    fn error(&self, message: impl Into<String>) -> LexError {
        LexError {
            pos: self.pos,
            message: message.into(),
        }
    }

    fn skip_trivia(&mut self) -> Result<(), LexError> {
        loop {
            match self.peek() {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.pos += 1;
                }
                b'/' if self.peek2() == b'/' => {
                    while self.pos < self.src.len() && self.peek() != b'\n' {
                        self.pos += 1;
                    }
                }
                b'/' if self.peek2() == b'*' => {
                    let start = self.pos;
                    self.pos += 2;
                    loop {
                        if self.pos + 1 >= self.src.len() {
                            return Err(LexError {
                                pos: start,
                                message: "unterminated block comment".into(),
                            });
                        }
                        if self.peek() == b'*' && self.peek2() == b'/' {
                            self.pos += 2;
                            break;
                        }
                        self.pos += 1;
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_token(&mut self) -> Result<Token, LexError> {
        self.skip_trivia()?;
        let pos = self.pos;
        let kind = match self.peek() {
            0 => TokenKind::Eof,
            b'#' => {
                self.pos += 1;
                let start = self.pos;
                while self.pos < self.src.len() && self.peek() != b'\n' {
                    self.pos += 1;
                }
                let line = std::str::from_utf8(&self.src[start..self.pos])
                    .map_err(|_| self.error("invalid utf-8 in preprocessor line"))?
                    .trim()
                    .to_string();
                TokenKind::Preprocessor(line)
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = self.pos;
                while self.peek().is_ascii_alphanumeric() || self.peek() == b'_' {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.src[start..self.pos])
                    .unwrap()
                    .to_string();
                TokenKind::Ident(text)
            }
            c if c.is_ascii_digit() => return self.lex_number(pos),
            b'\'' => {
                self.pos += 1;
                let c = self.lex_escaped_char(b'\'')?;
                if self.bump() != b'\'' {
                    return Err(self.error("unterminated char literal"));
                }
                TokenKind::Char(c)
            }
            b'"' => {
                self.pos += 1;
                let mut s = String::new();
                while self.peek() != b'"' {
                    if self.pos >= self.src.len() {
                        return Err(self.error("unterminated string literal"));
                    }
                    s.push(self.lex_escaped_char(b'"')?);
                }
                self.pos += 1;
                TokenKind::Str(s)
            }
            _ => return self.lex_operator(pos),
        };
        Ok(Token { kind, pos })
    }

    fn lex_escaped_char(&mut self, _quote: u8) -> Result<char, LexError> {
        let c = self.bump();
        if c == b'\\' {
            let e = self.bump();
            Ok(match e {
                b'n' => '\n',
                b't' => '\t',
                b'r' => '\r',
                b'0' => '\0',
                b'\\' => '\\',
                b'\'' => '\'',
                b'"' => '"',
                other => return Err(self.error(format!("unknown escape '\\{}'", other as char))),
            })
        } else if c == 0 {
            Err(self.error("unexpected end of input in literal"))
        } else {
            Ok(c as char)
        }
    }

    fn lex_number(&mut self, pos: usize) -> Result<Token, LexError> {
        let start = self.pos;
        while self.peek().is_ascii_digit() {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == b'.' && self.peek2().is_ascii_digit() {
            is_float = true;
            self.pos += 1;
            while self.peek().is_ascii_digit() {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), b'e' | b'E')
            && (self.peek2().is_ascii_digit()
                || (matches!(self.peek2(), b'+' | b'-')
                    && self.src.get(self.pos + 2).is_some_and(u8::is_ascii_digit)))
        {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), b'+' | b'-') {
                self.pos += 1;
            }
            while self.peek().is_ascii_digit() {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        // Swallow integer suffixes (LL, L, U, ULL …).
        while matches!(self.peek(), b'l' | b'L' | b'u' | b'U') {
            self.pos += 1;
        }
        let kind = if is_float {
            TokenKind::Float(
                text.parse()
                    .map_err(|_| self.error("invalid float literal"))?,
            )
        } else {
            TokenKind::Int(
                text.parse()
                    .map_err(|_| self.error("integer literal out of range"))?,
            )
        };
        Ok(Token { kind, pos })
    }

    fn lex_operator(&mut self, pos: usize) -> Result<Token, LexError> {
        use TokenKind::*;
        let c = self.bump();
        let two = |lexer: &mut Self, second: u8, long: TokenKind, short: TokenKind| {
            if lexer.peek() == second {
                lexer.pos += 1;
                long
            } else {
                short
            }
        };
        let kind = match c {
            b'(' => LParen,
            b')' => RParen,
            b'{' => LBrace,
            b'}' => RBrace,
            b'[' => LBracket,
            b']' => RBracket,
            b';' => Semi,
            b',' => Comma,
            b'.' => Dot,
            b'?' => Question,
            b'~' => Tilde,
            b':' => two(self, b':', ColonColon, Colon),
            b'+' => match self.peek() {
                b'+' => {
                    self.pos += 1;
                    PlusPlus
                }
                b'=' => {
                    self.pos += 1;
                    PlusEq
                }
                _ => Plus,
            },
            b'-' => match self.peek() {
                b'-' => {
                    self.pos += 1;
                    MinusMinus
                }
                b'=' => {
                    self.pos += 1;
                    MinusEq
                }
                _ => Minus,
            },
            b'*' => two(self, b'=', StarEq, Star),
            b'/' => two(self, b'=', SlashEq, Slash),
            b'%' => two(self, b'=', PercentEq, Percent),
            b'=' => two(self, b'=', Eq, Assign),
            b'!' => two(self, b'=', Ne, Not),
            b'<' => match self.peek() {
                b'=' => {
                    self.pos += 1;
                    Le
                }
                b'<' => {
                    self.pos += 1;
                    Shl
                }
                _ => Lt,
            },
            b'>' => match self.peek() {
                b'=' => {
                    self.pos += 1;
                    Ge
                }
                b'>' => {
                    self.pos += 1;
                    Shr
                }
                _ => Gt,
            },
            b'&' => two(self, b'&', AndAnd, Amp),
            b'|' => two(self, b'|', OrOr, Pipe),
            b'^' => Caret,
            other => {
                return Err(LexError {
                    pos,
                    message: format!("unexpected character '{}'", other as char),
                })
            }
        };
        Ok(Token { kind, pos })
    }
}

#[cfg(test)]
mod tests {
    use super::TokenKind::*;
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::tokenize(src)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            kinds("int foo _bar x9"),
            vec![
                Ident("int".into()),
                Ident("foo".into()),
                Ident("_bar".into()),
                Ident("x9".into()),
                Eof
            ]
        );
    }

    #[test]
    fn integer_literals_with_suffixes() {
        assert_eq!(
            kinds("42 1000000007LL 5u"),
            vec![Int(42), Int(1000000007), Int(5), Eof]
        );
    }

    #[test]
    fn float_literals() {
        assert_eq!(
            kinds("3.5 1e9 2.5e-3"),
            vec![Float(3.5), Float(1e9), Float(2.5e-3), Eof]
        );
    }

    #[test]
    fn member_access_is_not_float() {
        assert_eq!(
            kinds("v.size"),
            vec![Ident("v".into()), Dot, Ident("size".into()), Eof]
        );
    }

    #[test]
    fn char_and_string_literals() {
        assert_eq!(
            kinds(r#"'a' '\n' "hi\tthere""#),
            vec![Char('a'), Char('\n'), Str("hi\tthere".into()), Eof]
        );
    }

    #[test]
    fn operators_longest_match() {
        assert_eq!(
            kinds("<< >> <= >= == != && || ++ -- += -="),
            vec![
                Shl, Shr, Le, Ge, Eq, Ne, AndAnd, OrOr, PlusPlus, MinusMinus, PlusEq, MinusEq, Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(kinds("a // line\n b /* block\nmore */ c"), kinds("a b c"));
    }

    #[test]
    fn preprocessor_lines() {
        let toks = kinds("#include <vector>\nint");
        assert_eq!(toks[0], Preprocessor("include <vector>".into()));
        assert_eq!(toks[1], Ident("int".into()));
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(Lexer::tokenize("\"oops").is_err());
    }

    #[test]
    fn unterminated_comment_errors() {
        assert!(Lexer::tokenize("/* forever").is_err());
    }

    #[test]
    fn unexpected_character_errors() {
        let err = Lexer::tokenize("int $x;").unwrap_err();
        assert!(err.message.contains('$'));
    }

    #[test]
    fn positions_are_byte_offsets() {
        let toks = Lexer::tokenize("ab cd").unwrap();
        assert_eq!(toks[0].pos, 0);
        assert_eq!(toks[1].pos, 3);
    }
}
