//! The typed abstract syntax tree for mini-C++.
//!
//! The typed AST keeps identifiers and literal values, which the corpus
//! interpreter needs to execute programs. The models never see these: they
//! consume the flattened node-kind tree produced by
//! [`AstGraph::from_program`](crate::tree::AstGraph::from_program).

use std::fmt;

/// A mini-C++ type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// Any integer type (`int`, `long`, `long long` all widen to `i64`).
    Int,
    /// `double`.
    Double,
    /// `bool`.
    Bool,
    /// `char`.
    Char,
    /// `std::string`.
    Str,
    /// `void` (function returns only).
    Void,
    /// `std::vector<T>`.
    Vec(Box<Type>),
}

impl Type {
    /// `vector<long long>` — the workhorse container of the corpus.
    pub fn vec_int() -> Type {
        Type::Vec(Box::new(Type::Int))
    }

    /// `vector<vector<long long>>` — adjacency lists and DP tables.
    pub fn vec_vec_int() -> Type {
        Type::Vec(Box::new(Type::vec_int()))
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => write!(f, "long long"),
            Type::Double => write!(f, "double"),
            Type::Bool => write!(f, "bool"),
            Type::Char => write!(f, "char"),
            Type::Str => write!(f, "string"),
            Type::Void => write!(f, "void"),
            Type::Vec(inner) => write!(f, "vector<{inner}>"),
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Ne,
    Lt,
    Gt,
    Le,
    Ge,
    And,
    Or,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
}

impl BinOp {
    /// The C++ spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Gt => ">",
            BinOp::Le => "<=",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
            BinOp::BitAnd => "&",
            BinOp::BitOr => "|",
            BinOp::BitXor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
        }
    }

    /// Binding strength for the printer/parser (higher binds tighter),
    /// mirroring C++ precedence.
    pub fn precedence(self) -> u8 {
        match self {
            BinOp::Or => 1,
            BinOp::And => 2,
            BinOp::BitOr => 3,
            BinOp::BitXor => 4,
            BinOp::BitAnd => 5,
            BinOp::Eq | BinOp::Ne => 6,
            BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge => 7,
            BinOp::Shl | BinOp::Shr => 8,
            BinOp::Add | BinOp::Sub => 9,
            BinOp::Mul | BinOp::Div | BinOp::Mod => 10,
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation `-x`.
    Neg,
    /// Logical not `!x`.
    Not,
    /// Bitwise complement `~x`.
    BitNot,
}

impl UnOp {
    /// The C++ spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            UnOp::Neg => "-",
            UnOp::Not => "!",
            UnOp::BitNot => "~",
        }
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// Boolean literal.
    Bool(bool),
    /// Character literal.
    Char(char),
    /// String literal.
    Str(String),
    /// Variable reference.
    Var(String),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Assignment `lhs = rhs` (lhs must be an lvalue).
    Assign(Box<Expr>, Box<Expr>),
    /// Compound assignment `lhs op= rhs`.
    CompoundAssign(BinOp, Box<Expr>, Box<Expr>),
    /// `++x` / `--x` / `x++` / `x--`.
    IncDec {
        /// Prefix (`++x`) if true, postfix (`x++`) otherwise.
        pre: bool,
        /// Increment if true, decrement otherwise.
        inc: bool,
        /// The lvalue being modified.
        target: Box<Expr>,
    },
    /// Subscript `base[index]`.
    Index(Box<Expr>, Box<Expr>),
    /// Free-function (or builtin) call `name(args…)`.
    Call(String, Vec<Expr>),
    /// Method call `recv.name(args…)` — e.g. `v.push_back(x)`, `v.size()`.
    MethodCall(Box<Expr>, String, Vec<Expr>),
    /// Conditional `cond ? a : b`.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// C-style cast `(type)expr`.
    Cast(Type, Box<Expr>),
    /// `cin >> a >> b …` — targets must be lvalues.
    StreamIn(Vec<Expr>),
    /// `cout << a << b …` (the identifier `endl` prints a newline).
    StreamOut(Vec<Expr>),
}

impl Expr {
    /// Convenience constructor for binary nodes.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary(op, Box::new(lhs), Box::new(rhs))
    }

    /// Convenience constructor for variable references.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// Total number of expression nodes in this subtree (for tests and
    /// corpus statistics).
    pub fn node_count(&self) -> usize {
        1 + match self {
            Expr::Unary(_, a) => a.node_count(),
            Expr::Binary(_, a, b)
            | Expr::Assign(a, b)
            | Expr::CompoundAssign(_, a, b)
            | Expr::Index(a, b) => a.node_count() + b.node_count(),
            Expr::IncDec { target, .. } => target.node_count(),
            Expr::Call(_, args) => args.iter().map(Expr::node_count).sum(),
            Expr::MethodCall(recv, _, args) => {
                recv.node_count() + args.iter().map(Expr::node_count).sum::<usize>()
            }
            Expr::Ternary(c, a, b) => c.node_count() + a.node_count() + b.node_count(),
            Expr::Cast(_, a) => a.node_count(),
            Expr::StreamIn(args) | Expr::StreamOut(args) => args.iter().map(Expr::node_count).sum(),
            _ => 0,
        }
    }
}

/// How a declared variable is initialised.
#[derive(Debug, Clone, PartialEq)]
pub enum Init {
    /// `= expr`.
    Expr(Expr),
    /// Constructor syntax `name(args…)` — e.g. `vector<long long> v(n, 0);`.
    Ctor(Vec<Expr>),
}

/// One declarator within a declaration (`int a = 1, b;` has two).
#[derive(Debug, Clone, PartialEq)]
pub struct Declarator {
    /// Variable name.
    pub name: String,
    /// Optional initialiser.
    pub init: Option<Init>,
}

/// A variable declaration statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Decl {
    /// Declared type (shared by all declarators).
    pub ty: Type,
    /// The declared variables.
    pub declarators: Vec<Declarator>,
}

/// The init clause of a `for` statement.
#[derive(Debug, Clone, PartialEq)]
pub enum ForInit {
    /// `for (int i = 0; …)`.
    Decl(Decl),
    /// `for (i = 0; …)`.
    Expr(Expr),
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Variable declaration.
    Decl(Decl),
    /// Expression statement.
    Expr(Expr),
    /// `if (cond) then else els`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then: Box<Stmt>,
        /// Optional else branch.
        els: Option<Box<Stmt>>,
    },
    /// `while (cond) body`.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `for (init; cond; step) body`.
    For {
        /// Optional init clause.
        init: Option<ForInit>,
        /// Optional condition (infinite loop when `None`).
        cond: Option<Expr>,
        /// Optional step expression.
        step: Option<Expr>,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `return expr?;`.
    Return(Option<Expr>),
    /// `break;`.
    Break,
    /// `continue;`.
    Continue,
    /// `{ … }`.
    Block(Vec<Stmt>),
    /// `;`.
    Empty,
}

impl Stmt {
    /// Total number of statement + expression nodes in this subtree.
    pub fn node_count(&self) -> usize {
        1 + match self {
            Stmt::Decl(d) => d
                .declarators
                .iter()
                .map(|dr| match &dr.init {
                    Some(Init::Expr(e)) => e.node_count(),
                    Some(Init::Ctor(args)) => args.iter().map(Expr::node_count).sum(),
                    None => 0,
                })
                .sum(),
            Stmt::Expr(e) => e.node_count(),
            Stmt::If { cond, then, els } => {
                cond.node_count() + then.node_count() + els.as_ref().map_or(0, |e| e.node_count())
            }
            Stmt::While { cond, body } => cond.node_count() + body.node_count(),
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                let i = match init {
                    Some(ForInit::Decl(d)) => Stmt::Decl(d.clone()).node_count(),
                    Some(ForInit::Expr(e)) => e.node_count(),
                    None => 0,
                };
                i + cond.as_ref().map_or(0, Expr::node_count)
                    + step.as_ref().map_or(0, Expr::node_count)
                    + body.node_count()
            }
            Stmt::Return(e) => e.as_ref().map_or(0, Expr::node_count),
            Stmt::Block(stmts) => stmts.iter().map(Stmt::node_count).sum(),
            _ => 0,
        }
    }
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Return type.
    pub ret: Type,
    /// Function name.
    pub name: String,
    /// Parameters as `(type, name)` pairs.
    pub params: Vec<(Type, String)>,
    /// Body statements (the braces of the definition).
    pub body: Vec<Stmt>,
}

/// A parsed translation unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Preprocessor lines, verbatim (semantically ignored).
    pub preprocessor: Vec<String>,
    /// Global declarations (arrays, constants).
    pub globals: Vec<Decl>,
    /// Function definitions in source order.
    pub functions: Vec<Function>,
}

impl Program {
    /// Finds a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Total number of statement + expression nodes across all functions.
    pub fn node_count(&self) -> usize {
        self.functions
            .iter()
            .map(|f| f.body.iter().map(Stmt::node_count).sum::<usize>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_display() {
        assert_eq!(Type::vec_int().to_string(), "vector<long long>");
        assert_eq!(Type::vec_vec_int().to_string(), "vector<vector<long long>>");
        assert_eq!(Type::Str.to_string(), "string");
    }

    #[test]
    fn precedence_ordering_matches_cpp() {
        assert!(BinOp::Mul.precedence() > BinOp::Add.precedence());
        assert!(BinOp::Add.precedence() > BinOp::Shl.precedence());
        assert!(BinOp::Shl.precedence() > BinOp::Lt.precedence());
        assert!(BinOp::Lt.precedence() > BinOp::Eq.precedence());
        assert!(BinOp::Eq.precedence() > BinOp::And.precedence());
        assert!(BinOp::And.precedence() > BinOp::Or.precedence());
    }

    #[test]
    fn node_count_counts_subtrees() {
        // s += i  →  CompoundAssign(Var, Var) = 3 nodes
        let e = Expr::CompoundAssign(
            BinOp::Add,
            Box::new(Expr::var("s")),
            Box::new(Expr::var("i")),
        );
        assert_eq!(e.node_count(), 3);
        let s = Stmt::Expr(e);
        assert_eq!(s.node_count(), 4);
    }

    #[test]
    fn program_function_lookup() {
        let mut p = Program::default();
        p.functions.push(Function {
            ret: Type::Int,
            name: "main".into(),
            params: vec![],
            body: vec![],
        });
        assert!(p.function("main").is_some());
        assert!(p.function("missing").is_none());
    }
}
