//! Recursive-descent parser for mini-C++.

use std::fmt;

use crate::ast::*;
use crate::lexer::{LexError, Lexer, Token, TokenKind};

/// A syntax error with byte position and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where the error was detected.
    pub pos: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(err: LexError) -> ParseError {
        ParseError {
            pos: err.pos,
            message: err.message,
        }
    }
}

/// Parses a complete mini-C++ translation unit.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input (including lexical errors).
///
/// # Example
///
/// ```
/// use ccsa_cppast::parse_program;
///
/// let program = parse_program("int add(int a, int b) { return a + b; }")?;
/// assert_eq!(program.functions[0].name, "add");
/// assert_eq!(program.functions[0].params.len(), 2);
/// # Ok::<(), ccsa_cppast::ParseError>(())
/// ```
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let tokens = Lexer::tokenize(src)?;
    let mut parser = Parser {
        tokens,
        ix: 0,
        pending_gt: 0,
        depth: 0,
    };
    parser.program()
}

/// Maximum combined statement/expression nesting the parser accepts.
/// Real submissions nest a few dozen levels at most; the cap exists so
/// hostile input fed to a serving process (50k parentheses on one line)
/// yields a [`ParseError`] instead of overflowing the recursion stack —
/// both here and in every downstream tree walk (flattening, printing).
///
/// Sizing: a parenthesis level costs two descents (assignment + unary)
/// and, measured empirically, a debug build on a 2 MiB test-thread stack
/// overflows near 170 parenthesis levels (counter ≈ 340). 128 keeps a
/// ≥2.5× stack margin on the worst construct while being 3–4× deeper
/// than anything the corpus generator emits.
const MAX_NESTING: u32 = 128;

struct Parser {
    tokens: Vec<Token>,
    ix: usize,
    /// `vector<vector<T>>` ends in a `>>` token; when the type parser
    /// consumes half of one it records the other half here.
    pending_gt: u8,
    /// Current statement/expression nesting, bounded by [`MAX_NESTING`].
    depth: u32,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.ix].kind
    }

    fn peek_at(&self, offset: usize) -> &TokenKind {
        let ix = (self.ix + offset).min(self.tokens.len() - 1);
        &self.tokens[ix].kind
    }

    fn pos(&self) -> usize {
        self.tokens[self.ix].pos
    }

    fn bump(&mut self) -> TokenKind {
        let kind = self.tokens[self.ix].kind.clone();
        if self.ix + 1 < self.tokens.len() {
            self.ix += 1;
        }
        kind
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            pos: self.pos(),
            message: message.into(),
        }
    }

    fn expect(&mut self, kind: TokenKind, what: &str) -> Result<(), ParseError> {
        if self.peek() == &kind {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok(name)
            }
            other => Err(self.error(format!("expected {what}, found {other:?}"))),
        }
    }

    // ── Types ──────────────────────────────────────────────────────────

    /// `true` if the current token starts a type.
    fn at_type(&self) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if matches!(
            s.as_str(),
            "int" | "long" | "double" | "bool" | "char" | "string" | "void" | "vector" | "unsigned"
        ))
    }

    fn parse_type(&mut self) -> Result<Type, ParseError> {
        let name = self.ident("type name")?;
        match name.as_str() {
            "unsigned" => {
                // `unsigned`, `unsigned int`, `unsigned long long` → Int.
                while matches!(self.peek(), TokenKind::Ident(s) if s == "int" || s == "long") {
                    self.bump();
                }
                Ok(Type::Int)
            }
            "int" => Ok(Type::Int),
            "long" => {
                // `long`, `long long`, `long double`.
                if matches!(self.peek(), TokenKind::Ident(s) if s == "long") {
                    self.bump();
                    Ok(Type::Int)
                } else if matches!(self.peek(), TokenKind::Ident(s) if s == "double") {
                    self.bump();
                    Ok(Type::Double)
                } else {
                    Ok(Type::Int)
                }
            }
            "double" => Ok(Type::Double),
            "bool" => Ok(Type::Bool),
            "char" => Ok(Type::Char),
            "string" => Ok(Type::Str),
            "void" => Ok(Type::Void),
            "vector" => {
                self.expect(TokenKind::Lt, "'<' after vector")?;
                let inner = self.parse_type()?;
                self.expect_close_angle()?;
                Ok(Type::Vec(Box::new(inner)))
            }
            other => Err(self.error(format!("unknown type '{other}'"))),
        }
    }

    /// Consumes a closing `>` in a template argument, splitting `>>` when
    /// necessary (`vector<vector<long long>>`).
    fn expect_close_angle(&mut self) -> Result<(), ParseError> {
        if self.pending_gt > 0 {
            self.pending_gt -= 1;
            return Ok(());
        }
        match self.peek() {
            TokenKind::Gt => {
                self.bump();
                Ok(())
            }
            TokenKind::Shr => {
                self.bump();
                self.pending_gt += 1;
                Ok(())
            }
            other => Err(self.error(format!("expected '>' closing template, found {other:?}"))),
        }
    }

    // ── Top level ──────────────────────────────────────────────────────

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut program = Program::default();
        loop {
            match self.peek().clone() {
                TokenKind::Eof => break,
                TokenKind::Preprocessor(line) => {
                    self.bump();
                    program.preprocessor.push(line);
                }
                TokenKind::Ident(s) if s == "using" => {
                    // `using namespace std;`
                    self.bump();
                    while !self.eat(&TokenKind::Semi) {
                        if self.peek() == &TokenKind::Eof {
                            return Err(self.error("unterminated using declaration"));
                        }
                        self.bump();
                    }
                }
                _ if self.at_type() => {
                    let ty = self.parse_type()?;
                    let name = self.ident("declaration name")?;
                    // `T name(` is a function definition when the parenthesis
                    // opens a parameter list (type keyword or `)`), and a
                    // constructor-initialised global otherwise — the classic
                    // "most vexing parse", resolved with one token of
                    // lookahead just like a human reader would.
                    let is_function = self.peek() == &TokenKind::LParen
                        && (self.peek_at(1) == &TokenKind::RParen
                            || matches!(self.peek_at(1), TokenKind::Ident(s) if matches!(
                                s.as_str(),
                                "int" | "long" | "double" | "bool" | "char" | "string"
                                    | "void" | "vector" | "unsigned"
                            )));
                    if is_function {
                        program.functions.push(self.function(ty, name)?);
                    } else {
                        let decl = self.finish_decl(ty, name)?;
                        program.globals.push(decl);
                    }
                }
                other => return Err(self.error(format!("expected declaration, found {other:?}"))),
            }
        }
        if program.functions.is_empty() {
            return Err(ParseError {
                pos: 0,
                message: "program has no functions".into(),
            });
        }
        Ok(program)
    }

    fn function(&mut self, ret: Type, name: String) -> Result<Function, ParseError> {
        self.expect(TokenKind::LParen, "'('")?;
        let mut params = Vec::new();
        if self.peek() != &TokenKind::RParen {
            loop {
                let ty = self.parse_type()?;
                // Pass-by-reference is semantically transparent for the
                // interpreter's value model of scalars; vectors are handled
                // by reference naturally. Accept and drop '&'.
                self.eat(&TokenKind::Amp);
                let pname = self.ident("parameter name")?;
                params.push((ty, pname));
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen, "')'")?;
        self.expect(TokenKind::LBrace, "'{' starting function body")?;
        let mut body = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            if self.peek() == &TokenKind::Eof {
                return Err(self.error("unterminated function body"));
            }
            body.push(self.statement()?);
        }
        Ok(Function {
            ret,
            name,
            params,
            body,
        })
    }

    // ── Statements ─────────────────────────────────────────────────────

    /// Guards every recursive descent through statements and expressions:
    /// errors out once nesting exceeds [`MAX_NESTING`].
    fn descend(&mut self) -> Result<(), ParseError> {
        if self.depth >= MAX_NESTING {
            return Err(self.error(format!("nesting deeper than {MAX_NESTING} levels")));
        }
        self.depth += 1;
        Ok(())
    }

    fn statement(&mut self) -> Result<Stmt, ParseError> {
        self.descend()?;
        let result = self.statement_inner();
        self.depth -= 1;
        result
    }

    fn statement_inner(&mut self) -> Result<Stmt, ParseError> {
        match self.peek().clone() {
            TokenKind::LBrace => {
                self.bump();
                let mut stmts = Vec::new();
                while !self.eat(&TokenKind::RBrace) {
                    if self.peek() == &TokenKind::Eof {
                        return Err(self.error("unterminated block"));
                    }
                    stmts.push(self.statement()?);
                }
                Ok(Stmt::Block(stmts))
            }
            TokenKind::Semi => {
                self.bump();
                Ok(Stmt::Empty)
            }
            TokenKind::Ident(s) => match s.as_str() {
                "if" => self.if_stmt(),
                "while" => self.while_stmt(),
                "for" => self.for_stmt(),
                "return" => {
                    self.bump();
                    let value = if self.peek() == &TokenKind::Semi {
                        None
                    } else {
                        Some(self.expression()?)
                    };
                    self.expect(TokenKind::Semi, "';' after return")?;
                    Ok(Stmt::Return(value))
                }
                "break" => {
                    self.bump();
                    self.expect(TokenKind::Semi, "';' after break")?;
                    Ok(Stmt::Break)
                }
                "continue" => {
                    self.bump();
                    self.expect(TokenKind::Semi, "';' after continue")?;
                    Ok(Stmt::Continue)
                }
                _ if self.at_type() => {
                    let decl = self.decl_stmt()?;
                    Ok(Stmt::Decl(decl))
                }
                _ => {
                    let expr = self.expression()?;
                    self.expect(TokenKind::Semi, "';' after expression")?;
                    Ok(Stmt::Expr(expr))
                }
            },
            _ => {
                let expr = self.expression()?;
                self.expect(TokenKind::Semi, "';' after expression")?;
                Ok(Stmt::Expr(expr))
            }
        }
    }

    fn decl_stmt(&mut self) -> Result<Decl, ParseError> {
        let ty = self.parse_type()?;
        let name = self.ident("variable name")?;
        self.finish_decl(ty, name)
    }

    fn finish_decl(&mut self, ty: Type, first_name: String) -> Result<Decl, ParseError> {
        let mut declarators = vec![self.declarator(first_name)?];
        while self.eat(&TokenKind::Comma) {
            let name = self.ident("variable name")?;
            declarators.push(self.declarator(name)?);
        }
        self.expect(TokenKind::Semi, "';' after declaration")?;
        Ok(Decl { ty, declarators })
    }

    fn declarator(&mut self, name: String) -> Result<Declarator, ParseError> {
        let init = if self.eat(&TokenKind::Assign) {
            Some(Init::Expr(self.assignment()?))
        } else if self.peek() == &TokenKind::LParen {
            self.bump();
            let mut args = Vec::new();
            if self.peek() != &TokenKind::RParen {
                loop {
                    args.push(self.assignment()?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
            }
            self.expect(TokenKind::RParen, "')' closing constructor")?;
            Some(Init::Ctor(args))
        } else {
            None
        };
        Ok(Declarator { name, init })
    }

    fn if_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.bump(); // if
        self.expect(TokenKind::LParen, "'(' after if")?;
        let cond = self.expression()?;
        self.expect(TokenKind::RParen, "')' closing if condition")?;
        let then = Box::new(self.statement()?);
        let els = if matches!(self.peek(), TokenKind::Ident(s) if s == "else") {
            self.bump();
            Some(Box::new(self.statement()?))
        } else {
            None
        };
        Ok(Stmt::If { cond, then, els })
    }

    fn while_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.bump(); // while
        self.expect(TokenKind::LParen, "'(' after while")?;
        let cond = self.expression()?;
        self.expect(TokenKind::RParen, "')' closing while condition")?;
        let body = Box::new(self.statement()?);
        Ok(Stmt::While { cond, body })
    }

    fn for_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.bump(); // for
        self.expect(TokenKind::LParen, "'(' after for")?;
        let init = if self.eat(&TokenKind::Semi) {
            None
        } else if self.at_type() {
            let decl = self.decl_stmt()?; // consumes the ';'
            Some(ForInit::Decl(decl))
        } else {
            let e = self.expression()?;
            self.expect(TokenKind::Semi, "';' after for-init")?;
            Some(ForInit::Expr(e))
        };
        let cond = if self.peek() == &TokenKind::Semi {
            None
        } else {
            Some(self.expression()?)
        };
        self.expect(TokenKind::Semi, "';' after for-condition")?;
        let step = if self.peek() == &TokenKind::RParen {
            None
        } else {
            Some(self.expression()?)
        };
        self.expect(TokenKind::RParen, "')' closing for header")?;
        let body = Box::new(self.statement()?);
        Ok(Stmt::For {
            init,
            cond,
            step,
            body,
        })
    }

    // ── Expressions ────────────────────────────────────────────────────

    fn expression(&mut self) -> Result<Expr, ParseError> {
        self.assignment()
    }

    fn assignment(&mut self) -> Result<Expr, ParseError> {
        self.descend()?;
        let result = self.assignment_inner();
        self.depth -= 1;
        result
    }

    fn assignment_inner(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.ternary()?;
        let op = match self.peek() {
            TokenKind::Assign => None,
            TokenKind::PlusEq => Some(BinOp::Add),
            TokenKind::MinusEq => Some(BinOp::Sub),
            TokenKind::StarEq => Some(BinOp::Mul),
            TokenKind::SlashEq => Some(BinOp::Div),
            TokenKind::PercentEq => Some(BinOp::Mod),
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.assignment()?; // right associative
        Ok(match op {
            None => Expr::Assign(Box::new(lhs), Box::new(rhs)),
            Some(op) => Expr::CompoundAssign(op, Box::new(lhs), Box::new(rhs)),
        })
    }

    fn ternary(&mut self) -> Result<Expr, ParseError> {
        let cond = self.binary(0)?;
        if self.eat(&TokenKind::Question) {
            let then = self.assignment()?;
            self.expect(TokenKind::Colon, "':' in conditional expression")?;
            let els = self.assignment()?;
            Ok(Expr::Ternary(Box::new(cond), Box::new(then), Box::new(els)))
        } else {
            Ok(cond)
        }
    }

    fn binop_at(&self) -> Option<BinOp> {
        Some(match self.peek() {
            TokenKind::OrOr => BinOp::Or,
            TokenKind::AndAnd => BinOp::And,
            TokenKind::Pipe => BinOp::BitOr,
            TokenKind::Caret => BinOp::BitXor,
            TokenKind::Amp => BinOp::BitAnd,
            TokenKind::Eq => BinOp::Eq,
            TokenKind::Ne => BinOp::Ne,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Ge => BinOp::Ge,
            TokenKind::Shl => BinOp::Shl,
            TokenKind::Shr => BinOp::Shr,
            TokenKind::Plus => BinOp::Add,
            TokenKind::Minus => BinOp::Sub,
            TokenKind::Star => BinOp::Mul,
            TokenKind::Slash => BinOp::Div,
            TokenKind::Percent => BinOp::Mod,
            _ => return None,
        })
    }

    /// Precedence climbing over the [`BinOp::precedence`] table.
    fn binary(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        while let Some(op) = self.binop_at() {
            let prec = op.precedence();
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.binary(prec + 1)?; // all our binops left-assoc
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        self.descend()?;
        let result = self.unary_inner();
        self.depth -= 1;
        result
    }

    fn unary_inner(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            TokenKind::Minus => {
                self.bump();
                // Canonical form: a negated integer literal *is* a negative
                // literal (C++ has no negative literals; folding here makes
                // print → parse the identity for negative constants).
                match self.unary()? {
                    Expr::Int(v) => Ok(Expr::Int(-v)),
                    Expr::Float(v) => Ok(Expr::Float(-v)),
                    other => Ok(Expr::Unary(UnOp::Neg, Box::new(other))),
                }
            }
            TokenKind::Not => {
                self.bump();
                Ok(Expr::Unary(UnOp::Not, Box::new(self.unary()?)))
            }
            TokenKind::Tilde => {
                self.bump();
                Ok(Expr::Unary(UnOp::BitNot, Box::new(self.unary()?)))
            }
            TokenKind::PlusPlus => {
                self.bump();
                let target = self.unary()?;
                Ok(Expr::IncDec {
                    pre: true,
                    inc: true,
                    target: Box::new(target),
                })
            }
            TokenKind::MinusMinus => {
                self.bump();
                let target = self.unary()?;
                Ok(Expr::IncDec {
                    pre: true,
                    inc: false,
                    target: Box::new(target),
                })
            }
            // C-style cast: '(' type ')' unary
            TokenKind::LParen if self.cast_ahead() => {
                self.bump();
                let ty = self.parse_type()?;
                self.expect(TokenKind::RParen, "')' closing cast")?;
                Ok(Expr::Cast(ty, Box::new(self.unary()?)))
            }
            _ => self.postfix(),
        }
    }

    /// Lookahead: does `(` start a cast like `(long long)` / `(double)`?
    fn cast_ahead(&self) -> bool {
        let TokenKind::Ident(name) = self.peek_at(1) else {
            return false;
        };
        matches!(
            name.as_str(),
            "int" | "long" | "double" | "bool" | "char" | "unsigned"
        ) && matches!(
            self.peek_at(2),
            TokenKind::RParen | TokenKind::Ident(_) // long long) / unsigned int)
        )
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut expr = self.primary()?;
        loop {
            match self.peek() {
                TokenKind::LBracket => {
                    self.bump();
                    let ix = self.expression()?;
                    self.expect(TokenKind::RBracket, "']' closing subscript")?;
                    expr = Expr::Index(Box::new(expr), Box::new(ix));
                }
                TokenKind::Dot => {
                    self.bump();
                    let method = self.ident("method name")?;
                    self.expect(TokenKind::LParen, "'(' after method name")?;
                    let args = self.call_args()?;
                    expr = Expr::MethodCall(Box::new(expr), method, args);
                }
                TokenKind::PlusPlus => {
                    self.bump();
                    expr = Expr::IncDec {
                        pre: false,
                        inc: true,
                        target: Box::new(expr),
                    };
                }
                TokenKind::MinusMinus => {
                    self.bump();
                    expr = Expr::IncDec {
                        pre: false,
                        inc: false,
                        target: Box::new(expr),
                    };
                }
                _ => return Ok(expr),
            }
        }
    }

    fn call_args(&mut self) -> Result<Vec<Expr>, ParseError> {
        let mut args = Vec::new();
        if self.peek() != &TokenKind::RParen {
            loop {
                args.push(self.assignment()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen, "')' closing call")?;
        Ok(args)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::Int(v))
            }
            TokenKind::Float(v) => {
                self.bump();
                Ok(Expr::Float(v))
            }
            TokenKind::Char(c) => {
                self.bump();
                Ok(Expr::Char(c))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::Str(s))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expression()?;
                self.expect(TokenKind::RParen, "')' closing parenthesis")?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                self.bump();
                match name.as_str() {
                    "true" => Ok(Expr::Bool(true)),
                    "false" => Ok(Expr::Bool(false)),
                    "cin" => self.stream_in(),
                    "cout" => self.stream_out(),
                    _ => {
                        if self.peek() == &TokenKind::LParen {
                            self.bump();
                            let args = self.call_args()?;
                            Ok(Expr::Call(name, args))
                        } else {
                            Ok(Expr::Var(name))
                        }
                    }
                }
            }
            other => Err(self.error(format!("expected expression, found {other:?}"))),
        }
    }

    fn stream_in(&mut self) -> Result<Expr, ParseError> {
        let mut targets = Vec::new();
        while self.eat(&TokenKind::Shr) {
            // Targets are postfix expressions (x, v[i]) — never full binary
            // expressions, so `cin >> a >> b` chains correctly.
            targets.push(self.postfix()?);
        }
        if targets.is_empty() {
            return Err(self.error("expected '>>' after cin"));
        }
        Ok(Expr::StreamIn(targets))
    }

    fn stream_out(&mut self) -> Result<Expr, ParseError> {
        let mut values = Vec::new();
        while self.eat(&TokenKind::Shl) {
            // Allow arithmetic but not comparisons inside `cout <<` chains,
            // matching how the corpus emits output; precedence 9 = Add.
            values.push(self.binary(BinOp::Add.precedence())?);
        }
        if values.is_empty() {
            return Err(self.error("expected '<<' after cout"));
        }
        Ok(Expr::StreamOut(values))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Program {
        parse_program(src).expect("parse failed")
    }

    #[test]
    fn hostile_nesting_errors_instead_of_overflowing() {
        // Serving feeds untrusted source into this parser: pathological
        // nesting must surface as ParseError, never a stack overflow.
        for src in [
            format!(
                "int main() {{ return {}1{}; }}",
                "(".repeat(50_000),
                ")".repeat(50_000)
            ),
            format!("int main() {{ return {}1; }}", "!".repeat(50_000)),
            format!(
                "int main() {} return 0; {}",
                "{".repeat(50_000),
                "}".repeat(50_000)
            ),
        ] {
            let err = parse_program(&src).expect_err("hostile nesting accepted");
            assert!(err.message.contains("nesting"), "{}", err.message);
        }
    }

    #[test]
    fn deep_but_reasonable_nesting_still_parses() {
        // 30 levels of parentheses inside 30 nested blocks: several times
        // deeper than any real submission, comfortably inside the cap
        // (parens count twice — see MAX_NESTING).
        let expr = format!("{}7{}", "(".repeat(30), ")".repeat(30));
        let blocks = format!(
            "int main() {} return {expr}; {}",
            "{".repeat(30),
            "}".repeat(30)
        );
        assert!(parse_program(&blocks).is_ok());
    }

    #[test]
    fn minimal_main() {
        let p = parse("int main() { return 0; }");
        assert_eq!(p.functions.len(), 1);
        assert_eq!(p.functions[0].name, "main");
        assert_eq!(p.functions[0].body, vec![Stmt::Return(Some(Expr::Int(0)))]);
    }

    #[test]
    fn preprocessor_and_using() {
        let p = parse("#include <bits/stdc++.h>\nusing namespace std;\nint main() { return 0; }");
        assert_eq!(p.preprocessor, vec!["include <bits/stdc++.h>".to_string()]);
    }

    #[test]
    fn precedence_mul_over_add() {
        let p = parse("int main() { int x = 1 + 2 * 3; return x; }");
        let Stmt::Decl(d) = &p.functions[0].body[0] else {
            panic!()
        };
        let Some(Init::Expr(e)) = &d.declarators[0].init else {
            panic!()
        };
        assert_eq!(
            *e,
            Expr::bin(
                BinOp::Add,
                Expr::Int(1),
                Expr::bin(BinOp::Mul, Expr::Int(2), Expr::Int(3))
            )
        );
    }

    #[test]
    fn left_associativity() {
        let p = parse("int main() { int x = 10 - 4 - 3; return x; }");
        let Stmt::Decl(d) = &p.functions[0].body[0] else {
            panic!()
        };
        let Some(Init::Expr(e)) = &d.declarators[0].init else {
            panic!()
        };
        assert_eq!(
            *e,
            Expr::bin(
                BinOp::Sub,
                Expr::bin(BinOp::Sub, Expr::Int(10), Expr::Int(4)),
                Expr::Int(3)
            )
        );
    }

    #[test]
    fn nested_vector_shr_split() {
        let p = parse("int main() { vector<vector<long long>> g(10); return 0; }");
        let Stmt::Decl(d) = &p.functions[0].body[0] else {
            panic!()
        };
        assert_eq!(d.ty, Type::vec_vec_int());
        assert_eq!(d.declarators[0].init, Some(Init::Ctor(vec![Expr::Int(10)])));
    }

    #[test]
    fn for_loop_full_header() {
        let p = parse("int main() { for (int i = 0; i < 10; i++) { } return 0; }");
        let Stmt::For {
            init, cond, step, ..
        } = &p.functions[0].body[0]
        else {
            panic!()
        };
        assert!(matches!(init, Some(ForInit::Decl(_))));
        assert!(matches!(cond, Some(Expr::Binary(BinOp::Lt, _, _))));
        assert!(matches!(
            step,
            Some(Expr::IncDec {
                pre: false,
                inc: true,
                ..
            })
        ));
    }

    #[test]
    fn while_and_if_else() {
        let p = parse(
            "int main() { int i = 0; while (i < 5) { if (i % 2 == 0) i++; else i += 2; } return i; }",
        );
        let Stmt::While { body, .. } = &p.functions[0].body[1] else {
            panic!()
        };
        let Stmt::Block(stmts) = body.as_ref() else {
            panic!()
        };
        assert!(matches!(&stmts[0], Stmt::If { els: Some(_), .. }));
    }

    #[test]
    fn stream_io() {
        let p = parse("int main() { int n; cin >> n; cout << n << endl; return 0; }");
        let Stmt::Expr(Expr::StreamIn(targets)) = &p.functions[0].body[1] else {
            panic!()
        };
        assert_eq!(targets, &vec![Expr::var("n")]);
        let Stmt::Expr(Expr::StreamOut(values)) = &p.functions[0].body[2] else {
            panic!()
        };
        assert_eq!(values.len(), 2);
    }

    #[test]
    fn stream_in_indexed_target() {
        let p = parse("int main() { vector<long long> a(5); int i = 0; cin >> a[i]; return 0; }");
        let Stmt::Expr(Expr::StreamIn(targets)) = &p.functions[0].body[2] else {
            panic!()
        };
        assert!(matches!(&targets[0], Expr::Index(_, _)));
    }

    #[test]
    fn method_calls() {
        let p = parse(
            "int main() { vector<long long> v; v.push_back(3); long long n = v.size(); return n; }",
        );
        let Stmt::Expr(Expr::MethodCall(recv, name, args)) = &p.functions[0].body[1] else {
            panic!()
        };
        assert_eq!(**recv, Expr::var("v"));
        assert_eq!(name, "push_back");
        assert_eq!(args, &vec![Expr::Int(3)]);
    }

    #[test]
    fn function_with_params_and_call() {
        let p = parse(
            "long long add(long long a, long long b) { return a + b; }\n\
             int main() { return add(1, 2); }",
        );
        assert_eq!(p.functions.len(), 2);
        let Stmt::Return(Some(Expr::Call(name, args))) = &p.functions[1].body[0] else {
            panic!()
        };
        assert_eq!(name, "add");
        assert_eq!(args.len(), 2);
    }

    #[test]
    fn reference_params_accepted() {
        let p = parse("void dfs(vector<long long>& a, long long u) { } int main() { return 0; }");
        assert_eq!(p.functions[0].params.len(), 2);
    }

    #[test]
    fn ternary_expression() {
        let p = parse("int main() { int a = 1 < 2 ? 10 : 20; return a; }");
        let Stmt::Decl(d) = &p.functions[0].body[0] else {
            panic!()
        };
        assert!(matches!(
            d.declarators[0].init,
            Some(Init::Expr(Expr::Ternary(_, _, _)))
        ));
    }

    #[test]
    fn cast_expression() {
        let p = parse("int main() { double x = 2.0; long long y = (long long)x; return y; }");
        let Stmt::Decl(d) = &p.functions[0].body[1] else {
            panic!()
        };
        assert!(matches!(
            d.declarators[0].init,
            Some(Init::Expr(Expr::Cast(Type::Int, _)))
        ));
    }

    #[test]
    fn parenthesized_call_vs_cast() {
        // `(f)(x)` is not supported but `f(x)` and `(a + b) * c` must work.
        let p = parse("int main() { int a = (1 + 2) * 3; return a; }");
        let Stmt::Decl(d) = &p.functions[0].body[0] else {
            panic!()
        };
        let Some(Init::Expr(Expr::Binary(BinOp::Mul, _, _))) = &d.declarators[0].init else {
            panic!()
        };
    }

    #[test]
    fn multi_declarator() {
        let p = parse("int main() { int a = 1, b, c = 3; return b; }");
        let Stmt::Decl(d) = &p.functions[0].body[0] else {
            panic!()
        };
        assert_eq!(d.declarators.len(), 3);
        assert!(d.declarators[1].init.is_none());
    }

    #[test]
    fn globals() {
        let p = parse("long long memo(100); int main() { return 0; }");
        assert_eq!(p.globals.len(), 1);
    }

    #[test]
    fn error_on_garbage() {
        assert!(parse_program("int main() { int x = ; }").is_err());
        assert!(parse_program("int main() {").is_err());
        assert!(parse_program("").is_err());
        assert!(parse_program("int main() { unknown_type x; }").is_err());
    }

    #[test]
    fn error_positions_point_into_source() {
        let src = "int main() { int x = @; }";
        let err = parse_program(src).unwrap_err();
        assert!(err.pos <= src.len());
    }

    #[test]
    fn recursion_parses() {
        let p = parse(
            "long long fib(long long n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }\n\
             int main() { cout << fib(10); return 0; }",
        );
        assert_eq!(p.functions[0].name, "fib");
    }

    #[test]
    fn compound_assignment_kinds() {
        let p =
            parse("int main() { int x = 0; x += 1; x -= 2; x *= 3; x /= 4; x %= 5; return x; }");
        let ops: Vec<BinOp> = p.functions[0].body[1..6]
            .iter()
            .map(|s| match s {
                Stmt::Expr(Expr::CompoundAssign(op, _, _)) => *op,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(
            ops,
            vec![BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div, BinOp::Mod]
        );
    }
}
