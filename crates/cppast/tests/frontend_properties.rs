//! Property-based tests of the mini-C++ frontend: expression round-trips
//! through print→parse, lexer totality on printable input, and AST-graph
//! structural invariants on generated expression trees.

use proptest::prelude::*;

use ccsa_cppast::{
    ast::{BinOp, Expr, Function, Program, Stmt, Type, UnOp},
    parse_program, print_program, AstGraph, Lexer,
};

/// Arbitrary expressions over integer literals and two fixed variables —
/// every operator the language supports, nested to a bounded depth.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-1000i64..1000).prop_map(Expr::Int),
        Just(Expr::var("x")),
        Just(Expr::var("y")),
        prop::bool::ANY.prop_map(Expr::Bool),
    ];
    leaf.prop_recursive(4, 64, 3, |inner| {
        prop_oneof![
            (
                prop::sample::select(vec![
                    BinOp::Add,
                    BinOp::Sub,
                    BinOp::Mul,
                    BinOp::Div,
                    BinOp::Mod,
                    BinOp::Lt,
                    BinOp::Gt,
                    BinOp::Le,
                    BinOp::Ge,
                    BinOp::Eq,
                    BinOp::Ne,
                    BinOp::And,
                    BinOp::Or,
                    BinOp::BitAnd,
                    BinOp::BitOr,
                    BinOp::BitXor,
                    BinOp::Shl,
                    BinOp::Shr,
                ]),
                inner.clone(),
                inner.clone(),
            )
                .prop_map(|(op, a, b)| Expr::bin(op, a, b)),
            (
                prop::sample::select(vec![UnOp::Neg, UnOp::Not, UnOp::BitNot]),
                inner.clone(),
            )
                .prop_map(|(op, a)| match (op, a) {
                    // Canonical form (matches the parser): negation of an
                    // integer literal folds into the literal.
                    (UnOp::Neg, Expr::Int(v)) => Expr::Int(-v),
                    (op, a) => Expr::Unary(op, Box::new(a)),
                }),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, a, b)| Expr::Ternary(
                Box::new(c),
                Box::new(a),
                Box::new(b)
            )),
        ]
    })
}

fn wrap(expr: Expr) -> Program {
    Program {
        preprocessor: vec!["include <bits/stdc++.h>".into()],
        globals: vec![],
        functions: vec![Function {
            ret: Type::Int,
            name: "main".into(),
            params: vec![
                // x and y come in as parameters so Var references are valid.
            ],
            body: vec![
                Stmt::Decl(ccsa_cppast::ast::Decl {
                    ty: Type::Int,
                    declarators: vec![
                        ccsa_cppast::ast::Declarator {
                            name: "x".into(),
                            init: Some(ccsa_cppast::ast::Init::Expr(Expr::Int(3))),
                        },
                        ccsa_cppast::ast::Declarator {
                            name: "y".into(),
                            init: Some(ccsa_cppast::ast::Init::Expr(Expr::Int(5))),
                        },
                    ],
                }),
                Stmt::Return(Some(expr)),
            ],
        }],
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// print → parse is the identity on arbitrary expression trees: the
    /// printer's parenthesisation must encode exactly the parser's
    /// precedence and associativity.
    #[test]
    fn expression_roundtrip(expr in arb_expr()) {
        let program = wrap(expr);
        let printed = print_program(&program);
        let reparsed = parse_program(&printed)
            .unwrap_or_else(|e| panic!("printed source failed to parse: {e}\n{printed}"));
        prop_assert_eq!(&program.functions, &reparsed.functions, "\n{}", printed);
    }

    /// The lexer never panics and always terminates on arbitrary ASCII
    /// input (it may return Err, never hang or crash).
    #[test]
    fn lexer_total_on_ascii(src in "[ -~\\n\\t]{0,200}") {
        let _ = Lexer::tokenize(&src);
    }

    /// The parser never panics on arbitrary token soup.
    #[test]
    fn parser_total_on_ascii(src in "[ -~\\n\\t]{0,200}") {
        let _ = parse_program(&src);
    }

    /// Flattened graphs of arbitrary expressions are well-formed trees
    /// with consistent parent/child links and a valid post-order.
    #[test]
    fn graph_invariants(expr in arb_expr()) {
        let program = wrap(expr);
        let graph = AstGraph::from_program(&program);
        prop_assert_eq!(graph.edges().len(), graph.node_count() - 1);
        let order = graph.post_order();
        prop_assert_eq!(order.len(), graph.node_count());
        let mut seen = vec![false; graph.node_count()];
        for &ix in &order {
            for &c in graph.children(ix) {
                prop_assert!(seen[c as usize], "post-order violated");
            }
            seen[ix as usize] = true;
        }
        // Depth is bounded by node count.
        prop_assert!(graph.depth() < graph.node_count());
    }
}
