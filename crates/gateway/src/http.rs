//! The HTTP/1.1 front door: health probes, Prometheus scrapes, and the
//! scored verbs over plain HTTP — hand-rolled on `std::net`, no
//! dependencies.
//!
//! Endpoints:
//!
//! * `GET /healthz` — liveness: 200 whenever the process can answer;
//! * `GET /readyz` — readiness: 200 while admitting, **503 `starting`
//!   until every configured accept loop is live**, **503 once a drain
//!   begins** (and for [`GatewayConfig::drain_grace`](crate::GatewayConfig)
//!   after the TCP loop exits, so load balancers observe the flip before
//!   the socket disappears);
//! * `GET /metrics` — the unified registry in Prometheus text
//!   exposition format 0.0.4;
//! * `POST /v1/compare`, `POST /v1/rank` — the scored verbs. The JSON
//!   body is the same object the JSON-lines protocol takes (the `op`
//!   field is implied by the path), and the response body is the same
//!   object the TCP transport writes — both transports funnel through
//!   [`serve_scored`], which is what makes them bit-identical. Rank
//!   responses (unbounded in K) stream with chunked transfer-encoding;
//! * `GET /v1/stats`, `GET /v1/routes` — the `stats`/`routes` verbs for
//!   humans with `curl` but no JSON-lines client.
//!
//! Per-request tracing: a client-provided `X-Request-Id` (or, failing
//! that, a `"request_id"` body field, or a generated ID) is threaded
//! through [`serve_scored`] into the trace sink and echoed back as a
//! response header — never in the body, which must stay bit-identical
//! across transports and across clients that did not send an ID.
//!
//! Connections are keep-alive by default (`Connection: close` honoured);
//! request heads are capped at 16 KiB and bodies at
//! [`MAX_LINE_BYTES`], the same budget as a JSON-lines request line. The
//! accept loop runs on its own thread so probes and scrapes never queue
//! behind JSON-lines sessions, and it shares the TCP transport's
//! connection cap, so the two front doors cannot over-subscribe the
//! process together.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use ccsa_serve::json::Json;
use ccsa_serve::proto::{self, Request};
use ccsa_serve::ModelSelector;

use crate::server::{
    enqueue_shadow, gateway_stats_response, routes_response, serve_scored, AfterResponse, Shared,
    MAX_LINE_BYTES,
};
use crate::trace::generate_request_id;

/// Request-head budget (request line + headers). Heads are small by
/// construction; 16 KiB leaves room for generous tracing headers while
/// keeping a hostile header stream from ballooning memory.
const MAX_HEAD_BYTES: usize = 16 << 10;

/// Response chunk size for chunked transfer-encoding (rank responses).
const CHUNK_BYTES: usize = 8 << 10;

const HTTP_REQUESTS_HELP: &str = "HTTP front-door requests, by path and status code.";

/// One parsed request.
struct HttpRequest {
    method: String,
    path: String,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl HttpRequest {
    /// A header value by lower-cased name.
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close after this response.
    fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.to_ascii_lowercase().contains("close"))
    }
}

/// One response, ready to serialize.
struct HttpResponse {
    status: u16,
    reason: &'static str,
    content_type: &'static str,
    /// Echoed as `X-Request-Id` (scored endpoints only).
    request_id: Option<String>,
    body: Vec<u8>,
    /// Stream the body with chunked transfer-encoding instead of
    /// `Content-Length` (rank responses, unbounded in K).
    chunked: bool,
}

impl HttpResponse {
    fn text(status: u16, reason: &'static str, body: &str) -> HttpResponse {
        HttpResponse {
            status,
            reason,
            content_type: "text/plain; charset=utf-8",
            request_id: None,
            body: body.as_bytes().to_vec(),
            chunked: false,
        }
    }

    /// A JSON error body in the wire protocol's `ok:false` shape.
    fn json_error(status: u16, reason: &'static str, message: &str) -> HttpResponse {
        HttpResponse::json(status, reason, &proto::error_response(message))
    }

    fn json(status: u16, reason: &'static str, value: &Json) -> HttpResponse {
        let mut body = value.to_string().into_bytes();
        body.push(b'\n');
        HttpResponse {
            status,
            reason,
            content_type: "application/json",
            request_id: None,
            body,
            chunked: false,
        }
    }
}

/// The HTTP accept loop. Runs until [`Shared::http_stop`] — which the
/// TCP side sets only after `drain_grace` has elapsed, so `/readyz` can
/// be observed returning 503 before this socket goes away.
pub(crate) fn run_http_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    // The loop below now owns the socket and will accept: open the
    // readiness/port-file gate (see `Shared::accepting`). SeqCst, like
    // every lifecycle flag on this server.
    shared.http_accepting.store(true, Ordering::SeqCst);
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    // SeqCst: lifecycle flag, pairs with the shutdown path's store.
    while !shared.http_stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, peer)) => {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_nodelay(true);
                // One cap across both front doors: HTTP connections and
                // TCP sessions draw from the same budget. SeqCst: the
                // admission gauge; Relaxed: the shed stats counter.
                if shared.active.load(Ordering::SeqCst) >= shared.config.max_connections {
                    shared.rejected.fetch_add(1, Ordering::Relaxed);
                    refuse_http(stream, shared.config.max_connections);
                    continue;
                }
                shared.active.fetch_add(1, Ordering::SeqCst); // SeqCst: take the slot
                let conn_shared = Arc::clone(shared);
                let worker = std::thread::Builder::new()
                    .name(format!("ccsa-http-{peer}"))
                    .spawn(move || {
                        struct Slot<'a>(&'a std::sync::atomic::AtomicUsize);
                        impl Drop for Slot<'_> {
                            fn drop(&mut self) {
                                // SeqCst: release the admission slot.
                                self.0.fetch_sub(1, Ordering::SeqCst);
                            }
                        }
                        let _slot = Slot(&conn_shared.active);
                        serve_http_connection(&conn_shared, stream, peer);
                    });
                match worker {
                    Ok(handle) => {
                        // Relaxed: stats counter.
                        shared.accepted.fetch_add(1, Ordering::Relaxed);
                        workers.push(handle);
                    }
                    Err(_) => {
                        // SeqCst: spawn failed — give the slot back;
                        // Relaxed: the shed stats counter.
                        shared.active.fetch_sub(1, Ordering::SeqCst);
                        shared.rejected.fetch_add(1, Ordering::Relaxed);
                    }
                }
                workers.retain(|w| !w.is_finished());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(shared.config.poll_interval);
                workers.retain(|w| !w.is_finished());
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => std::thread::sleep(shared.config.poll_interval),
        }
    }
    // Connection threads poll the same flag between requests (and on
    // every read timeout), so they exit promptly.
    for worker in workers {
        let _ = worker.join();
    }
}

/// Refuses an over-cap connection with one complete 503 response.
fn refuse_http(mut stream: TcpStream, cap: usize) {
    let resp = HttpResponse::json_error(
        503,
        "Service Unavailable",
        &format!("gateway at capacity ({cap} connections) — retry later"),
    );
    let _ = write_response(&mut stream, &resp, false);
}

fn serve_http_connection(shared: &Shared, stream: TcpStream, peer: SocketAddr) {
    if stream
        .set_read_timeout(Some(shared.config.poll_interval))
        .is_err()
    {
        return;
    }
    let mut reader = match stream.try_clone() {
        Ok(clone) => BufReader::new(clone),
        Err(_) => return,
    };
    let mut writer = stream;
    // The sticky-routing fallback, as on TCP: the peer host.
    let fallback_key = peer.ip().to_string();
    let mut seq: u64 = 0;
    loop {
        // SeqCst: lifecycle flag, checked between requests.
        if shared.http_stop.load(Ordering::SeqCst) {
            return; // between requests, never mid-request
        }
        let request = match read_request(shared, &mut reader, &mut writer) {
            ReadOutcome::Request(r) => r,
            ReadOutcome::Closed => return,
            ReadOutcome::Fail(status, reason, message) => {
                // Framing is unrecoverable after a malformed head; answer
                // once and close.
                record_http(shared, "other", status);
                let resp = HttpResponse::json_error(status, reason, &message);
                let _ = write_response(&mut writer, &resp, false);
                return;
            }
        };
        // SeqCst: lifecycle flag — a stop seen here closes after reply.
        let close = shared.http_stop.load(Ordering::SeqCst) || request.wants_close();
        let (response, shadow) = handle_request(shared, &request, &fallback_key, seq);
        seq += 1;
        record_http(shared, path_label(&request.path), response.status);
        if write_response(&mut writer, &response, !close).is_err() {
            return;
        }
        // Mirror only after the client has its answer: shadow cost must
        // never sit in front of the response.
        if let Some((selector, scored)) = shadow {
            enqueue_shadow(shared, selector, scored);
        }
        if close {
            return;
        }
    }
}

/// How reading one request ended.
enum ReadOutcome {
    Request(HttpRequest),
    /// EOF, idle timeout at a request boundary, or stop flag.
    Closed,
    /// Protocol violation: (status, reason, message). Connection closes
    /// after the error response.
    Fail(u16, &'static str, String),
}

/// Reads one full request (head + body), polling the stop flag on every
/// read timeout. `writer` is only used for `Expect: 100-continue`.
fn read_request(
    shared: &Shared,
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
) -> ReadOutcome {
    let mut head: Vec<u8> = Vec::new();
    let mut last_progress = Instant::now();
    // Head: accumulate lines until the blank terminator line.
    loop {
        // SeqCst: lifecycle flag.
        if shared.http_stop.load(Ordering::SeqCst) {
            return ReadOutcome::Closed;
        }
        let budget = (MAX_HEAD_BYTES + 1).saturating_sub(head.len()) as u64;
        let before = head.len();
        match reader.by_ref().take(budget).read_until(b'\n', &mut head) {
            Ok(0) if head.len() > MAX_HEAD_BYTES => {
                return ReadOutcome::Fail(
                    431,
                    "Request Header Fields Too Large",
                    format!("request head exceeds {MAX_HEAD_BYTES} bytes"),
                );
            }
            Ok(0) => return ReadOutcome::Closed, // EOF (maybe mid-head)
            Ok(_) => {
                last_progress = Instant::now();
                if head.ends_with(b"\r\n\r\n") || head.ends_with(b"\n\n") {
                    break;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if head.len() > before {
                    last_progress = Instant::now();
                }
                if let Some(idle) = shared.config.idle_timeout {
                    if last_progress.elapsed() > idle {
                        // Idle between requests closes quietly; a stalled
                        // half-sent head (slowloris) gets a 408.
                        return if head.is_empty() {
                            ReadOutcome::Closed
                        } else {
                            ReadOutcome::Fail(
                                408,
                                "Request Timeout",
                                "timed out mid-request".to_string(),
                            )
                        };
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return ReadOutcome::Closed,
        }
    }

    let (method, path, headers) = match parse_head(&head) {
        Ok(parts) => parts,
        Err(message) => return ReadOutcome::Fail(400, "Bad Request", message),
    };
    let request = HttpRequest {
        method,
        path,
        headers,
        body: Vec::new(),
    };

    if request
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return ReadOutcome::Fail(
            501,
            "Not Implemented",
            "chunked request bodies are not supported — send Content-Length".to_string(),
        );
    }
    let content_length = match request.header("content-length") {
        None => 0usize,
        Some(v) => match v.trim().parse::<usize>() {
            Ok(n) => n,
            Err(_) => {
                return ReadOutcome::Fail(
                    400,
                    "Bad Request",
                    format!("invalid Content-Length {v:?}"),
                )
            }
        },
    };
    if content_length > MAX_LINE_BYTES {
        return ReadOutcome::Fail(
            413,
            "Content Too Large",
            format!("request body exceeds {MAX_LINE_BYTES} bytes"),
        );
    }
    if content_length == 0 {
        return ReadOutcome::Request(request);
    }
    // curl sends Expect: 100-continue for large bodies and waits for the
    // go-ahead before transmitting them.
    if request
        .header("expect")
        .is_some_and(|v| v.eq_ignore_ascii_case("100-continue"))
        && write_all_flushed(writer, b"HTTP/1.1 100 Continue\r\n\r\n").is_err()
    {
        return ReadOutcome::Closed;
    }

    let mut request = request;
    request.body = vec![0u8; content_length];
    let mut filled = 0usize;
    let mut last_progress = Instant::now();
    while filled < content_length {
        // SeqCst: lifecycle flag.
        if shared.http_stop.load(Ordering::SeqCst) {
            return ReadOutcome::Closed;
        }
        match reader.read(&mut request.body[filled..]) {
            Ok(0) => return ReadOutcome::Closed, // truncated body
            Ok(n) => {
                filled += n;
                last_progress = Instant::now();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if let Some(idle) = shared.config.idle_timeout {
                    if last_progress.elapsed() > idle {
                        return ReadOutcome::Fail(
                            408,
                            "Request Timeout",
                            "timed out mid-body".to_string(),
                        );
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return ReadOutcome::Closed,
        }
    }
    ReadOutcome::Request(request)
}

/// (method, path, headers) from a parsed request head.
type ParsedHead = (String, String, Vec<(String, String)>);

/// Parses the request line and headers. Header names are lower-cased;
/// values are trimmed.
fn parse_head(head: &[u8]) -> Result<ParsedHead, String> {
    let text = std::str::from_utf8(head).map_err(|_| "request head is not valid UTF-8")?;
    let mut lines = text
        .split('\n')
        .map(|l| l.strip_suffix('\r').unwrap_or(l))
        // Tolerate stray blank lines before the request line (RFC 9112
        // §2.2); the terminator's blank line lands here too.
        .filter(|l| !l.is_empty());
    let request_line = lines.next().ok_or("empty request")?;
    let mut parts = request_line.split_ascii_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) => (m, p, v),
        _ => return Err(format!("malformed request line {request_line:?}")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unsupported protocol version {version:?}"));
    }
    let mut headers = Vec::new();
    for line in lines {
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| format!("malformed header line {line:?}"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok((method.to_string(), path.to_string(), headers))
}

/// Routes one request, returning the response plus any shadow mirror to
/// enqueue after it is written.
fn handle_request(
    shared: &Shared,
    request: &HttpRequest,
    fallback_key: &str,
    seq: u64,
) -> (HttpResponse, Option<(ModelSelector, Request)>) {
    // Probes and scrapes routinely carry query strings (`?verbose=1`);
    // routing ignores them.
    let path = request.path.split('?').next().unwrap_or("");
    let plain = |resp: HttpResponse| (resp, None);
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => plain(HttpResponse::text(200, "OK", "ok\n")),
        ("GET", "/readyz") => {
            if shared.draining() {
                plain(HttpResponse::text(503, "Service Unavailable", "draining\n"))
            } else if !shared.accepting() {
                // Bound but an accept loop is not live yet: a connection
                // could still sit unaccepted, so readiness waits.
                plain(HttpResponse::text(503, "Service Unavailable", "starting\n"))
            } else {
                plain(HttpResponse::text(200, "OK", "ready\n"))
            }
        }
        ("GET", "/metrics") => {
            let mut resp = HttpResponse::text(200, "OK", &shared.metrics.render());
            resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
            plain(resp)
        }
        ("GET", "/v1/stats") => plain(HttpResponse::json(
            200,
            "OK",
            &gateway_stats_response(shared),
        )),
        ("GET", "/v1/routes") => plain(HttpResponse::json(200, "OK", &routes_response(shared))),
        ("POST", "/v1/compare") => serve_http_scored(shared, request, "compare", fallback_key, seq),
        ("POST", "/v1/rank") => serve_http_scored(shared, request, "rank", fallback_key, seq),
        (
            _,
            "/healthz" | "/readyz" | "/metrics" | "/v1/stats" | "/v1/routes" | "/v1/compare"
            | "/v1/rank",
        ) => plain(HttpResponse::json_error(
            405,
            "Method Not Allowed",
            &format!("{} is not supported on {path}", request.method),
        )),
        _ => plain(HttpResponse::json_error(
            404,
            "Not Found",
            &format!("no such endpoint {path:?}"),
        )),
    }
}

/// Serves `POST /v1/compare` / `POST /v1/rank` through the same
/// [`serve_scored`] path as the TCP transport.
fn serve_http_scored(
    shared: &Shared,
    request: &HttpRequest,
    verb: &'static str,
    fallback_key: &str,
    seq: u64,
) -> (HttpResponse, Option<(ModelSelector, Request)>) {
    // Scored traffic is refused the moment a drain begins — only the
    // probes and /metrics stay up through the grace window, precisely so
    // balancers can watch readiness flip while no new work is admitted.
    if shared.draining() {
        let mut response = proto::error_response("gateway is draining — retry elsewhere");
        if let Json::Obj(members) = &mut response {
            members.push(("draining".to_string(), Json::Bool(true)));
        }
        return (
            HttpResponse::json(503, "Service Unavailable", &response),
            None,
        );
    }
    let body = match std::str::from_utf8(&request.body) {
        Ok(s) => s,
        Err(_) => {
            return (
                HttpResponse::json_error(400, "Bad Request", "request body is not valid UTF-8"),
                None,
            )
        }
    };
    let mut value = match ccsa_serve::json::parse(body) {
        Ok(v) => v,
        Err(e) => {
            return (
                HttpResponse::json_error(400, "Bad Request", &e.to_string()),
                None,
            )
        }
    };
    // The path *is* the op; a body may repeat it (so one payload can be
    // replayed over either transport verbatim) but must not contradict
    // it.
    match value.get("op").and_then(Json::as_str) {
        None if value.get("op").is_none() => {
            if let Json::Obj(members) = &mut value {
                members.push(("op".to_string(), Json::str(verb)));
            }
        }
        Some(op) if op == verb => {}
        other => {
            return (
                HttpResponse::json_error(
                    400,
                    "Bad Request",
                    &format!("body op {other:?} does not match endpoint /v1/{verb}"),
                ),
                None,
            )
        }
    }
    let client_key = value
        .get("client")
        .and_then(Json::as_str)
        .unwrap_or(fallback_key)
        .to_string();
    // Trace identity: header beats body beats generated. The ID is
    // echoed as a header, never placed in the body — response bodies
    // must stay bit-identical to the TCP transport's.
    let request_id = request
        .header("x-request-id")
        .map(str::to_string)
        .or_else(|| {
            value
                .get("request_id")
                .and_then(Json::as_str)
                .map(str::to_string)
        })
        .unwrap_or_else(generate_request_id);
    let scored = match proto::parse_request_value(&value) {
        Ok(r) => r,
        Err(message) => {
            let mut resp = HttpResponse::json_error(400, "Bad Request", &message);
            resp.request_id = Some(request_id);
            return (resp, None);
        }
    };
    let (response, after) = serve_scored(shared, scored, &client_key, seq, &request_id, "http");
    let (status, reason) = scored_status(&response);
    let mut resp = HttpResponse::json(status, reason, &response);
    resp.request_id = Some(request_id);
    // Rank responses grow with K; stream them so the transport never
    // needs the length up front.
    resp.chunked = verb == "rank";
    let shadow = match after {
        AfterResponse::Shadow(selector, scored) => Some((selector, scored)),
        _ => None,
    };
    (resp, shadow)
}

/// Maps a scored-verb JSON response onto an HTTP status, so plain HTTP
/// clients can branch without parsing the body.
fn scored_status(response: &Json) -> (u16, &'static str) {
    if response.get("ok").and_then(Json::as_bool) == Some(true) {
        (200, "OK")
    } else if response.get("rate_limited").and_then(Json::as_bool) == Some(true) {
        (429, "Too Many Requests")
    } else if response.get("shed").and_then(Json::as_bool) == Some(true) {
        (503, "Service Unavailable")
    } else {
        (400, "Bad Request")
    }
}

/// The bounded-cardinality `path` label for `ccsa_http_requests_total`:
/// known endpoints keep their path, everything else is `other`.
fn path_label(path: &str) -> &'static str {
    match path.split('?').next().unwrap_or("") {
        "/healthz" => "/healthz",
        "/readyz" => "/readyz",
        "/metrics" => "/metrics",
        "/v1/compare" => "/v1/compare",
        "/v1/rank" => "/v1/rank",
        "/v1/stats" => "/v1/stats",
        "/v1/routes" => "/v1/routes",
        _ => "other",
    }
}

/// Bumps `ccsa_http_requests_total{path,code}`. Looked up per response —
/// after first creation this is a read-lock and a `fetch_add`, and HTTP
/// traffic is probes and scrapes, not the hot path.
fn record_http(shared: &Shared, path: &'static str, status: u16) {
    let code = status.to_string();
    shared
        .metrics
        .counter(
            "ccsa_http_requests_total",
            HTTP_REQUESTS_HELP,
            &[("path", path), ("code", &code)],
        )
        .inc();
}

fn write_all_flushed(w: &mut TcpStream, bytes: &[u8]) -> std::io::Result<()> {
    w.write_all(bytes)?;
    w.flush()
}

/// Serializes one response; `keep_alive` decides the `Connection`
/// header.
fn write_response(w: &mut TcpStream, resp: &HttpResponse, keep_alive: bool) -> std::io::Result<()> {
    use std::fmt::Write as _;
    let mut head = String::with_capacity(256);
    let _ = write!(head, "HTTP/1.1 {} {}\r\n", resp.status, resp.reason);
    let _ = write!(head, "Content-Type: {}\r\n", resp.content_type);
    if let Some(id) = &resp.request_id {
        let _ = write!(head, "X-Request-Id: {id}\r\n");
    }
    head.push_str(if keep_alive {
        "Connection: keep-alive\r\n"
    } else {
        "Connection: close\r\n"
    });
    if resp.chunked {
        head.push_str("Transfer-Encoding: chunked\r\n\r\n");
        w.write_all(head.as_bytes())?;
        for chunk in resp.body.chunks(CHUNK_BYTES) {
            let mut size = String::with_capacity(8);
            let _ = write!(size, "{:x}\r\n", chunk.len());
            w.write_all(size.as_bytes())?;
            w.write_all(chunk)?;
            w.write_all(b"\r\n")?;
        }
        w.write_all(b"0\r\n\r\n")?;
    } else {
        let _ = write!(head, "Content-Length: {}\r\n\r\n", resp.body.len());
        w.write_all(head.as_bytes())?;
        w.write_all(&resp.body)?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_head_splits_request_line_and_headers() {
        let head = b"POST /v1/compare HTTP/1.1\r\nHost: x\r\nX-Request-Id: abc\r\n\r\n";
        let (method, path, headers) = parse_head(head).unwrap();
        assert_eq!(method, "POST");
        assert_eq!(path, "/v1/compare");
        assert_eq!(
            headers,
            vec![
                ("host".to_string(), "x".to_string()),
                ("x-request-id".to_string(), "abc".to_string()),
            ]
        );
    }

    #[test]
    fn parse_head_tolerates_bare_lf_and_leading_blank_lines() {
        let (method, path, headers) =
            parse_head(b"\r\nGET /metrics HTTP/1.0\nAccept: */*\n\n").unwrap();
        assert_eq!(method, "GET");
        assert_eq!(path, "/metrics");
        assert_eq!(headers, vec![("accept".to_string(), "*/*".to_string())]);
    }

    #[test]
    fn parse_head_rejects_garbage() {
        assert!(parse_head(b"NOT-HTTP\r\n\r\n").is_err());
        assert!(parse_head(b"GET /x SPDY/3\r\n\r\n").is_err());
        assert!(parse_head(b"GET /x HTTP/1.1\r\nbroken header line\r\n\r\n").is_err());
    }

    #[test]
    fn scored_status_maps_outcomes() {
        let ok = Json::obj(vec![("ok", Json::Bool(true))]);
        assert_eq!(scored_status(&ok).0, 200);
        let limited = Json::obj(vec![
            ("ok", Json::Bool(false)),
            ("rate_limited", Json::Bool(true)),
        ]);
        assert_eq!(scored_status(&limited).0, 429);
        let shed = Json::obj(vec![("ok", Json::Bool(false)), ("shed", Json::Bool(true))]);
        assert_eq!(scored_status(&shed).0, 503);
        let failed = Json::obj(vec![("ok", Json::Bool(false))]);
        assert_eq!(scored_status(&failed).0, 400);
    }

    #[test]
    fn path_labels_are_bounded() {
        assert_eq!(path_label("/metrics"), "/metrics");
        assert_eq!(path_label("/metrics?debug=1"), "/metrics");
        assert_eq!(path_label("/v1/compare"), "/v1/compare");
        assert_eq!(path_label("/admin/../secret"), "other");
        assert_eq!(path_label(""), "other");
    }
}
