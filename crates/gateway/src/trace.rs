//! Sampled per-request tracing: request IDs and an optional JSON-lines
//! sink.
//!
//! Every scored request gets a request ID — taken from the client
//! (`X-Request-Id` on HTTP, `"request_id"` on the JSON-lines protocol)
//! or generated — which is threaded through routing and serving and
//! echoed back in the response, so one slow request can be chased
//! across client logs, the trace sink, and the gateway's stage
//! histograms with a single key.
//!
//! The sink ([`TraceSink`]) appends one JSON object per traced request
//! with the route decision, outcome, and the engine's per-stage
//! wall-clock split ([`ccsa_serve::StageTimings`]). Sampling is
//! *deterministic* on the request ID (FNV-1a → unit interval < N%): the
//! same request ID is always either traced or not, on every gateway in
//! a fleet, so a client retrying with its own ID produces a complete
//! trace or none — never a partial one.

use ccsa_serve::lockdep::DMutex;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use ccsa_serve::json::Json;
use ccsa_serve::StageTimings;

/// Salt for generated request IDs, so they cannot collide with the
/// sequence numbers they derive from.
const REQUEST_ID_SALT: u64 = 0x6363_7361_5f69_645f; // "ccsa_id_"

static NEXT_REQUEST: AtomicU64 = AtomicU64::new(1);

/// A process-unique request ID (16 lowercase hex digits), for requests
/// that did not bring their own.
pub fn generate_request_id() -> String {
    // Relaxed: only uniqueness matters, and fetch_add is atomic under
    // any ordering.
    let seq = NEXT_REQUEST.fetch_add(1, Ordering::Relaxed);
    format!(
        "{:016x}",
        ccsa_serve::hash::splitmix64(seq ^ REQUEST_ID_SALT)
    )
}

/// A JSON-lines trace sink sampling a deterministic fraction of
/// requests.
pub struct TraceSink {
    writer: DMutex<std::io::BufWriter<std::fs::File>>,
    /// Sampled fraction in [0, 1].
    fraction: f64,
    written: AtomicU64,
}

/// One request's trace record, assembled by the transport.
pub struct TraceRecord<'a> {
    /// The request ID (client-provided or generated).
    pub request_id: &'a str,
    /// `"tcp"` or `"http"`.
    pub transport: &'static str,
    /// `"compare"` or `"rank"`.
    pub verb: &'static str,
    /// The route label the request landed on (`name@vN`, `pinned`, or
    /// `shadow:<selector>`).
    pub route: &'a str,
    /// `"ok"`, `"error"`, `"shed"`, or `"rate_limited"`.
    pub status: &'static str,
    /// End-to-end transport-side latency.
    pub latency_ms: f64,
    /// The engine's per-stage split (absent for refused requests that
    /// never reached the engine).
    pub stages: Option<StageTimings>,
}

impl TraceSink {
    /// Opens (appends to) `path`. `sample_percent` is clamped to
    /// [0, 100].
    ///
    /// # Errors
    ///
    /// Propagates file-open failures.
    pub fn open(path: &Path, sample_percent: f64) -> std::io::Result<TraceSink> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(TraceSink {
            writer: DMutex::new("gateway.trace_sink", std::io::BufWriter::new(file)),
            fraction: (sample_percent / 100.0).clamp(0.0, 1.0),
            written: AtomicU64::new(0),
        })
    }

    /// Whether this request ID falls inside the sampled fraction.
    /// Deterministic: FNV-1a of the ID mapped to [0, 1).
    pub fn should_sample(&self, request_id: &str) -> bool {
        if self.fraction >= 1.0 {
            return true;
        }
        if self.fraction <= 0.0 {
            return false;
        }
        let mut h = ccsa_serve::hash::Fnv1a::new();
        h.write(request_id.as_bytes());
        // Top 53 bits → an exact f64 in [0, 1).
        let unit = (h.finish() >> 11) as f64 / (1u64 << 53) as f64;
        unit < self.fraction
    }

    /// Appends one record (caller has already passed
    /// [`TraceSink::should_sample`]). Each line is flushed so tails and
    /// tests see records immediately; traced traffic is a sample, so
    /// the flush cost never touches most requests.
    pub fn record(&self, record: &TraceRecord<'_>) {
        let mut fields = vec![
            ("request_id", Json::str(record.request_id)),
            ("transport", Json::str(record.transport)),
            ("verb", Json::str(record.verb)),
            ("route", Json::str(record.route)),
            ("status", Json::str(record.status)),
            ("latency_ms", Json::num(record.latency_ms)),
        ];
        if let Some(stages) = &record.stages {
            fields.push((
                "stages_ms",
                Json::obj(vec![
                    ("parse", Json::num(stages.parse_s * 1e3)),
                    ("cache", Json::num(stages.cache_s * 1e3)),
                    ("encode", Json::num(stages.encode_s * 1e3)),
                    ("classify", Json::num(stages.classify_s * 1e3)),
                ]),
            ));
        }
        let line = Json::obj(fields).to_string();
        let mut w = self.writer.lock().expect("trace sink poisoned");
        if writeln!(w, "{line}").and_then(|()| w.flush()).is_ok() {
            // Relaxed: stats counter.
            self.written.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records successfully written so far.
    pub fn written(&self) -> u64 {
        // Relaxed: stats counter, read at snapshot time.
        self.written.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "ccsa-trace-{tag}-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn generated_ids_are_unique_hex() {
        let a = generate_request_id();
        let b = generate_request_id();
        assert_ne!(a, b);
        assert_eq!(a.len(), 16);
        assert!(a.bytes().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn sampling_is_deterministic_and_proportional() {
        let path = temp_path("sample");
        let sink = TraceSink::open(&path, 50.0).unwrap();
        let ids: Vec<String> = (0..2000).map(|_| generate_request_id()).collect();
        let first: Vec<bool> = ids.iter().map(|id| sink.should_sample(id)).collect();
        let second: Vec<bool> = ids.iter().map(|id| sink.should_sample(id)).collect();
        assert_eq!(first, second, "same ID must always sample the same way");
        let hits = first.iter().filter(|&&s| s).count();
        assert!(
            (700..1300).contains(&hits),
            "~50% of 2000 ids should sample, got {hits}"
        );
        let all = TraceSink::open(&path, 100.0).unwrap();
        let none = TraceSink::open(&path, 0.0).unwrap();
        assert!(ids.iter().all(|id| all.should_sample(id)));
        assert!(!ids.iter().any(|id| none.should_sample(id)));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn records_are_json_lines_with_stages() {
        let path = temp_path("record");
        let sink = TraceSink::open(&path, 100.0).unwrap();
        sink.record(&TraceRecord {
            request_id: "abc123",
            transport: "tcp",
            verb: "compare",
            route: "default@v1",
            status: "ok",
            latency_ms: 1.25,
            stages: Some(StageTimings {
                parse_s: 0.001,
                cache_s: 0.0002,
                encode_s: 0.003,
                classify_s: 0.0001,
            }),
        });
        sink.record(&TraceRecord {
            request_id: "def456",
            transport: "http",
            verb: "rank",
            route: "exp@v2",
            status: "rate_limited",
            latency_ms: 0.01,
            stages: None,
        });
        assert_eq!(sink.written(), 2);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let v = ccsa_serve::json::parse(lines[0]).unwrap();
        assert_eq!(v.get("request_id").unwrap().as_str(), Some("abc123"));
        assert_eq!(v.get("status").unwrap().as_str(), Some("ok"));
        let stages = v.get("stages_ms").unwrap();
        assert_eq!(stages.get("parse").unwrap().as_f64(), Some(1.0));
        assert_eq!(stages.get("encode").unwrap().as_f64(), Some(3.0));
        let v = ccsa_serve::json::parse(lines[1]).unwrap();
        assert!(
            v.get("stages_ms").is_none(),
            "refused requests carry no stages"
        );
        let _ = std::fs::remove_file(&path);
    }
}
