//! SIGTERM observation for graceful shutdown, without the `libc` crate.
//!
//! The workspace builds hermetically (no external crates), so the one
//! signal this gateway cares about is wired up through a two-line FFI
//! declaration of POSIX `signal(2)`. The handler does the only thing a
//! signal handler safely can: store to a static atomic flag, which the
//! gateway's accept loop polls between `accept` attempts.
//!
//! On non-unix targets this module compiles to a no-op installer and a
//! flag that never trips (the `shutdown` protocol verb still works).

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the handler when SIGTERM (or an explicitly forwarded request)
/// arrives; never cleared.
static SIGTERM_RECEIVED: AtomicBool = AtomicBool::new(false);

/// `SIGTERM` on every unix this workspace targets.
#[cfg(unix)]
const SIGTERM: i32 = 15;

#[cfg(unix)]
extern "C" {
    /// POSIX `signal(2)`. The handler slot is a plain function pointer
    /// passed as `usize` so no `libc` types are needed; the kernel calls
    /// it with the signal number.
    fn signal(signum: i32, handler: usize) -> usize;
}

#[cfg(unix)]
extern "C" fn on_sigterm(_signum: i32) {
    // Only async-signal-safe work is allowed here; an atomic store is.
    // SeqCst: the shutdown flag must be visible to the accept loop.
    SIGTERM_RECEIVED.store(true, Ordering::SeqCst);
}

/// Installs the SIGTERM handler. Returns `false` when installation
/// failed (or the platform has no signals), in which case only the
/// `shutdown` protocol verb stops the gateway.
pub fn install_sigterm_handler() -> bool {
    #[cfg(unix)]
    {
        let handler = on_sigterm as extern "C" fn(i32) as usize;
        // SAFETY: `on_sigterm` is an `extern "C" fn(i32)` matching the
        // sighandler_t ABI, and it only performs an atomic store.
        let previous = unsafe { signal(SIGTERM, handler) };
        previous != usize::MAX // SIG_ERR
    }
    #[cfg(not(unix))]
    {
        false
    }
}

/// Whether SIGTERM has been observed.
pub fn sigterm_received() -> bool {
    // SeqCst: pairs with the handler's store.
    SIGTERM_RECEIVED.load(Ordering::SeqCst)
}

/// Trips the flag as if SIGTERM had arrived — used by tests and by
/// transports that want "act like we were told to die" semantics.
pub fn simulate_sigterm() {
    // SeqCst: same ordering the real handler uses.
    SIGTERM_RECEIVED.store(true, Ordering::SeqCst);
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    extern "C" {
        fn raise(signum: i32) -> i32;
    }

    #[test]
    fn handler_catches_a_real_sigterm() {
        // Installing first is what keeps the raise from killing the test
        // process (the default disposition for SIGTERM is termination).
        assert!(install_sigterm_handler(), "handler must install");
        // SAFETY: raises SIGTERM in-process; the handler installed above
        // intercepts it and stores a flag.
        let rc = unsafe { raise(SIGTERM) };
        assert_eq!(rc, 0);
        assert!(sigterm_received());
    }
}
