//! ccsa-gateway — the network front door for CCSA serving.
//!
//! [`ccsa_serve`](ccsa_serve) made trained comparators servable
//! in-process and over stdio: one client, one model route. This crate
//! lifts the same JSON-lines protocol onto TCP and adds the traffic
//! layer a multi-user deployment needs: many keep-alive sessions,
//! admission control, weighted A/B routing across the versioned model
//! registry, shadow traffic for candidate models, per-route rolling
//! stats, and graceful drain. One process is one replica; `ccsa-fleet`
//! stacks N of them behind a single front tier (consistent-hash ring,
//! failover + hedging, `/readyz` ejection) and drives the
//! `reload_routes` table swaps from its canary controller.
//!
//! # Architecture
//!
//! ```text
//!          ┌────────────────────────────────────────────────┐
//!          │ ccsa-fleet front tier (optional): ring · hedge │
//!          │ · /readyz prober · reload_routes table pushes  │
//!          └──────┬───────────────────────────┬─────────────┘
//!    direct │     │ raw lines     direct │    │ POSTs
//!  JSON-lines clients (keep-alive     HTTP clients (curl, LBs,
//!  TCP, "client" sticky key)          Prometheus)
//!    │ │ │                              │ │ │
//!  ┌─▼─▼─▼──────────────────────┐    ┌──▼─▼─▼─────────────────────┐
//!  │ server   accept loop →     │    │ http   /healthz /readyz    │
//!  │   session thread per conn  │    │   /metrics  POST /v1/…     │
//!  │   conn cap · idle timeout  │    │   keep-alive · chunked     │
//!  │   8 MiB line cap · drain   │    │   rank · 503 on drain,     │
//!  │   on SIGTERM / `shutdown`  │    │   outlives TCP by grace    │
//!  └──────────┬─────────────────┘    └─────┬────────────────┬─────┘
//!             │  serve_scored(request_id)  │                │scrape
//!  ┌──────────▼────────────────────────────▼─────────┐ ┌────▼──────┐
//!  │ router   sticky hash(client) → weighted route;  │ │ metrics   │
//!  │          shadow mirroring                       │ │ registry  │
//!  ├─────────────────────────────────────────────────┤ │ (in ccsa- │
//!  │ limit    per-route token buckets: shed before   │ │  serve)   │
//!  │          the encode queue                       │ │ counters· │
//!  ├─────────────────────────────────────────────────┤ │ gauges·   │
//!  │ stats    per-route + shadow: requests, errors,  ◄─► histo-    │
//!  │          cache hit rate, rolling p50/p99,       │ │ grams·    │
//!  │          queue depth → `routes` verb — counters │ │ collect-  │
//!  │          ARE registry series (one atomics set)  │ │ ors       │
//!  ├─────────────────────────────────────────────────┤ │           │
//!  │ trace    request IDs · sampled JSON-lines sink  │ │           │
//!  │          with per-stage latency split           │ │           │
//!  ├─────────────────────────────────────────────────┤ │           │
//!  │ ccsa-serve ServeEngine   RwLock registry →      ◄─►(stage     │
//!  │          striped LRU cache → per-model encode   │ │ histograms│
//!  │          shards with work stealing              │ │ + stats   │
//!  └─────────────────────────────────────────────────┘ │ collector)│
//!                                                      └───────────┘
//! ```
//!
//! * [`router`] — the weighted table, sticky hashing, shadow sampling;
//! * [`limit`] — per-route token-bucket rate limiting;
//! * [`server`] — TCP listener, sessions, admission, drain, and the
//!   transport-shared scored path ([`server::Gateway`]);
//! * [`http`] — the HTTP/1.1 front door: probes, `GET /metrics`
//!   (Prometheus text exposition), and the scored verbs with responses
//!   bit-identical to TCP's;
//! * [`stats`] — per-route rolling counters and latency percentiles,
//!   backed by registry series;
//! * [`trace`] — request IDs and the sampled JSON-lines trace sink;
//! * [`client`] — small blocking [`GatewayClient`] /
//!   [`HttpGatewayClient`] for tests, benches and examples;
//! * [`signal`] — SIGTERM observation (two-line FFI, no `libc` crate).
//!
//! Protocol additions over plain `serve`: requests may carry a
//! `"client"` key (the sticky-routing identity), the `routes` verb
//! reports the table with live per-route stats, and `shutdown` drains
//! the whole gateway instead of one stdio loop.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use ccsa_gateway::{Gateway, GatewayClient, GatewayConfig, Router};
//! use ccsa_serve::{ServeConfig, ServeEngine};
//! use ccsa_model::comparator::{Comparator, EncoderConfig};
//! use ccsa_model::pipeline::TrainedModel;
//! use ccsa_nn::param::Params;
//! use ccsa_nn::treelstm::{Direction, TreeLstmConfig};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! // An engine serving one (untrained) comparator…
//! let config = EncoderConfig::TreeLstm(TreeLstmConfig {
//!     embed_dim: 6, hidden: 6, layers: 1,
//!     direction: Direction::Uni, sigmoid_candidate: false,
//! });
//! let mut params = Params::new();
//! let comparator = Comparator::new(&config, &mut params, &mut StdRng::seed_from_u64(0));
//! let engine = Arc::new(ServeEngine::with_model(
//!     TrainedModel { comparator, params },
//!     &ServeConfig::default(),
//! ));
//!
//! // …behind a TCP gateway on an ephemeral port.
//! let gateway = Gateway::spawn(engine, Router::single_default(), GatewayConfig::default())?;
//! let mut client = GatewayClient::connect(gateway.addr())?;
//! let verdict = client.compare(
//!     "int main() { for (int i = 0; i < 9; i++) { } return 0; }",
//!     "int main() { return 0; }",
//!     Some("doc-example"),
//! )?;
//! assert!((0.0..=1.0).contains(&verdict.prob_first_slower));
//! gateway.shutdown_and_join()?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod client;
pub mod http;
pub mod limit;
pub mod router;
pub mod server;
pub mod signal;
pub mod stats;
pub mod trace;

pub use client::{ClientError, CompareReply, GatewayClient, HttpGatewayClient};
pub use limit::{RateLimit, TokenBucket};
pub use router::{selectors_match, Route, Router, RouterConfigError, ShadowRoute};
pub use server::{Gateway, GatewayConfig, GatewayHandle, SpawnedGateway, MAX_LINE_BYTES};
pub use stats::{RouteStats, RouteStatsSnapshot};
pub use trace::{generate_request_id, TraceRecord, TraceSink};
