//! ccsa-gateway — the network front door for CCSA serving.
//!
//! [`ccsa_serve`](ccsa_serve) made trained comparators servable
//! in-process and over stdio: one client, one model route. This crate
//! lifts the same JSON-lines protocol onto TCP and adds the traffic
//! layer a multi-user deployment needs: many keep-alive sessions,
//! admission control, weighted A/B routing across the versioned model
//! registry, shadow traffic for candidate models, per-route rolling
//! stats, and graceful drain.
//!
//! # Architecture
//!
//! ```text
//!  clients (keep-alive TCP, JSON lines, optional "client" sticky key)
//!    │ │ │
//!  ┌─▼─▼─▼──────────────────────────────────────────────────────────┐
//!  │ server   accept loop → session thread per connection           │
//!  │          connection cap · idle timeout · 8 MiB line cap        │
//!  │          graceful drain on SIGTERM / `shutdown` request        │
//!  ├────────────────────────────────────────────────────────────────┤
//!  │ router   deterministic sticky assignment: hash(client) →       │
//!  │          weighted (model, version) route; shadow mirroring     │
//!  ├────────────────────────────────────────────────────────────────┤
//!  │ limit    per-route token buckets: over-limit requests shed     │
//!  │          with ok:false before reaching the encode queue        │
//!  ├────────────────────────────────────────────────────────────────┤
//!  │ stats    per-route + shadow: requests, errors, cache hit rate, │
//!  │          rolling p50/p99 latency, encode-shard queue depth     │
//!  │          → `routes` verb                                       │
//!  ├────────────────────────────────────────────────────────────────┤
//!  │ ccsa-serve ServeEngine   RwLock registry → striped LRU cache   │
//!  │          → per-model encode shards with work stealing (each    │
//!  │          route's bounded sub-queue is its backpressure point;  │
//!  │          per-shard depths + steals surface in `stats`)         │
//!  └────────────────────────────────────────────────────────────────┘
//! ```
//!
//! * [`router`] — the weighted table, sticky hashing, shadow sampling;
//! * [`limit`] — per-route token-bucket rate limiting;
//! * [`server`] — listener, sessions, admission, drain;
//! * [`stats`] — per-route rolling counters and latency percentiles;
//! * [`client`] — a small blocking [`GatewayClient`] for tests, benches
//!   and examples;
//! * [`signal`] — SIGTERM observation (two-line FFI, no `libc` crate).
//!
//! Protocol additions over plain `serve`: requests may carry a
//! `"client"` key (the sticky-routing identity), the `routes` verb
//! reports the table with live per-route stats, and `shutdown` drains
//! the whole gateway instead of one stdio loop.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use ccsa_gateway::{Gateway, GatewayClient, GatewayConfig, Router};
//! use ccsa_serve::{ServeConfig, ServeEngine};
//! use ccsa_model::comparator::{Comparator, EncoderConfig};
//! use ccsa_model::pipeline::TrainedModel;
//! use ccsa_nn::param::Params;
//! use ccsa_nn::treelstm::{Direction, TreeLstmConfig};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! // An engine serving one (untrained) comparator…
//! let config = EncoderConfig::TreeLstm(TreeLstmConfig {
//!     embed_dim: 6, hidden: 6, layers: 1,
//!     direction: Direction::Uni, sigmoid_candidate: false,
//! });
//! let mut params = Params::new();
//! let comparator = Comparator::new(&config, &mut params, &mut StdRng::seed_from_u64(0));
//! let engine = Arc::new(ServeEngine::with_model(
//!     TrainedModel { comparator, params },
//!     &ServeConfig::default(),
//! ));
//!
//! // …behind a TCP gateway on an ephemeral port.
//! let gateway = Gateway::spawn(engine, Router::single_default(), GatewayConfig::default())?;
//! let mut client = GatewayClient::connect(gateway.addr())?;
//! let verdict = client.compare(
//!     "int main() { for (int i = 0; i < 9; i++) { } return 0; }",
//!     "int main() { return 0; }",
//!     Some("doc-example"),
//! )?;
//! assert!((0.0..=1.0).contains(&verdict.prob_first_slower));
//! gateway.shutdown_and_join()?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod client;
pub mod limit;
pub mod router;
pub mod server;
pub mod signal;
pub mod stats;

pub use client::{ClientError, CompareReply, GatewayClient};
pub use limit::{RateLimit, TokenBucket};
pub use router::{selectors_match, Route, Router, RouterConfigError, ShadowRoute};
pub use server::{Gateway, GatewayConfig, GatewayHandle, SpawnedGateway, MAX_LINE_BYTES};
pub use stats::{RouteStats, RouteStatsSnapshot};
