//! Weighted multi-model A/B routing with sticky client assignment and
//! shadow traffic.
//!
//! The registry already versions models; the router decides *which*
//! `(name, version)` coordinate answers a request that did not pin one
//! itself. Assignment is **deterministic**: a client key hashes to a
//! point in `[0, 1)` and the cumulative route weights partition that
//! interval — so a client's requests are sticky (same key → same route,
//! always) and the long-run traffic split converges to the configured
//! weights as the client population grows. No RNG, no shared mutable
//! state, no coordination between gateway replicas: two gateways with the
//! same table route the same client identically.
//!
//! **Shadow mode** mirrors a configured fraction of routed requests to a
//! candidate selector. The router only *decides* which requests mirror;
//! the transport executes mirrors on a dedicated worker thread after the
//! primary response is written, recording the outcome in the shadow's
//! own stats slot and discarding the response — a slow or crashing
//! shadow model can never corrupt a primary response or delay a client
//! (an overloaded shadow queue drops mirrors instead). This is how a new
//! version earns its traffic: shadow at 10%, watch its error rate and
//! latency in `routes`, then promote it to a weighted route.

use ccsa_serve::hash::{fnv1a, splitmix64};
use ccsa_serve::{ModelSelector, DEFAULT_MODEL};

/// Whether two selectors name the same route. An absent name means the
/// registry default, so `default@latest` and the implicit default route
/// match each other (the registry resolves them identically); an absent
/// *version* stays distinct from a pinned one, because `latest` can
/// move. Used wherever configuration (rate limits, flags) must be
/// matched against the routing table.
pub fn selectors_match(a: &ModelSelector, b: &ModelSelector) -> bool {
    a.name.as_deref().unwrap_or(DEFAULT_MODEL) == b.name.as_deref().unwrap_or(DEFAULT_MODEL)
        && a.version == b.version
}

/// Salt folded into client hashes for *assignment* decisions.
const ASSIGN_SALT: u64 = 0x5157_4d3e_9f2b_8c61;
/// Salt folded into per-request hashes for *shadow* decisions, distinct
/// from [`ASSIGN_SALT`] so the shadowed subset is uncorrelated with route
/// assignment.
const SHADOW_SALT: u64 = 0xd6e8_fe1c_37a4_55b9;

/// One weighted traffic target.
#[derive(Debug, Clone, PartialEq)]
pub struct Route {
    /// Where matching traffic goes (name/version, `None` parts follow
    /// registry defaults).
    pub selector: ModelSelector,
    /// Relative weight (> 0; weights need not sum to 1 — they are
    /// normalised by the total).
    pub weight: f64,
}

/// A mirror target receiving a fraction of routed traffic.
#[derive(Debug, Clone, PartialEq)]
pub struct ShadowRoute {
    /// The candidate selector to mirror onto.
    pub selector: ModelSelector,
    /// Fraction of routed requests mirrored, in `[0, 1]`.
    pub fraction: f64,
}

/// Router construction failures.
#[derive(Debug)]
pub enum RouterConfigError {
    /// The table has no routes.
    NoRoutes,
    /// A route weight was zero, negative, or non-finite.
    BadWeight(f64),
    /// The shadow fraction was outside `[0, 1]` or non-finite.
    BadShadowFraction(f64),
}

impl std::fmt::Display for RouterConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouterConfigError::NoRoutes => write!(f, "router needs at least one route"),
            RouterConfigError::BadWeight(w) => {
                write!(f, "route weight must be finite and positive, got {w}")
            }
            RouterConfigError::BadShadowFraction(p) => {
                write!(f, "shadow fraction must be within [0, 1], got {p}")
            }
        }
    }
}

impl std::error::Error for RouterConfigError {}

/// The immutable routing table.
#[derive(Debug)]
pub struct Router {
    routes: Vec<Route>,
    /// Cumulative weight up to and including route `i`, pre-divided by
    /// the total so lookups compare against a point in `[0, 1)`.
    cumulative: Vec<f64>,
    shadow: Option<ShadowRoute>,
}

impl Router {
    /// Builds a validated router.
    ///
    /// # Errors
    ///
    /// Returns [`RouterConfigError`] on an empty table, a non-positive or
    /// non-finite weight, or an out-of-range shadow fraction.
    pub fn new(
        routes: Vec<Route>,
        shadow: Option<ShadowRoute>,
    ) -> Result<Router, RouterConfigError> {
        if routes.is_empty() {
            return Err(RouterConfigError::NoRoutes);
        }
        for route in &routes {
            if !route.weight.is_finite() || route.weight <= 0.0 {
                return Err(RouterConfigError::BadWeight(route.weight));
            }
        }
        if let Some(shadow) = &shadow {
            if !shadow.fraction.is_finite() || !(0.0..=1.0).contains(&shadow.fraction) {
                return Err(RouterConfigError::BadShadowFraction(shadow.fraction));
            }
        }
        let total: f64 = routes.iter().map(|r| r.weight).sum();
        let mut acc = 0.0;
        let cumulative = routes
            .iter()
            .map(|r| {
                acc += r.weight / total;
                acc
            })
            .collect();
        Ok(Router {
            routes,
            cumulative,
            shadow,
        })
    }

    /// A single-route table sending everything to the registry default —
    /// what a gateway without explicit `--route` flags runs.
    pub fn single_default() -> Router {
        Router::new(
            vec![Route {
                selector: ModelSelector::default(),
                weight: 1.0,
            }],
            None,
        )
        .expect("one unit-weight route is always valid")
    }

    /// The configured routes, in table order.
    pub fn routes(&self) -> &[Route] {
        &self.routes
    }

    /// The shadow target, if any.
    pub fn shadow(&self) -> Option<&ShadowRoute> {
        self.shadow.as_ref()
    }

    /// Each route's normalised share of traffic (sums to 1).
    pub fn shares(&self) -> Vec<f64> {
        let mut prev = 0.0;
        self.cumulative
            .iter()
            .map(|&c| {
                let share = c - prev;
                prev = c;
                share
            })
            .collect()
    }

    /// Deterministic sticky assignment: the route index for `client_key`.
    pub fn route_index(&self, client_key: &str) -> usize {
        let point = unit_point(fnv1a(client_key.as_bytes()) ^ ASSIGN_SALT);
        // The last cumulative value is 1.0 up to rounding; clamp by
        // defaulting to the final route.
        self.cumulative
            .iter()
            .position(|&c| point < c)
            .unwrap_or(self.routes.len() - 1)
    }

    /// Deterministic sticky assignment: the route for `client_key`.
    pub fn route_for(&self, client_key: &str) -> &Route {
        &self.routes[self.route_index(client_key)]
    }

    /// Whether request number `seq` from `client_key` should also be
    /// mirrored to the shadow target. Deterministic per (client, seq), so
    /// a replayed request makes the same decision; uncorrelated with the
    /// assignment hash, so shadow sampling is unbiased across routes.
    pub fn shadow_for(&self, client_key: &str, seq: u64) -> Option<&ModelSelector> {
        let shadow = self.shadow.as_ref()?;
        let point = unit_point(splitmix64(
            fnv1a(client_key.as_bytes()) ^ SHADOW_SALT ^ splitmix64(seq),
        ));
        (point < shadow.fraction).then_some(&shadow.selector)
    }
}

/// Maps a hash to a point in `[0, 1)` using the top 53 bits (exactly
/// representable in an `f64`). The hashes come from
/// [`ccsa_serve::hash`] — stable across processes and platforms, so
/// route assignment survives restarts and matches across replicas.
fn unit_point(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn selector(name: &str, version: Option<u32>) -> ModelSelector {
        ModelSelector {
            name: Some(name.to_string()),
            version,
        }
    }

    fn two_routes(w1: f64, w2: f64) -> Router {
        Router::new(
            vec![
                Route {
                    selector: selector("default", Some(1)),
                    weight: w1,
                },
                Route {
                    selector: selector("default", Some(2)),
                    weight: w2,
                },
            ],
            None,
        )
        .unwrap()
    }

    #[test]
    fn assignment_is_sticky() {
        let router = two_routes(0.5, 0.5);
        for key in ["alice", "bob", "c-17", ""] {
            let first = router.route_index(key);
            for _ in 0..10 {
                assert_eq!(router.route_index(key), first, "key {key:?} flapped");
            }
        }
    }

    #[test]
    fn distribution_tracks_weights() {
        // 70/30 over a deterministic population of client keys: the
        // observed split must converge to the configured weights.
        let router = two_routes(0.7, 0.3);
        let n = 20_000;
        let hits = (0..n)
            .filter(|i| router.route_index(&format!("client-{i}")) == 0)
            .count();
        let share = hits as f64 / n as f64;
        assert!(
            (share - 0.7).abs() < 0.02,
            "observed share {share} too far from 0.7"
        );
    }

    #[test]
    fn weights_need_not_be_normalised() {
        let a = two_routes(0.75, 0.25);
        let b = two_routes(3.0, 1.0);
        assert_eq!(a.shares(), b.shares());
        for i in 0..200 {
            let key = format!("k{i}");
            assert_eq!(a.route_index(&key), b.route_index(&key));
        }
    }

    #[test]
    fn single_route_takes_everything() {
        let router = Router::single_default();
        for i in 0..100 {
            assert_eq!(router.route_index(&format!("c{i}")), 0);
        }
        assert_eq!(router.shares(), vec![1.0]);
    }

    #[test]
    fn invalid_tables_are_rejected() {
        assert!(matches!(
            Router::new(Vec::new(), None),
            Err(RouterConfigError::NoRoutes)
        ));
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                Router::new(
                    vec![Route {
                        selector: ModelSelector::default(),
                        weight: bad,
                    }],
                    None,
                ),
                Err(RouterConfigError::BadWeight(_))
            ));
        }
        for bad in [-0.1, 1.1, f64::NAN] {
            assert!(matches!(
                Router::new(
                    vec![Route {
                        selector: ModelSelector::default(),
                        weight: 1.0,
                    }],
                    Some(ShadowRoute {
                        selector: ModelSelector::default(),
                        fraction: bad,
                    }),
                ),
                Err(RouterConfigError::BadShadowFraction(_))
            ));
        }
    }

    #[test]
    fn shadow_sampling_matches_fraction() {
        let router = Router::new(
            vec![Route {
                selector: ModelSelector::default(),
                weight: 1.0,
            }],
            Some(ShadowRoute {
                selector: selector("default", Some(2)),
                fraction: 0.25,
            }),
        )
        .unwrap();
        let n = 20_000u64;
        let mirrored = (0..n)
            .filter(|&seq| router.shadow_for("load", seq).is_some())
            .count();
        let observed = mirrored as f64 / n as f64;
        assert!(
            (observed - 0.25).abs() < 0.02,
            "observed shadow rate {observed} too far from 0.25"
        );
        // Fraction 0 never mirrors; fraction 1 always does.
        let never = Router::new(
            router.routes().to_vec(),
            Some(ShadowRoute {
                selector: ModelSelector::default(),
                fraction: 0.0,
            }),
        )
        .unwrap();
        let always = Router::new(
            router.routes().to_vec(),
            Some(ShadowRoute {
                selector: ModelSelector::default(),
                fraction: 1.0,
            }),
        )
        .unwrap();
        for seq in 0..200 {
            assert!(never.shadow_for("x", seq).is_none());
            assert!(always.shadow_for("x", seq).is_some());
        }
    }
}
