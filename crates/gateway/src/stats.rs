//! Per-route rolling statistics: request counts, cache attribution, and
//! latency percentiles over a sliding window.
//!
//! Counters are atomics (hot path pays one `fetch_add` each); latencies
//! go into a fixed-size ring buffer behind a mutex held only for the
//! append (the O(n log n) sort happens at snapshot time, on the `routes`
//! request path, not the serving path). A rolling window rather than
//! all-time aggregates: a ramping model's p99 should reflect the last few
//! thousand requests, not the cold-start spike from an hour ago.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Latencies kept per route. 4096 × 8 bytes per route is trivial memory,
/// and at that depth p99 rests on ~41 samples — enough to be stable.
const LATENCY_WINDOW: usize = 4096;

/// A fixed-size ring of recent latency samples (milliseconds).
struct LatencyWindow {
    samples: Vec<f64>,
    next: usize,
}

impl LatencyWindow {
    fn new() -> LatencyWindow {
        LatencyWindow {
            samples: Vec::with_capacity(LATENCY_WINDOW),
            next: 0,
        }
    }

    fn record(&mut self, ms: f64) {
        if self.samples.len() < LATENCY_WINDOW {
            self.samples.push(ms);
        } else {
            self.samples[self.next] = ms;
        }
        self.next = (self.next + 1) % LATENCY_WINDOW;
    }
}

impl Default for LatencyWindow {
    fn default() -> LatencyWindow {
        LatencyWindow::new()
    }
}

/// Live accumulator for one route (or the shadow slot).
#[derive(Default)]
pub struct RouteStats {
    requests: AtomicU64,
    errors: AtomicU64,
    rate_limited: AtomicU64,
    queue_shed: AtomicU64,
    cache_hits: AtomicU64,
    cache_lookups: AtomicU64,
    latencies: Mutex<LatencyWindow>,
}

impl RouteStats {
    /// A zeroed accumulator.
    pub fn new() -> RouteStats {
        RouteStats::default()
    }

    /// Records one served request: its latency and how many of its
    /// `lookups` source trees came from the embedding cache.
    pub fn record_success(&self, latency_ms: f64, hits: u64, lookups: u64) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.cache_hits.fetch_add(hits, Ordering::Relaxed);
        self.cache_lookups.fetch_add(lookups, Ordering::Relaxed);
        self.latencies
            .lock()
            .expect("latency window poisoned")
            .record(latency_ms);
    }

    /// Records a request that failed (parse error, unknown model, encoder
    /// failure). Errors count as requests but contribute no latency
    /// sample — percentiles describe *served* traffic.
    pub fn record_error(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request shed by the route's token bucket. Rate-limited
    /// requests are counted on their own — they were refused at
    /// admission, so they are neither served traffic (no latency sample)
    /// nor serving errors.
    pub fn record_rate_limited(&self) {
        self.rate_limited.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request shed by its encode shard's capacity bound.
    /// Like rate-limit sheds, these are intentional backpressure — not
    /// serving errors — but they come from the queue, not the token
    /// bucket, so they get their own counter.
    pub fn record_queue_shed(&self) {
        self.queue_shed.fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent point-in-time copy with computed percentiles.
    pub fn snapshot(&self) -> RouteStatsSnapshot {
        let (p50_ms, p99_ms, window_len) = {
            let window = self.latencies.lock().expect("latency window poisoned");
            let mut sorted = window.samples.clone();
            drop(window);
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
            (
                percentile(&sorted, 0.50),
                percentile(&sorted, 0.99),
                sorted.len(),
            )
        };
        let hits = self.cache_hits.load(Ordering::Relaxed);
        let lookups = self.cache_lookups.load(Ordering::Relaxed);
        RouteStatsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            rate_limited: self.rate_limited.load(Ordering::Relaxed),
            queue_shed: self.queue_shed.load(Ordering::Relaxed),
            cache_hits: hits,
            cache_lookups: lookups,
            cache_hit_rate: if lookups == 0 {
                0.0
            } else {
                hits as f64 / lookups as f64
            },
            p50_ms,
            p99_ms,
            window_len,
        }
    }
}

/// Nearest-rank percentile over an ascending-sorted slice (0 when empty).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// A point-in-time copy of one route's stats.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteStatsSnapshot {
    /// Requests routed here (including failed ones, excluding
    /// rate-limited ones).
    pub requests: u64,
    /// Requests that produced an `ok:false` outcome.
    pub errors: u64,
    /// Requests shed by the route's token bucket before serving.
    pub rate_limited: u64,
    /// Requests shed by the route's encode-shard capacity bound.
    pub queue_shed: u64,
    /// Source trees served from the embedding cache.
    pub cache_hits: u64,
    /// Source trees looked up in the cache.
    pub cache_lookups: u64,
    /// `cache_hits / cache_lookups` (0 when idle).
    pub cache_hit_rate: f64,
    /// Median latency over the rolling window, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile latency over the rolling window, milliseconds.
    pub p99_ms: f64,
    /// Samples currently in the rolling window.
    pub window_len: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_hit_rate() {
        let s = RouteStats::new();
        s.record_success(1.0, 2, 2);
        s.record_success(2.0, 0, 2);
        s.record_error();
        s.record_rate_limited();
        s.record_rate_limited();
        s.record_queue_shed();
        let snap = s.snapshot();
        assert_eq!(snap.requests, 3, "sheds are not requests");
        assert_eq!(snap.errors, 1, "sheds are not errors");
        assert_eq!(snap.rate_limited, 2);
        assert_eq!(snap.queue_shed, 1);
        assert_eq!(snap.cache_hits, 2);
        assert_eq!(snap.cache_lookups, 4);
        assert!((snap.cache_hit_rate - 0.5).abs() < 1e-12);
        assert_eq!(snap.window_len, 2);
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let s = RouteStats::new();
        for i in 1..=100 {
            s.record_success(i as f64, 0, 1);
        }
        let snap = s.snapshot();
        assert_eq!(snap.p50_ms, 50.0);
        assert_eq!(snap.p99_ms, 99.0);
        assert_eq!(snap.window_len, 100);
    }

    #[test]
    fn window_rolls_over() {
        let s = RouteStats::new();
        // Fill beyond capacity: early (slow) samples must age out.
        for _ in 0..LATENCY_WINDOW {
            s.record_success(1000.0, 0, 1);
        }
        for _ in 0..LATENCY_WINDOW {
            s.record_success(1.0, 0, 1);
        }
        let snap = s.snapshot();
        assert_eq!(snap.window_len, LATENCY_WINDOW);
        assert_eq!(snap.p99_ms, 1.0, "old samples must have been displaced");
        assert_eq!(snap.requests, 2 * LATENCY_WINDOW as u64);
    }

    #[test]
    fn empty_stats_snapshot_is_zeroed() {
        let snap = RouteStats::new().snapshot();
        assert_eq!(snap.requests, 0);
        assert_eq!(snap.p50_ms, 0.0);
        assert_eq!(snap.p99_ms, 0.0);
        assert_eq!(snap.cache_hit_rate, 0.0);
    }
}
