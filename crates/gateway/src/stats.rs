//! Per-route rolling statistics: request counts, cache attribution, and
//! latency percentiles over a sliding window.
//!
//! Since the unified-registry refactor the counters *are* Prometheus
//! series: every [`RouteStats`] counter is a handle into the gateway's
//! [`MetricsRegistry`] (`ccsa_route_*_total{route}`), and latencies
//! additionally feed the fixed-bucket `ccsa_route_latency_seconds`
//! histogram. The `routes` verb and `GET /metrics` therefore read the
//! *same atomics* — one source of truth, pinned by the e2e tests. The
//! hot path still pays one lock-free `fetch_add` per counter.
//!
//! The rolling-percentile window survives alongside the histogram
//! because they answer different questions: the histogram is the
//! scrape-friendly cumulative distribution, the ring buffer gives the
//! `routes` verb an exact p50/p99 over the last few thousand requests —
//! a ramping model's p99 should reflect recent traffic, not the
//! cold-start spike from an hour ago (and not a bucket lower bound).

use ccsa_serve::lockdep::DMutex;

use ccsa_serve::{Counter, MetricsRegistry, LATENCY_BUCKETS_S};

/// Latencies kept per route. 4096 × 8 bytes per route is trivial memory,
/// and at that depth p99 rests on ~41 samples — enough to be stable.
const LATENCY_WINDOW: usize = 4096;

/// A fixed-size ring of recent latency samples (milliseconds).
struct LatencyWindow {
    samples: Vec<f64>,
    next: usize,
}

impl LatencyWindow {
    fn new() -> LatencyWindow {
        LatencyWindow {
            samples: Vec::with_capacity(LATENCY_WINDOW),
            next: 0,
        }
    }

    fn record(&mut self, ms: f64) {
        if self.samples.len() < LATENCY_WINDOW {
            self.samples.push(ms);
        } else {
            self.samples[self.next] = ms;
        }
        self.next = (self.next + 1) % LATENCY_WINDOW;
    }
}

/// Live accumulator for one route (or the shadow slot), backed by
/// registry series labelled `{route="<label>"}`.
pub struct RouteStats {
    requests: Counter,
    errors: Counter,
    rate_limited: Counter,
    queue_shed: Counter,
    cache_hits: Counter,
    cache_lookups: Counter,
    latency: ccsa_serve::Histogram,
    latencies: DMutex<LatencyWindow>,
}

impl RouteStats {
    /// An accumulator whose counters are registered under
    /// `{route="<route>"}`. Shadow slots use the `shadow:<selector>`
    /// label so their series can never collide with a same-named
    /// primary route.
    pub fn new(registry: &MetricsRegistry, route: &str) -> RouteStats {
        let labels = [("route", route)];
        let counter = |name: &str, help: &str| registry.counter(name, help, &labels);
        RouteStats {
            requests: counter(
                "ccsa_route_requests_total",
                "Requests routed to a route, including failed ones, excluding sheds.",
            ),
            errors: counter(
                "ccsa_route_errors_total",
                "Routed requests that produced an ok:false outcome.",
            ),
            rate_limited: counter(
                "ccsa_route_rate_limited_total",
                "Requests shed by the route's token bucket at admission.",
            ),
            queue_shed: counter(
                "ccsa_route_queue_shed_total",
                "Requests shed by the route's encode-shard capacity bound.",
            ),
            cache_hits: counter(
                "ccsa_route_cache_hits_total",
                "Source trees served from the embedding cache on this route.",
            ),
            cache_lookups: counter(
                "ccsa_route_cache_lookups_total",
                "Source trees looked up in the embedding cache on this route.",
            ),
            latency: registry.histogram(
                "ccsa_route_latency_seconds",
                "Served-request latency per route, in seconds.",
                &labels,
                &LATENCY_BUCKETS_S,
            ),
            latencies: DMutex::new("gateway.route_latencies", LatencyWindow::new()),
        }
    }

    /// Records one served request: its latency and how many of its
    /// `lookups` source trees came from the embedding cache.
    pub fn record_success(&self, latency_ms: f64, hits: u64, lookups: u64) {
        self.requests.inc();
        self.cache_hits.add(hits);
        self.cache_lookups.add(lookups);
        self.latency.observe(latency_ms / 1e3);
        self.latencies
            .lock()
            .expect("latency window poisoned")
            .record(latency_ms);
    }

    /// Records a request that failed (parse error, unknown model, encoder
    /// failure). Errors count as requests but contribute no latency
    /// sample — percentiles describe *served* traffic.
    pub fn record_error(&self) {
        self.requests.inc();
        self.errors.inc();
    }

    /// Records a request shed by the route's token bucket. Rate-limited
    /// requests are counted on their own — they were refused at
    /// admission, so they are neither served traffic (no latency sample)
    /// nor serving errors.
    pub fn record_rate_limited(&self) {
        self.rate_limited.inc();
    }

    /// Records a request shed by its encode shard's capacity bound.
    /// Like rate-limit sheds, these are intentional backpressure — not
    /// serving errors — but they come from the queue, not the token
    /// bucket, so they get their own counter.
    pub fn record_queue_shed(&self) {
        self.queue_shed.inc();
    }

    /// A consistent point-in-time copy with computed percentiles, read
    /// from the very registry counters `/metrics` scrapes.
    pub fn snapshot(&self) -> RouteStatsSnapshot {
        let (p50_ms, p99_ms, window_len) = {
            let window = self.latencies.lock().expect("latency window poisoned");
            let mut sorted = window.samples.clone();
            drop(window);
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
            (
                percentile(&sorted, 0.50),
                percentile(&sorted, 0.99),
                sorted.len(),
            )
        };
        let hits = self.cache_hits.get();
        let lookups = self.cache_lookups.get();
        RouteStatsSnapshot {
            requests: self.requests.get(),
            errors: self.errors.get(),
            rate_limited: self.rate_limited.get(),
            queue_shed: self.queue_shed.get(),
            cache_hits: hits,
            cache_lookups: lookups,
            cache_hit_rate: if lookups == 0 {
                0.0
            } else {
                hits as f64 / lookups as f64
            },
            p50_ms,
            p99_ms,
            window_len,
        }
    }
}

/// Nearest-rank percentile over an ascending-sorted slice (0 when empty).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// A point-in-time copy of one route's stats.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteStatsSnapshot {
    /// Requests routed here (including failed ones, excluding
    /// rate-limited ones).
    pub requests: u64,
    /// Requests that produced an `ok:false` outcome.
    pub errors: u64,
    /// Requests shed by the route's token bucket before serving.
    pub rate_limited: u64,
    /// Requests shed by the route's encode-shard capacity bound.
    pub queue_shed: u64,
    /// Source trees served from the embedding cache.
    pub cache_hits: u64,
    /// Source trees looked up in the cache.
    pub cache_lookups: u64,
    /// `cache_hits / cache_lookups` (0 when idle).
    pub cache_hit_rate: f64,
    /// Median latency over the rolling window, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile latency over the rolling window, milliseconds.
    pub p99_ms: f64,
    /// Samples currently in the rolling window.
    pub window_len: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_hit_rate() {
        let registry = MetricsRegistry::new();
        let s = RouteStats::new(&registry, "default@v1");
        s.record_success(1.0, 2, 2);
        s.record_success(2.0, 0, 2);
        s.record_error();
        s.record_rate_limited();
        s.record_rate_limited();
        s.record_queue_shed();
        let snap = s.snapshot();
        assert_eq!(snap.requests, 3, "sheds are not requests");
        assert_eq!(snap.errors, 1, "sheds are not errors");
        assert_eq!(snap.rate_limited, 2);
        assert_eq!(snap.queue_shed, 1);
        assert_eq!(snap.cache_hits, 2);
        assert_eq!(snap.cache_lookups, 4);
        assert!((snap.cache_hit_rate - 0.5).abs() < 1e-12);
        assert_eq!(snap.window_len, 2);
    }

    #[test]
    fn counters_are_registry_series() {
        // The snapshot and the scrape read the same atomics: what the
        // routes verb reports is literally what Prometheus collects.
        let registry = MetricsRegistry::new();
        let s = RouteStats::new(&registry, "exp@v2");
        s.record_success(5.0, 1, 2);
        s.record_error();
        let text = registry.render();
        assert!(text.contains("ccsa_route_requests_total{route=\"exp@v2\"} 2"));
        assert!(text.contains("ccsa_route_errors_total{route=\"exp@v2\"} 1"));
        assert!(text.contains("ccsa_route_cache_hits_total{route=\"exp@v2\"} 1"));
        // One latency observation landed in the histogram.
        assert!(text.contains("ccsa_route_latency_seconds_count{route=\"exp@v2\"} 1"));
        // 5 ms is recorded in seconds (the 0.005 sum confirms the unit).
        assert!(text.contains("ccsa_route_latency_seconds_sum{route=\"exp@v2\"} 0.005"));
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let registry = MetricsRegistry::new();
        let s = RouteStats::new(&registry, "default@v1");
        for i in 1..=100 {
            s.record_success(i as f64, 0, 1);
        }
        let snap = s.snapshot();
        assert_eq!(snap.p50_ms, 50.0);
        assert_eq!(snap.p99_ms, 99.0);
        assert_eq!(snap.window_len, 100);
    }

    #[test]
    fn window_rolls_over() {
        let registry = MetricsRegistry::new();
        let s = RouteStats::new(&registry, "default@v1");
        // Fill beyond capacity: early (slow) samples must age out.
        for _ in 0..LATENCY_WINDOW {
            s.record_success(1000.0, 0, 1);
        }
        for _ in 0..LATENCY_WINDOW {
            s.record_success(1.0, 0, 1);
        }
        let snap = s.snapshot();
        assert_eq!(snap.window_len, LATENCY_WINDOW);
        assert_eq!(snap.p99_ms, 1.0, "old samples must have been displaced");
        assert_eq!(snap.requests, 2 * LATENCY_WINDOW as u64);
    }

    #[test]
    fn empty_stats_snapshot_is_zeroed() {
        let registry = MetricsRegistry::new();
        let snap = RouteStats::new(&registry, "default@v1").snapshot();
        assert_eq!(snap.requests, 0);
        assert_eq!(snap.p50_ms, 0.0);
        assert_eq!(snap.p99_ms, 0.0);
        assert_eq!(snap.cache_hit_rate, 0.0);
    }
}
