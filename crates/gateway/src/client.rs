//! A small blocking client for the gateway's JSON-lines protocol.
//!
//! One `GatewayClient` is one keep-alive TCP session: requests go out as
//! single lines, responses come back in order. The client is what the
//! end-to-end tests, the load-generator bench, and the examples use; it
//! is deliberately synchronous (one in-flight request per connection) —
//! concurrency comes from opening more connections, which is also how
//! the transport's connection cap is exercised.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use ccsa_serve::json::{self, Json};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (includes the server closing the session).
    Io(std::io::Error),
    /// The server's line was not valid protocol JSON.
    BadResponse(String),
    /// The server answered `ok:false` with this message.
    Rejected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "gateway i/o error: {e}"),
            ClientError::BadResponse(msg) => write!(f, "bad gateway response: {msg}"),
            ClientError::Rejected(msg) => write!(f, "request rejected: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// A parsed `compare` verdict.
#[derive(Debug, Clone)]
pub struct CompareReply {
    /// Model probability that the first program is the slower one.
    pub prob_first_slower: f64,
    /// Resolved model name.
    pub model: String,
    /// Resolved model version.
    pub version: u32,
    /// Trees served from the embedding cache (0–2).
    pub cache_hits: u64,
}

/// One blocking keep-alive session against a gateway (or any server
/// speaking the serve protocol over TCP).
pub struct GatewayClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl GatewayClient {
    /// Connects.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<GatewayClient, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?; // request/response lines, not bulk
        Ok(GatewayClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// Bounds how long a single response may take (`None` = wait
    /// forever).
    ///
    /// # Errors
    ///
    /// Propagates socket-option failures.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.writer.set_read_timeout(timeout)?;
        Ok(())
    }

    /// Sends one raw line and reads one response line.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Io`] when the session is gone and
    /// [`ClientError::BadResponse`] when the reply is not protocol JSON
    /// (`ok:false` replies come back `Ok` — they are protocol-level
    /// outcomes, inspected by the caller).
    pub fn request_line(&mut self, line: &str) -> Result<Json, ClientError> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the session",
            )));
        }
        json::parse(response.trim_end())
            .map_err(|e| ClientError::BadResponse(format!("{e} in {response:?}")))
    }

    /// Sends one request object and reads its response.
    ///
    /// # Errors
    ///
    /// See [`GatewayClient::request_line`].
    pub fn request(&mut self, body: &Json) -> Result<Json, ClientError> {
        self.request_line(&body.to_string())
    }

    /// Scores one pair, optionally as a named client (the gateway's
    /// sticky-routing key).
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Rejected`] when the gateway answers
    /// `ok:false`, transport errors otherwise.
    pub fn compare(
        &mut self,
        first: &str,
        second: &str,
        client_key: Option<&str>,
    ) -> Result<CompareReply, ClientError> {
        let mut fields = vec![
            ("op", Json::str("compare")),
            ("first", Json::str(first)),
            ("second", Json::str(second)),
        ];
        if let Some(key) = client_key {
            fields.push(("client", Json::str(key)));
        }
        let v = self.expect_ok(&Json::obj(fields))?;
        Ok(CompareReply {
            prob_first_slower: field_f64(&v, "prob_first_slower")?,
            model: field_str(&v, "model")?,
            version: field_f64(&v, "version")? as u32,
            cache_hits: field_f64(&v, "cache_hits")? as u64,
        })
    }

    /// Ranks candidates fastest-first, returning their original indices
    /// in rank order.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Rejected`] when the gateway answers
    /// `ok:false`, transport errors otherwise.
    pub fn rank(
        &mut self,
        candidates: &[&str],
        client_key: Option<&str>,
    ) -> Result<Vec<usize>, ClientError> {
        let mut fields = vec![
            ("op", Json::str("rank")),
            (
                "candidates",
                Json::Arr(candidates.iter().map(|&c| Json::str(c)).collect()),
            ),
        ];
        if let Some(key) = client_key {
            fields.push(("client", Json::str(key)));
        }
        let v = self.expect_ok(&Json::obj(fields))?;
        let ranking = v
            .get("ranking")
            .and_then(Json::as_arr)
            .ok_or_else(|| ClientError::BadResponse("rank reply missing 'ranking'".into()))?;
        ranking
            .iter()
            .map(|entry| {
                entry
                    .get("candidate")
                    .and_then(Json::as_u64)
                    .map(|ix| ix as usize)
                    .ok_or_else(|| {
                        ClientError::BadResponse("ranking entry missing 'candidate'".into())
                    })
            })
            .collect()
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Transport errors only.
    pub fn ping(&mut self) -> Result<bool, ClientError> {
        let v = self.request_line(r#"{"op":"ping"}"#)?;
        Ok(v.get("ok").and_then(Json::as_bool).unwrap_or(false))
    }

    /// The engine + transport stats document.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Rejected`] on `ok:false`.
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        self.expect_ok(&Json::obj(vec![("op", Json::str("stats"))]))
    }

    /// The routing table + per-route stats document.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Rejected`] on `ok:false` (e.g. when
    /// talking to a router-less server).
    pub fn routes(&mut self) -> Result<Json, ClientError> {
        self.expect_ok(&Json::obj(vec![("op", Json::str("routes"))]))
    }

    /// Asks the server to drain and exit.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Rejected`] on `ok:false`.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.expect_ok(&Json::obj(vec![("op", Json::str("shutdown"))]))?;
        Ok(())
    }

    fn expect_ok(&mut self, body: &Json) -> Result<Json, ClientError> {
        let v = self.request(body)?;
        match v.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(v),
            Some(false) => Err(ClientError::Rejected(
                v.get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unspecified error")
                    .to_string(),
            )),
            None => Err(ClientError::BadResponse(
                "response carries no 'ok' field".into(),
            )),
        }
    }
}

/// One parsed HTTP response.
#[derive(Debug, Clone)]
pub struct HttpReply {
    /// Status code (200, 429, 503, …).
    pub status: u16,
    /// The echoed `X-Request-Id`, when the endpoint sets one.
    pub request_id: Option<String>,
    /// The decoded body (chunked transfer-encoding already reassembled).
    pub body: String,
}

/// One blocking keep-alive session against the gateway's HTTP front
/// door. Minimal on purpose: enough HTTP/1.1 for the tests, benches,
/// and smoke scripts (Content-Length bodies out, Content-Length or
/// chunked bodies back).
pub struct HttpGatewayClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl HttpGatewayClient {
    /// Connects.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<HttpGatewayClient, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(HttpGatewayClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// Bounds how long a single response may take (`None` = wait
    /// forever).
    ///
    /// # Errors
    ///
    /// Propagates socket-option failures.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.writer.set_read_timeout(timeout)?;
        Ok(())
    }

    /// `GET path` on the keep-alive session.
    ///
    /// # Errors
    ///
    /// Transport/framing errors; HTTP error statuses come back `Ok`
    /// (the status is the caller's to inspect).
    pub fn get(&mut self, path: &str) -> Result<HttpReply, ClientError> {
        self.request("GET", path, None, None)
    }

    /// `POST path` with a JSON body, optionally tagged with an
    /// `X-Request-Id`.
    ///
    /// # Errors
    ///
    /// Transport/framing errors; HTTP error statuses come back `Ok`.
    pub fn post(
        &mut self,
        path: &str,
        body: &str,
        request_id: Option<&str>,
    ) -> Result<HttpReply, ClientError> {
        self.request("POST", path, Some(body), request_id)
    }

    fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        request_id: Option<&str>,
    ) -> Result<HttpReply, ClientError> {
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: gateway\r\n");
        if let Some(id) = request_id {
            head.push_str(&format!("X-Request-Id: {id}\r\n"));
        }
        match body {
            Some(body) => {
                head.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
                self.writer.write_all(head.as_bytes())?;
                self.writer.write_all(body.as_bytes())?;
            }
            None => {
                head.push_str("\r\n");
                self.writer.write_all(head.as_bytes())?;
            }
        }
        self.writer.flush()?;
        self.read_reply()
    }

    fn read_reply(&mut self) -> Result<HttpReply, ClientError> {
        let bad = |msg: String| ClientError::BadResponse(msg);
        let status_line = self.read_line()?;
        let status = status_line
            .split_ascii_whitespace()
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| bad(format!("malformed status line {status_line:?}")))?;
        let mut content_length: Option<usize> = None;
        let mut chunked = false;
        let mut request_id = None;
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                break;
            }
            let Some((name, value)) = line.split_once(':') else {
                return Err(bad(format!("malformed header line {line:?}")));
            };
            let value = value.trim();
            match name.trim().to_ascii_lowercase().as_str() {
                "content-length" => {
                    content_length = Some(
                        value
                            .parse()
                            .map_err(|_| bad(format!("bad Content-Length {value:?}")))?,
                    );
                }
                "transfer-encoding" => chunked = value.eq_ignore_ascii_case("chunked"),
                "x-request-id" => request_id = Some(value.to_string()),
                _ => {}
            }
        }
        let body = if chunked {
            let mut body = Vec::new();
            loop {
                let size_line = self.read_line()?;
                let size = usize::from_str_radix(size_line.trim(), 16)
                    .map_err(|_| bad(format!("bad chunk size {size_line:?}")))?;
                if size == 0 {
                    // Trailer section: read through the final blank line.
                    while !self.read_line()?.is_empty() {}
                    break;
                }
                let start = body.len();
                body.resize(start + size, 0);
                self.reader.read_exact(&mut body[start..])?;
                let crlf = self.read_line()?;
                if !crlf.is_empty() {
                    return Err(bad(format!("chunk not CRLF-terminated: {crlf:?}")));
                }
            }
            body
        } else {
            let mut body = vec![0u8; content_length.unwrap_or(0)];
            self.reader.read_exact(&mut body)?;
            body
        };
        Ok(HttpReply {
            status,
            request_id,
            body: String::from_utf8(body)
                .map_err(|_| bad("response body is not valid UTF-8".to_string()))?,
        })
    }

    /// One CRLF-terminated line, without the terminator.
    fn read_line(&mut self) -> Result<String, ClientError> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }
}

fn field_f64(v: &Json, name: &str) -> Result<f64, ClientError> {
    v.get(name)
        .and_then(Json::as_f64)
        .ok_or_else(|| ClientError::BadResponse(format!("reply missing numeric '{name}'")))
}

fn field_str(v: &Json, name: &str) -> Result<String, ClientError> {
    v.get(name)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| ClientError::BadResponse(format!("reply missing string '{name}'")))
}
