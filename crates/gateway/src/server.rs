//! The TCP transport: accept loop, per-connection sessions, admission
//! control, and graceful shutdown.
//!
//! Each accepted connection gets a session thread speaking the JSON-lines
//! protocol with keep-alive (the connection serves any number of requests
//! until the client closes it, an idle timeout fires, or the gateway
//! drains). Threads-per-connection is deliberate: the expensive work per
//! request is encoder forward passes, which already funnel into the
//! shared [`EncodePool`](ccsa_serve::EncodePool) queue — the pool is the
//! real concurrency limiter and backpressure point, so session threads
//! spend their lives blocked on I/O or on the pool, and a thread apiece
//! keeps the transport trivial to reason about.
//!
//! Admission control is two-layered:
//!
//! * **connection cap** — beyond [`GatewayConfig::max_connections`], new
//!   connections get one `ok:false` line and are closed immediately, so a
//!   connection flood cannot exhaust threads;
//! * **encode queue** — admitted requests enqueue their misses on the
//!   `EncodePool`; its depth is the load signal (`stats.queue_depth`).
//!
//! Shutdown is cooperative: a SIGTERM (see [`crate::signal`]) or a
//! `shutdown` request trips a flag; the accept loop stops admitting, and
//! every session finishes its in-flight request before exiting (sessions
//! poll the flag between reads, never mid-request).

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, OnceLock, Weak};

use ccsa_serve::lockdep::{DMutex, DRwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ccsa_serve::json::Json;
use ccsa_serve::proto::{self, Request};
use ccsa_serve::{
    Counter, MetricKind, MetricsRegistry, ModelSelector, Sample, SampleFamily, ServeEngine,
    ServeError, StageTimings, DEFAULT_MODEL,
};

use crate::limit::{RateLimit, TokenBucket};
use crate::router::{selectors_match, Route, Router, ShadowRoute};
use crate::signal;
use crate::stats::{RouteStats, RouteStatsSnapshot};
use crate::trace::{generate_request_id, TraceRecord, TraceSink};

/// The longest request line a session will buffer before failing the
/// connection — one hostile client must not be able to balloon resident
/// memory by streaming an endless line.
pub const MAX_LINE_BYTES: usize = 8 << 20;

/// Mirror requests waiting for the shadow worker. Shadow traffic is a
/// statistical sample, so when the candidate cannot keep up the right
/// behaviour is to *drop* mirrors (counted in `routes` as `dropped`),
/// never to slow primary traffic down.
const SHADOW_QUEUE_CAP: usize = 256;

/// The wire verbs this gateway refuses off-loopback unless
/// `allow_remote_shutdown` is set. Deliberately a literal copy of
/// `ccsa_serve::proto::MUTATING_VERBS` rather than a re-export:
/// `ccsa-audit`'s `verbs` rule diffs the two lists, so a new mutating
/// verb that lands in the protocol without a matching gate entry here
/// fails CI.
const LOOPBACK_GATED_VERBS: &[&str] = &["shutdown", "reload_routes"];

/// The refusal response for a gated verb arriving from a non-loopback
/// peer, or `None` when the request may proceed.
fn refuse_remote_admin(verb: &str, peer_is_loopback: bool, shared: &Shared) -> Option<Json> {
    debug_assert!(LOOPBACK_GATED_VERBS.contains(&verb));
    if LOOPBACK_GATED_VERBS.contains(&verb)
        && !peer_is_loopback
        && !shared.config.allow_remote_shutdown
    {
        Some(proto::error_response(&format!(
            "{verb} is only accepted from loopback \
             (start the gateway with remote shutdown enabled to change this)"
        )))
    } else {
        None
    }
}

/// Transport construction settings.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Bind address, e.g. `127.0.0.1:0` (port 0 = ephemeral).
    pub addr: String,
    /// Concurrent session cap; connections beyond it are refused with an
    /// `ok:false` line.
    pub max_connections: usize,
    /// How often blocked accept/read calls wake to poll the shutdown
    /// flag. Bounds shutdown latency; does not bound request latency.
    pub poll_interval: Duration,
    /// Close a session after this much request-free silence (`None` =
    /// keep alive forever).
    pub idle_timeout: Option<Duration>,
    /// Whether a process-level SIGTERM drains this gateway. The binary
    /// sets this; tests leave it off so a stray signal flag from another
    /// test cannot tear their gateway down.
    pub honor_sigterm: bool,
    /// Whether the `shutdown` verb is honoured from non-loopback peers.
    /// Off by default: on a gateway bound beyond localhost, any client
    /// that can open a connection must not be able to kill every other
    /// client's service with one line.
    pub allow_remote_shutdown: bool,
    /// Per-route token-bucket limits (empty = unlimited). Each entry's
    /// selector must match a route in the table handed to
    /// [`Gateway::bind`], which fails fast otherwise.
    pub rate_limits: Vec<RateLimit>,
    /// Bind address for the HTTP/1.1 front door (`None` = TCP
    /// JSON-lines only). Serves `POST /v1/compare`, `POST /v1/rank`,
    /// `GET /healthz`, `GET /readyz`, and `GET /metrics`.
    pub http_addr: Option<String>,
    /// How long the HTTP front door keeps answering probes *after* a
    /// drain begins, so load balancers can observe `/readyz` flip to
    /// 503 before the process exits. Zero = stop with the TCP loop.
    pub drain_grace: Duration,
    /// JSON-lines trace sink path (`None` = tracing off).
    pub trace_log: Option<PathBuf>,
    /// Percent of requests traced end-to-end (deterministic on the
    /// request ID; clamped to [0, 100]). Only meaningful with
    /// `trace_log`.
    pub trace_sample_percent: f64,
}

impl Default for GatewayConfig {
    fn default() -> GatewayConfig {
        GatewayConfig {
            addr: "127.0.0.1:0".to_string(),
            max_connections: 64,
            poll_interval: Duration::from_millis(15),
            idle_timeout: None,
            honor_sigterm: false,
            allow_remote_shutdown: false,
            rate_limits: Vec::new(),
            http_addr: None,
            drain_grace: Duration::ZERO,
            trace_log: None,
            trace_sample_percent: 100.0,
        }
    }
}

/// One immutable routing generation: the table plus every per-route
/// accumulator indexed alongside it. Swapped atomically as a unit by the
/// `reload_routes` verb, so a request always sees stats/limits that
/// match the router it was assigned by.
pub(crate) struct RoutingState {
    pub(crate) router: Router,
    /// Sticky-routed requests, indexed like `router.routes()`. `Arc` so
    /// a reload can carry a surviving route's rolling window across
    /// generations instead of resetting it.
    pub(crate) route_stats: Vec<Arc<RouteStats>>,
    /// Per-route token buckets, indexed like `router.routes()` (`None` =
    /// unlimited). The mutex is held for a handful of float ops per
    /// admission — never across serving work.
    pub(crate) route_limits: Vec<Option<DMutex<TokenBucket>>>,
    /// The configured RPS per route, for the `routes` report.
    pub(crate) route_limit_rps: Vec<Option<f64>>,
    /// The shadow target's slot.
    pub(crate) shadow_stats: Option<Arc<RouteStats>>,
}

impl RoutingState {
    /// Builds the per-route accumulators for `router`, carrying stats
    /// over from `previous` wherever a route's metric label survives the
    /// swap (the registry would hand back the same counter cells anyway;
    /// carrying the instance also preserves the rolling latency window).
    /// Rate limits that match no route in the new table are skipped —
    /// `Gateway::bind` validates them strictly up front, and a reload
    /// must not fail because a limited route left the table.
    fn build(
        metrics: &MetricsRegistry,
        router: Router,
        rate_limits: &[RateLimit],
        previous: Option<&RoutingState>,
    ) -> RoutingState {
        let carried = |label: &str| -> Option<Arc<RouteStats>> {
            let prev = previous?;
            prev.router
                .routes()
                .iter()
                .position(|r| route_label(&r.selector) == label)
                .map(|ix| Arc::clone(&prev.route_stats[ix]))
        };
        let route_stats: Vec<Arc<RouteStats>> = router
            .routes()
            .iter()
            .map(|r| {
                let label = route_label(&r.selector);
                carried(&label).unwrap_or_else(|| Arc::new(RouteStats::new(metrics, &label)))
            })
            .collect();
        let mut route_limit_rps: Vec<Option<f64>> = vec![None; router.routes().len()];
        for limit in rate_limits {
            if let Some(ix) = router
                .routes()
                .iter()
                .position(|r| selectors_match(&r.selector, &limit.selector))
            {
                route_limit_rps[ix] = Some(limit.rps);
            }
        }
        let route_limits = route_limit_rps
            .iter()
            .map(|rps| rps.map(|rps| DMutex::new("gateway.route_limit", TokenBucket::new(rps))))
            .collect();
        // The shadow slot gets a `shadow:`-prefixed label so its series
        // can never collide with a same-named primary route.
        let shadow_stats = router.shadow().map(|s| {
            let label = shadow_metric_label(&s.selector);
            previous
                .and_then(|prev| {
                    let stats = prev.shadow_stats.as_ref()?;
                    let prev_shadow = prev.router.shadow()?;
                    (shadow_metric_label(&prev_shadow.selector) == label).then(|| Arc::clone(stats))
                })
                .unwrap_or_else(|| Arc::new(RouteStats::new(metrics, &label)))
        });
        RoutingState {
            router,
            route_stats,
            route_limits,
            route_limit_rps,
            shadow_stats,
        }
    }
}

/// State shared between the accept loops (TCP and HTTP), session
/// threads, and handles.
pub(crate) struct Shared {
    pub(crate) engine: Arc<ServeEngine>,
    /// The current routing generation. Readers clone the `Arc` once per
    /// request; `reload_routes` swaps the whole bundle under the write
    /// lock.
    pub(crate) routing: DRwLock<Arc<RoutingState>>,
    /// Routing-table swaps applied since boot (the `reload_generation`
    /// field of the `routes` verb — controllers watch it to confirm a
    /// reload landed).
    pub(crate) reloads: AtomicU64,
    pub(crate) config: GatewayConfig,
    pub(crate) shutdown: AtomicBool,
    pub(crate) active: AtomicUsize,
    pub(crate) accepted: AtomicU64,
    pub(crate) rejected: AtomicU64,
    /// Set once the TCP accept loop is live. Port files and readiness
    /// wait on this, so a probe can never race a bound-but-not-accepting
    /// listener.
    pub(crate) tcp_accepting: AtomicBool,
    /// Set once the HTTP accept loop is live (meaningless without an
    /// HTTP listener — see [`Shared::accepting`]).
    pub(crate) http_accepting: AtomicBool,
    /// Hands mirror jobs to the shadow worker thread (set by `run`;
    /// always present so a reload can introduce a shadow at runtime).
    pub(crate) shadow_tx: OnceLock<mpsc::SyncSender<ShadowJob>>,
    /// Mirrors dropped because the shadow queue was full.
    pub(crate) shadow_dropped: AtomicU64,
    /// Requests that pinned a model/version explicitly and bypassed the
    /// router.
    pub(crate) pinned: AtomicU64,
    /// The unified metrics registry behind `GET /metrics` — every
    /// route/transport counter above is a handle into it.
    pub(crate) metrics: Arc<MetricsRegistry>,
    /// Pre-created `ccsa_gateway_requests_total{verb,status}` handles
    /// for the scored hot path.
    pub(crate) request_counters: RequestCounters,
    /// Sampled JSON-lines trace sink (`--trace-log`).
    pub(crate) trace: Option<TraceSink>,
    /// When the current drain began — stamped by the first `draining()`
    /// observation, read by the HTTP loop to honour `drain_grace`.
    pub(crate) drain_since: DMutex<Option<Instant>>,
    /// Tells the HTTP accept loop to exit (set after `drain_grace` has
    /// elapsed, so probes can observe the 503 first).
    pub(crate) http_stop: AtomicBool,
}

/// Pre-created request-total counter handles, one per (verb, status):
/// the hot path records by array index, never through the registry's
/// family lock.
pub(crate) struct RequestCounters {
    compare: [Counter; 4],
    rank: [Counter; 4],
}

/// How a scored request ended, as a metric/trace label.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum ReqStatus {
    /// Served successfully.
    Ok,
    /// Failed (parse error, unknown model, encoder panic).
    Error,
    /// Shed by the encode queue's capacity bound.
    Shed,
    /// Refused by the route's token bucket.
    RateLimited,
}

impl ReqStatus {
    pub(crate) fn label(self) -> &'static str {
        match self {
            ReqStatus::Ok => "ok",
            ReqStatus::Error => "error",
            ReqStatus::Shed => "shed",
            ReqStatus::RateLimited => "rate_limited",
        }
    }

    fn ix(self) -> usize {
        match self {
            ReqStatus::Ok => 0,
            ReqStatus::Error => 1,
            ReqStatus::Shed => 2,
            ReqStatus::RateLimited => 3,
        }
    }
}

impl RequestCounters {
    fn new(registry: &MetricsRegistry) -> RequestCounters {
        let counter = |verb: &str, status: ReqStatus| {
            registry.counter(
                "ccsa_gateway_requests_total",
                "Scored requests handled by the gateway, by verb and status \
                 (TCP and HTTP transports combined).",
                &[("verb", verb), ("status", status.label())],
            )
        };
        let all = |verb: &str| {
            [
                counter(verb, ReqStatus::Ok),
                counter(verb, ReqStatus::Error),
                counter(verb, ReqStatus::Shed),
                counter(verb, ReqStatus::RateLimited),
            ]
        };
        RequestCounters {
            compare: all("compare"),
            rank: all("rank"),
        }
    }

    pub(crate) fn record(&self, verb: &'static str, status: ReqStatus) {
        let set = match verb {
            "compare" => &self.compare,
            _ => &self.rank,
        };
        set[status.ix()].inc();
    }
}

/// Work for the shadow worker thread.
pub(crate) enum ShadowJob {
    /// Replay one request against the shadow selector.
    Mirror(ModelSelector, Request),
    /// Drain and exit (sent once by `run` after every session joined).
    Stop,
}

impl Shared {
    /// The current routing generation (one `Arc` clone per call).
    pub(crate) fn routing(&self) -> Arc<RoutingState> {
        Arc::clone(&self.routing.read().expect("routing state poisoned"))
    }

    /// Whether every configured listener's accept loop is live. Until
    /// then the process is *starting*: bound, but a connection could
    /// still sit unaccepted, so readiness and port files wait.
    pub(crate) fn accepting(&self) -> bool {
        // SeqCst: simple lifecycle flags; contention is nil, so the
        // strongest ordering buys freedom from reasoning about races.
        self.tcp_accepting.load(Ordering::SeqCst)
            && (self.config.http_addr.is_none() || self.http_accepting.load(Ordering::SeqCst))
    }

    pub(crate) fn draining(&self) -> bool {
        // SeqCst: the drain flag gates admission in every transport;
        // all observers must agree on the flip order.
        let draining = self.shutdown.load(Ordering::SeqCst)
            || (self.config.honor_sigterm && signal::sigterm_received());
        if draining {
            // Stamp the drain start once: the HTTP loop's grace period
            // is measured from the first observation, wherever it came
            // from (shutdown verb, handle, SIGTERM).
            let mut since = self.drain_since.lock().expect("drain stamp poisoned");
            if since.is_none() {
                *since = Some(Instant::now());
            }
        }
        draining
    }

    /// Threads a trace record through the sampling gate.
    pub(crate) fn trace_request(&self, record: &TraceRecord<'_>) {
        if let Some(sink) = &self.trace {
            if sink.should_sample(record.request_id) {
                sink.record(record);
            }
        }
    }
}

/// A cloneable control handle onto a running gateway.
#[derive(Clone)]
pub struct GatewayHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
    http_addr: Option<SocketAddr>,
}

impl GatewayHandle {
    /// The bound TCP JSON-lines address (with the resolved ephemeral
    /// port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound HTTP front-door address, when one is configured.
    pub fn http_addr(&self) -> Option<SocketAddr> {
        self.http_addr
    }

    /// The unified metrics registry behind `GET /metrics` — also
    /// renderable in-process (tests, embedding).
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.shared.metrics)
    }

    /// Starts a graceful drain: stop admitting, finish in-flight
    /// requests, exit the accept loop.
    pub fn shutdown(&self) {
        // SeqCst: pairs with the accept loops' draining() checks.
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Sessions currently open.
    pub fn active_connections(&self) -> usize {
        // SeqCst: same ordering as the admission check it mirrors.
        self.shared.active.load(Ordering::SeqCst)
    }

    /// Whether every configured listener's accept loop is live — the
    /// signal the binary waits for before writing port files, and what
    /// `/readyz` reports as `starting` until then.
    pub fn accepting(&self) -> bool {
        self.shared.accepting()
    }

    /// Routing-table swaps applied via `reload_routes` since boot.
    pub fn reload_generation(&self) -> u64 {
        // SeqCst: generation reads must not reorder around the table
        // swap they version (see apply_reload).
        self.shared.reloads.load(Ordering::SeqCst)
    }
}

/// A bound-but-not-yet-running gateway.
pub struct Gateway {
    listener: TcpListener,
    http_listener: Option<TcpListener>,
    shared: Arc<Shared>,
    addr: SocketAddr,
    http_addr: Option<SocketAddr>,
}

/// A gateway running on a background thread (tests, benches, and
/// in-process embedding).
pub struct SpawnedGateway {
    handle: GatewayHandle,
    join: JoinHandle<std::io::Result<()>>,
}

impl SpawnedGateway {
    /// The bound TCP address.
    pub fn addr(&self) -> SocketAddr {
        self.handle.addr()
    }

    /// The bound HTTP front-door address, when one is configured.
    pub fn http_addr(&self) -> Option<SocketAddr> {
        self.handle.http_addr()
    }

    /// A control handle.
    pub fn handle(&self) -> GatewayHandle {
        self.handle.clone()
    }

    /// Drains the gateway and waits for the accept loop and every
    /// session to finish.
    ///
    /// # Errors
    ///
    /// Propagates an accept-loop I/O failure.
    ///
    /// # Panics
    ///
    /// Panics if the accept-loop thread itself panicked.
    pub fn shutdown_and_join(self) -> std::io::Result<()> {
        self.handle.shutdown();
        self.join.join().expect("gateway accept loop panicked")
    }
}

impl Gateway {
    /// Binds the listener (resolving an ephemeral port immediately) but
    /// does not accept yet.
    ///
    /// # Errors
    ///
    /// Propagates bind failures; rejects a rate limit whose selector
    /// matches no route, a duplicate limit for one route, or a
    /// non-positive/non-finite RPS (`InvalidInput`).
    pub fn bind(
        engine: Arc<ServeEngine>,
        router: Router,
        config: GatewayConfig,
    ) -> std::io::Result<Gateway> {
        let mut seen: Vec<&ModelSelector> = Vec::new();
        for limit in &config.rate_limits {
            let invalid =
                |message: String| std::io::Error::new(std::io::ErrorKind::InvalidInput, message);
            if !limit.rps.is_finite() || limit.rps <= 0.0 {
                return Err(invalid(format!(
                    "rate limit must be finite and positive, got {}",
                    limit.rps
                )));
            }
            if !router
                .routes()
                .iter()
                .any(|r| selectors_match(&r.selector, &limit.selector))
            {
                return Err(invalid(format!(
                    "rate limit selector {:?} matches no configured route",
                    limit.selector
                )));
            }
            if seen
                .iter()
                .any(|prev| selectors_match(prev, &limit.selector))
            {
                return Err(invalid(format!(
                    "duplicate rate limit for route {:?}",
                    limit.selector
                )));
            }
            seen.push(&limit.selector);
        }

        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let (http_listener, http_addr) = match &config.http_addr {
            Some(addr) => {
                let l = TcpListener::bind(addr)?;
                let resolved = l.local_addr()?;
                (Some(l), Some(resolved))
            }
            None => (None, None),
        };

        // The unified registry: every per-route counter below is a
        // handle into it, the engine attaches its stage histograms and
        // stats collector, and a gateway collector exports the
        // transport gauges — so `/metrics`, `stats`, and `routes` all
        // read the same atomics.
        let metrics = Arc::new(MetricsRegistry::new());
        engine.attach_metrics(&metrics);
        let request_counters = RequestCounters::new(&metrics);
        let routing = RoutingState::build(&metrics, router, &config.rate_limits, None);
        let trace = match &config.trace_log {
            Some(path) => Some(TraceSink::open(path, config.trace_sample_percent)?),
            None => None,
        };

        let shared = Arc::new(Shared {
            engine,
            routing: DRwLock::new("gateway.routing", Arc::new(routing)),
            reloads: AtomicU64::new(0),
            config,
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            tcp_accepting: AtomicBool::new(false),
            http_accepting: AtomicBool::new(false),
            shadow_tx: OnceLock::new(),
            shadow_dropped: AtomicU64::new(0),
            pinned: AtomicU64::new(0),
            metrics,
            request_counters,
            trace,
            drain_since: DMutex::new("gateway.drain_since", None),
            http_stop: AtomicBool::new(false),
        });
        // Weak: the registry lives inside Shared, so a strong capture
        // would be a reference cycle. A handle outliving the gateway
        // scrapes the built-ins only.
        let collector_shared = Arc::downgrade(&shared);
        shared
            .metrics
            .register_collector(move || gateway_metric_families(&collector_shared));
        Ok(Gateway {
            listener,
            http_listener,
            shared,
            addr,
            http_addr,
        })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound HTTP front-door address, when one is configured.
    pub fn http_addr(&self) -> Option<SocketAddr> {
        self.http_addr
    }

    /// A control handle (cloneable; usable from other threads).
    pub fn handle(&self) -> GatewayHandle {
        GatewayHandle {
            shared: Arc::clone(&self.shared),
            addr: self.addr,
            http_addr: self.http_addr,
        }
    }

    /// Runs the accept loop on the calling thread until drained, then
    /// joins every session.
    ///
    /// # Errors
    ///
    /// Propagates fatal listener failures (transient accept errors are
    /// retried).
    pub fn run(self) -> std::io::Result<()> {
        let Gateway {
            listener,
            http_listener,
            shared,
            ..
        } = self;
        // The HTTP front door runs its own accept loop so health
        // probes and scrapes never queue behind JSON-lines sessions —
        // and so it can outlive the TCP loop by `drain_grace`.
        let http_worker = match http_listener {
            Some(l) => {
                let http_shared = Arc::clone(&shared);
                Some(
                    std::thread::Builder::new()
                        .name("ccsa-gw-http".to_string())
                        .spawn(move || crate::http::run_http_loop(&http_shared, &l))?,
                )
            }
            None => None,
        };
        // The shadow worker: mirrors run here, off the session threads,
        // so shadow cost never delays any client's next request. One
        // worker is deliberate — shadow encodes funnel into the shared
        // EncodePool anyway, and a single consumer keeps the mirror
        // volume naturally bounded. Spawned unconditionally: a
        // `reload_routes` swap may introduce a shadow target at runtime.
        let shadow_worker = {
            let (tx, rx) = mpsc::sync_channel::<ShadowJob>(SHADOW_QUEUE_CAP);
            shared
                .shadow_tx
                .set(tx)
                .unwrap_or_else(|_| unreachable!("run consumes the gateway"));
            let worker_shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("ccsa-gw-shadow".to_string())
                .spawn(move || {
                    while let Ok(ShadowJob::Mirror(selector, request)) = rx.recv() {
                        run_shadow(&worker_shared, &selector, &request);
                    }
                })?
        };
        // Non-blocking + poll rather than a blocking accept: the loop
        // must keep observing the shutdown flag even when nobody ever
        // connects again, and must not depend on signals interrupting
        // syscalls (glibc `signal` restarts them).
        listener.set_nonblocking(true)?;
        // From here the loop below owns the socket and will accept — the
        // readiness/port-file gate (see `Shared::accepting`) can open.
        // SeqCst: matches every other lifecycle-flag access.
        shared.tcp_accepting.store(true, Ordering::SeqCst);
        let mut sessions: Vec<JoinHandle<()>> = Vec::new();
        while !shared.draining() {
            match listener.accept() {
                Ok((stream, peer)) => {
                    // Undo inherited non-blocking mode before handing the
                    // stream to a session (inheritance is OS-dependent).
                    let _ = stream.set_nonblocking(false);
                    // Request/response lines, not bulk transfer: without
                    // NODELAY, Nagle + delayed ACK turns every round trip
                    // into a ~40 ms stall.
                    let _ = stream.set_nodelay(true);
                    // SeqCst for the connection gauge (admission
                    // decisions), Relaxed for the shed counter (stats).
                    if shared.active.load(Ordering::SeqCst) >= shared.config.max_connections {
                        shared.rejected.fetch_add(1, Ordering::Relaxed);
                        refuse(stream, shared.config.max_connections);
                        continue;
                    }
                    shared.active.fetch_add(1, Ordering::SeqCst); // SeqCst: take the slot
                    let session_shared = Arc::clone(&shared);
                    let session = std::thread::Builder::new()
                        .name(format!("ccsa-gw-{peer}"))
                        .spawn(move || {
                            // Drop guard: the slot is released even if the
                            // session panics, so a bug in one handler can
                            // never wedge the connection cap shut.
                            struct Slot<'a>(&'a AtomicUsize);
                            impl Drop for Slot<'_> {
                                fn drop(&mut self) {
                                    // SeqCst: releases the admission
                                    // slot taken by the accept loop.
                                    self.0.fetch_sub(1, Ordering::SeqCst);
                                }
                            }
                            let _slot = Slot(&session_shared.active);
                            serve_connection(&session_shared, stream, peer);
                        });
                    match session {
                        Ok(handle) => {
                            // Counted only for sessions that actually
                            // started: accepted and rejected partition
                            // incoming connection attempts. Relaxed:
                            // stats counter.
                            shared.accepted.fetch_add(1, Ordering::Relaxed);
                            sessions.push(handle);
                        }
                        Err(_) => {
                            // Spawn failure (thread exhaustion): treat
                            // like the cap — shed the connection.
                            // SeqCst gauge release; Relaxed stats.
                            shared.active.fetch_sub(1, Ordering::SeqCst);
                            shared.rejected.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    sessions.retain(|s| !s.is_finished());
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(shared.config.poll_interval);
                    sessions.retain(|s| !s.is_finished());
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                // Transient resource pressure (EMFILE and friends): back
                // off rather than killing the gateway.
                Err(_) => std::thread::sleep(shared.config.poll_interval),
            }
        }
        for session in sessions {
            let _ = session.join();
        }
        // Sessions are gone, so no new mirrors can arrive; Stop lets
        // the worker finish the queued backlog and exit.
        if let Some(tx) = shared.shadow_tx.get() {
            let _ = tx.send(ShadowJob::Stop);
        }
        let _ = shadow_worker.join();
        if let Some(worker) = http_worker {
            // Keep the front door answering probes until `drain_grace`
            // has elapsed since the drain began: a load balancer must
            // be able to observe `/readyz` = 503 before the socket
            // disappears.
            let since = shared
                .drain_since
                .lock()
                .expect("drain stamp poisoned")
                .unwrap_or_else(Instant::now);
            let grace = shared.config.drain_grace;
            let elapsed = since.elapsed();
            if elapsed < grace {
                std::thread::sleep(grace - elapsed);
            }
            // SeqCst: lifecycle flag, same ordering as its readers.
            shared.http_stop.store(true, Ordering::SeqCst);
            let _ = worker.join();
        }
        Ok(())
    }

    /// Binds and runs on a background thread.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn spawn(
        engine: Arc<ServeEngine>,
        router: Router,
        config: GatewayConfig,
    ) -> std::io::Result<SpawnedGateway> {
        let gateway = Gateway::bind(engine, router, config)?;
        let handle = gateway.handle();
        let join = std::thread::Builder::new()
            .name("ccsa-gw-accept".to_string())
            .spawn(move || gateway.run())?;
        Ok(SpawnedGateway { handle, join })
    }
}

/// Refuses an over-cap connection with a single protocol line.
fn refuse(mut stream: TcpStream, cap: usize) {
    let line = proto::error_response(&format!(
        "gateway at capacity ({cap} connections) — retry later"
    ));
    let _ = writeln!(stream, "{line}");
}

/// What must happen after a response line has been written.
pub(crate) enum AfterResponse {
    /// Nothing; read the next request.
    KeepGoing,
    /// Hand the request to the shadow worker for mirroring.
    Shadow(ModelSelector, Request),
    /// The client asked the gateway to drain.
    Shutdown,
}

fn serve_connection(shared: &Shared, stream: TcpStream, peer: SocketAddr) {
    if stream
        .set_read_timeout(Some(shared.config.poll_interval))
        .is_err()
    {
        return;
    }
    let mut reader = match stream.try_clone() {
        Ok(clone) => BufReader::new(clone),
        Err(_) => return,
    };
    let mut writer = stream;
    // The fallback sticky key when requests carry no "client" field: the
    // peer host, so one machine's traffic stays on one route.
    let fallback_key = peer.ip().to_string();
    let mut line_buf: Vec<u8> = Vec::new();
    let mut seq: u64 = 0;
    // Idle tracking counts *progress* — a completed request or new bytes
    // arriving — so a stalled half-sent request (slowloris) times out
    // just like a silent connection and cannot pin a slot forever.
    let mut last_progress = Instant::now();
    let mut seen_len = 0usize;

    loop {
        if shared.draining() {
            return; // between requests, never mid-request
        }
        // `take` bounds how much one line may buffer: a client streaming
        // an endless newline-free request hits the budget, not the heap.
        let budget = (MAX_LINE_BYTES + 1).saturating_sub(line_buf.len()) as u64;
        match std::io::Read::take(&mut reader, budget).read_until(b'\n', &mut line_buf) {
            Ok(0) if line_buf.len() > MAX_LINE_BYTES => {
                let _ = writeln!(
                    writer,
                    "{}",
                    proto::error_response("request line exceeds 8 MiB")
                );
                return;
            }
            // EOF: client closed (possibly mid-line — an abandoned
            // partial request is dropped, not served).
            Ok(0) => return,
            Ok(_) => {
                if line_buf.last() != Some(&b'\n') {
                    continue; // partial read, EOF will follow
                }
                if line_buf.iter().all(|b| b.is_ascii_whitespace()) {
                    line_buf.clear();
                    continue;
                }
                let line = String::from_utf8(std::mem::take(&mut line_buf));
                let (response, after) = match line {
                    Ok(line) => {
                        handle_line(shared, &line, &fallback_key, seq, peer.ip().is_loopback())
                    }
                    Err(_) => (
                        proto::error_response("request line is not valid UTF-8"),
                        AfterResponse::KeepGoing,
                    ),
                };
                seq += 1;
                last_progress = Instant::now();
                seen_len = 0;
                if writeln!(writer, "{response}")
                    .and_then(|()| writer.flush())
                    .is_err()
                {
                    return; // client went away while we were answering
                }
                match after {
                    AfterResponse::KeepGoing => {}
                    AfterResponse::Shadow(selector, request) => {
                        enqueue_shadow(shared, selector, request);
                    }
                    AfterResponse::Shutdown => {
                        // SeqCst: trips the drain flag every accept
                        // loop polls.
                        shared.shutdown.store(true, Ordering::SeqCst);
                        return;
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if line_buf.len() > seen_len {
                    // Bytes trickled in before the timeout: progress.
                    seen_len = line_buf.len();
                    last_progress = Instant::now();
                }
                if let Some(idle) = shared.config.idle_timeout {
                    if last_progress.elapsed() > idle {
                        return;
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return, // reset, broken pipe, …
        }
    }
}

/// Decodes and serves one request line, returning the response and any
/// post-response action.
fn handle_line(
    shared: &Shared,
    line: &str,
    fallback_key: &str,
    seq: u64,
    peer_is_loopback: bool,
) -> (Json, AfterResponse) {
    let value = match ccsa_serve::json::parse(line) {
        Ok(v) => v,
        Err(e) => {
            return (
                proto::error_response(&e.to_string()),
                AfterResponse::KeepGoing,
            )
        }
    };
    // The sticky-routing key: explicit per-request "client" beats the
    // connection's peer host.
    let client_key = value
        .get("client")
        .and_then(Json::as_str)
        .unwrap_or(fallback_key)
        .to_string();
    // The trace key: clients may send their own (as HTTP clients do via
    // X-Request-Id); anonymous requests get a generated one.
    let request_id = value
        .get("request_id")
        .and_then(Json::as_str)
        .map(str::to_string)
        .unwrap_or_else(generate_request_id);
    let request = match proto::parse_request_value(&value) {
        Ok(r) => r,
        Err(message) => return (proto::error_response(&message), AfterResponse::KeepGoing),
    };
    match request {
        Request::Shutdown => {
            if let Some(refusal) = refuse_remote_admin("shutdown", peer_is_loopback, shared) {
                return (refusal, AfterResponse::KeepGoing);
            }
            (
                Json::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("op", Json::str("shutdown")),
                    ("draining", Json::Bool(true)),
                ]),
                AfterResponse::Shutdown,
            )
        }
        Request::Routes => (routes_response(shared), AfterResponse::KeepGoing),
        Request::ReloadRoutes { routes, shadow } => {
            // Gated exactly like shutdown: on a gateway bound beyond
            // localhost, any client that can open a connection must not
            // be able to repoint every other client's traffic.
            if let Some(refusal) = refuse_remote_admin("reload_routes", peer_is_loopback, shared) {
                return (refusal, AfterResponse::KeepGoing);
            }
            (
                apply_reload(shared, routes, shadow),
                AfterResponse::KeepGoing,
            )
        }
        Request::Stats => (gateway_stats_response(shared), AfterResponse::KeepGoing),
        Request::Ping => (
            proto::dispatch(&shared.engine, Request::Ping),
            AfterResponse::KeepGoing,
        ),
        Request::Compare { .. } | Request::Rank { .. } => {
            serve_scored(shared, request, &client_key, seq, &request_id, "tcp")
        }
    }
}

/// Validates and applies a new routing table, swapping the whole
/// [`RoutingState`] generation atomically. Rejected tables leave the
/// current generation untouched: the router constructor checks weights
/// and shadow fraction, and every selector must resolve against the
/// registry *now* — a reload must never install a route that can only
/// fail.
pub(crate) fn apply_reload(
    shared: &Shared,
    routes: Vec<(ModelSelector, f64)>,
    shadow: Option<(ModelSelector, f64)>,
) -> Json {
    let routes: Vec<Route> = routes
        .into_iter()
        .map(|(selector, weight)| Route { selector, weight })
        .collect();
    for selector in routes
        .iter()
        .map(|r| &r.selector)
        .chain(shadow.iter().map(|(s, _)| s))
    {
        if let Err(e) = shared.engine.resolve_coordinates(selector) {
            return proto::error_response(&format!("reload_routes rejected: {e}"));
        }
    }
    let shadow = shadow.map(|(selector, fraction)| ShadowRoute { selector, fraction });
    let router = match Router::new(routes, shadow) {
        Ok(router) => router,
        Err(e) => return proto::error_response(&format!("reload_routes rejected: {e}")),
    };
    let route_count = router.routes().len();
    let generation = {
        let mut slot = shared.routing.write().expect("routing state poisoned");
        let next = RoutingState::build(
            &shared.metrics,
            router,
            &shared.config.rate_limits,
            Some(&**slot),
        );
        *slot = Arc::new(next);
        // Bumped under the write lock (SeqCst), so generation N always
        // refers to the N-th table a reader can actually observe.
        shared.reloads.fetch_add(1, Ordering::SeqCst) + 1
    };
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("op", Json::str("reload_routes")),
        ("reload_generation", Json::num(generation as f64)),
        ("routes", Json::num(route_count as f64)),
    ])
}

/// Serves a compare/rank request through the router, recording per-route
/// stats, verb/status totals, sampled traces, and deciding shadow
/// mirroring. Shared verbatim by the TCP and HTTP transports, which is
/// what makes their responses bit-identical.
pub(crate) fn serve_scored(
    shared: &Shared,
    request: Request,
    client_key: &str,
    seq: u64,
    request_id: &str,
    transport: &'static str,
) -> (Json, AfterResponse) {
    let selector = match &request {
        Request::Compare { selector, .. } | Request::Rank { selector, .. } => selector.clone(),
        _ => unreachable!("serve_scored only sees compare/rank"),
    };
    let verb: &'static str = match &request {
        Request::Compare { .. } => "compare",
        _ => "rank",
    };
    // One routing generation per request: assignment, admission, and
    // stats attribution all read the same snapshot even if a reload
    // swaps the table mid-request.
    let routing = shared.routing();
    // An explicitly pinned model/version bypasses A/B routing: the
    // client asked for *that* model, and experiments must not second-
    // guess debugging.
    let pinned = selector.name.is_some() || selector.version.is_some();
    let (route_ix, effective) = if pinned {
        shared.pinned.fetch_add(1, Ordering::Relaxed); // Relaxed: stats
        (None, selector)
    } else {
        let ix = routing.router.route_index(client_key);
        (Some(ix), routing.router.routes()[ix].selector.clone())
    };
    let route_lbl = route_label(&effective);

    // Token-bucket admission: an over-limit request is shed here with a
    // polite refusal — before it can occupy the shared encode queue.
    if let Some(ix) = route_ix {
        if let Some(bucket) = &routing.route_limits[ix] {
            let admitted = bucket.lock().expect("token bucket poisoned").try_acquire();
            if !admitted {
                routing.route_stats[ix].record_rate_limited();
                shared.request_counters.record(verb, ReqStatus::RateLimited);
                shared.trace_request(&TraceRecord {
                    request_id,
                    transport,
                    verb,
                    route: &route_lbl,
                    status: ReqStatus::RateLimited.label(),
                    latency_ms: 0.0,
                    stages: None,
                });
                let response = Json::obj(vec![
                    ("ok", Json::Bool(false)),
                    (
                        "error",
                        Json::str(format!(
                            "rate limit exceeded for route {} — retry later",
                            route_label(&routing.router.routes()[ix].selector)
                        )),
                    ),
                    ("rate_limited", Json::Bool(true)),
                ]);
                return (response, AfterResponse::KeepGoing);
            }
        }
    }

    let start = Instant::now();
    let (response, hits, lookups, outcome, stages) = execute(&shared.engine, &effective, &request);
    let latency_ms = start.elapsed().as_secs_f64() * 1e3;

    let status = match outcome {
        Outcome::Served => ReqStatus::Ok,
        Outcome::Failed => ReqStatus::Error,
        Outcome::Shed => ReqStatus::Shed,
    };
    shared.request_counters.record(verb, status);
    shared.trace_request(&TraceRecord {
        request_id,
        transport,
        verb,
        route: &route_lbl,
        status: status.label(),
        latency_ms,
        stages,
    });

    let after = match route_ix {
        None => AfterResponse::KeepGoing,
        Some(ix) => {
            match outcome {
                Outcome::Served => {
                    routing.route_stats[ix].record_success(latency_ms, hits, lookups);
                }
                Outcome::Failed => routing.route_stats[ix].record_error(),
                Outcome::Shed => routing.route_stats[ix].record_queue_shed(),
            }
            match routing.router.shadow_for(client_key, seq) {
                Some(shadow_selector) => AfterResponse::Shadow(shadow_selector.clone(), request),
                None => AfterResponse::KeepGoing,
            }
        }
    };
    (response, after)
}

/// How one executed request ended, for stats attribution.
enum Outcome {
    /// Served successfully.
    Served,
    /// Failed (parse error, unknown model, encoder panic).
    Failed,
    /// Shed by the model's encode-shard capacity bound — intentional
    /// backpressure, not a serving error.
    Shed,
}

/// Builds the error response for a failed/shed request; sheds carry a
/// machine-readable `shed:true` so clients can back off instead of
/// treating the refusal as a hard failure (mirroring `rate_limited`).
fn failure_response(e: &ServeError) -> (Json, Outcome) {
    let shed = matches!(e, ServeError::Encode(enc) if enc.is_shed());
    let mut response = proto::error_response(&e.to_string());
    if shed {
        if let Json::Obj(members) = &mut response {
            members.push(("shed".to_string(), Json::Bool(true)));
        }
        (response, Outcome::Shed)
    } else {
        (response, Outcome::Failed)
    }
}

/// Runs one request against a selector, returning the response plus
/// cache attribution and the engine's stage split: (response, cache
/// hits, cache lookups, outcome, stages). Stages are `None` for
/// requests that failed before reaching the stage pipeline.
fn execute(
    engine: &ServeEngine,
    selector: &ModelSelector,
    request: &Request,
) -> (Json, u64, u64, Outcome, Option<StageTimings>) {
    match request {
        Request::Compare { first, second, .. } => {
            match engine.compare_batch_traced(selector, &[(first, second)]) {
                Ok((outcomes, stages)) => {
                    let outcome = outcomes.into_iter().next().expect("one pair in, one out");
                    let hits = outcome.cache_hits as u64;
                    (
                        proto::compare_response(&outcome),
                        hits,
                        2,
                        Outcome::Served,
                        Some(stages),
                    )
                }
                Err(e) => {
                    let (response, outcome) = failure_response(&e);
                    (response, 0, 0, outcome, None)
                }
            }
        }
        Request::Rank { candidates, .. } => {
            let refs: Vec<&str> = candidates.iter().map(String::as_str).collect();
            match engine.rank_traced(selector, &refs) {
                Ok((outcome, stages)) => {
                    let hits = outcome.cache_hits as u64;
                    let lookups = candidates.len() as u64;
                    (
                        proto::rank_response(&outcome),
                        hits,
                        lookups,
                        Outcome::Served,
                        Some(stages),
                    )
                }
                Err(e) => {
                    let (response, outcome) = failure_response(&e);
                    (response, 0, 0, outcome, None)
                }
            }
        }
        _ => unreachable!("execute only sees compare/rank"),
    }
}

/// Hands a mirror job to the shadow worker; a full queue drops the
/// mirror (counted) rather than slowing the session down.
pub(crate) fn enqueue_shadow(shared: &Shared, selector: ModelSelector, request: Request) {
    match shared.shadow_tx.get() {
        Some(tx) => {
            if tx.try_send(ShadowJob::Mirror(selector, request)).is_err() {
                // Relaxed: stats counter.
                shared.shadow_dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
        // No worker can only mean the router has no shadow — and then
        // shadow_for never returns a selector — but losing a mirror is
        // always safe, so degrade to counting rather than panicking.
        None => {
            // Relaxed: stats counter.
            shared.shadow_dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Mirrors a request to the shadow selector: outcome recorded, response
/// discarded. Runs on the dedicated shadow worker thread, so shadow
/// latency never reaches any client — not in its response, and not in
/// the same connection's next request.
fn run_shadow(shared: &Shared, selector: &ModelSelector, request: &Request) {
    let start = Instant::now();
    let (_, hits, lookups, outcome, _stages) = execute(&shared.engine, selector, request);
    let latency_ms = start.elapsed().as_secs_f64() * 1e3;
    let routing = shared.routing();
    let Some(stats) = &routing.shadow_stats else {
        return; // mirrors only exist when a shadow is configured
    };
    match outcome {
        Outcome::Served => stats.record_success(latency_ms, hits, lookups),
        Outcome::Failed => stats.record_error(),
        Outcome::Shed => stats.record_queue_shed(),
    }
}

/// `name@vN` / `name@latest`: the stable per-route metric label (and
/// the label in error messages).
pub(crate) fn route_label(selector: &ModelSelector) -> String {
    format!(
        "{}@{}",
        selector.name.as_deref().unwrap_or(DEFAULT_MODEL),
        selector
            .version
            .map(|v| format!("v{v}"))
            .unwrap_or_else(|| "latest".to_string())
    )
}

/// The shadow slot's metric label: `shadow:<selector>`, so its
/// Prometheus series never collide with a same-named primary route.
pub(crate) fn shadow_metric_label(selector: &ModelSelector) -> String {
    format!("shadow:{}", route_label(selector))
}

/// Renders one selector as (model, version) JSON fields.
fn selector_fields(selector: &ModelSelector) -> Vec<(&'static str, Json)> {
    vec![
        (
            "model",
            Json::str(
                selector
                    .name
                    .clone()
                    .unwrap_or_else(|| DEFAULT_MODEL.to_string()),
            ),
        ),
        (
            "version",
            match selector.version {
                Some(v) => Json::num(v as f64),
                None => Json::str("latest"),
            },
        ),
    ]
}

/// The `routes` verb: the table, its live traffic shares, and per-route
/// rolling stats — including each route's encode-shard queue depth, so
/// a starving or flooded A/B arm is visible per route, not just in the
/// engine-wide aggregate.
pub(crate) fn routes_response(shared: &Shared) -> Json {
    let routing = shared.routing();
    let engine_stats = shared.engine.stats();
    let shard_depth = |selector: &ModelSelector| -> Json {
        // A route names a (name, version) coordinate; its shard (if it
        // has encoded anything yet) is labelled `name@vN`.
        match shared.engine.resolve_coordinates(selector) {
            Ok((name, version)) => {
                let label = format!("{name}@v{version}");
                let depth = engine_stats
                    .queue_depths
                    .iter()
                    .find(|(l, _)| *l == label)
                    .map_or(0, |(_, d)| *d);
                Json::num(depth as f64)
            }
            Err(_) => Json::Null,
        }
    };
    let shares = routing.router.shares();
    let routes: Vec<Json> = routing
        .router
        .routes()
        .iter()
        .zip(&shares)
        .zip(routing.route_stats.iter().zip(&routing.route_limit_rps))
        .map(|((route, &share), (stats, limit))| {
            let snap = stats.snapshot();
            let mut fields = selector_fields(&route.selector);
            fields.extend([
                // The Prometheus label this route's series carry
                // (`ccsa_route_*_total{route="<metric_label>"}`).
                ("metric_label", Json::str(route_label(&route.selector))),
                ("weight", Json::num(route.weight)),
                ("share", Json::num(share)),
                ("queue_depth", shard_depth(&route.selector)),
                ("requests", Json::num(snap.requests as f64)),
                ("errors", Json::num(snap.errors as f64)),
                (
                    "rate_limit_rps",
                    match limit {
                        Some(rps) => Json::num(*rps),
                        None => Json::Null,
                    },
                ),
                ("rate_limited", Json::num(snap.rate_limited as f64)),
                ("queue_shed", Json::num(snap.queue_shed as f64)),
                ("cache_hit_rate", Json::num(snap.cache_hit_rate)),
                ("p50_ms", Json::num(snap.p50_ms)),
                ("p99_ms", Json::num(snap.p99_ms)),
                ("latency_window", Json::num(snap.window_len as f64)),
            ]);
            Json::obj(fields)
        })
        .collect();
    let shadow = match (routing.router.shadow(), &routing.shadow_stats) {
        (Some(shadow), Some(stats)) => {
            let snap = stats.snapshot();
            let delta = shadow_delta(&routing);
            let delta_field = |pick: fn(&(f64, f64, f64)) -> f64| -> Json {
                delta.as_ref().map_or(Json::Null, |d| Json::num(pick(d)))
            };
            let mut fields = selector_fields(&shadow.selector);
            fields.extend([
                // An explicit marker plus the collision-proof metric
                // label: a shadow entry can share (model, version) with
                // a primary route, and both consumers of this verb and
                // Prometheus need to tell the two apart.
                ("shadow", Json::Bool(true)),
                (
                    "metric_label",
                    Json::str(shadow_metric_label(&shadow.selector)),
                ),
                ("fraction", Json::num(shadow.fraction)),
                ("queue_depth", shard_depth(&shadow.selector)),
                ("requests", Json::num(snap.requests as f64)),
                ("errors", Json::num(snap.errors as f64)),
                (
                    "dropped",
                    // Relaxed: stats counter.
                    Json::num(shared.shadow_dropped.load(Ordering::Relaxed) as f64),
                ),
                ("queue_shed", Json::num(snap.queue_shed as f64)),
                ("cache_hit_rate", Json::num(snap.cache_hit_rate)),
                ("p50_ms", Json::num(snap.p50_ms)),
                ("p99_ms", Json::num(snap.p99_ms)),
                // Shadow-minus-primary deltas over the rolling windows —
                // the canary controller's promote/rollback signal. Null
                // until both arms have observed traffic.
                ("delta_p50_ms", delta_field(|d| d.0)),
                ("delta_p99_ms", delta_field(|d| d.1)),
                ("delta_error_rate", delta_field(|d| d.2)),
            ]);
            Json::obj(fields)
        }
        _ => Json::Null,
    };
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("op", Json::str("routes")),
        ("routes", Json::Arr(routes)),
        ("shadow", shadow),
        (
            "reload_generation",
            // SeqCst: versioned with the table swap; Relaxed below is
            // a stats counter.
            Json::num(shared.reloads.load(Ordering::SeqCst) as f64),
        ),
        (
            "pinned_requests",
            // Relaxed: stats counter.
            Json::num(shared.pinned.load(Ordering::Relaxed) as f64),
        ),
    ])
}

/// Shadow-vs-primary rolling deltas: `(delta_p50_ms, delta_p99_ms,
/// delta_error_rate)`, shadow minus primary. The primary reference is
/// the requests-weighted mean of the per-route window percentiles plus
/// the pooled error rate across routes. `None` until both arms have
/// observed at least one request — a delta against nothing is noise,
/// and the canary controller must hold rather than act on it.
pub(crate) fn shadow_delta(routing: &RoutingState) -> Option<(f64, f64, f64)> {
    let shadow = routing.shadow_stats.as_ref()?.snapshot();
    if shadow.requests == 0 {
        return None;
    }
    let snaps: Vec<RouteStatsSnapshot> = routing.route_stats.iter().map(|s| s.snapshot()).collect();
    let total: u64 = snaps.iter().map(|s| s.requests).sum();
    if total == 0 {
        return None;
    }
    let weighted = |pick: fn(&RouteStatsSnapshot) -> f64| -> f64 {
        snaps
            .iter()
            .map(|s| pick(s) * s.requests as f64)
            .sum::<f64>()
            / total as f64
    };
    let primary_errors: u64 = snaps.iter().map(|s| s.errors).sum();
    let primary_error_rate = primary_errors as f64 / total as f64;
    let shadow_error_rate = shadow.errors as f64 / shadow.requests as f64;
    Some((
        shadow.p50_ms - weighted(|s| s.p50_ms),
        shadow.p99_ms - weighted(|s| s.p99_ms),
        shadow_error_rate - primary_error_rate,
    ))
}

/// Scrape-time families for the transport-level gauges and counters —
/// the same atomics `gateway_stats_response` reports. Holds a weak
/// `Shared` reference: the registry lives inside `Shared`, so a strong
/// capture would leak the gateway.
fn gateway_metric_families(shared: &Weak<Shared>) -> Vec<SampleFamily> {
    use MetricKind::{Counter, Gauge};
    let Some(shared) = shared.upgrade() else {
        return Vec::new();
    };
    let scalar = |name: &str, help: &str, kind: MetricKind, v: f64| {
        SampleFamily::new(name, help, kind, vec![Sample::value(v)])
    };
    // Read the raw flags (SeqCst, like all lifecycle flags), not
    // `draining()`: a scrape must never stamp the drain clock.
    let draining = shared.shutdown.load(Ordering::SeqCst)
        || (shared.config.honor_sigterm && signal::sigterm_received());
    let mut families = vec![
        scalar(
            "ccsa_gateway_active_connections",
            "TCP sessions currently open.",
            Gauge,
            // SeqCst: the admission gauge, read with its own ordering.
            shared.active.load(Ordering::SeqCst) as f64,
        ),
        scalar(
            "ccsa_gateway_max_connections",
            "Configured concurrent-session cap.",
            Gauge,
            shared.config.max_connections as f64,
        ),
        SampleFamily::new(
            "ccsa_gateway_connections_total",
            "Connection attempts, by admission result.",
            Counter,
            vec![
                Sample::new(
                    &[("result", "accepted")],
                    // Relaxed: stats counters, scrape-time reads.
                    shared.accepted.load(Ordering::Relaxed) as f64,
                ),
                Sample::new(
                    &[("result", "rejected")],
                    // Relaxed: stats counter.
                    shared.rejected.load(Ordering::Relaxed) as f64,
                ),
            ],
        ),
        scalar(
            "ccsa_gateway_shadow_dropped_total",
            "Shadow mirrors dropped because the mirror queue was full.",
            Counter,
            // Relaxed: stats counter.
            shared.shadow_dropped.load(Ordering::Relaxed) as f64,
        ),
        scalar(
            "ccsa_gateway_pinned_requests_total",
            "Requests that pinned a model/version and bypassed A/B routing.",
            Counter,
            // Relaxed: stats counter.
            shared.pinned.load(Ordering::Relaxed) as f64,
        ),
        scalar(
            "ccsa_gateway_draining",
            "1 while the gateway is draining (readyz returns 503), else 0.",
            Gauge,
            f64::from(draining),
        ),
        scalar(
            "ccsa_gateway_reloads_total",
            "Routing-table swaps applied via the reload_routes verb.",
            Counter,
            // SeqCst: versioned with the table swap it counts.
            shared.reloads.load(Ordering::SeqCst) as f64,
        ),
    ];
    // Shadow-vs-primary deltas, exported only once both arms have
    // traffic (absent series beat misleading zeros on a fresh gateway).
    let routing = shared.routing();
    if let (Some(shadow), Some((d50, d99, derr))) =
        (routing.router.shadow(), shadow_delta(&routing))
    {
        let label = shadow_metric_label(&shadow.selector);
        let labelled = |v: f64| vec![Sample::new(&[("route", label.as_str())], v)];
        families.extend([
            SampleFamily::new(
                "ccsa_route_shadow_delta_p50_ms",
                "Shadow-minus-primary rolling p50 latency delta (ms).",
                Gauge,
                labelled(d50),
            ),
            SampleFamily::new(
                "ccsa_route_shadow_delta_p99_ms",
                "Shadow-minus-primary rolling p99 latency delta (ms).",
                Gauge,
                labelled(d99),
            ),
            SampleFamily::new(
                "ccsa_route_shadow_delta_error_rate",
                "Shadow-minus-primary pooled error-rate delta.",
                Gauge,
                labelled(derr),
            ),
        ]);
    }
    families
}

/// The `stats` verb: engine stats plus transport-level gauges.
pub(crate) fn gateway_stats_response(shared: &Shared) -> Json {
    let mut response = proto::stats_response(&shared.engine.stats());
    if let Json::Obj(members) = &mut response {
        members.extend([
            (
                "active_connections".to_string(),
                // SeqCst: admission gauge.
                Json::num(shared.active.load(Ordering::SeqCst) as f64),
            ),
            (
                "max_connections".to_string(),
                Json::num(shared.config.max_connections as f64),
            ),
            (
                "accepted_connections".to_string(),
                // Relaxed: stats counters read at snapshot time.
                Json::num(shared.accepted.load(Ordering::Relaxed) as f64),
            ),
            (
                "rejected_at_capacity".to_string(),
                // Relaxed: stats counter.
                Json::num(shared.rejected.load(Ordering::Relaxed) as f64),
            ),
        ]);
    }
    response
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_list_matches_protocol_mutating_verbs() {
        // ccsa-audit's `verbs` rule checks this lexically; this end
        // checks it at link level so a unit-test run catches drift too.
        assert_eq!(LOOPBACK_GATED_VERBS, proto::MUTATING_VERBS);
    }
}
