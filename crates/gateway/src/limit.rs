//! Per-route token-bucket rate limiting.
//!
//! A bucket holds up to `burst` tokens and refills continuously at the
//! configured requests-per-second rate; each admitted request spends one
//! token. Over-limit requests are answered with a polite `ok:false`
//! (`rate_limited: true`) instead of queueing — shedding at the edge
//! keeps an over-budget route from occupying session threads and the
//! shared encode queue with traffic that was never going to be served.
//!
//! The unit is *requests*, not trees: a `compare` carries 2 sources and
//! a `rank` up to [`ccsa_serve::MAX_RANK_CANDIDATES`], so the worst-case
//! encode pressure a limited route can still exert is
//! `RPS × MAX_RANK_CANDIDATES` cold trees per second (the rank cap, the
//! embedding cache, and pool batching bound it in practice). Weighing
//! tokens by candidate count is the follow-on if that bound proves too
//! loose under real traffic.
//!
//! Buckets are per *route*, not per client: the router's sticky
//! assignment already pins a client population to a route, so the bucket
//! caps what that route may demand from the encoder pool. Requests that
//! pin a model/version explicitly bypass the router and therefore also
//! bypass route limits (they are debugging/experiment traffic by
//! definition, and are counted separately as `pinned_requests`).

use std::time::Instant;

use ccsa_serve::ModelSelector;

/// A configured per-route limit: the route's selector and its sustained
/// requests-per-second budget.
#[derive(Debug, Clone, PartialEq)]
pub struct RateLimit {
    /// Which route the limit applies to (matched against the routing
    /// table by selector equality).
    pub selector: ModelSelector,
    /// Sustained requests per second (> 0, finite). The burst capacity
    /// is `max(rps, 1)` — a sub-1-RPS limit still admits single
    /// requests.
    pub rps: f64,
}

/// A continuously refilling token bucket.
#[derive(Debug)]
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    /// A full bucket refilling at `rps` tokens per second.
    ///
    /// # Panics
    ///
    /// Panics unless `rps` is finite and positive (the binary validates
    /// its flags before building buckets).
    pub fn new(rps: f64) -> TokenBucket {
        assert!(
            rps.is_finite() && rps > 0.0,
            "rate limit must be finite and positive, got {rps}"
        );
        let burst = rps.max(1.0);
        TokenBucket {
            rate: rps,
            burst,
            tokens: burst,
            last: Instant::now(),
        }
    }

    /// Spends one token if available, refilling for the elapsed time
    /// first. `false` means the caller is over limit right now.
    pub fn try_acquire(&mut self) -> bool {
        self.try_acquire_at(Instant::now())
    }

    /// [`TokenBucket::try_acquire`] against an explicit clock (tests).
    pub fn try_acquire_at(&mut self, now: Instant) -> bool {
        let elapsed = now.saturating_duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + elapsed * self.rate).min(self.burst);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn burst_then_refusal_then_refill() {
        let mut bucket = TokenBucket::new(2.0);
        let t0 = Instant::now();
        // Burst capacity = 2: two immediate admissions, third refused.
        assert!(bucket.try_acquire_at(t0));
        assert!(bucket.try_acquire_at(t0));
        assert!(!bucket.try_acquire_at(t0));
        // Half a second refills one token at 2 RPS.
        let t1 = t0 + Duration::from_millis(500);
        assert!(bucket.try_acquire_at(t1));
        assert!(!bucket.try_acquire_at(t1));
    }

    #[test]
    fn bucket_never_exceeds_burst() {
        let mut bucket = TokenBucket::new(3.0);
        let t0 = Instant::now();
        // A long idle period must not bank more than the burst.
        let t1 = t0 + Duration::from_secs(3600);
        for _ in 0..3 {
            assert!(bucket.try_acquire_at(t1));
        }
        assert!(!bucket.try_acquire_at(t1));
    }

    #[test]
    fn sub_one_rps_still_admits_singles() {
        let mut bucket = TokenBucket::new(0.5);
        let t0 = Instant::now();
        assert!(bucket.try_acquire_at(t0), "burst floor of 1 token");
        assert!(!bucket.try_acquire_at(t0));
        // Two seconds at 0.5 RPS refills one token.
        assert!(bucket.try_acquire_at(t0 + Duration::from_secs(2)));
    }

    #[test]
    fn sustained_rate_converges_to_rps() {
        let mut bucket = TokenBucket::new(10.0);
        let t0 = Instant::now();
        // 100 attempts over 5 simulated seconds at 20 Hz: ~10 burst +
        // 5 s × 10 RPS ≈ 60 admissions.
        let admitted = (0..100)
            .filter(|i| bucket.try_acquire_at(t0 + Duration::from_millis(i * 50)))
            .count();
        assert!(
            (55..=65).contains(&admitted),
            "admitted {admitted}, expected ≈60"
        );
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn zero_rate_is_rejected() {
        let _ = TokenBucket::new(0.0);
    }
}
