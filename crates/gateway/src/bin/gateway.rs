//! The `gateway` binary: the CCSA serving gateway over TCP.
//!
//! ```sh
//! # Serve a model directory on an ephemeral port, 90/10 across two
//! # versions, shadowing v3 on 20% of traffic:
//! gateway --model-dir ./models --port 0 --port-file /tmp/gw.port \
//!         --route default@v1=0.9 --route default@v2=0.1 \
//!         --shadow default@v3=0.2
//!
//! # Then speak JSON lines over TCP (ops: compare, rank, stats, routes,
//! # ping, shutdown — see ccsa_serve::proto):
//! printf '{"op":"routes"}\n' | nc 127.0.0.1 $(cat /tmp/gw.port)
//! ```
//!
//! The process drains gracefully on SIGTERM or a `shutdown` request:
//! in-flight requests finish, sessions close, and — when
//! `--cache-snapshot` is set — the embedding cache is spilled so the
//! next boot starts warm.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use ccsa_corpus::ProblemTag;
use ccsa_gateway::{signal, Gateway, GatewayConfig, RateLimit, Route, Router, ShadowRoute};
use ccsa_model::pipeline::{Pipeline, PipelineConfig};
use ccsa_serve::{
    BatchConfig, CachePrecision, ModelRegistry, ModelSelector, ServeConfig, ServeEngine,
    DEFAULT_MODEL,
};

struct Options {
    addr: String,
    port: u16,
    port_file: Option<PathBuf>,
    http_port: Option<u16>,
    http_port_file: Option<PathBuf>,
    drain_grace_secs: u64,
    trace_log: Option<PathBuf>,
    trace_sample: f64,
    model_dir: Option<PathBuf>,
    train: Option<ProblemTag>,
    train_seed: u64,
    cache: usize,
    cache_stripes: usize,
    cache_precision: CachePrecision,
    workers: usize,
    max_batch: usize,
    max_conns: usize,
    idle_timeout_secs: u64,
    routes: Vec<Route>,
    shadow: Option<ShadowRoute>,
    rate_limits: Vec<RateLimit>,
    cache_snapshot: Option<PathBuf>,
    allow_remote_shutdown: bool,
}

fn usage_abort(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: gateway [--addr HOST] [--port N] [--port-file PATH]\n\
         \x20              [--http-port N] [--http-port-file PATH]\n\
         \x20              [--drain-grace SECS]\n\
         \x20              [--trace-log PATH] [--trace-sample PCT]\n\
         \x20              [--model-dir DIR] [--train A..I] [--seed N]\n\
         \x20              [--cache N] [--cache-stripes N]\n\
         \x20              [--cache-precision f32|f16|int8] [--workers N]\n\
         \x20              [--max-batch N]\n\
         \x20              [--max-conns N] [--idle-timeout SECS]\n\
         \x20              [--route NAME[@vN]=WEIGHT]... [--shadow NAME[@vN]=FRACTION]\n\
         \x20              [--rate-limit NAME[@vN]=RPS]...\n\
         \x20              [--cache-snapshot PATH] [--allow-remote-shutdown]\n\
         \n\
         TCP serving gateway: JSON-lines protocol over keep-alive\n\
         sessions, weighted sticky A/B routing across registry\n\
         versions, shadow traffic, per-route stats ('routes' op), and\n\
         graceful drain on SIGTERM or a 'shutdown' request.\n\
         --port 0 binds an ephemeral port (written to --port-file).\n\
         --http-port additionally serves an HTTP/1.1 front door on the\n\
         same host: GET /healthz, /readyz (503 while draining),\n\
         /metrics (Prometheus text), /v1/stats, /v1/routes, and\n\
         POST /v1/compare + /v1/rank (responses bit-identical to the\n\
         TCP transport's; rank streams chunked). --drain-grace keeps\n\
         the HTTP probes answering that long after a drain begins, so\n\
         load balancers observe the 503 before the socket goes away.\n\
         --trace-log appends one JSON line per sampled request\n\
         (--trace-sample percent, deterministic on the request ID) with\n\
         its route, status, latency, and per-stage timing split.\n\
         --rate-limit caps a route's sustained requests/second with a\n\
         token bucket; over-limit requests get a polite ok:false and a\n\
         'rate_limited' counter in the 'routes' stats.\n\
         --cache-snapshot warms the embedding cache at boot and spills\n\
         it at shutdown, one file per route/shadow selector\n\
         (<PATH>.<model>.<version>); a snapshot from different weights\n\
         is refused, never silently served.\n\
         --cache-precision stores cached embeddings at f32 (lossless,\n\
         default), f16, or int8 (per-code affine quantization, 4x\n\
         denser); snapshots record their precision and a file written\n\
         at a different precision is refused, never transcoded\n\
         implicitly."
    );
    std::process::exit(2);
}

/// Parses `name[@vN]=X` into a selector plus its number. `name` may be
/// empty (registry default); the version may be `vN`, `N`, or `latest`.
fn parse_target(spec: &str, what: &str) -> (ModelSelector, f64) {
    let Some((target, number)) = spec.rsplit_once('=') else {
        usage_abort(&format!("{what} '{spec}' needs the form name[@vN]=NUMBER"));
    };
    let number: f64 = number
        .parse()
        .unwrap_or_else(|_| usage_abort(&format!("bad number in {what} '{spec}'")));
    let (name, version) = match target.split_once('@') {
        None => (target, None),
        Some((name, "latest")) => (name, None),
        Some((name, v)) => {
            let v = v.strip_prefix('v').unwrap_or(v);
            match v.parse::<u32>() {
                Ok(v) => (name, Some(v)),
                Err(_) => usage_abort(&format!("bad version in {what} '{spec}'")),
            }
        }
    };
    let selector = ModelSelector {
        name: (!name.is_empty()).then(|| name.to_string()),
        version,
    };
    (selector, number)
}

fn parse_options() -> Options {
    let mut opts = Options {
        addr: "127.0.0.1".to_string(),
        port: 7171,
        port_file: None,
        http_port: None,
        http_port_file: None,
        drain_grace_secs: 0,
        trace_log: None,
        trace_sample: 100.0,
        model_dir: None,
        train: None,
        train_seed: 42,
        cache: 4096,
        cache_stripes: 0,
        cache_precision: CachePrecision::F32,
        workers: 0,
        max_batch: 16,
        max_conns: 64,
        idle_timeout_secs: 0,
        routes: Vec::new(),
        shadow: None,
        rate_limits: Vec::new(),
        cache_snapshot: None,
        allow_remote_shutdown: false,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i)
                .cloned()
                .unwrap_or_else(|| usage_abort("missing argument value"))
        };
        match args[i].as_str() {
            "--addr" => opts.addr = value(&mut i),
            "--port" => {
                opts.port = value(&mut i)
                    .parse()
                    .unwrap_or_else(|_| usage_abort("bad --port"))
            }
            "--port-file" => opts.port_file = Some(PathBuf::from(value(&mut i))),
            "--http-port" => {
                opts.http_port = Some(
                    value(&mut i)
                        .parse()
                        .unwrap_or_else(|_| usage_abort("bad --http-port")),
                )
            }
            "--http-port-file" => opts.http_port_file = Some(PathBuf::from(value(&mut i))),
            "--drain-grace" => {
                opts.drain_grace_secs = value(&mut i)
                    .parse()
                    .unwrap_or_else(|_| usage_abort("bad --drain-grace"))
            }
            "--trace-log" => opts.trace_log = Some(PathBuf::from(value(&mut i))),
            "--trace-sample" => {
                let pct: f64 = value(&mut i)
                    .parse()
                    .unwrap_or_else(|_| usage_abort("bad --trace-sample"));
                if !pct.is_finite() || !(0.0..=100.0).contains(&pct) {
                    usage_abort("--trace-sample must be a percentage in [0, 100]");
                }
                opts.trace_sample = pct;
            }
            "--model-dir" => opts.model_dir = Some(PathBuf::from(value(&mut i))),
            "--train" => {
                let tag = value(&mut i);
                opts.train = Some(
                    ProblemTag::ALL
                        .iter()
                        .copied()
                        .find(|t| t.to_string().eq_ignore_ascii_case(&tag))
                        .unwrap_or_else(|| usage_abort(&format!("unknown problem '{tag}'"))),
                );
            }
            "--seed" => {
                opts.train_seed = value(&mut i)
                    .parse()
                    .unwrap_or_else(|_| usage_abort("bad --seed"))
            }
            "--cache" => {
                opts.cache = value(&mut i)
                    .parse()
                    .unwrap_or_else(|_| usage_abort("bad --cache"))
            }
            "--cache-stripes" => {
                opts.cache_stripes = value(&mut i)
                    .parse()
                    .unwrap_or_else(|_| usage_abort("bad --cache-stripes"))
            }
            "--cache-precision" => {
                opts.cache_precision = value(&mut i)
                    .parse()
                    .unwrap_or_else(|e: String| usage_abort(&e))
            }
            "--workers" => {
                opts.workers = value(&mut i)
                    .parse()
                    .unwrap_or_else(|_| usage_abort("bad --workers"))
            }
            "--max-batch" => {
                opts.max_batch = value(&mut i)
                    .parse()
                    .unwrap_or_else(|_| usage_abort("bad --max-batch"))
            }
            "--max-conns" => {
                opts.max_conns = value(&mut i)
                    .parse()
                    .unwrap_or_else(|_| usage_abort("bad --max-conns"))
            }
            "--idle-timeout" => {
                opts.idle_timeout_secs = value(&mut i)
                    .parse()
                    .unwrap_or_else(|_| usage_abort("bad --idle-timeout"))
            }
            "--route" => {
                let spec = value(&mut i);
                let (selector, weight) = parse_target(&spec, "--route");
                opts.routes.push(Route { selector, weight });
            }
            "--shadow" => {
                let spec = value(&mut i);
                let (selector, fraction) = parse_target(&spec, "--shadow");
                opts.shadow = Some(ShadowRoute { selector, fraction });
            }
            "--rate-limit" => {
                let spec = value(&mut i);
                let (selector, rps) = parse_target(&spec, "--rate-limit");
                if !rps.is_finite() || rps <= 0.0 {
                    usage_abort(&format!(
                        "--rate-limit '{spec}' needs a positive requests/second"
                    ));
                }
                opts.rate_limits.push(RateLimit { selector, rps });
            }
            "--cache-snapshot" => opts.cache_snapshot = Some(PathBuf::from(value(&mut i))),
            "--allow-remote-shutdown" => opts.allow_remote_shutdown = true,
            "--help" | "-h" => usage_abort(""),
            other => usage_abort(&format!("unknown argument '{other}'")),
        }
        i += 1;
    }
    opts
}

fn main() {
    let opts = parse_options();
    let mut registry = ModelRegistry::new();

    if let Some(tag) = opts.train {
        eprintln!("[gateway] training a small comparator on problem {tag} …");
        let outcome = Pipeline::new(PipelineConfig::tiny(opts.train_seed))
            .run_single(tag)
            .unwrap_or_else(|e| {
                eprintln!("error: training failed: {e}");
                std::process::exit(1);
            });
        eprintln!("[gateway] held-out accuracy: {:.3}", outcome.test_accuracy);
        match &opts.model_dir {
            Some(dir) => {
                let v =
                    ccsa_model::persist::save_version(dir, &outcome.model).unwrap_or_else(|e| {
                        eprintln!("error: saving model failed: {e}");
                        std::process::exit(1);
                    });
                eprintln!(
                    "[gateway] saved {}",
                    dir.join(format!("model-v{v}.ccsm")).display()
                );
            }
            None => {
                registry.register(DEFAULT_MODEL, 1, outcome.model);
            }
        }
    }

    if let Some(dir) = &opts.model_dir {
        match registry.load_dir(DEFAULT_MODEL, dir) {
            Ok(0) => {
                eprintln!(
                    "error: no model artefacts in {} (hint: --train H writes one)",
                    dir.display()
                );
                std::process::exit(1);
            }
            Ok(n) => eprintln!(
                "[gateway] loaded {n} model version(s) from {}",
                dir.display()
            ),
            Err(e) => {
                eprintln!("error: loading models failed: {e}");
                std::process::exit(1);
            }
        }
    } else if opts.train.is_none() {
        usage_abort("need --model-dir and/or --train");
    }

    let mut routes = opts.routes.clone();
    if routes.is_empty() {
        // No explicit table: everything to the registry default — but a
        // given --shadow still applies (shadow-only ramps are a normal
        // first step).
        routes.push(Route {
            selector: ModelSelector::default(),
            weight: 1.0,
        });
    }
    let router = Router::new(routes, opts.shadow.clone()).unwrap_or_else(|e| {
        eprintln!("error: bad routing table: {e}");
        std::process::exit(2);
    });
    // Fail fast on selector typos: the registry is immutable once the
    // engine owns it, so a route pointing at a version that is not
    // loaded would otherwise fail its whole traffic share at runtime.
    for selector in snapshot_targets(&router) {
        if let Err(e) = registry.resolve(&selector) {
            eprintln!(
                "error: route/shadow target {} does not resolve: {e}",
                selector_label(&selector)
            );
            std::process::exit(2);
        }
    }
    // Same fail-fast for rate limits: a limit naming an absent route
    // would silently never fire, and a duplicated limit would only be
    // rejected by Gateway::bind after the engine is already built.
    for (i, limit) in opts.rate_limits.iter().enumerate() {
        if !router
            .routes()
            .iter()
            .any(|r| ccsa_gateway::selectors_match(&r.selector, &limit.selector))
        {
            eprintln!(
                "error: --rate-limit target {} matches no configured route",
                selector_label(&limit.selector)
            );
            std::process::exit(2);
        }
        if opts.rate_limits[..i]
            .iter()
            .any(|prev| ccsa_gateway::selectors_match(&prev.selector, &limit.selector))
        {
            eprintln!(
                "error: duplicate --rate-limit for route {}",
                selector_label(&limit.selector)
            );
            std::process::exit(2);
        }
    }

    let workers = if opts.workers == 0 {
        ccsa_nn::parallel::default_threads()
    } else {
        opts.workers
    };
    let engine = Arc::new(ServeEngine::new(
        registry,
        &ServeConfig {
            cache_capacity: opts.cache,
            cache_stripes: opts.cache_stripes,
            cache_precision: opts.cache_precision,
            batch: BatchConfig {
                workers,
                max_batch: opts.max_batch,
                ..BatchConfig::default()
            },
        },
    ));

    for (route, share) in router.routes().iter().zip(router.shares()) {
        eprintln!(
            "[gateway] route {} share {:.1}%",
            selector_label(&route.selector),
            share * 100.0
        );
    }
    if let Some(shadow) = router.shadow() {
        eprintln!(
            "[gateway] shadow {} fraction {:.1}%",
            selector_label(&shadow.selector),
            shadow.fraction * 100.0
        );
    }
    for limit in &opts.rate_limits {
        eprintln!(
            "[gateway] rate limit {} at {} req/s",
            selector_label(&limit.selector),
            limit.rps
        );
    }

    // Warm start: one snapshot file per route/shadow selector (each
    // registration has its own cache space and weights digest).
    let warm_targets = snapshot_targets(&router);
    if let Some(base) = &opts.cache_snapshot {
        for selector in &warm_targets {
            let path = snapshot_path(base, selector);
            if !path.exists() {
                continue;
            }
            match engine.warm_cache(selector, &path) {
                Ok(n) => eprintln!(
                    "[gateway] warm start: {n} cached embeddings for {} from {}",
                    selector_label(selector),
                    path.display()
                ),
                Err(e) => eprintln!(
                    "[gateway] warm start skipped for {}: {e}",
                    selector_label(selector)
                ),
            }
        }
    }

    if !signal::install_sigterm_handler() {
        eprintln!("[gateway] warning: SIGTERM handler not installed; use the 'shutdown' op");
    }

    let config = GatewayConfig {
        addr: format!("{}:{}", opts.addr, opts.port),
        max_connections: opts.max_conns,
        idle_timeout: (opts.idle_timeout_secs > 0)
            .then(|| Duration::from_secs(opts.idle_timeout_secs)),
        honor_sigterm: true,
        allow_remote_shutdown: opts.allow_remote_shutdown,
        rate_limits: opts.rate_limits.clone(),
        http_addr: opts.http_port.map(|port| format!("{}:{}", opts.addr, port)),
        drain_grace: Duration::from_secs(opts.drain_grace_secs),
        trace_log: opts.trace_log.clone(),
        trace_sample_percent: opts.trace_sample,
        ..GatewayConfig::default()
    };
    let gateway = match Gateway::bind(Arc::clone(&engine), router, config) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("error: bind failed: {e}");
            std::process::exit(1);
        }
    };
    let addr = gateway.local_addr();
    if let Some(http_addr) = gateway.http_addr() {
        eprintln!("[gateway] http front door on {http_addr} (healthz/readyz/metrics/v1)");
    }
    eprintln!(
        "[gateway] listening on {addr} (cache={} workers={} max_batch={} max_conns={})",
        opts.cache, workers, opts.max_batch, opts.max_conns
    );

    // Port files are the "come probe me" signal for supervisors, so they
    // must not be written at bind time: a probe racing the accept loops
    // could connect to a bound-but-not-accepting listener and hang. A
    // helper thread waits for every accept loop to go live first (the
    // same condition `readyz` reports as `starting`). Detached: if an
    // accept loop never comes up the gateway is exiting anyway, and a
    // drain must not block on this thread.
    {
        let handle = gateway.handle();
        let port_file = opts.port_file.clone();
        let http_port_file = opts.http_port_file.clone();
        let http_port = gateway.http_addr().map(|a| a.port());
        let _detached = std::thread::spawn(move || {
            while !handle.accepting() {
                std::thread::sleep(Duration::from_millis(2));
            }
            if let Some(path) = &port_file {
                if let Err(e) = std::fs::write(path, format!("{}\n", addr.port())) {
                    eprintln!("error: writing --port-file failed: {e}");
                    std::process::exit(1);
                }
            }
            if let (Some(path), Some(port)) = (&http_port_file, http_port) {
                if let Err(e) = std::fs::write(path, format!("{port}\n")) {
                    eprintln!("error: writing --http-port-file failed: {e}");
                    std::process::exit(1);
                }
            }
        });
    }

    if let Err(e) = gateway.run() {
        eprintln!("error: gateway failed: {e}");
        std::process::exit(1);
    }

    if let Some(base) = &opts.cache_snapshot {
        for selector in &warm_targets {
            let path = snapshot_path(base, selector);
            match engine.snapshot_cache(selector, &path) {
                Ok(n) => eprintln!(
                    "[gateway] spilled {n} cached embeddings for {} to {}",
                    selector_label(selector),
                    path.display()
                ),
                Err(e) => eprintln!(
                    "[gateway] cache spill failed for {}: {e}",
                    selector_label(selector)
                ),
            }
        }
    }
    eprintln!("[gateway] drained cleanly");
}

/// `name@vN` / `name@latest` for logs.
fn selector_label(selector: &ModelSelector) -> String {
    format!(
        "{}@{}",
        selector.name.as_deref().unwrap_or(DEFAULT_MODEL),
        selector
            .version
            .map(|v| format!("v{v}"))
            .unwrap_or_else(|| "latest".to_string())
    )
}

/// The distinct selectors whose caches are worth spilling/warming: every
/// route plus the shadow target.
fn snapshot_targets(router: &Router) -> Vec<ModelSelector> {
    let mut targets: Vec<ModelSelector> = Vec::new();
    for route in router.routes() {
        if !targets.contains(&route.selector) {
            targets.push(route.selector.clone());
        }
    }
    if let Some(shadow) = router.shadow() {
        if !targets.contains(&shadow.selector) {
            targets.push(shadow.selector.clone());
        }
    }
    targets
}

/// Per-selector snapshot file: `<base>.<name>.<version>` (the digest
/// check inside the snapshot guards against a `latest` that resolves to
/// different weights across boots).
fn snapshot_path(base: &std::path::Path, selector: &ModelSelector) -> PathBuf {
    let name: String = selector
        .name
        .as_deref()
        .unwrap_or(DEFAULT_MODEL)
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    let version = selector
        .version
        .map(|v| format!("v{v}"))
        .unwrap_or_else(|| "latest".to_string());
    let mut file = base
        .file_name()
        .map(|f| f.to_os_string())
        .unwrap_or_default();
    file.push(format!(".{name}.{version}"));
    base.with_file_name(file)
}
