//! End-to-end gateway tests: real sockets, concurrent clients, routing,
//! shadow traffic, disconnects, admission control, and graceful drain.
//!
//! The load-bearing invariant throughout: the TCP/routing layer is
//! **score-preserving** — every probability a client reads over the wire
//! is bit-identical to what the in-process [`ServeEngine`] produces for
//! the same (model, version) selector.

use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use ccsa_gateway::{
    signal, Gateway, GatewayClient, GatewayConfig, HttpGatewayClient, Route, Router, ShadowRoute,
};
use ccsa_model::comparator::{Comparator, EncoderConfig};
use ccsa_model::pipeline::TrainedModel;
use ccsa_nn::param::Params;
use ccsa_nn::treelstm::{Direction, TreeLstmConfig};
use ccsa_serve::json::Json;
use ccsa_serve::{BatchConfig, ModelRegistry, ModelSelector, ServeConfig, ServeEngine};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const FAST: &str = "int main() { int n; cin >> n; cout << n * (n + 1) / 2; return 0; }";
const SLOW: &str = "int main() { int n; cin >> n; long long s = 0; \
                    for (int i = 0; i <= n; i++) for (int j = 0; j < i; j++) s++; \
                    cout << s; return 0; }";
const MID: &str = "int main() { int n; cin >> n; long long s = 0; \
                   for (int i = 0; i < n; i++) s += i; cout << s; return 0; }";
const PAIRS: [(&str, &str); 3] = [(SLOW, FAST), (FAST, MID), (MID, SLOW)];

fn tiny_model(seed: u64) -> TrainedModel {
    let config = EncoderConfig::TreeLstm(TreeLstmConfig {
        embed_dim: 6,
        hidden: 6,
        layers: 1,
        direction: Direction::Uni,
        sigmoid_candidate: false,
    });
    let mut params = Params::new();
    let comparator = Comparator::new(&config, &mut params, &mut StdRng::seed_from_u64(seed));
    TrainedModel { comparator, params }
}

/// An engine serving `default` v1 and v2 with *different* weights, so a
/// misrouted request is detectable by its score.
fn two_version_engine() -> Arc<ServeEngine> {
    let mut registry = ModelRegistry::new();
    registry.register("default", 1, tiny_model(1));
    registry.register("default", 2, tiny_model(2));
    Arc::new(ServeEngine::new(
        registry,
        &ServeConfig {
            cache_capacity: 512,
            cache_stripes: 0,
            cache_precision: Default::default(),
            batch: BatchConfig {
                workers: 2,
                max_batch: 8,
                ..BatchConfig::default()
            },
        },
    ))
}

fn versioned(version: u32) -> ModelSelector {
    ModelSelector {
        name: Some("default".to_string()),
        version: Some(version),
    }
}

fn split_router(w1: f64, w2: f64) -> Router {
    Router::new(
        vec![
            Route {
                selector: versioned(1),
                weight: w1,
            },
            Route {
                selector: versioned(2),
                weight: w2,
            },
        ],
        None,
    )
    .unwrap()
}

fn connect(addr: SocketAddr) -> GatewayClient {
    let mut client = GatewayClient::connect(addr).expect("connect");
    client
        .set_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    client
}

#[test]
fn concurrent_clients_get_bit_identical_scores() {
    // ≥4 concurrent keep-alive clients against a 50/50 two-route table:
    // every reply must match the in-process engine bit for bit under the
    // (model, version) the reply itself claims, and each client must be
    // sticky to one version.
    let engine = two_version_engine();
    // In-process references, computed on the same engine the gateway
    // serves from.
    let expected: Vec<Vec<f32>> = (1..=2u32)
        .map(|v| {
            PAIRS
                .iter()
                .map(|(a, b)| {
                    engine
                        .compare(&versioned(v), a, b)
                        .unwrap()
                        .prob_first_slower
                })
                .collect()
        })
        .collect();

    let gateway = Gateway::spawn(
        Arc::clone(&engine),
        split_router(0.5, 0.5),
        GatewayConfig::default(),
    )
    .unwrap();
    let addr = gateway.addr();

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6)
            .map(|t| {
                let expected = &expected;
                scope.spawn(move || {
                    let mut client = connect(addr);
                    let key = format!("client-{t}");
                    let mut seen_version = None;
                    for round in 0..8 {
                        let (a, b) = PAIRS[round % PAIRS.len()];
                        let reply = client.compare(a, b, Some(&key)).unwrap();
                        assert_eq!(reply.model, "default");
                        let v = reply.version;
                        assert!(v == 1 || v == 2, "unknown version {v}");
                        // Sticky: one client key never changes route.
                        assert_eq!(*seen_version.get_or_insert(v), v, "client {key} flapped");
                        assert_eq!(
                            reply.prob_first_slower as f32,
                            expected[(v - 1) as usize][round % PAIRS.len()],
                            "wire score diverged from in-process engine"
                        );
                    }
                    seen_version.unwrap()
                })
            })
            .collect();
        let versions: Vec<u32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(versions.len(), 6);
    });

    // Ranking over the wire agrees with in-process ranking too.
    let mut client = connect(addr);
    let reply_order = client
        .rank(&[FAST, SLOW, MID], Some("rank-client"))
        .unwrap();
    let route_version = split_router(0.5, 0.5)
        .route_for("rank-client")
        .selector
        .clone();
    let direct = engine.rank(&route_version, &[FAST, SLOW, MID]).unwrap();
    let direct_order: Vec<usize> = direct.ranking.iter().map(|r| r.index).collect();
    assert_eq!(reply_order, direct_order);

    gateway.shutdown_and_join().unwrap();
}

#[test]
fn mid_request_disconnects_leave_the_gateway_healthy() {
    let engine = two_version_engine();
    let gateway = Gateway::spawn(
        Arc::clone(&engine),
        Router::single_default(),
        GatewayConfig::default(),
    )
    .unwrap();
    let addr = gateway.addr();
    let handle = gateway.handle();

    let mut healthy = connect(addr);
    let before = healthy.compare(SLOW, FAST, Some("healthy")).unwrap();

    // A client that dies mid-line: partial request, no newline, gone.
    {
        use std::io::Write as _;
        let mut dead = TcpStream::connect(addr).unwrap();
        dead.write_all(br#"{"op":"compare","first":"int main"#)
            .unwrap();
        dead.shutdown(std::net::Shutdown::Both).unwrap();
    }
    // A client that sends a full request but vanishes before reading the
    // response: the server's write fails, nobody else cares.
    {
        use std::io::Write as _;
        let mut rude = TcpStream::connect(addr).unwrap();
        writeln!(
            rude,
            r#"{{"op":"compare","first":{},"second":{}}}"#,
            Json::str(SLOW),
            Json::str(FAST)
        )
        .unwrap();
        drop(rude);
    }

    // The surviving session keeps working and scores stay identical.
    let after = healthy.compare(SLOW, FAST, Some("healthy")).unwrap();
    assert_eq!(after.prob_first_slower, before.prob_first_slower);
    assert!(healthy.ping().unwrap());

    // The dead sessions get reaped (bounded wait; reaping needs the
    // session threads to notice EOF).
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.active_connections() > 1 {
        assert!(
            Instant::now() < deadline,
            "dead connections were never reaped: {} active",
            handle.active_connections()
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    gateway.shutdown_and_join().unwrap();
}

#[test]
fn stalled_partial_requests_hit_the_idle_timeout() {
    // Slowloris: a client that sends half a request and then stalls must
    // be reaped by the idle timeout just like a silent one — otherwise
    // max_connections such clients pin the gateway at capacity forever.
    let engine = two_version_engine();
    let gateway = Gateway::spawn(
        Arc::clone(&engine),
        Router::single_default(),
        GatewayConfig {
            idle_timeout: Some(Duration::from_millis(200)),
            ..GatewayConfig::default()
        },
    )
    .unwrap();
    let handle = gateway.handle();

    use std::io::Write as _;
    let mut stalled = TcpStream::connect(gateway.addr()).unwrap();
    stalled.write_all(br#"{"op":"compare","first":"#).unwrap();
    let mut silent = TcpStream::connect(gateway.addr()).unwrap();
    silent.write_all(b" ").unwrap();

    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.active_connections() > 0 {
        assert!(
            Instant::now() < deadline,
            "stalled connections never timed out: {} active",
            handle.active_connections()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    // Both sockets were closed server-side.
    drop(stalled);
    drop(silent);
    gateway.shutdown_and_join().unwrap();
}

#[test]
fn connection_cap_refuses_politely() {
    let engine = two_version_engine();
    let gateway = Gateway::spawn(
        Arc::clone(&engine),
        Router::single_default(),
        GatewayConfig {
            max_connections: 2,
            ..GatewayConfig::default()
        },
    )
    .unwrap();
    let addr = gateway.addr();

    let mut first = connect(addr);
    let mut second = connect(addr);
    assert!(first.ping().unwrap());
    assert!(second.ping().unwrap());

    // The third connection gets one unsolicited ok:false line, then EOF
    // (read it without writing: the refusal arrives regardless).
    {
        use std::io::BufRead as _;
        let refused = TcpStream::connect(addr).unwrap();
        refused
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut reader = std::io::BufReader::new(refused);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let response = ccsa_serve::json::parse(line.trim_end()).unwrap();
        assert_eq!(response.get("ok"), Some(&Json::Bool(false)));
        assert!(response
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("capacity"));
        let mut rest = String::new();
        assert_eq!(reader.read_line(&mut rest).unwrap(), 0, "then EOF");
    }

    // Freeing a slot re-admits new clients.
    drop(first);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let mut retry = connect(addr);
        if retry.ping().unwrap_or(false) {
            break;
        }
        assert!(Instant::now() < deadline, "slot never freed");
        std::thread::sleep(Duration::from_millis(20));
    }

    gateway.shutdown_and_join().unwrap();
}

#[test]
fn shutdown_verb_drains_every_session() {
    let engine = two_version_engine();
    let gateway = Gateway::spawn(
        Arc::clone(&engine),
        Router::single_default(),
        GatewayConfig::default(),
    )
    .unwrap();
    let addr = gateway.addr();

    let mut bystander = connect(addr);
    assert!(bystander.ping().unwrap());

    let mut terminator = connect(addr);
    terminator.shutdown().unwrap();

    // The accept loop exits and all sessions close; join must complete.
    gateway.shutdown_and_join().unwrap();

    // The bystander's session was closed between requests…
    assert!(bystander.ping().is_err(), "drained session must be closed");
    // …and the port no longer accepts.
    assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err());
}

#[test]
fn rate_limited_route_sheds_politely_and_counts() {
    use ccsa_gateway::RateLimit;

    let engine = two_version_engine();
    let router = Router::new(
        vec![Route {
            selector: versioned(1),
            weight: 1.0,
        }],
        None,
    )
    .unwrap();
    let gateway = Gateway::spawn(
        Arc::clone(&engine),
        router,
        GatewayConfig {
            rate_limits: vec![RateLimit {
                selector: versioned(1),
                rps: 0.5, // burst floor of 1 token, ~2 s per refill
            }],
            ..GatewayConfig::default()
        },
    )
    .unwrap();
    let mut client = connect(gateway.addr());

    let line =
        format!(r#"{{"op":"compare","client":"limited","first":"{SLOW}","second":"{FAST}"}}"#);
    let mut admitted = 0u64;
    let mut limited = 0u64;
    for _ in 0..10 {
        let v = client.request_line(&line).unwrap();
        if v.get("ok") == Some(&Json::Bool(true)) {
            admitted += 1;
            assert!(v.get("rate_limited").is_none());
        } else {
            assert_eq!(
                v.get("rate_limited"),
                Some(&Json::Bool(true)),
                "refusal must be marked rate_limited: {v}"
            );
            let error = v.get("error").unwrap().as_str().unwrap();
            assert!(error.contains("rate limit"), "polite error, got {error}");
            limited += 1;
        }
    }
    assert!(admitted >= 1, "the burst token must admit something");
    assert!(limited >= 1, "10 rapid requests at 0.5 RPS must shed");
    assert_eq!(admitted + limited, 10);

    // The connection survives shedding, and pinned requests bypass the
    // route bucket (they are not routed traffic).
    assert!(client.ping().unwrap());
    let pinned = format!(
        r#"{{"op":"compare","model":"default","version":2,"first":"{SLOW}","second":"{FAST}"}}"#
    );
    for _ in 0..3 {
        let v = client.request_line(&pinned).unwrap();
        assert_eq!(
            v.get("ok"),
            Some(&Json::Bool(true)),
            "pinned traffic must never be route-limited: {v}"
        );
    }

    // The `routes` verb reports the configured limit and the shed count,
    // plus the route's encode-shard queue depth (idle here).
    let routes = client.routes().unwrap();
    let route = &routes.get("routes").unwrap().as_arr().unwrap()[0];
    assert_eq!(route.get("rate_limit_rps").unwrap().as_f64(), Some(0.5));
    assert_eq!(route.get("rate_limited").unwrap().as_u64(), Some(limited));
    assert_eq!(route.get("requests").unwrap().as_u64(), Some(admitted));
    assert_eq!(route.get("queue_depth").unwrap().as_u64(), Some(0));
    gateway.shutdown_and_join().unwrap();
}

#[test]
fn rate_limit_for_unknown_route_fails_bind() {
    use ccsa_gateway::RateLimit;

    let engine = two_version_engine();
    let result = Gateway::bind(
        engine,
        Router::single_default(),
        GatewayConfig {
            rate_limits: vec![RateLimit {
                selector: versioned(2), // not in the single-default table
                rps: 10.0,
            }],
            ..GatewayConfig::default()
        },
    );
    match result {
        Ok(_) => panic!("a limit naming no route must fail fast"),
        Err(err) => assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput),
    }
}

#[test]
fn sigterm_flag_drains_a_watching_gateway() {
    let engine = two_version_engine();
    let gateway = Gateway::spawn(
        Arc::clone(&engine),
        Router::single_default(),
        GatewayConfig {
            honor_sigterm: true,
            ..GatewayConfig::default()
        },
    )
    .unwrap();
    let mut client = connect(gateway.addr());
    assert!(client.ping().unwrap());

    signal::simulate_sigterm();
    // No handle.shutdown() — the signal flag alone must drain it.
    gateway.shutdown_and_join().unwrap();
}

#[test]
fn cache_snapshot_warms_a_restarted_gateway() {
    let dir = std::env::temp_dir().join(format!("ccsa-gw-warm-{}", std::process::id()));
    let _ = std::fs::create_dir_all(&dir);
    let snapshot = dir.join("cache.ccsc");
    let sel = ModelSelector::default();

    // First life: serve traffic, spill the cache at shutdown.
    let engine1 = Arc::new(ServeEngine::with_model(
        tiny_model(5),
        &ServeConfig::default(),
    ));
    let gw1 = Gateway::spawn(
        Arc::clone(&engine1),
        Router::single_default(),
        GatewayConfig::default(),
    )
    .unwrap();
    let mut client = connect(gw1.addr());
    let cold = client.compare(SLOW, FAST, None).unwrap();
    assert_eq!(cold.cache_hits, 0);
    gw1.shutdown_and_join().unwrap();
    assert_eq!(engine1.snapshot_cache(&sel, &snapshot).unwrap(), 2);

    // Second life: same weights, fresh process state, warm start.
    let engine2 = Arc::new(ServeEngine::with_model(
        tiny_model(5),
        &ServeConfig::default(),
    ));
    assert_eq!(engine2.warm_cache(&sel, &snapshot).unwrap(), 2);
    let gw2 = Gateway::spawn(
        Arc::clone(&engine2),
        Router::single_default(),
        GatewayConfig::default(),
    )
    .unwrap();
    let mut client = connect(gw2.addr());
    let warm = client.compare(SLOW, FAST, None).unwrap();
    assert_eq!(warm.cache_hits, 2, "restart must start warm");
    assert_eq!(warm.prob_first_slower, cold.prob_first_slower);
    assert_eq!(
        engine2.stats().batch.jobs,
        0,
        "no re-encoding after warm start"
    );
    gw2.shutdown_and_join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shadow_traffic_reaches_the_candidate_and_is_reported() {
    let engine = two_version_engine();
    let router = Router::new(
        vec![Route {
            selector: versioned(1),
            weight: 1.0,
        }],
        Some(ShadowRoute {
            selector: versioned(2),
            fraction: 1.0, // mirror everything: the strongest case
        }),
    )
    .unwrap();
    let gateway = Gateway::spawn(Arc::clone(&engine), router, GatewayConfig::default()).unwrap();
    let mut client = connect(gateway.addr());

    let expected_v1 = engine
        .compare(&versioned(1), SLOW, FAST)
        .unwrap()
        .prob_first_slower;
    for i in 0..6 {
        let reply = client.compare(SLOW, FAST, Some(&format!("s{i}"))).unwrap();
        // Every response comes from the primary, never the shadow.
        assert_eq!(reply.version, 1);
        assert_eq!(reply.prob_first_slower as f32, expected_v1);
    }

    // Mirrors run asynchronously on the shadow worker; wait for all six
    // to land (bounded), then assert the full accounting.
    let deadline = Instant::now() + Duration::from_secs(10);
    let routes = loop {
        let routes = client.routes().unwrap();
        let mirrored = routes
            .get("shadow")
            .and_then(|s| s.get("requests"))
            .and_then(Json::as_u64)
            .unwrap();
        if mirrored == 6 {
            break routes;
        }
        assert!(
            Instant::now() < deadline,
            "only {mirrored}/6 mirrors arrived (fraction 1.0 must mirror every routed request)"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    let primary = &routes.get("routes").unwrap().as_arr().unwrap()[0];
    assert_eq!(primary.get("requests").unwrap().as_u64(), Some(6));
    assert_eq!(primary.get("errors").unwrap().as_u64(), Some(0));
    let shadow = routes.get("shadow").unwrap();
    assert_eq!(shadow.get("version").unwrap().as_u64(), Some(2));
    assert_eq!(shadow.get("errors").unwrap().as_u64(), Some(0));
    assert_eq!(shadow.get("dropped").unwrap().as_u64(), Some(0));

    // The candidate really ran: its registration shows cache lookups.
    let v2_lookups: u64 = engine
        .stats()
        .model_cache
        .iter()
        .filter(|m| m.version == 2)
        .map(|m| m.hits + m.misses)
        .sum();
    assert!(v2_lookups > 0, "shadow model never saw traffic");

    gateway.shutdown_and_join().unwrap();
}

/// A gateway config with the HTTP front door on an ephemeral port.
fn http_config() -> GatewayConfig {
    GatewayConfig {
        http_addr: Some("127.0.0.1:0".to_string()),
        ..GatewayConfig::default()
    }
}

fn http_connect(addr: SocketAddr) -> HttpGatewayClient {
    let mut client = HttpGatewayClient::connect(addr).expect("http connect");
    client
        .set_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    client
}

/// The value of one series in a Prometheus text exposition, located by
/// its exact `name{labels}` prefix.
fn metric_value(text: &str, series: &str) -> f64 {
    text.lines()
        .find(|l| {
            l.strip_prefix(series)
                .is_some_and(|rest| rest.starts_with(' '))
        })
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("series {series:?} not found in scrape"))
}

#[test]
fn http_and_tcp_scored_responses_are_bit_identical() {
    // The acceptance invariant for the front door: the same request body
    // over HTTP and over JSON-lines produces byte-identical response
    // JSON — same scores, same fields, same serialization.
    let engine = two_version_engine();
    let gateway = Gateway::spawn(engine, split_router(0.5, 0.5), http_config()).unwrap();
    let mut tcp = connect(gateway.addr());
    let mut http = http_connect(gateway.http_addr().unwrap());

    // Warm the embedding cache for every tree the comparisons below
    // use: `cache_hits` is engine state, and both transports must see
    // the *same* state to produce the same bytes.
    tcp.compare(SLOW, FAST, Some("twin")).unwrap();
    tcp.rank(&[FAST, SLOW, MID, FAST], Some("twin")).unwrap();

    // Same sticky key on both transports → same route, same model.
    let compare_body = Json::obj(vec![
        ("first", Json::str(SLOW)),
        ("second", Json::str(FAST)),
        ("client", Json::str("twin")),
    ])
    .to_string();
    let tcp_reply = tcp
        .request_line(&format!(
            r#"{{"op":"compare","first":{first},"second":{second},"client":"twin"}}"#,
            first = Json::str(SLOW),
            second = Json::str(FAST),
        ))
        .unwrap();
    let http_reply = http
        .post("/v1/compare", &compare_body, Some("req-compare-1"))
        .unwrap();
    assert_eq!(http_reply.status, 200);
    assert_eq!(http_reply.request_id.as_deref(), Some("req-compare-1"));
    assert_eq!(
        http_reply.body.trim_end(),
        tcp_reply.to_string(),
        "HTTP and TCP compare responses diverged"
    );

    // Rank streams chunked; the reassembled body must still match.
    let candidates = Json::Arr(
        [FAST, SLOW, MID, FAST]
            .iter()
            .map(|&c| Json::str(c))
            .collect(),
    );
    let rank_body = Json::obj(vec![
        ("candidates", candidates.clone()),
        ("client", Json::str("twin")),
    ])
    .to_string();
    let tcp_rank = tcp
        .request(&Json::obj(vec![
            ("op", Json::str("rank")),
            ("candidates", candidates),
            ("client", Json::str("twin")),
        ]))
        .unwrap();
    let http_rank = http.post("/v1/rank", &rank_body, None).unwrap();
    assert_eq!(http_rank.status, 200);
    // Anonymous requests still get a (generated) ID echoed back.
    assert!(http_rank.request_id.is_some());
    assert_eq!(
        http_rank.body.trim_end(),
        tcp_rank.to_string(),
        "HTTP and TCP rank responses diverged"
    );

    // Spot-check the front door's error contract on the same session.
    assert_eq!(http.get("/nope").unwrap().status, 404);
    assert_eq!(http.get("/v1/compare").unwrap().status, 405);
    let mismatched = http
        .post("/v1/compare", r#"{"op":"rank","candidates":[]}"#, None)
        .unwrap();
    assert_eq!(mismatched.status, 400);

    gateway.shutdown_and_join().unwrap();
}

#[test]
fn readyz_flips_to_503_through_the_drain_grace_window() {
    let engine = two_version_engine();
    let config = GatewayConfig {
        drain_grace: Duration::from_millis(1500),
        ..http_config()
    };
    let gateway = Gateway::spawn(engine, Router::single_default(), config).unwrap();
    let handle = gateway.handle();
    let http_addr = gateway.http_addr().unwrap();

    let mut http = http_connect(http_addr);
    assert_eq!(http.get("/healthz").unwrap().status, 200);
    let ready = http.get("/readyz").unwrap();
    assert_eq!(ready.status, 200);
    assert_eq!(ready.body, "ready\n");

    handle.shutdown();
    // The TCP loop exits immediately, but the front door must keep
    // answering — with readiness flipped — for the whole grace window.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let reply = http.get("/readyz").unwrap();
        if reply.status == 503 {
            assert_eq!(reply.body, "draining\n");
            break;
        }
        assert!(
            Instant::now() < deadline,
            "readyz never flipped to 503 after shutdown"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    // Liveness stays green while draining; scored traffic is refused
    // with an explicit marker.
    assert_eq!(http.get("/healthz").unwrap().status, 200);
    let refused = http
        .post(
            "/v1/compare",
            &Json::obj(vec![
                ("first", Json::str(FAST)),
                ("second", Json::str(SLOW)),
            ])
            .to_string(),
            None,
        )
        .unwrap();
    assert_eq!(refused.status, 503);
    let refused_json = ccsa_serve::json::parse(refused.body.trim_end()).unwrap();
    assert_eq!(
        refused_json.get("draining").and_then(Json::as_bool),
        Some(true)
    );
    // The scrape keeps working during the grace window and reports the
    // drain.
    let scrape = http.get("/metrics").unwrap();
    assert_eq!(scrape.status, 200);
    assert_eq!(metric_value(&scrape.body, "ccsa_gateway_draining"), 1.0);

    gateway.shutdown_and_join().unwrap();
}

#[test]
fn metrics_scrape_is_rich_and_agrees_with_the_verbs() {
    let engine = two_version_engine();
    let gateway = Gateway::spawn(engine, split_router(0.5, 0.5), http_config()).unwrap();
    let mut tcp = connect(gateway.addr());
    let mut http = http_connect(gateway.http_addr().unwrap());

    // Traffic over both transports.
    for _ in 0..3 {
        tcp.compare(SLOW, FAST, Some("scraped")).unwrap();
    }
    let body = Json::obj(vec![
        ("first", Json::str(FAST)),
        ("second", Json::str(MID)),
        ("client", Json::str("scraped")),
    ])
    .to_string();
    assert_eq!(http.post("/v1/compare", &body, None).unwrap().status, 200);

    let stats = tcp.stats().unwrap();
    let routes = tcp.routes().unwrap();
    let scrape = http.get("/metrics").unwrap();
    assert_eq!(scrape.status, 200);
    let text = &scrape.body;

    // ≥ 12 metric families, every one typed.
    let families: Vec<&str> = text
        .lines()
        .filter_map(|l| l.strip_prefix("# TYPE "))
        .filter_map(|l| l.split_ascii_whitespace().next())
        .collect();
    assert!(
        families.len() >= 12,
        "scrape exposes only {} families: {families:?}",
        families.len()
    );
    for must in [
        "ccsa_uptime_seconds",
        "ccsa_build_info",
        "ccsa_compares_total",
        "ccsa_stage_duration_seconds",
        "ccsa_route_requests_total",
        "ccsa_route_latency_seconds",
        "ccsa_gateway_requests_total",
        "ccsa_gateway_active_connections",
        "ccsa_http_requests_total",
    ] {
        assert!(families.contains(&must), "scrape is missing {must}");
    }

    // The verbs and the scrape read the same atomics: the numbers the
    // JSON-lines protocol reports are the numbers Prometheus collects.
    let compares = stats.get("compares").and_then(Json::as_f64).unwrap();
    assert_eq!(metric_value(text, "ccsa_compares_total"), compares);
    assert_eq!(compares, 4.0, "3 TCP + 1 HTTP compares");
    let route_entries = routes.get("routes").and_then(Json::as_arr).unwrap();
    for entry in route_entries {
        let label = entry.get("metric_label").and_then(Json::as_str).unwrap();
        let requests = entry.get("requests").and_then(Json::as_f64).unwrap();
        assert_eq!(
            metric_value(
                text,
                &format!("ccsa_route_requests_total{{route=\"{label}\"}}")
            ),
            requests,
            "routes verb and scrape disagree for {label}"
        );
    }
    // All four requests used one sticky key, so one route carries 4.
    let per_route: Vec<f64> = route_entries
        .iter()
        .map(|e| e.get("requests").and_then(Json::as_f64).unwrap())
        .collect();
    assert_eq!(per_route.iter().sum::<f64>(), 4.0);
    // The HTTP request log covers both the scored call and this scrape.
    assert_eq!(
        metric_value(
            text,
            "ccsa_http_requests_total{path=\"/v1/compare\",code=\"200\"}"
        ),
        1.0
    );
    assert!(metric_value(text, "ccsa_uptime_seconds") >= 0.0);

    gateway.shutdown_and_join().unwrap();
}

#[test]
fn routes_verb_marks_shadow_entries_and_their_metric_labels() {
    let engine = two_version_engine();
    let router = Router::new(
        vec![Route {
            selector: versioned(1),
            weight: 1.0,
        }],
        Some(ShadowRoute {
            selector: versioned(2),
            fraction: 1.0,
        }),
    )
    .unwrap();
    let gateway = Gateway::spawn(engine, router, http_config()).unwrap();
    let mut tcp = connect(gateway.addr());
    let mut http = http_connect(gateway.http_addr().unwrap());

    tcp.compare(SLOW, FAST, Some("shadow-label")).unwrap();
    // The mirror runs on the shadow worker; wait until it lands.
    let deadline = Instant::now() + Duration::from_secs(10);
    let shadow = loop {
        let routes = tcp.routes().unwrap();
        let shadow = routes.get("shadow").unwrap().clone();
        if shadow.get("requests").and_then(Json::as_f64) == Some(1.0) {
            break shadow;
        }
        assert!(Instant::now() < deadline, "shadow mirror never landed");
        std::thread::sleep(Duration::from_millis(20));
    };

    // The explicit marker and the collision-proof label (satellite a).
    assert_eq!(shadow.get("shadow").and_then(Json::as_bool), Some(true));
    assert_eq!(
        shadow.get("metric_label").and_then(Json::as_str),
        Some("shadow:default@v2")
    );
    // Primary entries carry their own label and no shadow marker.
    let routes = tcp.routes().unwrap();
    let primary = &routes.get("routes").and_then(Json::as_arr).unwrap()[0];
    assert_eq!(
        primary.get("metric_label").and_then(Json::as_str),
        Some("default@v1")
    );
    assert!(primary.get("shadow").is_none());
    // And the scrape carries the shadow's series under that label.
    let text = http.get("/metrics").unwrap().body;
    assert_eq!(
        metric_value(
            &text,
            "ccsa_route_requests_total{route=\"shadow:default@v2\"}"
        ),
        1.0
    );

    gateway.shutdown_and_join().unwrap();
}

#[test]
fn stats_verb_reports_uptime_and_build_info() {
    let engine = two_version_engine();
    let gateway = Gateway::spawn(engine, Router::single_default(), http_config()).unwrap();
    let mut tcp = connect(gateway.addr());

    let stats = tcp.stats().unwrap();
    assert!(stats.get("uptime_seconds").and_then(Json::as_f64).unwrap() >= 0.0);
    let build = stats.get("build").unwrap();
    let version = build.get("version").and_then(Json::as_str).unwrap();
    assert!(!version.is_empty());
    assert!(build.get("revision").and_then(Json::as_str).is_some());

    // The same identity appears on the scrape as a build-info gauge.
    let mut http = http_connect(gateway.http_addr().unwrap());
    let text = http.get("/metrics").unwrap().body;
    let info_line = text
        .lines()
        .find(|l| l.starts_with("ccsa_build_info{"))
        .expect("scrape carries ccsa_build_info");
    assert!(info_line.contains(&format!("version=\"{version}\"")));
    assert!(info_line.ends_with(" 1"));

    gateway.shutdown_and_join().unwrap();
}

#[test]
fn trace_log_captures_both_transports_with_stage_splits() {
    let trace_path = std::env::temp_dir().join(format!(
        "ccsa-e2e-trace-{}-{:?}.jsonl",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_file(&trace_path);
    let engine = two_version_engine();
    let config = GatewayConfig {
        trace_log: Some(trace_path.clone()),
        trace_sample_percent: 100.0,
        ..http_config()
    };
    let gateway = Gateway::spawn(engine, Router::single_default(), config).unwrap();
    let mut tcp = connect(gateway.addr());
    let mut http = http_connect(gateway.http_addr().unwrap());

    // A TCP request carrying its own ID, and an HTTP request tagged via
    // the header.
    tcp.request(&Json::obj(vec![
        ("op", Json::str("compare")),
        ("first", Json::str(SLOW)),
        ("second", Json::str(FAST)),
        ("request_id", Json::str("trace-tcp-1")),
    ]))
    .unwrap();
    let body = Json::obj(vec![("first", Json::str(FAST)), ("second", Json::str(MID))]).to_string();
    let reply = http
        .post("/v1/compare", &body, Some("trace-http-1"))
        .unwrap();
    assert_eq!(reply.status, 200);
    gateway.shutdown_and_join().unwrap();

    let text = std::fs::read_to_string(&trace_path).unwrap();
    let records: Vec<Json> = text
        .lines()
        .map(|l| ccsa_serve::json::parse(l).unwrap())
        .collect();
    let find = |id: &str| {
        records
            .iter()
            .find(|r| r.get("request_id").and_then(Json::as_str) == Some(id))
            .unwrap_or_else(|| panic!("no trace record for {id}"))
    };
    let tcp_rec = find("trace-tcp-1");
    assert_eq!(tcp_rec.get("transport").and_then(Json::as_str), Some("tcp"));
    assert_eq!(tcp_rec.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(
        tcp_rec.get("route").and_then(Json::as_str),
        Some("default@latest")
    );
    let http_rec = find("trace-http-1");
    assert_eq!(
        http_rec.get("transport").and_then(Json::as_str),
        Some("http")
    );
    for rec in [tcp_rec, http_rec] {
        assert!(rec.get("latency_ms").and_then(Json::as_f64).unwrap() >= 0.0);
        let stages = rec.get("stages_ms").expect("served requests carry stages");
        for stage in ["parse", "cache", "encode", "classify"] {
            assert!(stages.get(stage).and_then(Json::as_f64).unwrap() >= 0.0);
        }
    }
    let _ = std::fs::remove_file(&trace_path);
}

/// Two persistent gateways over one engine: `plain` routes everything to
/// v1 with no shadow; `shadowed` routes identically but mirrors 100% of
/// traffic to v2. Shared across property-test cases (the gateways are
/// leaked; the process exit reaps them).
fn shadow_rig() -> (SocketAddr, SocketAddr) {
    static RIG: OnceLock<(SocketAddr, SocketAddr)> = OnceLock::new();
    *RIG.get_or_init(|| {
        let engine = two_version_engine();
        let plain = Gateway::spawn(
            Arc::clone(&engine),
            Router::new(
                vec![Route {
                    selector: versioned(1),
                    weight: 1.0,
                }],
                None,
            )
            .unwrap(),
            GatewayConfig::default(),
        )
        .unwrap();
        let shadowed = Gateway::spawn(
            engine,
            Router::new(
                vec![Route {
                    selector: versioned(1),
                    weight: 1.0,
                }],
                Some(ShadowRoute {
                    selector: versioned(2),
                    fraction: 1.0,
                }),
            )
            .unwrap(),
            GatewayConfig::default(),
        )
        .unwrap();
        let addrs = (plain.addr(), shadowed.addr());
        std::mem::forget(plain);
        std::mem::forget(shadowed);
        addrs
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Observed route assignment over a deterministic client population
    /// converges to any valid weight configuration (satellite: "observed
    /// route distribution converges to configured weights").
    #[test]
    fn route_distribution_converges_to_weights(
        raw_weights in prop::collection::vec(0.05f64..1.0, 2..5),
        key_space in 0u64..1000,
    ) {
        let routes: Vec<Route> = raw_weights
            .iter()
            .enumerate()
            .map(|(i, &w)| Route {
                selector: versioned(i as u32 + 1),
                weight: w,
            })
            .collect();
        let router = Router::new(routes, None).unwrap();
        let n = 4000usize;
        let mut counts = vec![0usize; raw_weights.len()];
        for i in 0..n {
            counts[router.route_index(&format!("pop{key_space}-{i}"))] += 1;
        }
        let total: f64 = raw_weights.iter().sum();
        for (ix, &w) in raw_weights.iter().enumerate() {
            let observed = counts[ix] as f64 / n as f64;
            let configured = w / total;
            prop_assert!(
                (observed - configured).abs() < 0.05,
                "route {}: observed {:.3} vs configured {:.3}",
                ix, observed, configured
            );
        }
    }

    /// Shadow traffic never alters the primary response: for any request
    /// and client key, a gateway mirroring 100% of traffic answers byte-
    /// for-byte like one with no shadow at all.
    #[test]
    fn shadow_never_alters_primary_responses(
        pair_ix in 0usize..3,
        key in 0u64..10_000,
        do_rank in proptest::bool::ANY,
    ) {
        let (plain_addr, shadowed_addr) = shadow_rig();
        let mut plain = connect(plain_addr);
        let mut shadowed = connect(shadowed_addr);
        let client_key = format!("prop-{key}");
        if do_rank {
            let a = plain.rank(&[FAST, SLOW, MID], Some(&client_key)).unwrap();
            let b = shadowed.rank(&[FAST, SLOW, MID], Some(&client_key)).unwrap();
            prop_assert_eq!(a, b);
        } else {
            let (x, y) = PAIRS[pair_ix];
            let a = plain.compare(x, y, Some(&client_key)).unwrap();
            let b = shadowed.compare(x, y, Some(&client_key)).unwrap();
            prop_assert_eq!(a.prob_first_slower, b.prob_first_slower);
            prop_assert_eq!(a.version, b.version);
            prop_assert_eq!(a.model, b.model);
        }
    }
}

#[test]
fn reload_routes_swaps_the_table_live_and_carries_surviving_stats() {
    // A 50/50 v1/v2 gateway hot-swapped to v2-only over an open client
    // session: no reconnect, no restart, and the surviving route keeps
    // its rolling request window across the swap.
    let engine = two_version_engine();
    let gateway = Gateway::spawn(
        Arc::clone(&engine),
        split_router(1.0, 1.0),
        GatewayConfig::default(),
    )
    .unwrap();
    let mut client = connect(gateway.addr());

    // Deterministically pick keys per route with the same construction
    // the gateway uses, so the pre-swap v2 traffic count is exact.
    let reference = split_router(1.0, 1.0);
    let keys_for = |route_ix: usize, n: usize| -> Vec<String> {
        (0..)
            .map(|i| format!("swap-{i}"))
            .filter(|k| reference.route_index(k) == route_ix)
            .take(n)
            .collect::<Vec<_>>()
    };
    for key in keys_for(0, 3).iter().chain(keys_for(1, 3).iter()) {
        client.compare(SLOW, FAST, Some(key)).unwrap();
    }
    let before = client.routes().unwrap();
    assert_eq!(
        before.get("reload_generation").and_then(Json::as_u64),
        Some(0)
    );

    // A bad table is rejected whole: unknown version, nothing swapped.
    let rejected = client
        .request_line(
            r#"{"op":"reload_routes","routes":[{"model":"default","version":9,"weight":1.0}]}"#,
        )
        .unwrap();
    assert_eq!(rejected.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(
        client
            .routes()
            .unwrap()
            .get("reload_generation")
            .and_then(Json::as_u64),
        Some(0)
    );

    let reply = client
        .request_line(
            r#"{"op":"reload_routes","routes":[{"model":"default","version":2,"weight":1.0}],"shadow":null}"#,
        )
        .unwrap();
    assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "reply: {reply}");
    assert_eq!(
        reply.get("reload_generation").and_then(Json::as_u64),
        Some(1)
    );

    // Same session, new table: every request now scores under v2.
    let expected_v2 = engine
        .compare(&versioned(2), SLOW, FAST)
        .unwrap()
        .prob_first_slower;
    for key in keys_for(0, 2).iter().chain(keys_for(1, 2).iter()) {
        let reply = client.compare(SLOW, FAST, Some(key)).unwrap();
        assert_eq!(reply.version, 2);
        assert_eq!(reply.prob_first_slower as f32, expected_v2);
    }

    let after = client.routes().unwrap();
    assert_eq!(
        after.get("reload_generation").and_then(Json::as_u64),
        Some(1)
    );
    let table = after.get("routes").and_then(Json::as_arr).unwrap();
    assert_eq!(table.len(), 1, "routes: {after}");
    assert_eq!(table[0].get("version").and_then(Json::as_u64), Some(2));
    // 3 pre-swap requests on v2 + 4 post-swap: the window survived the
    // reload because the route's metric label did.
    assert_eq!(table[0].get("requests").and_then(Json::as_u64), Some(7));

    gateway.shutdown_and_join().unwrap();
}

#[test]
fn shadow_delta_block_compares_shadow_against_primary() {
    // With a shadow mirroring all traffic, the `routes` verb grows a
    // delta block (shadow minus primary) and the scrape grows matching
    // gauges under the shadow's metric label.
    let engine = two_version_engine();
    let router = Router::new(
        vec![Route {
            selector: versioned(1),
            weight: 1.0,
        }],
        Some(ShadowRoute {
            selector: versioned(2),
            fraction: 1.0,
        }),
    )
    .unwrap();
    let gateway = Gateway::spawn(engine, router, http_config()).unwrap();
    let mut tcp = connect(gateway.addr());
    let mut http = http_connect(gateway.http_addr().unwrap());

    // Before any traffic the deltas are null — a delta of nothing vs
    // nothing must not read as "candidate is healthy".
    let empty = tcp.routes().unwrap();
    assert_eq!(
        empty.get("shadow").unwrap().get("delta_p99_ms"),
        Some(&Json::Null)
    );

    for i in 0..6 {
        tcp.compare(SLOW, FAST, Some(&format!("delta-{i}")))
            .unwrap();
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    let shadow = loop {
        let routes = tcp.routes().unwrap();
        let shadow = routes.get("shadow").unwrap().clone();
        if shadow.get("requests").and_then(Json::as_f64) == Some(6.0) {
            break shadow;
        }
        assert!(Instant::now() < deadline, "shadow mirrors never landed");
        std::thread::sleep(Duration::from_millis(20));
    };

    for field in ["delta_p50_ms", "delta_p99_ms", "delta_error_rate"] {
        assert!(
            shadow.get(field).and_then(Json::as_f64).is_some(),
            "{field} should be numeric once both arms have traffic"
        );
    }
    // Both arms served the same requests without errors.
    assert_eq!(
        shadow.get("delta_error_rate").and_then(Json::as_f64),
        Some(0.0)
    );

    let text = http.get("/metrics").unwrap().body;
    for gauge in [
        "ccsa_route_shadow_delta_p50_ms{route=\"shadow:default@v2\"}",
        "ccsa_route_shadow_delta_p99_ms{route=\"shadow:default@v2\"}",
        "ccsa_route_shadow_delta_error_rate{route=\"shadow:default@v2\"}",
    ] {
        assert!(
            text.lines().any(|l| l.starts_with(gauge)),
            "scrape missing {gauge}"
        );
    }

    gateway.shutdown_and_join().unwrap();
}
