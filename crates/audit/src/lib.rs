//! `ccsa-audit` — a hermetic, dependency-free static-analysis pass over
//! this workspace's own Rust source.
//!
//! The paper this repo reproduces argues that *structure* predicts
//! *behavior*. This crate turns that thesis on our own source: instead
//! of trusting review to uphold the structural invariants the
//! production north-star depends on (IEEE-strict kernels, lock
//! discipline, bounded-cardinality metrics, loopback-gated admin
//! verbs), it checks them mechanically on every CI run, the way the
//! autograder exemplar validates untrusted submissions.
//!
//! # Rules
//!
//! | rule       | invariant                                                               |
//! |------------|-------------------------------------------------------------------------|
//! | `safety`   | every `unsafe` block/fn carries a `// SAFETY:` comment                  |
//! | `ordering` | every explicit `Ordering::…` use carries an ordering-justification comment |
//! | `ieee`     | no `== 0.0` zero-skip guards or NaN-masking inside the tensor kernels   |
//! | `lockorder`| the cross-crate lock acquisition graph is acyclic                       |
//! | `metrics`  | every `ccsa_*` literal is a legal Prometheus name, registered exactly once |
//! | `verbs`    | every mutating proto verb appears in the gateway *and* fleet loopback gates |
//! | `unwrap`   | no `unwrap()`/`expect()` on the untrusted request-parse paths           |
//!
//! Findings are suppressed per-site by an allowlist file (`audit.allow`
//! at the workspace root): `rule path line-or-* -- reason` per line,
//! `#` comments allowed. Unused entries are reported so the allowlist
//! cannot rot. The analysis is lexical (a real tokenizer, shared with
//! nothing) plus lightweight structure recovery — the same hand-rolled
//! frontend style as `ccsa-cppast`, applied to Rust.

pub mod analysis;
pub mod lexer;
pub mod rules;

use lexer::SourceFile;
use std::fmt;
use std::path::{Path, PathBuf};

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (`safety`, `ordering`, …).
    pub rule: &'static str,
    /// Repo-relative path, forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// One allowlist entry: `rule path line-or-* [-- reason]`.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule id the entry suppresses (`*` = any rule).
    pub rule: String,
    /// Repo-relative path the entry applies to.
    pub path: String,
    /// Specific line, or `None` for the whole file.
    pub line: Option<usize>,
    /// Free-form justification (everything after `--`).
    pub reason: String,
    /// 1-based line within the allowlist file (for diagnostics).
    pub source_line: usize,
}

/// A parsed allowlist plus per-entry hit tracking.
#[derive(Debug, Default)]
pub struct Allowlist {
    /// The entries, in file order.
    pub entries: Vec<AllowEntry>,
    hits: Vec<bool>,
}

impl Allowlist {
    /// Parses allowlist text.
    ///
    /// # Errors
    ///
    /// Returns `(line, message)` for a malformed entry.
    pub fn parse(text: &str) -> Result<Allowlist, (usize, String)> {
        let mut entries = Vec::new();
        for (ix, raw) in text.lines().enumerate() {
            let source_line = ix + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (spec, reason) = match line.split_once("--") {
                Some((s, r)) => (s.trim(), r.trim().to_string()),
                None => (line, String::new()),
            };
            let mut parts = spec.split_whitespace();
            let (Some(rule), Some(path), Some(line_spec)) =
                (parts.next(), parts.next(), parts.next())
            else {
                return Err((
                    source_line,
                    format!("expected 'rule path line-or-*', got {line:?}"),
                ));
            };
            if parts.next().is_some() {
                return Err((
                    source_line,
                    "trailing tokens (use '--' to start the reason)".to_string(),
                ));
            }
            let line = match line_spec {
                "*" => None,
                n => Some(n.parse::<usize>().map_err(|_| {
                    (
                        source_line,
                        format!("line must be a number or '*', got {n:?}"),
                    )
                })?),
            };
            entries.push(AllowEntry {
                rule: rule.to_string(),
                path: path.to_string(),
                line,
                reason,
                source_line,
            });
        }
        let hits = vec![false; entries.len()];
        Ok(Allowlist { entries, hits })
    }

    /// Whether `finding` is suppressed; marks the matching entry used.
    pub fn allows(&mut self, finding: &Finding) -> bool {
        for (ix, e) in self.entries.iter().enumerate() {
            let rule_ok = e.rule == "*" || e.rule == finding.rule;
            let line_ok = e.line.map_or(true, |l| l == finding.line);
            if rule_ok && e.path == finding.path && line_ok {
                self.hits[ix] = true;
                return true;
            }
        }
        false
    }

    /// Entries that never matched a finding (stale — the allowlist must
    /// not rot).
    pub fn unused(&self) -> Vec<&AllowEntry> {
        self.entries
            .iter()
            .zip(&self.hits)
            .filter(|(_, hit)| !**hit)
            .map(|(e, _)| e)
            .collect()
    }
}

/// All lexed sources of one tree, ready for rules.
pub struct Workspace {
    /// The files, in discovery order (sorted by path).
    pub files: Vec<SourceFile>,
}

/// Directory names never descended into during discovery.
const SKIP_DIRS: &[&str] = &["target", "fixtures", ".git", ".github"];

impl Workspace {
    /// Builds a workspace from in-memory `(path, source)` pairs (tests).
    pub fn from_sources(sources: &[(&str, &str)]) -> Workspace {
        Workspace {
            files: sources.iter().map(|(p, s)| SourceFile::lex(p, s)).collect(),
        }
    }

    /// Discovers and lexes every `.rs` file under `root`, skipping
    /// `target/`, `fixtures/` (seeded violations), and VCS metadata.
    ///
    /// # Errors
    ///
    /// Returns an IO error message for an unreadable tree.
    pub fn discover(root: &Path) -> Result<Workspace, String> {
        let mut paths = Vec::new();
        collect_rs_files(root, root, &mut paths)?;
        paths.sort();
        let mut files = Vec::new();
        for rel in paths {
            let full = root.join(&rel);
            let source = std::fs::read_to_string(&full)
                .map_err(|e| format!("read {}: {e}", full.display()))?;
            let rel_str = rel
                .to_string_lossy()
                .replace(std::path::MAIN_SEPARATOR, "/");
            files.push(SourceFile::lex(&rel_str, &source));
        }
        Ok(Workspace { files })
    }

    /// The file at `path` (repo-relative), if present.
    pub fn file(&self, path: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.path == path)
    }
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

/// Runs every rule (or the named subset) over the workspace, applying
/// the allowlist. Returns `(live findings, suppressed count)`.
pub fn run(
    workspace: &Workspace,
    allowlist: &mut Allowlist,
    only: Option<&[String]>,
) -> (Vec<Finding>, usize) {
    let mut live = Vec::new();
    let mut suppressed = 0usize;
    for rule in rules::all() {
        if let Some(names) = only {
            if !names.iter().any(|n| n == rule.name) {
                continue;
            }
        }
        for finding in (rule.check)(workspace) {
            if allowlist.allows(&finding) {
                suppressed += 1;
            } else {
                live.push(finding);
            }
        }
    }
    live.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    (live, suppressed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allowlist_parses_and_matches() {
        let text = "\n# comment\nsafety crates/x/src/lib.rs 10 -- trusted FFI\nordering crates/y/src/a.rs * -- module doc covers\n";
        let mut a = Allowlist::parse(text).unwrap();
        assert_eq!(a.entries.len(), 2);
        let f = Finding {
            rule: "safety",
            path: "crates/x/src/lib.rs".into(),
            line: 10,
            message: String::new(),
        };
        assert!(a.allows(&f));
        let f2 = Finding {
            rule: "safety",
            path: "crates/x/src/lib.rs".into(),
            line: 11,
            message: String::new(),
        };
        assert!(!a.allows(&f2));
        let f3 = Finding {
            rule: "ordering",
            path: "crates/y/src/a.rs".into(),
            line: 99,
            message: String::new(),
        };
        assert!(a.allows(&f3));
        assert!(a.unused().is_empty());
    }

    #[test]
    fn allowlist_rejects_malformed_lines() {
        assert!(Allowlist::parse("justonetoken").is_err());
        assert!(Allowlist::parse("rule path notanumber").is_err());
        assert!(Allowlist::parse("rule path 3 extra").is_err());
    }

    #[test]
    fn unused_entries_are_reported() {
        let mut a = Allowlist::parse("safety crates/x/src/lib.rs 10\n").unwrap();
        assert_eq!(a.unused().len(), 1);
        let f = Finding {
            rule: "safety",
            path: "crates/x/src/lib.rs".into(),
            line: 10,
            message: String::new(),
        };
        assert!(a.allows(&f));
        assert!(a.unused().is_empty());
    }
}
