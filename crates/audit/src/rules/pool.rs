//! `pool`: tape op forward paths must draw f32 buffers from the
//! buffer pool. PR 10 routed every op output, backward scratch, and
//! gradient accumulator through `ccsa_tensor::pool`; a single raw
//! `vec![0.0; n]` / `Vec::with_capacity` / `.to_vec()` sneaking back
//! into a hot forward path silently reintroduces steady-state
//! allocation churn that no test catches (the counting-allocator
//! harness only covers the serve encode path). This rule pins the
//! invariant at the source level: inside the tape/tensor files,
//! non-test code may not allocate raw f32 buffers.
//!
//! Cold or non-f32 sites (adjacency structure vecs, usize offset
//! tables, one-element scalars) opt out with a `// pool-exempt: …`
//! comment on the same line or in the contiguous comment block above —
//! the allowlist mechanism for paths that are genuinely not on the
//! steady-state encode/backward route.

use crate::analysis::{comment_block_contains, in_ranges, test_line_ranges};
use crate::lexer::TokKind;
use crate::{Finding, Workspace};

/// Path suffixes this rule applies to: the tape op implementations and
/// the tensor constructors they call.
const FORWARD_PATHS: &[&str] = &["crates/tensor/src/tape.rs", "crates/tensor/src/tensor.rs"];

/// Whether a number token spells a floating-point zero (`0.0`, `0.`,
/// `0f32`…) — the `vec![0.0; n]` zero-fill idiom the pool replaces.
fn is_float_zero(text: &str) -> bool {
    let t = text.replace('_', "");
    let (mantissa, is_float) = match (t.strip_suffix("f32"), t.strip_suffix("f64")) {
        (Some(m), _) => (m.to_string(), true),
        (_, Some(m)) => (m.to_string(), true),
        _ => (
            t.clone(),
            t.contains('.') || t.contains('e') || t.contains('E'),
        ),
    };
    if !is_float && !mantissa.contains('.') {
        return false;
    }
    mantissa.parse::<f64>() == Ok(0.0)
}

pub(super) fn check(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in &ws.files {
        if !FORWARD_PATHS.iter().any(|p| file.path.ends_with(p)) {
            continue;
        }
        let test_ranges = test_line_ranges(file);
        let toks = &file.tokens;
        for ix in 0..toks.len() {
            let line = toks[ix].line;
            if in_ranges(&test_ranges, line) {
                continue;
            }
            // `Vec::with_capacity(...)` — raw growth buffer.
            let with_capacity = toks[ix].is_ident("Vec")
                && toks.get(ix + 1).is_some_and(|t| t.is_punct(':'))
                && toks.get(ix + 2).is_some_and(|t| t.is_punct(':'))
                && toks
                    .get(ix + 3)
                    .is_some_and(|t| t.is_ident("with_capacity"));
            // `vec![0.0; n]` — raw zero-filled f32 buffer.
            let vec_zero = toks[ix].is_ident("vec")
                && toks.get(ix + 1).is_some_and(|t| t.is_punct('!'))
                && toks.get(ix + 2).is_some_and(|t| t.is_punct('['))
                && toks
                    .get(ix + 3)
                    .is_some_and(|t| t.kind == TokKind::Num && is_float_zero(&t.text));
            // `.to_vec()` — a full copy the pool's `take_copy` replaces.
            let to_vec = toks[ix].is_ident("to_vec") && ix > 0 && toks[ix - 1].is_punct('.');
            let what = if with_capacity {
                "Vec::with_capacity"
            } else if vec_zero {
                "vec![0.0; …]"
            } else if to_vec {
                ".to_vec()"
            } else {
                continue;
            };
            if comment_block_contains(file, line, "pool-exempt") {
                continue;
            }
            findings.push(Finding {
                rule: "pool",
                path: file.path.clone(),
                line,
                message: format!(
                    "raw {what} in a tape forward path — draw f32 buffers from \
                     `pool::take_*` (or mark a cold/non-f32 site `// pool-exempt: <why>`)"
                ),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_raw_allocs_outside_tests() {
        let src = "fn op(xs: &[f32]) -> Vec<f32> {\n\
                   let mut out = vec![0.0f32; xs.len()];\n\
                   let mut grow: Vec<f32> = Vec::with_capacity(xs.len());\n\
                   grow.extend_from_slice(xs);\n\
                   let copy = xs.to_vec();\n\
                   out.extend(copy);\n\
                   out\n\
                   }\n\
                   #[cfg(test)]\nmod tests {\n fn t() { let _ = vec![0.0; 4]; let _: Vec<f32> = Vec::with_capacity(4); }\n}\n";
        let ws = Workspace::from_sources(&[("crates/tensor/src/tape.rs", src)]);
        let f = check(&ws);
        assert_eq!(f.len(), 3, "{f:?}");
        assert_eq!(f[0].line, 2);
        assert_eq!(f[1].line, 3);
        assert_eq!(f[2].line, 5);
    }

    #[test]
    fn pool_exempt_comment_opts_a_site_out() {
        let src = "fn adj(n: usize) {\n\
                   // pool-exempt: adjacency structure, usize payload, built once per graph\n\
                   let mut rows: Vec<usize> = Vec::with_capacity(n);\n\
                   let also = Vec::<u32>::with_capacity(n); // pool-exempt: index list\n\
                   rows.extend(also.iter().map(|&x| x as usize));\n\
                   }\n";
        let ws = Workspace::from_sources(&[("crates/tensor/src/tape.rs", src)]);
        assert!(check(&ws).is_empty());
    }

    #[test]
    fn integer_vec_macro_is_legal() {
        let src = "fn f(n: usize) { let a = vec![0usize; n]; let b = vec![Vec::new(); n]; let _ = (a, b); }\n";
        let ws = Workspace::from_sources(&[("crates/tensor/src/tape.rs", src)]);
        assert!(
            check(&ws).is_empty(),
            "integer/new fills are not f32 buffers"
        );
    }

    #[test]
    fn other_files_are_out_of_scope() {
        let ws = Workspace::from_sources(&[(
            "crates/serve/src/json.rs",
            "fn f(xs: &[f32]) -> Vec<f32> { xs.to_vec() }\n",
        )]);
        assert!(check(&ws).is_empty());
    }
}
