//! `ordering`: every explicit `Ordering::{SeqCst,Acquire,Release,
//! AcqRel,Relaxed}` use must carry an ordering-justification comment —
//! a comment that names the ordering (e.g. "Relaxed: stats counter,
//! read only at scrape time") or the word "ordering", on the same line
//! or within the three lines above. A justified site also covers
//! further `Ordering::` uses on the next two lines, so one comment can
//! head a tight block of related atomic ops. Test regions are exempt
//! (test atomics assert behaviour, they don't implement protocols);
//! whole-file module-doc coverage goes through the allowlist instead.

use crate::analysis::{in_ranges, is_test_file, test_line_ranges};
use crate::{Finding, Workspace};

const ORDERINGS: &[&str] = &["SeqCst", "Acquire", "Release", "AcqRel", "Relaxed"];

/// How many lines above a use a justification comment may sit.
const WINDOW_UP: usize = 3;
/// How many lines below a justified use the justification still covers.
const CHAIN_DOWN: usize = 2;

pub(super) fn check(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in &ws.files {
        if is_test_file(&file.path) {
            continue;
        }
        let test_ranges = test_line_ranges(file);
        // (line, ordering name) per use, in source order.
        let mut uses: Vec<(usize, &str)> = Vec::new();
        for (ix, tok) in file.tokens.iter().enumerate() {
            if tok.is_ident("Ordering")
                && file.tokens.get(ix + 1).is_some_and(|t| t.is_punct(':'))
                && file.tokens.get(ix + 2).is_some_and(|t| t.is_punct(':'))
            {
                if let Some(ord) = file.tokens.get(ix + 3) {
                    if let Some(&name) = ORDERINGS.iter().find(|&&o| ord.is_ident(o)) {
                        uses.push((ord.line, name));
                    }
                }
            }
        }
        let mut last_justified: Option<usize> = None;
        for (line, ord) in uses {
            if in_ranges(&test_ranges, line) {
                continue;
            }
            let keyword_hit = (line.saturating_sub(WINDOW_UP)..=line).any(|n| {
                let c = file.comment_on(n);
                !c.is_empty() && mentions_ordering(c, ord)
            });
            let chained = last_justified.is_some_and(|prev| line - prev <= CHAIN_DOWN);
            if keyword_hit || chained {
                last_justified = Some(line);
            } else {
                findings.push(Finding {
                    rule: "ordering",
                    path: file.path.clone(),
                    line,
                    message: format!(
                        "Ordering::{ord} without a justification comment \
                         (mention '{ord}' or 'ordering' on or above the line)"
                    ),
                });
            }
        }
    }
    findings
}

fn mentions_ordering(comment: &str, ord: &str) -> bool {
    comment.contains(ord)
        || comment.to_ascii_lowercase().contains("ordering")
        || ORDERINGS.iter().any(|o| comment.contains(o))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_bare_use_and_accepts_justified() {
        let ws = Workspace::from_sources(&[(
            "crates/x/src/lib.rs",
            "fn f(a: &A) {\n\
             a.x.store(1, Ordering::SeqCst);\n\
             // SeqCst: pairs with the load in g(); see module doc.\n\
             a.y.store(1, Ordering::SeqCst);\n\
             a.z.load(Ordering::Relaxed); // Relaxed: monotonic counter\n\
             }\n",
        )]);
        let f = check(&ws);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn one_comment_covers_a_tight_block() {
        let ws = Workspace::from_sources(&[(
            "crates/x/src/lib.rs",
            "fn f(a: &A) {\n\
             // Relaxed: independent stats counters, scrape-time reads.\n\
             let b = a.batches.load(Ordering::Relaxed);\n\
             let j = a.jobs.load(Ordering::Relaxed);\n\
             let s = a.steals.load(Ordering::Relaxed);\n\
             let t = a.extra.load(Ordering::Relaxed);\n\
             }\n",
        )]);
        assert!(check(&ws).is_empty(), "{:?}", check(&ws));
    }

    #[test]
    fn chain_breaks_after_a_gap() {
        let ws = Workspace::from_sources(&[(
            "crates/x/src/lib.rs",
            "fn f(a: &A) {\n\
             // Relaxed: counter.\n\
             a.x.load(Ordering::Relaxed);\n\
             let y = 1;\n\
             let z = 2;\n\
             let w = 3;\n\
             a.y.load(Ordering::Relaxed);\n\
             }\n",
        )]);
        let f = check(&ws);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 7);
    }

    #[test]
    fn test_regions_are_exempt() {
        let ws = Workspace::from_sources(&[
            (
                "crates/x/src/lib.rs",
                "#[cfg(test)]\nmod tests {\n fn t(a: &A) { a.x.store(1, Ordering::SeqCst); }\n}\n",
            ),
            (
                "crates/x/tests/e2e.rs",
                "fn t(a: &A) { a.x.store(1, Ordering::SeqCst); }\n",
            ),
        ]);
        assert!(check(&ws).is_empty());
    }
}
