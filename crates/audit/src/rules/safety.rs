//! `safety`: every `unsafe` block, function, impl, or trait must be
//! preceded by a `// SAFETY:` comment (same line, or in the contiguous
//! comment/attribute block directly above). Applies to test code too —
//! a test that raises a signal or calls FFI needs the same obligation
//! discharge as production code.

use crate::analysis::comment_block_contains;
use crate::{Finding, Workspace};

pub(super) fn check(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in &ws.files {
        for (ix, tok) in file.tokens.iter().enumerate() {
            if !tok.is_ident("unsafe") {
                continue;
            }
            let kind = match file.tokens.get(ix + 1) {
                Some(t) if t.is_punct('{') => "block",
                Some(t) if t.is_ident("fn") => "fn",
                Some(t) if t.is_ident("impl") => "impl",
                Some(t) if t.is_ident("trait") => "trait",
                Some(t) if t.is_ident("extern") => "extern block",
                // `unsafe` inside attribute args (`#![forbid(unsafe_code)]`
                // lexes `unsafe_code` as one ident, so that never lands
                // here) or stray keyword uses: not a site.
                _ => continue,
            };
            if !comment_block_contains(file, tok.line, "SAFETY") {
                findings.push(Finding {
                    rule: "safety",
                    path: file.path.clone(),
                    line: tok.line,
                    message: format!("unsafe {kind} without a `// SAFETY:` comment"),
                });
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_uncommented_unsafe_and_accepts_commented() {
        let ws = Workspace::from_sources(&[(
            "crates/x/src/lib.rs",
            "fn f() {\n    unsafe { work() }\n}\n\
             // SAFETY: bounds checked above.\nfn g() { unsafe { work() } }\n\
             fn h() { unsafe { work() } } // SAFETY: trailing is fine\n",
        )]);
        let f = check(&ws);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
        assert!(f[0].message.contains("unsafe block"));
    }

    #[test]
    fn attribute_between_comment_and_fn_is_transparent() {
        let ws = Workspace::from_sources(&[(
            "crates/x/src/lib.rs",
            "/// Docs.\n///\n/// SAFETY: caller checked cpuid.\n\
             #[target_feature(enable = \"avx2\")]\nunsafe fn k() {}\n",
        )]);
        assert!(check(&ws).is_empty());
    }

    #[test]
    fn unsafe_in_strings_and_comments_is_not_a_site() {
        let ws = Workspace::from_sources(&[(
            "crates/x/src/lib.rs",
            "// unsafe { } in prose\nfn f() { let s = \"unsafe { }\"; }\n",
        )]);
        assert!(check(&ws).is_empty());
    }
}
