//! `unwrap`: no `.unwrap()` / `.expect(...)` on the untrusted
//! request-parse paths. A panic while parsing attacker-controlled
//! bytes is a remote crash (the connection handler thread dies); these
//! files must return typed errors instead. Scoped to the wire-facing
//! parsers — panicking on programmer error elsewhere is fine and often
//! right. Test code is exempt; deliberate, proven-unreachable uses go
//! in the allowlist with a reason.

use crate::analysis::{in_ranges, is_test_file, test_line_ranges};
use crate::{Finding, Workspace};

/// Path suffixes on the untrusted-input parse path.
const PARSE_PATHS: &[&str] = &[
    "crates/serve/src/proto.rs",
    "crates/serve/src/json.rs",
    "crates/gateway/src/http.rs",
];

pub(super) fn check(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in &ws.files {
        if is_test_file(&file.path) || !PARSE_PATHS.iter().any(|p| file.path.ends_with(p)) {
            continue;
        }
        let test_ranges = test_line_ranges(file);
        for (ix, tok) in file.tokens.iter().enumerate() {
            let is_panicky = tok.is_ident("unwrap") || tok.is_ident("expect");
            if !is_panicky
                || ix == 0
                || !file.tokens[ix - 1].is_punct('.')
                || !file.tokens.get(ix + 1).is_some_and(|t| t.is_punct('('))
                || in_ranges(&test_ranges, tok.line)
            {
                continue;
            }
            findings.push(Finding {
                rule: "unwrap",
                path: file.path.clone(),
                line: tok.line,
                message: format!(
                    ".{}() on the untrusted request-parse path — return a typed \
                     error; a panic here is a remote crash",
                    tok.text
                ),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_unwrap_and_expect_in_scope_only() {
        let ws = Workspace::from_sources(&[
            (
                "crates/serve/src/json.rs",
                "fn f(s: &str) {\n\
                 let c = s.chars().next().unwrap();\n\
                 let n: i64 = s.parse().expect(\"digits\");\n\
                 }\n\
                 #[cfg(test)]\nmod tests {\n fn t(s: &str) { s.parse::<i64>().unwrap(); }\n}\n",
            ),
            (
                "crates/serve/src/engine.rs",
                "fn g(m: &Mutex<u32>) { *m.lock().unwrap() += 1; }\n",
            ),
        ]);
        let f = check(&ws);
        assert_eq!(f.len(), 2, "{f:?}");
        assert_eq!((f[0].line, f[1].line), (2, 3));
    }

    #[test]
    fn non_call_and_field_uses_are_not_flagged() {
        // `expect` as a method we define (renamed away in json.rs) would
        // be a call too — but `unwrap` without a preceding dot, or
        // without parens, is not a panicky call.
        let ws = Workspace::from_sources(&[(
            "crates/serve/src/json.rs",
            "fn unwrap() {}\nfn f() { unwrap(); let expect = 1; let _ = expect; }\n",
        )]);
        assert!(check(&ws).is_empty());
    }
}
