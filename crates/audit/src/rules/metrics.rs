//! `metrics`: every `ccsa_*` string literal in non-test code is a
//! metric-family declaration (the registries and exposition closures
//! all take the name as a literal first argument), so two invariants
//! are checked over them:
//!
//! * the name matches the Prometheus data-model regex
//!   `[a-zA-Z_:][a-zA-Z0-9_:]*`;
//! * each name is declared **exactly once** across the workspace —
//!   two declaration sites for one family means either a copy-paste
//!   divergence waiting to happen (help text / label sets drifting
//!   apart) or a double registration.
//!
//! Test code is exempt (tests *reference* names to assert scrape
//! output), as is `crates/audit` itself (its `ccsa_*` literals are
//! lint patterns and fixtures, not registrations).

use crate::analysis::{in_ranges, is_test_file, test_line_ranges};
use crate::lexer::TokKind;
use crate::{Finding, Workspace};
use std::collections::BTreeMap;

fn is_prometheus_name(name: &str) -> bool {
    let mut chars = name.chars();
    let first_ok = chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':');
    first_ok && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

pub(super) fn check(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    // name → declaration sites (path, line).
    let mut decls: BTreeMap<String, Vec<(String, usize)>> = BTreeMap::new();
    for file in &ws.files {
        if is_test_file(&file.path) || file.path.contains("crates/audit/") {
            continue;
        }
        let test_ranges = test_line_ranges(file);
        for tok in &file.tokens {
            if tok.kind != TokKind::Str
                || !tok.text.starts_with("ccsa_")
                || in_ranges(&test_ranges, tok.line)
            {
                continue;
            }
            if !is_prometheus_name(&tok.text) {
                findings.push(Finding {
                    rule: "metrics",
                    path: file.path.clone(),
                    line: tok.line,
                    message: format!(
                        "metric name `{}` is not a legal Prometheus name \
                         ([a-zA-Z_:][a-zA-Z0-9_:]*)",
                        tok.text
                    ),
                });
                continue;
            }
            decls
                .entry(tok.text.clone())
                .or_default()
                .push((file.path.clone(), tok.line));
        }
    }
    for (name, sites) in &decls {
        if sites.len() > 1 {
            let all: Vec<String> = sites.iter().map(|(p, l)| format!("{p}:{l}")).collect();
            for (path, line) in sites {
                findings.push(Finding {
                    rule: "metrics",
                    path: path.clone(),
                    line: *line,
                    message: format!(
                        "metric family `{}` declared {} times ({}); each family \
                         needs exactly one declaration site",
                        name,
                        sites.len(),
                        all.join(", ")
                    ),
                });
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bad_name_is_flagged() {
        let ws = Workspace::from_sources(&[(
            "crates/x/src/lib.rs",
            "fn f(r: &R) { r.counter(\"ccsa_bad-name\", \"help\", &[]); }\n",
        )]);
        let f = check(&ws);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("not a legal Prometheus name"));
    }

    #[test]
    fn duplicate_declaration_is_flagged_at_both_sites() {
        let ws = Workspace::from_sources(&[
            (
                "crates/x/src/lib.rs",
                "fn f(r: &R) { r.counter(\"ccsa_requests_total\", \"a\", &[]); }\n",
            ),
            (
                "crates/x/src/other.rs",
                "fn g(r: &R) { r.counter(\"ccsa_requests_total\", \"b\", &[]); }\n",
            ),
        ]);
        let f = check(&ws);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f[0].message.contains("declared 2 times"));
    }

    #[test]
    fn tests_and_unique_declarations_are_clean() {
        let ws = Workspace::from_sources(&[
            (
                "crates/x/src/lib.rs",
                "fn f(r: &R) { r.counter(\"ccsa_requests_total\", \"a\", &[]); }\n\
                 #[cfg(test)]\nmod tests {\n fn t(s: &str) { assert!(s.contains(\"ccsa_requests_total\")); }\n}\n",
            ),
            (
                "crates/x/tests/e2e.rs",
                "fn t(s: &str) { assert!(s.contains(\"ccsa_requests_total\")); }\n",
            ),
        ]);
        assert!(check(&ws).is_empty(), "{:?}", check(&ws));
    }

    #[test]
    fn prometheus_name_grammar() {
        for good in ["ccsa_requests_total", "ccsa_ns:sub", "ccsa_A9"] {
            assert!(is_prometheus_name(good), "{good}");
        }
        for bad in ["ccsa_bad-name", "ccsa_sp ace", "ccsa_é", "ccsa_x."] {
            assert!(!is_prometheus_name(bad), "{bad}");
        }
    }
}
