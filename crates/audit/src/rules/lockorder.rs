//! `lockorder`: extract which locks are acquired while another guard is
//! in scope, build the acquisition graph, and fail on cycles.
//!
//! The analysis is syntactic, per function body:
//!
//! * an **acquisition** is a no-argument `.lock()` / `.read()` /
//!   `.write()` / `.try_*()` call; its **lock class** is the receiver's
//!   final field/variable/function name, qualified by crate
//!   (`serve:park`, `gateway:routing`) so unrelated crates never merge;
//! * a `let`-bound acquisition produces a guard that lives until its
//!   enclosing block closes or an explicit `drop(name)`;
//! * an unbound (temporary) acquisition lives until the end of the
//!   statement (next `;`);
//! * every acquisition performed while guards are live adds edges
//!   `held-class → new-class` into one workspace-wide digraph.
//!
//! A cycle in that graph — including a self-loop, i.e. acquiring a
//! class while already holding it — is the classic deadlock shape, and
//! each distinct cycle is reported once with the edge sites. Test code
//! is exempt: tests lock ad hoc and their false-positive cost is high,
//! while the runtime lockdep shim (ccsa-serve `lockdep`) covers them
//! dynamically.

use crate::analysis::{fn_spans, in_ranges, is_test_file, test_line_ranges};
use crate::lexer::{SourceFile, TokKind};
use crate::{Finding, Workspace};
use std::collections::BTreeMap;

const ACQUIRE_METHODS: &[&str] = &["lock", "read", "write", "try_lock", "try_read", "try_write"];

/// One `held → acquired` observation.
#[derive(Debug, Clone)]
struct Edge {
    path: String,
    line: usize,
}

struct Guard {
    class: String,
    /// Brace depth (relative to fn body) at which the guard's block
    /// lives; popped when the depth drops below it.
    depth: usize,
    /// Bound name for `drop(name)` tracking, `None` for temporaries.
    name: Option<String>,
    /// Temporaries die at the next `;`.
    temp: bool,
}

pub(super) fn check(ws: &Workspace) -> Vec<Finding> {
    // held-class → acquired-class → first example site.
    let mut graph: BTreeMap<String, BTreeMap<String, Edge>> = BTreeMap::new();
    for file in &ws.files {
        if is_test_file(&file.path) {
            continue;
        }
        scan_file(file, &mut graph);
    }
    report_cycles(&graph)
}

fn scan_file(file: &SourceFile, graph: &mut BTreeMap<String, BTreeMap<String, Edge>>) {
    let test_ranges = test_line_ranges(file);
    let toks = &file.tokens;
    for span in fn_spans(file) {
        if in_ranges(&test_ranges, span.line) {
            continue;
        }
        let mut guards: Vec<Guard> = Vec::new();
        let mut depth = 0usize;
        // A pending `let NAME =` binder; cleared at `;` or block open.
        let mut pending_let: Option<String> = None;
        let mut i = span.body_open;
        while i <= span.body_close {
            let t = &toks[i];
            if t.is_punct('{') {
                depth += 1;
                pending_let = None;
            } else if t.is_punct('}') {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
            } else if t.is_punct(';') {
                guards.retain(|g| !g.temp);
                pending_let = None;
            } else if t.is_ident("let") {
                // `let [mut] NAME` or `let PATTERN` — take the first
                // identifier of the pattern as the binder name.
                let mut j = i + 1;
                while toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                    j += 1;
                }
                if let Some(name) = toks.get(j).filter(|t| t.kind == TokKind::Ident) {
                    pending_let = Some(name.text.clone());
                }
            } else if t.is_ident("drop")
                && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
                && toks.get(i + 3).is_some_and(|t| t.is_punct(')'))
            {
                if let Some(name) = toks.get(i + 2).filter(|t| t.kind == TokKind::Ident) {
                    guards.retain(|g| g.name.as_deref() != Some(&name.text));
                }
            } else if is_acquisition(file, i) {
                let class = format!("{}:{}", file.crate_name(), receiver_class(file, i - 1));
                for held in &guards {
                    graph
                        .entry(held.class.clone())
                        .or_default()
                        .entry(class.clone())
                        .or_insert_with(|| Edge {
                            path: file.path.clone(),
                            line: t.line,
                        });
                }
                guards.push(Guard {
                    class,
                    depth,
                    name: pending_let.clone(),
                    temp: pending_let.is_none(),
                });
            }
            i += 1;
        }
    }
}

/// Whether token `i` is the method name of a no-arg acquisition call
/// (`recv.lock()` — the empty parens exclude `io::Read::read(&mut buf)`
/// and friends).
fn is_acquisition(file: &SourceFile, i: usize) -> bool {
    let toks = &file.tokens;
    i > 0
        && toks[i - 1].is_punct('.')
        && ACQUIRE_METHODS.iter().any(|m| toks[i].is_ident(m))
        && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
        && toks.get(i + 2).is_some_and(|t| t.is_punct(')'))
}

/// The lock-class name of the receiver whose final `.` sits at token
/// `dot`: the nearest identifier to the left — through one level of
/// `(...)` call or `[...]` index if present (`self.stripes[i].lock()` →
/// `stripes`, `self.stripe_for(k).lock()` → `stripe_for`).
fn receiver_class(file: &SourceFile, dot: usize) -> String {
    let toks = &file.tokens;
    let mut j = dot;
    while j > 0 {
        j -= 1;
        let t = &toks[j];
        if t.kind == TokKind::Ident {
            return t.text.clone();
        }
        let close = if t.is_punct(')') {
            Some(('(', ')'))
        } else if t.is_punct(']') {
            Some(('[', ']'))
        } else {
            None
        };
        match close {
            Some((open, shut)) => {
                // Walk back over the balanced group.
                let mut depth = 1usize;
                while j > 0 && depth > 0 {
                    j -= 1;
                    if toks[j].is_punct(shut) {
                        depth += 1;
                    } else if toks[j].is_punct(open) {
                        depth -= 1;
                    }
                }
            }
            None => break,
        }
    }
    "<expr>".to_string()
}

/// Finds every elementary cycle reachable in the graph and reports each
/// once (smallest-class-first canonical form).
fn report_cycles(graph: &BTreeMap<String, BTreeMap<String, Edge>>) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut reported: Vec<Vec<String>> = Vec::new();
    for start in graph.keys() {
        let mut stack = vec![start.clone()];
        dfs(graph, start, &mut stack, &mut reported, &mut findings);
    }
    findings
}

fn dfs(
    graph: &BTreeMap<String, BTreeMap<String, Edge>>,
    node: &str,
    stack: &mut Vec<String>,
    reported: &mut Vec<Vec<String>>,
    findings: &mut Vec<Finding>,
) {
    let Some(nexts) = graph.get(node) else {
        return;
    };
    for (next, edge) in nexts {
        if let Some(pos) = stack.iter().position(|n| n == next) {
            let cycle: Vec<String> = stack[pos..].to_vec();
            let mut canon = cycle.clone();
            canon.sort();
            if reported.contains(&canon) {
                continue;
            }
            reported.push(canon);
            let mut path = cycle.clone();
            path.push(next.clone());
            let sites: Vec<String> = cycle
                .iter()
                .zip(path.iter().skip(1))
                .filter_map(|(a, b)| {
                    graph
                        .get(a)
                        .and_then(|m| m.get(b))
                        .map(|e| format!("{}→{} at {}:{}", a, b, e.path, e.line))
                })
                .collect();
            findings.push(Finding {
                rule: "lockorder",
                path: edge.path.clone(),
                line: edge.line,
                message: format!(
                    "lock acquisition cycle {} ({})",
                    path.join(" → "),
                    sites.join("; ")
                ),
            });
            continue;
        }
        if stack.len() < 16 {
            stack.push(next.clone());
            dfs(graph, next, stack, reported, findings);
            stack.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opposite_order_in_two_fns_is_a_cycle() {
        let src = "fn ab(s: &S) {\n\
                   let a = s.alpha.lock();\n\
                   let b = s.beta.lock();\n\
                   }\n\
                   fn ba(s: &S) {\n\
                   let b = s.beta.lock();\n\
                   let a = s.alpha.lock();\n\
                   }\n";
        let ws = Workspace::from_sources(&[("crates/x/src/lib.rs", src)]);
        let f = check(&ws);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("x:alpha"));
        assert!(f[0].message.contains("x:beta"));
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = "fn ab(s: &S) { let a = s.alpha.lock(); let b = s.beta.lock(); }\n\
                   fn ab2(s: &S) { let a = s.alpha.lock(); let b = s.beta.lock(); }\n";
        let ws = Workspace::from_sources(&[("crates/x/src/lib.rs", src)]);
        assert!(check(&ws).is_empty());
    }

    #[test]
    fn self_loop_is_reported() {
        let src = "fn f(s: &S) { let a = s.stripe.lock(); let b = s.stripe.lock(); }\n";
        let ws = Workspace::from_sources(&[("crates/x/src/lib.rs", src)]);
        let f = check(&ws);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("x:stripe → x:stripe"));
    }

    #[test]
    fn block_scope_and_drop_release_guards() {
        let src = "fn f(s: &S) {\n\
                   { let a = s.alpha.lock(); }\n\
                   let b = s.beta.lock();\n\
                   }\n\
                   fn g(s: &S) {\n\
                   let b = s.beta.lock();\n\
                   drop(b);\n\
                   let a = s.alpha.lock();\n\
                   }\n";
        let ws = Workspace::from_sources(&[("crates/x/src/lib.rs", src)]);
        assert!(check(&ws).is_empty(), "{:?}", check(&ws));
    }

    #[test]
    fn temporaries_live_to_end_of_statement() {
        // One statement takes beta while alpha's temporary guard is
        // still live; the reverse order in g() completes the cycle.
        let src = "fn f(s: &S) { use_both(s.alpha.lock().val, s.beta.lock().val); }\n\
                   fn g(s: &S) { let b = s.beta.lock(); let a = s.alpha.lock(); }\n";
        let ws = Workspace::from_sources(&[("crates/x/src/lib.rs", src)]);
        let f = check(&ws);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn io_read_with_args_is_not_an_acquisition() {
        let src = "fn f(mut s: TcpStream, b: &mut [u8]) { s.read(b).unwrap(); }\n";
        let ws = Workspace::from_sources(&[("crates/x/src/lib.rs", src)]);
        assert!(check(&ws).is_empty());
    }

    #[test]
    fn crates_do_not_merge_classes() {
        let ws = Workspace::from_sources(&[
            (
                "crates/x/src/lib.rs",
                "fn f(s: &S) { let a = s.alpha.lock(); let b = s.beta.lock(); }\n",
            ),
            (
                "crates/y/src/lib.rs",
                "fn f(s: &S) { let b = s.beta.lock(); let a = s.alpha.lock(); }\n",
            ),
        ]);
        assert!(check(&ws).is_empty());
    }

    #[test]
    fn indexed_and_call_receivers_get_field_classes() {
        let src = "fn f(s: &S, i: usize, k: u64) {\n\
                   let a = s.stripes[i].lock();\n\
                   let b = s.stripe_for(k).lock();\n\
                   }\n\
                   fn g(s: &S, i: usize, k: u64) {\n\
                   let b = s.stripe_for(k).lock();\n\
                   let a = s.stripes[i].lock();\n\
                   }\n";
        let ws = Workspace::from_sources(&[("crates/x/src/lib.rs", src)]);
        let f = check(&ws);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("stripes"));
        assert!(f[0].message.contains("stripe_for"));
    }
}
