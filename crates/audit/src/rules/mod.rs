//! The rule registry. Each rule is a pure function over the lexed
//! workspace returning findings; the driver applies the allowlist.

mod ieee;
mod lockorder;
mod metrics;
mod ordering;
mod pool;
mod safety;
mod unwrap;
mod verbs;

use crate::{Finding, Workspace};

/// One registered rule.
pub struct Rule {
    /// Stable id, used in findings and allowlist entries.
    pub name: &'static str,
    /// One-line description for `--list`.
    pub help: &'static str,
    /// The check itself.
    pub check: fn(&Workspace) -> Vec<Finding>,
}

/// Every rule, in reporting order.
pub fn all() -> &'static [Rule] {
    &[
        Rule {
            name: "safety",
            help: "every `unsafe` block/fn must carry a `// SAFETY:` comment",
            check: safety::check,
        },
        Rule {
            name: "ordering",
            help: "every explicit `Ordering::…` use must carry an ordering-justification comment",
            check: ordering::check,
        },
        Rule {
            name: "ieee",
            help: "no `== 0.0` zero-skip guards or NaN-masking inside the tensor kernels",
            check: ieee::check,
        },
        Rule {
            name: "lockorder",
            help: "the lock acquisition graph (guard held while acquiring) must be acyclic",
            check: lockorder::check,
        },
        Rule {
            name: "metrics",
            help: "every `ccsa_*` literal is a legal Prometheus name and registered exactly once",
            check: metrics::check,
        },
        Rule {
            name: "verbs",
            help: "every mutating proto verb appears in the gateway and fleet loopback gates",
            check: verbs::check,
        },
        Rule {
            name: "pool",
            help: "tape forward paths draw f32 buffers from the pool — no raw Vec allocs",
            check: pool::check,
        },
        Rule {
            name: "unwrap",
            help: "no unwrap()/expect() on the untrusted request-parse paths",
            check: unwrap::check,
        },
    ]
}
