//! `ieee`: the kernel module must stay IEEE-strict. PR 4 removed a
//! `aik == 0.0` sparsity skip from `matmul` that silently converted
//! `0·NaN` / `0·∞` to `0`, masking diverged models before the loss
//! could see them. This rule regression-proofs that class of bug at the
//! source level: inside the kernel files, non-test code may not
//!
//! * compare against a floating-point zero (`== 0.0` / `!= 0.0`) — the
//!   zero-skip pattern (integer zero guards like `k == 0` stay legal);
//! * call `is_nan()` / `is_finite()` / `is_infinite()` — NaN-masking
//!   belongs in callers that own a policy, never in the kernels.

use crate::analysis::{in_ranges, test_line_ranges};
use crate::lexer::TokKind;
use crate::{Finding, Workspace};

/// Path suffixes this rule applies to.
const KERNEL_PATHS: &[&str] = &["crates/tensor/src/kernels.rs"];

const NAN_MASKS: &[&str] = &["is_nan", "is_finite", "is_infinite"];

/// Whether a number token is a floating-point zero (`0.0`, `0.`,
/// `0f32`, `0.0f64`, `0_0.0`…). Integer zeros return false.
fn is_float_zero(text: &str) -> bool {
    let t = text.replace('_', "");
    let (mantissa, is_float) = match (t.strip_suffix("f32"), t.strip_suffix("f64")) {
        (Some(m), _) => (m.to_string(), true),
        (_, Some(m)) => (m.to_string(), true),
        _ => (
            t.clone(),
            t.contains('.') || t.contains('e') || t.contains('E'),
        ),
    };
    if !is_float && !mantissa.contains('.') {
        return false;
    }
    mantissa.parse::<f64>() == Ok(0.0)
}

pub(super) fn check(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in &ws.files {
        if !KERNEL_PATHS.iter().any(|p| file.path.ends_with(p)) {
            continue;
        }
        let test_ranges = test_line_ranges(file);
        let toks = &file.tokens;
        for ix in 0..toks.len() {
            let line = toks[ix].line;
            if in_ranges(&test_ranges, line) {
                continue;
            }
            // `== 0.0` / `!= 0.0` (either operand order).
            let is_eq_op = (toks[ix].is_punct('=') || toks[ix].is_punct('!'))
                && toks.get(ix + 1).is_some_and(|t| t.is_punct('='));
            if is_eq_op {
                let rhs_zero = toks
                    .get(ix + 2)
                    .is_some_and(|t| t.kind == TokKind::Num && is_float_zero(&t.text));
                let lhs_zero = ix > 0
                    && toks[ix - 1].kind == TokKind::Num
                    && is_float_zero(&toks[ix - 1].text);
                // Exclude `!=`'s bang being the second char of `!=`… the
                // token stream has '!' then '=' then '='? No: `!=` lexes
                // as '!' '=', `==` as '=' '='. Both start the two-token
                // window matched above.
                if rhs_zero || lhs_zero {
                    findings.push(Finding {
                        rule: "ieee",
                        path: file.path.clone(),
                        line,
                        message: "floating-point zero comparison in kernel code \
                                  (zero-skip guards mask 0·NaN / 0·∞; keep kernels IEEE-strict)"
                            .to_string(),
                    });
                }
            }
            // `.is_nan()` and friends.
            if ix > 0
                && toks[ix - 1].is_punct('.')
                && NAN_MASKS.iter().any(|m| toks[ix].is_ident(m))
            {
                findings.push(Finding {
                    rule: "ieee",
                    path: file.path.clone(),
                    line,
                    message: format!(
                        "{}() in kernel code — NaN classification/masking belongs in \
                         callers, kernels must propagate",
                        toks[ix].text
                    ),
                });
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_zero_skip_and_nan_mask_outside_tests() {
        let src = "fn k(a: f32) {\n\
                   if a == 0.0 { return; }\n\
                   if 0.0 != a { }\n\
                   if a.is_nan() { }\n\
                   let n = 0; if n == 0 { }\n\
                   }\n\
                   #[cfg(test)]\nmod tests {\n fn t(c: f32) { assert!(c.is_nan()); let z = c == 0.0; }\n}\n";
        let ws = Workspace::from_sources(&[("crates/tensor/src/kernels.rs", src)]);
        let f = check(&ws);
        assert_eq!(f.len(), 3, "{f:?}");
        assert_eq!(f[0].line, 2);
        assert_eq!(f[1].line, 3);
        assert_eq!(f[2].line, 4);
    }

    #[test]
    fn other_files_are_out_of_scope() {
        let ws = Workspace::from_sources(&[(
            "crates/serve/src/json.rs",
            "fn f(n: f64) -> bool { n.fract() == 0.0 }\n",
        )]);
        assert!(check(&ws).is_empty());
    }

    #[test]
    fn float_zero_classifier() {
        for z in ["0.0", "0.", "0f32", "0.0f64", "0_0.0", "0e0"] {
            assert!(is_float_zero(z), "{z}");
        }
        for nz in ["0", "1.0", "0x0", "0usize", "10", "0.5"] {
            assert!(!is_float_zero(nz), "{nz}");
        }
    }
}
