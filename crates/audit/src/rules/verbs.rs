//! `verbs`: every mutating proto verb must be loopback-gated at every
//! front door. The source of truth is `MUTATING_VERBS` in
//! `crates/serve/src/proto.rs` (next to the request parser, so adding
//! a verb and forgetting the gates is a one-file diff this rule
//! catches); the gates are the `LOOPBACK_GATED_VERBS` consts in the
//! gateway and fleet servers, which their admission checks read.
//!
//! Checked both ways: a mutating verb missing from a gate list is the
//! real vulnerability (remote shutdown); a gated verb that is not
//! mutating is a stale or misspelled entry.
//!
//! The rule no-ops when no `proto.rs` with `MUTATING_VERBS` is in the
//! tree, so per-rule fixture trees don't trip it.

use crate::lexer::{SourceFile, TokKind};
use crate::{Finding, Workspace};

const PROTO_PATH: &str = "crates/serve/src/proto.rs";
const GATE_PATHS: &[&str] = &["crates/gateway/src/server.rs", "crates/fleet/src/server.rs"];

/// Extracts the string elements of `const NAME: &[&str] = &[...]`;
/// `None` when the const is absent.
fn const_str_list(file: &SourceFile, name: &str) -> Option<(usize, Vec<String>)> {
    let toks = &file.tokens;
    let at = toks.iter().position(|t| t.is_ident(name))?;
    let eq = (at..toks.len()).find(|&i| toks[i].is_punct('='))?;
    let open = (eq..toks.len()).find(|&i| toks[i].is_punct('['))?;
    let mut items = Vec::new();
    for t in &toks[open + 1..] {
        if t.is_punct(']') {
            break;
        }
        if t.kind == TokKind::Str {
            items.push(t.text.clone());
        }
    }
    Some((toks[at].line, items))
}

pub(super) fn check(ws: &Workspace) -> Vec<Finding> {
    let Some(proto) = ws.files.iter().find(|f| f.path.ends_with(PROTO_PATH)) else {
        return Vec::new();
    };
    let Some((_, mutating)) = const_str_list(proto, "MUTATING_VERBS") else {
        return vec![Finding {
            rule: "verbs",
            path: proto.path.clone(),
            line: 1,
            message: "proto.rs has no `MUTATING_VERBS` const — the verb gates \
                      have no source of truth"
                .to_string(),
        }];
    };
    let mut findings = Vec::new();
    for gate_path in GATE_PATHS {
        let Some(file) = ws.files.iter().find(|f| f.path.ends_with(gate_path)) else {
            continue;
        };
        match const_str_list(file, "LOOPBACK_GATED_VERBS") {
            None => findings.push(Finding {
                rule: "verbs",
                path: file.path.clone(),
                line: 1,
                message: "server has no `LOOPBACK_GATED_VERBS` const — mutating \
                          verbs are not gated"
                    .to_string(),
            }),
            Some((line, gated)) => {
                for verb in &mutating {
                    if !gated.contains(verb) {
                        findings.push(Finding {
                            rule: "verbs",
                            path: file.path.clone(),
                            line,
                            message: format!(
                                "mutating verb `{verb}` is missing from \
                                 LOOPBACK_GATED_VERBS — remotely callable"
                            ),
                        });
                    }
                }
                for verb in &gated {
                    if !mutating.contains(verb) {
                        findings.push(Finding {
                            rule: "verbs",
                            path: file.path.clone(),
                            line,
                            message: format!(
                                "gated verb `{verb}` is not in MUTATING_VERBS — \
                                 stale or misspelled gate entry"
                            ),
                        });
                    }
                }
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROTO: &str = "pub const MUTATING_VERBS: &[&str] = &[\"shutdown\", \"reload_routes\"];\n";

    #[test]
    fn missing_gate_entry_is_flagged() {
        let ws = Workspace::from_sources(&[
            ("crates/serve/src/proto.rs", PROTO),
            (
                "crates/gateway/src/server.rs",
                "const LOOPBACK_GATED_VERBS: &[&str] = &[\"shutdown\"];\n",
            ),
        ]);
        let f = check(&ws);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("reload_routes"));
        assert!(f[0].message.contains("missing"));
    }

    #[test]
    fn stale_gate_entry_is_flagged() {
        let ws = Workspace::from_sources(&[
            ("crates/serve/src/proto.rs", PROTO),
            (
                "crates/fleet/src/server.rs",
                "const LOOPBACK_GATED_VERBS: &[&str] = \
                 &[\"shutdown\", \"reload_routes\", \"restart\"];\n",
            ),
        ]);
        let f = check(&ws);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("restart"));
        assert!(f[0].message.contains("stale"));
    }

    #[test]
    fn matching_lists_are_clean_and_no_proto_is_a_noop() {
        let full = Workspace::from_sources(&[
            ("crates/serve/src/proto.rs", PROTO),
            (
                "crates/gateway/src/server.rs",
                "const LOOPBACK_GATED_VERBS: &[&str] = &[\"shutdown\", \"reload_routes\"];\n",
            ),
            (
                "crates/fleet/src/server.rs",
                "const LOOPBACK_GATED_VERBS: &[&str] = &[\"shutdown\", \"reload_routes\"];\n",
            ),
        ]);
        assert!(check(&full).is_empty(), "{:?}", check(&full));
        let none = Workspace::from_sources(&[("crates/x/src/lib.rs", "fn f() {}\n")]);
        assert!(check(&none).is_empty());
    }

    #[test]
    fn absent_gate_const_is_flagged() {
        let ws = Workspace::from_sources(&[
            ("crates/serve/src/proto.rs", PROTO),
            ("crates/gateway/src/server.rs", "fn serve() {}\n"),
        ]);
        let f = check(&ws);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("no `LOOPBACK_GATED_VERBS`"));
    }
}
