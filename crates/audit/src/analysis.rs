//! Shared structural helpers the rules build on: test-region detection,
//! comment-justification lookup, and function/body spans reconstructed
//! from the token stream.

use crate::lexer::{SourceFile, TokKind, Token};

/// Inclusive 1-based line ranges covered by `#[cfg(test)] mod … { … }`
/// blocks (including the attribute line itself).
pub fn test_line_ranges(file: &SourceFile) -> Vec<(usize, usize)> {
    let toks = &file.tokens;
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct('#')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('['))
            && toks.get(i + 2).is_some_and(|t| t.is_ident("cfg"))
            && toks.get(i + 3).is_some_and(|t| t.is_punct('('))
        {
            let attr_line = toks[i].line;
            // Scan the cfg predicate for a bare `test` ident.
            let mut j = i + 4;
            let mut depth = 1usize;
            let mut is_test_cfg = false;
            while j < toks.len() && depth > 0 {
                if toks[j].is_punct('(') {
                    depth += 1;
                } else if toks[j].is_punct(')') {
                    depth -= 1;
                } else if toks[j].is_ident("test") {
                    is_test_cfg = true;
                }
                j += 1;
            }
            // Expect `]`, optional further attributes, then `mod name {`.
            if j < toks.len() && toks[j].is_punct(']') {
                j += 1;
                while toks.get(j).is_some_and(|t| t.is_punct('#'))
                    && toks.get(j + 1).is_some_and(|t| t.is_punct('['))
                {
                    let mut d = 0usize;
                    j += 1;
                    loop {
                        match toks.get(j) {
                            Some(t) if t.is_punct('[') => d += 1,
                            Some(t) if t.is_punct(']') => {
                                d -= 1;
                                if d == 0 {
                                    j += 1;
                                    break;
                                }
                            }
                            Some(_) => {}
                            None => break,
                        }
                        j += 1;
                    }
                }
            }
            if is_test_cfg && toks.get(j).is_some_and(|t| t.is_ident("mod")) {
                // Find the opening brace (a `mod name;` has none).
                let mut k = j + 1;
                while k < toks.len() && !toks[k].is_punct('{') && !toks[k].is_punct(';') {
                    k += 1;
                }
                if toks.get(k).is_some_and(|t| t.is_punct('{')) {
                    if let Some(close) = matching_brace(toks, k) {
                        ranges.push((attr_line, toks[close].line));
                        i = close;
                    }
                }
            }
        }
        i += 1;
    }
    ranges
}

/// Whether the whole file is test/bench-only code (integration tests,
/// benches, examples).
pub fn is_test_file(path: &str) -> bool {
    path.starts_with("tests/")
        || path.contains("/tests/")
        || path.contains("/benches/")
        || path.starts_with("examples/")
        || path.contains("/examples/")
}

/// Whether 1-based `line` falls inside a `#[cfg(test)]` region of `file`
/// (precomputed `ranges` from [`test_line_ranges`]).
pub fn in_ranges(ranges: &[(usize, usize)], line: usize) -> bool {
    ranges.iter().any(|&(a, b)| (a..=b).contains(&line))
}

/// The token index of the `}` matching the `{` at `open`, tracking
/// nesting. Returns `None` on unbalanced input.
pub fn matching_brace(toks: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (ix, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(ix);
            }
        }
    }
    None
}

/// Whether a justification comment containing `needle` (case-sensitive)
/// exists on `line` itself or in the contiguous comment/attribute block
/// directly above it. Attribute lines (`#[…]`) and the `}` -free
/// continuation lines of the attribute may sit between the comment and
/// the code (e.g. a doc comment above `#[target_feature]` + `unsafe fn`).
pub fn comment_block_contains(file: &SourceFile, line: usize, needle: &str) -> bool {
    if file.comment_on(line).contains(needle) {
        return true;
    }
    let mut n = line;
    let mut walked = 0usize;
    while n > 1 && walked < 40 {
        n -= 1;
        walked += 1;
        let trimmed = file.line(n).trim();
        if file.is_comment_only(n) {
            if file.comment_on(n).contains(needle) {
                return true;
            }
            continue;
        }
        // Attribute lines (and their multi-line continuations, which end
        // in `]` or contain only attribute args) are transparent.
        if trimmed.starts_with("#[") || trimmed.starts_with("#![") {
            continue;
        }
        break;
    }
    false
}

/// One `fn` item (or nested fn/closure-owning fn) with its body token
/// span (`{`..=`}` indices into `file.tokens`).
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Token index of the opening `{`.
    pub body_open: usize,
    /// Token index of the closing `}`.
    pub body_close: usize,
}

/// Every function body in the file, in source order. Trait/extern fn
/// declarations without bodies are skipped. Nested functions produce
/// their own span in addition to being covered by the outer one.
pub fn fn_spans(file: &SourceFile) -> Vec<FnSpan> {
    let toks = &file.tokens;
    let mut spans = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("fn") {
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else {
            continue;
        };
        if name_tok.kind != TokKind::Ident {
            continue;
        }
        // Walk to the body `{`, skipping the signature. Generic bounds
        // can nest `<`…`>` but never braces; a `;` first means no body.
        let mut j = i + 2;
        while j < toks.len() && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
            j += 1;
        }
        if toks.get(j).is_some_and(|t| t.is_punct('{')) {
            if let Some(close) = matching_brace(toks, j) {
                spans.push(FnSpan {
                    name: name_tok.text.clone(),
                    line: toks[i].line,
                    body_open: j,
                    body_close: close,
                });
            }
        }
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::SourceFile;

    #[test]
    fn finds_cfg_test_ranges() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() {}\n}\nfn c() {}\n";
        let f = SourceFile::lex("crates/x/src/lib.rs", src);
        let r = test_line_ranges(&f);
        assert_eq!(r, vec![(2, 5)]);
        assert!(in_ranges(&r, 4));
        assert!(!in_ranges(&r, 6));
    }

    #[test]
    fn finds_cfg_all_test_ranges() {
        let src = "#[cfg(all(test, unix))]\nmod tests {\n  fn b() {}\n}\n";
        let f = SourceFile::lex("crates/x/src/lib.rs", src);
        assert_eq!(test_line_ranges(&f), vec![(1, 4)]);
    }

    #[test]
    fn comment_block_lookup_skips_attributes() {
        let src = "\n// SAFETY: fine\n#[target_feature(enable = \"avx2\")]\nunsafe fn f() {}\n";
        let f = SourceFile::lex("crates/x/src/lib.rs", src);
        assert!(comment_block_contains(&f, 4, "SAFETY"));
        assert!(!comment_block_contains(&f, 4, "NOPE"));
    }

    #[test]
    fn fn_spans_cover_bodies() {
        let src = "fn outer() { let x = 1; }\ntrait T { fn decl(&self); }\n";
        let f = SourceFile::lex("crates/x/src/lib.rs", src);
        let spans = fn_spans(&f);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "outer");
    }
}
